#include "slb/analysis/imbalance_bounds.h"

#include <algorithm>
#include <cmath>

#include "slb/common/logging.h"

namespace slb {

double KeyGroupingImbalanceLowerBound(double p1, uint32_t n) {
  SLB_CHECK(n >= 1);
  return std::max(0.0, p1 - 1.0 / static_cast<double>(n));
}

double GreedyDImbalanceLowerBound(double p1, uint32_t n, uint32_t d) {
  SLB_CHECK(n >= 1);
  SLB_CHECK(d >= 1);
  // The hottest key's load splits across at most d workers; the best case
  // is an even p1/d per worker, hence max load >= p1/d.
  return std::max(0.0, p1 / static_cast<double>(d) - 1.0 / static_cast<double>(n));
}

bool PkgAssumptionHolds(double p1, uint32_t n) {
  return p1 <= 2.0 / static_cast<double>(n);
}

double HeadThresholdLower(uint32_t n) {
  SLB_CHECK(n >= 1);
  return 1.0 / (5.0 * static_cast<double>(n));
}

double HeadThresholdUpper(uint32_t n) {
  SLB_CHECK(n >= 1);
  return 2.0 / static_cast<double>(n);
}

uint32_t PkgBreakdownScale(double p1) {
  if (p1 <= 0.0) return ~uint32_t{0};  // never breaks down
  return static_cast<uint32_t>(std::floor(2.0 / p1)) + 1;
}

}  // namespace slb
