// Closed-form imbalance bounds from the PKG analysis ([7], as used in
// Sec. III-A of this paper to derive the head threshold range).
//
// The paper selects theta from two facts about Greedy-2:
//   * if p1 > 2/n, expected imbalance is at least (p1/2 - 1/n) — the load
//     of the hottest key exceeds the capacity of its two workers;
//   * if p1 <= 1/(5n), PKG's imbalance stays bounded w.h.p., so keys below
//     1/(5n) never need more than two choices.
// The generalization to d choices gives the lower bound used to seed
// FINDOPTIMALCHOICES (d >= p1 * n). These functions make the bounds
// available to tooling and are validated against simulation in tests.

#pragma once

#include <cstdint>

namespace slb {

/// Asymptotic imbalance lower bound for key grouping: the hottest key pins
/// p1 of the stream on one worker, so I >= p1 - 1/n (clamped at 0).
double KeyGroupingImbalanceLowerBound(double p1, uint32_t n);

/// Asymptotic imbalance lower bound for Greedy-d applied to the hottest
/// key: its d choices cover at most d workers, so I >= p1/d - 1/n
/// (clamped at 0). d = 2 is the PKG bound of [7] quoted in Sec. III-A.
double GreedyDImbalanceLowerBound(double p1, uint32_t n, uint32_t d);

/// True when PKG's "two choices suffice" assumption holds for the hottest
/// key (p1 <= 2/n) — the condition whose violation defines the head.
bool PkgAssumptionHolds(double p1, uint32_t n);

/// The paper's head-threshold range [1/(5n), 2/n] (Sec. III-A).
double HeadThresholdLower(uint32_t n);
double HeadThresholdUpper(uint32_t n);

/// Smallest deployment size at which a key of frequency p1 violates the
/// PKG assumption (the "scale wall" of Fig. 1): n > 2/p1.
uint32_t PkgBreakdownScale(double p1);

}  // namespace slb
