#include "slb/analysis/aggregation_model.h"

#include <algorithm>

namespace slb {

namespace {

AggregationCost Finish(uint64_t partials, uint64_t distinct) {
  AggregationCost cost;
  cost.partials = partials;
  cost.amplification =
      distinct > 0
          ? static_cast<double>(partials) / static_cast<double>(distinct)
          : 0.0;
  return cost;
}

}  // namespace

AggregationCost UniformChoicesAggregation(const FrequencyTable& window_counts,
                                          uint32_t d) {
  uint64_t partials = 0;
  uint64_t distinct = 0;
  for (uint64_t f : window_counts) {
    if (f == 0) continue;
    ++distinct;
    partials += std::min<uint64_t>(f, d);
  }
  return Finish(partials, distinct);
}

AggregationCost HeadTailAggregation(const FrequencyTable& window_counts,
                                    const std::unordered_set<uint64_t>& head,
                                    uint32_t head_d) {
  uint64_t partials = 0;
  uint64_t distinct = 0;
  for (uint64_t k = 0; k < window_counts.size(); ++k) {
    const uint64_t f = window_counts[k];
    if (f == 0) continue;
    ++distinct;
    const uint64_t cap = head.contains(k) ? head_d : 2;
    partials += std::min(f, cap);
  }
  return Finish(partials, distinct);
}

}  // namespace slb
