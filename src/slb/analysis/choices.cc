#include "slb/analysis/choices.h"

#include <algorithm>
#include <cmath>

#include "slb/common/logging.h"

namespace slb {

double ExpectedWorkerSetSize(uint32_t n, double items) {
  SLB_CHECK(n >= 1);
  if (items <= 0.0) return 0.0;
  const double nn = static_cast<double>(n);
  return nn - nn * std::pow((nn - 1.0) / nn, items);
}

HeadProfile HeadProfile::FromProbabilities(std::vector<double> probs) {
  std::sort(probs.begin(), probs.end(), std::greater<double>());
  double head_mass = 0.0;
  for (double p : probs) head_mass += p;
  HeadProfile profile;
  profile.probabilities = std::move(probs);
  profile.tail_mass = std::clamp(1.0 - head_mass, 0.0, 1.0);
  return profile;
}

double PrefixConstraintSlack(const HeadProfile& head, uint32_t n, uint32_t d,
                             double epsilon, uint32_t h) {
  SLB_CHECK(h >= 1 && h <= head.probabilities.size());
  const double nn = static_cast<double>(n);

  double prefix = 0.0;  // sum_{i<=h} p_i
  for (uint32_t i = 0; i < h; ++i) prefix += head.probabilities[i];
  double rest_head = 0.0;  // sum_{h<i<=|H|} p_i
  for (size_t i = h; i < head.probabilities.size(); ++i) {
    rest_head += head.probabilities[i];
  }

  const double bh =
      ExpectedWorkerSetSize(n, static_cast<double>(h) * static_cast<double>(d));
  const double ratio = bh / nn;

  // Eqn. (3): prefix + (bh/n)^d * rest_head + (bh/n)^2 * tail
  //             <= bh * (1/n + epsilon)
  const double lhs = prefix + std::pow(ratio, static_cast<double>(d)) * rest_head +
                     ratio * ratio * head.tail_mass;
  const double rhs = bh * (1.0 / nn + epsilon);
  return lhs - rhs;
}

bool ConstraintsSatisfied(const HeadProfile& head, uint32_t n, uint32_t d,
                          double epsilon) {
  for (uint32_t h = 1; h <= head.probabilities.size(); ++h) {
    if (PrefixConstraintSlack(head, n, d, epsilon, h) > 0.0) return false;
  }
  return true;
}

uint32_t ChoicesLowerBound(double p1, uint32_t n) {
  const double bound = p1 * static_cast<double>(n);
  const auto ceil_bound = static_cast<uint32_t>(std::ceil(bound - 1e-12));
  return std::max<uint32_t>(2, ceil_bound);
}

uint32_t FindOptimalChoices(const HeadProfile& head, uint32_t n, double epsilon) {
  if (head.probabilities.empty()) return 2;
  if (n <= 2) return n;  // degenerate deployments: nothing to tune

  const double p1 = head.probabilities.front();
  for (uint32_t d = std::min(ChoicesLowerBound(p1, n), n); d < n; ++d) {
    if (ConstraintsSatisfied(head, n, d, epsilon)) return d;
  }
  // No d < n suffices ("we need bh ~= n w.h.p.", Sec. IV-A): switch to W-C.
  return n;
}

}  // namespace slb
