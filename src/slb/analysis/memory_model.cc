#include "slb/analysis/memory_model.h"

#include <algorithm>

namespace slb {

uint64_t CappedMass(const FrequencyTable& counts, uint64_t cap) {
  uint64_t total = 0;
  for (uint64_t f : counts) total += std::min(f, cap);
  return total;
}

uint64_t MemoryPkg(const FrequencyTable& counts) { return CappedMass(counts, 2); }

uint64_t MemorySg(const FrequencyTable& counts, uint32_t n) {
  return CappedMass(counts, n);
}

uint64_t MemoryDc(const FrequencyTable& counts,
                  const std::unordered_set<uint64_t>& head, uint32_t d) {
  uint64_t total = 0;
  for (uint64_t k = 0; k < counts.size(); ++k) {
    const uint64_t cap = head.contains(k) ? d : 2;
    total += std::min(counts[k], cap);
  }
  return total;
}

uint64_t MemoryWc(const FrequencyTable& counts,
                  const std::unordered_set<uint64_t>& head, uint32_t n) {
  return MemoryDc(counts, head, n);
}

double OverheadPercent(uint64_t mem, uint64_t base) {
  if (base == 0) return 0.0;
  return 100.0 * (static_cast<double>(mem) - static_cast<double>(base)) /
         static_cast<double>(base);
}

}  // namespace slb
