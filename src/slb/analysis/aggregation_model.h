// Aggregation-cost model (Sec. IV-B: "when splitting a key in d separate
// partial states, if reconciliation is needed, there is also an aggregation
// cost proportional to d").
//
// For windowed queries, every window each key contributes one partial per
// worker that saw it; the reconciliation traffic per window is therefore
//   sum_k min(f_k^w, d_k)
// where f_k^w is the key's frequency inside the window and d_k its number
// of choices. These helpers estimate that traffic for each scheme from a
// window-level frequency table, so operators can budget the merge stage.

#pragma once

#include <cstdint>
#include <unordered_set>

#include "slb/analysis/memory_model.h"

namespace slb {

/// Expected per-window partials a downstream merger receives.
struct AggregationCost {
  uint64_t partials = 0;       // tuples entering the merge stage per window
  double amplification = 0.0;  // partials / distinct keys in the window
};

/// Cost for a scheme where every key has up to `d` choices (d=1: KG, d=2:
/// PKG, d=n: SG).
AggregationCost UniformChoicesAggregation(const FrequencyTable& window_counts,
                                          uint32_t d);

/// Cost for the head/tail split: head keys up to `head_d` partials, tail
/// keys up to 2 (D-Choices with head_d = d, W-Choices with head_d = n).
AggregationCost HeadTailAggregation(const FrequencyTable& window_counts,
                                    const std::unordered_set<uint64_t>& head,
                                    uint32_t head_d);

}  // namespace slb
