// Memory-overhead models of Sec. IV-B.
//
// The state a stateful operator must keep is proportional to the number of
// distinct (key, worker) assignments. The paper estimates:
//   memPKG = sum_k min(f_k, 2)          (each key on at most 2 workers)
//   memSG  = sum_k min(f_k, n)          (each key potentially everywhere)
//   memDC  = d*|H| + 2*|K \ H|          (upper bound; Sec. IV-B)
//   memWC  = n*|H| + 2*|K \ H|
// The f_k-aware variants below additionally cap by the key's own frequency
// (a key occurring once occupies one worker regardless of d) — this is the
// form used for the Fig. 5/6 ratios.

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "slb/workload/zipf.h"

namespace slb {

/// Frequency table of a concrete stream: counts[k] = occurrences of key k.
/// (Keys are dense ranks/ids in [0, counts.size()).)
using FrequencyTable = std::vector<uint64_t>;

/// sum_k min(f_k, cap) — the building block of all the estimates.
uint64_t CappedMass(const FrequencyTable& counts, uint64_t cap);

/// memPKG = sum_k min(f_k, 2).
uint64_t MemoryPkg(const FrequencyTable& counts);

/// memSG = sum_k min(f_k, n).
uint64_t MemorySg(const FrequencyTable& counts, uint32_t n);

/// memDC given the head key set and its number of choices d:
///   sum_{k in H} min(f_k, d) + sum_{k not in H} min(f_k, 2).
uint64_t MemoryDc(const FrequencyTable& counts,
                  const std::unordered_set<uint64_t>& head, uint32_t d);

/// memWC: head keys on up to n workers.
uint64_t MemoryWc(const FrequencyTable& counts,
                  const std::unordered_set<uint64_t>& head, uint32_t n);

/// Percentage overhead of `mem` relative to `base`: 100 * (mem - base) / base.
double OverheadPercent(uint64_t mem, uint64_t base);

}  // namespace slb
