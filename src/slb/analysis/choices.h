// Analytical machinery of Sec. IV-A: the expected worker-set size b_h
// (Eqn. 10), the prefix load constraints (Eqn. 3), and FINDOPTIMALCHOICES —
// the minimal number of choices d that keeps expected imbalance below
// epsilon.

#pragma once

#include <cstdint>
#include <vector>

namespace slb {

/// Expected number of distinct workers hit when placing `items` hashes
/// uniformly at random into n slots (Appendix A, Eqn. 10):
///   b = n - n * ((n-1)/n)^items
double ExpectedWorkerSetSize(uint32_t n, double items);

/// Estimated head of the key distribution, as needed by the analysis:
/// probabilities of the head keys sorted descending plus the remaining tail
/// mass. Probabilities are of the *whole* stream (sum + tail_mass ~= 1).
struct HeadProfile {
  std::vector<double> probabilities;  // p1 >= p2 >= ... >= p_|H|
  double tail_mass = 0.0;             // sum over keys outside the head

  /// Builds a profile from (possibly unsorted) head probabilities; tail mass
  /// is clamped to [0, 1].
  static HeadProfile FromProbabilities(std::vector<double> probs);
};

/// Evaluates the Eqn. (3) constraint for one prefix length h (1-based):
/// returns LHS - RHS; <= 0 means the constraint holds.
double PrefixConstraintSlack(const HeadProfile& head, uint32_t n, uint32_t d,
                             double epsilon, uint32_t h);

/// True when the Eqn. (3) constraints hold for every prefix of the head.
bool ConstraintsSatisfied(const HeadProfile& head, uint32_t n, uint32_t d,
                          double epsilon);

/// FINDOPTIMALCHOICES (Sec. IV-A): the smallest d in [2, n) such that every
/// prefix constraint is satisfied, searching upward from the simple lower
/// bound d >= p1 * n. Returns n when no d < n suffices — the caller should
/// then switch to W-Choices (the paper's prescription).
uint32_t FindOptimalChoices(const HeadProfile& head, uint32_t n, double epsilon);

/// The analytic lower bound the search starts from: max(2, ceil(p1 * n)).
uint32_t ChoicesLowerBound(double p1, uint32_t n);

}  // namespace slb
