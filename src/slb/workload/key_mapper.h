// Rank -> key-identity mapping, including concept drift.
//
// Distributions sample *ranks* (0 = hottest). A KeyMapper turns ranks into
// stable key identities. The drifting mapper models the paper's CT (Twitter
// cashtags) workload, whose key distribution "changes drastically throughout
// time": at every epoch boundary a fraction of the rank->key permutation is
// re-drawn, so the identity of the hot keys migrates while the *shape* of
// the distribution stays fixed.

#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "slb/common/rng.h"

namespace slb {

/// Identity mapping: key == rank. The plain ZF/WP/TW model.
class IdentityKeyMapper {
 public:
  uint64_t Map(uint64_t rank) const { return rank; }
  void AdvanceEpoch(Rng*) {}
};

/// Permutation mapping with per-epoch partial reshuffle.
class DriftingKeyMapper {
 public:
  /// `swap_fraction` of keys take part in random transpositions at every
  /// epoch boundary (1.0 re-draws an entirely new permutation-ish mapping;
  /// 0.0 is static).
  DriftingKeyMapper(uint64_t num_keys, double swap_fraction, uint64_t seed = 17);

  uint64_t Map(uint64_t rank) const { return perm_[rank]; }

  /// Applies the per-epoch reshuffle.
  void AdvanceEpoch(Rng* rng);

  double swap_fraction() const { return swap_fraction_; }

 private:
  std::vector<uint64_t> perm_;
  double swap_fraction_;
};

}  // namespace slb
