#include "slb/workload/key_mapper.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

DriftingKeyMapper::DriftingKeyMapper(uint64_t num_keys, double swap_fraction,
                                     uint64_t seed)
    : swap_fraction_(swap_fraction) {
  SLB_CHECK(num_keys >= 1) << "mapper needs at least one key";
  SLB_CHECK(swap_fraction >= 0.0 && swap_fraction <= 1.0)
      << "swap fraction must be in [0,1]";
  perm_.resize(num_keys);
  std::iota(perm_.begin(), perm_.end(), 0);
  // Start from a random permutation so rank != key from the outset.
  Rng rng(seed);
  for (uint64_t i = num_keys; i > 1; --i) {
    std::swap(perm_[i - 1], perm_[rng.NextBounded(i)]);
  }
}

void DriftingKeyMapper::AdvanceEpoch(Rng* rng) {
  const uint64_t n = perm_.size();
  const auto swaps = static_cast<uint64_t>(swap_fraction_ * static_cast<double>(n));
  for (uint64_t s = 0; s < swaps; ++s) {
    const uint64_t a = rng->NextBounded(n);
    const uint64_t b = rng->NextBounded(n);
    std::swap(perm_[a], perm_[b]);
  }
}

}  // namespace slb
