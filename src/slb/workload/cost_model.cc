#include "slb/workload/cost_model.h"

#include <cmath>

#include "slb/common/logging.h"
#include "slb/common/rng.h"

namespace slb {

CostModel::CostModel(const CostModelOptions& options)
    : options_(options), seed_mix_(Mix64(options.seed ^ 0x5ca1ab1ec0571e55ULL)) {
  SLB_CHECK(options_.num_keys >= 1);
}

double CostModel::KeyUniform(uint64_t key) const {
  const uint64_t bits = Mix64(seed_mix_ ^ (key * 0x9e3779b97f4a7c15ULL));
  // 53 mantissa bits, shifted into (0, 1]: never 0, so inverse-CDF draws
  // (u^(-1/alpha)) stay finite.
  return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

double CostModel::MeanCost() const {
  double sum = 0.0;
  for (uint64_t k = 0; k < options_.num_keys; ++k) sum += CostOf(k);
  return sum / static_cast<double>(options_.num_keys);
}

UnitCostModel::UnitCostModel(const CostModelOptions& options)
    : CostModel(options) {}

ParetoCostModel::ParetoCostModel(const CostModelOptions& options)
    : CostModel(options) {
  SLB_CHECK(options_.pareto_tail_index > 0.0);
  SLB_CHECK(options_.pareto_scale > 0.0);
}

double ParetoCostModel::CostOf(uint64_t key) const {
  return options_.pareto_scale *
         std::pow(KeyUniform(key), -1.0 / options_.pareto_tail_index);
}

RankCorrelatedCostModel::RankCorrelatedCostModel(
    const CostModelOptions& options, bool anti)
    : CostModel(options), anti_(anti) {
  SLB_CHECK(options_.cost_correlation >= -1.0 &&
            options_.cost_correlation <= 1.0);
  SLB_CHECK(options_.max_cost >= 1.0);
}

double RankCorrelatedCostModel::CostOf(uint64_t key) const {
  const double denom = options_.num_keys > 1
                           ? static_cast<double>(options_.num_keys - 1)
                           : 1.0;
  double base = static_cast<double>(key) / denom;  // 0 at rank 0 (hottest)
  if (base > 1.0) base = 1.0;  // keys past num_keys price like the coldest rank
  if (!anti_) base = 1.0 - base;
  const double rho = std::abs(options_.cost_correlation);
  const double mix = rho * base + (1.0 - rho) * KeyUniform(key);
  return 1.0 + (options_.max_cost - 1.0) * mix;
}

std::vector<std::string> CostModelNames() {
  return {"unit", "pareto", "correlated", "anti-correlated"};
}

Result<std::unique_ptr<CostModel>> MakeCostModel(
    const std::string& name, const CostModelOptions& options) {
  // Ctors SLB_CHECK their invariants; the factory returns InvalidArgument so
  // sweeps can report bad cells. `!(x > 0)` also rejects NaN knobs.
  if (options.num_keys < 1) {
    return Status::InvalidArgument("cost model needs at least 1 key");
  }
  if (name == "unit") {
    return {std::make_unique<UnitCostModel>(options)};
  }
  if (name == "pareto") {
    if (!(options.pareto_tail_index > 0.0)) {
      return Status::InvalidArgument("pareto_tail_index must be positive");
    }
    if (!(options.pareto_scale > 0.0)) {
      return Status::InvalidArgument("pareto_scale must be positive");
    }
    return {std::make_unique<ParetoCostModel>(options)};
  }
  if (name == "correlated" || name == "anti-correlated") {
    if (!(options.cost_correlation >= -1.0 &&
          options.cost_correlation <= 1.0)) {
      return Status::InvalidArgument("cost_correlation must be in [-1, 1]");
    }
    if (!(options.max_cost >= 1.0)) {
      return Status::InvalidArgument("max_cost must be >= 1");
    }
    return {std::make_unique<RankCorrelatedCostModel>(
        options, /*anti=*/name == "anti-correlated")};
  }
  return Status::InvalidArgument("unknown cost model: " + name);
}

}  // namespace slb
