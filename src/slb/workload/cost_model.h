// Heterogeneous per-key service-cost catalog (ROADMAP item 2).
//
// Every scenario in the workload catalog prices messages implicitly at unit
// cost, so frequency and load coincide and the paper's imbalance metric
// tells the whole story. The models here break that tie: a CostModel prices
// each key deterministically from (options, key), making "how often does a
// key arrive" and "how much work does it bring" independent axes. Costs are
// pure per-key functions — senders, the ground-truth tracker, and the
// mis-rank analysis all evaluate the same oracle independently (and
// concurrently) and must agree byte-for-byte.
//
//   Name              Shape
//   unit              1.0 for every key (the paper's implicit model)
//   pareto            heavy-tailed i.i.d. cost, independent of frequency
//   correlated        expensive keys are the FREQUENT ones (rank-aligned;
//                     the catalog's Zipf streams put rank 0 hottest)
//   anti-correlated   expensive keys are the RARE ones — the adversarial
//                     case where frequency sketches mis-rank the true load
//
// Mirrors the scenario catalog: every model is reachable by name through
// MakeCostModel(), enumerable via CostModelNames(), and machine-checked by
// tests/workload/cost_model_harness.{h,cc} (same-seed determinism, Reset
// round-trip, positivity, per-model shape predicate), whose completeness
// test fails CI when the two registries diverge.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/status.h"
#include "slb/core/partitioner.h"

namespace slb {

/// Knobs shared by the catalog. Model-specific fields are ignored by models
/// that do not use them; MakeCostModel validates the ones it reads.
struct CostModelOptions {
  /// Keys the model prices. Rank-aligned models read the key index as its
  /// frequency rank (rank 0 = hottest, matching the catalog's Zipf streams);
  /// the simulator overwrites this with the stream's key count.
  uint64_t num_keys = 10000;
  uint64_t seed = 42;

  // --- pareto --------------------------------------------------------------
  /// Tail index alpha (smaller = heavier tail). Must be > 0; the default
  /// keeps the mean finite while the top keys cost ~100x the median.
  double pareto_tail_index = 1.6;
  /// Scale x_m: the minimum cost. Must be > 0.
  double pareto_scale = 1.0;

  // --- correlated / anti-correlated ----------------------------------------
  /// Mixing weight of the rank-aligned component vs seeded per-key noise;
  /// |cost_correlation| is used. Must be in [-1, 1].
  double cost_correlation = 0.9;
  /// Cost of the most favoured rank; rank-aligned costs span [1, max_cost].
  /// Must be >= 1.
  double max_cost = 32.0;
};

/// A seeded per-key service-cost generator. CostOf must be a pure function
/// of (options, key) — see KeyCostFunction for why.
class CostModel : public KeyCostFunction {
 public:
  explicit CostModel(const CostModelOptions& options);

  /// Generator-contract parity with the scenario catalog. Catalog models
  /// derive every cost statelessly from (seed, key), so Reset() is a no-op —
  /// but it is part of the contract and the harness round-trips it.
  virtual void Reset() {}
  virtual std::string name() const = 0;

  uint64_t num_keys() const { return options_.num_keys; }
  const CostModelOptions& options() const { return options_; }

  /// Mean of CostOf over the whole key space (exact enumeration). Benches
  /// derive completion rates from it (rate ~ mean arrival work / workers).
  double MeanCost() const;

 protected:
  /// Per-key uniform draw in (0, 1], a pure function of (seed, key).
  double KeyUniform(uint64_t key) const;

  CostModelOptions options_;

 private:
  uint64_t seed_mix_;  // Mix64 of the seed, folded into every key draw
};

/// "unit" — every message costs 1.0; count and cost signals coincide (the
/// control cell of every cost sweep).
class UnitCostModel final : public CostModel {
 public:
  explicit UnitCostModel(const CostModelOptions& options);
  double CostOf(uint64_t /*key*/) const override { return 1.0; }
  std::string name() const override { return "unit"; }
};

/// "pareto" — i.i.d. heavy-tailed cost per key via the inverse CDF
/// scale * u^(-1/alpha), independent of the key's frequency rank.
class ParetoCostModel final : public CostModel {
 public:
  explicit ParetoCostModel(const CostModelOptions& options);
  double CostOf(uint64_t key) const override;
  std::string name() const override { return "pareto"; }
};

/// "correlated" / "anti-correlated" — cost aligned with the key's frequency
/// rank: cost = 1 + (max_cost - 1) * (|rho| * base + (1 - |rho|) * noise),
/// where base decreases with the key index for the correlated model (hot =
/// expensive) and increases for the anti-correlated one (cold = expensive).
class RankCorrelatedCostModel final : public CostModel {
 public:
  RankCorrelatedCostModel(const CostModelOptions& options, bool anti);
  double CostOf(uint64_t key) const override;
  std::string name() const override {
    return anti_ ? "anti-correlated" : "correlated";
  }

 private:
  bool anti_;
};

/// All catalog names accepted by MakeCostModel, in stable order.
std::vector<std::string> CostModelNames();

/// Builds a cost model by name ("unit", "pareto", "correlated",
/// "anti-correlated"). Returns InvalidArgument for unknown names or
/// out-of-range knobs (non-positive tail index or scale, correlation
/// outside [-1, 1], max_cost < 1, zero keys).
Result<std::unique_ptr<CostModel>> MakeCostModel(
    const std::string& name, const CostModelOptions& options = {});

}  // namespace slb
