// Adversarial workload scenario catalog.
//
// The paper's evaluation sticks to static Zipf streams plus the mild CT
// concept drift; the failure modes that matter at scale (AutoFlow,
// arXiv:2103.08888; PKG, arXiv:1510.07623) come from *dynamics*: keys that
// were cold suddenly dominating, hot sets migrating faster than sketches
// decay, and tenants with wildly different skews sharing one stream. Each
// generator here is a fully-seeded, Reset()-able StreamGenerator that
// stresses one such failure mode, and every one is reachable by name through
// MakeScenario() so sweeps and tools can enumerate the whole catalog.
//
//   Name              Stresses
//   zipf              baseline static skew (SyntheticStreamGenerator)
//   drift             slow identity churn (the CT model)
//   flash-crowd       a cold key spikes to p% of traffic for a window
//   hot-set-churn     the hot set rotates wholesale every epoch
//   multi-tenant      interleaved Zipf streams with distinct exponents
//   single-key-ramp   one key ramps linearly from ~0 to p% of traffic

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/rng.h"
#include "slb/common/status.h"
#include "slb/workload/stream_generator.h"
#include "slb/workload/zipf.h"

namespace slb {

/// Knobs shared by the catalog. Scenario-specific fields are ignored by
/// scenarios that do not use them; MakeScenario validates the ones it reads.
struct ScenarioOptions {
  uint64_t num_keys = 10000;
  uint64_t num_messages = 1000000;
  uint64_t seed = 42;

  /// Base / background Zipf exponent.
  double zipf_exponent = 1.0;

  // --- flash-crowd -------------------------------------------------------
  /// Traffic share the bursting key receives while the burst is active.
  double burst_fraction = 0.4;
  /// Burst window as fractions of the stream, [begin, end).
  double burst_begin = 0.4;
  double burst_end = 0.6;

  // --- hot-set-churn -----------------------------------------------------
  /// Keys in the rotating hot set.
  uint64_t hot_set_size = 8;
  /// Traffic share of the hot set (split uniformly inside it).
  double hot_fraction = 0.6;
  /// Epochs for hot-set-churn / drift; the hot set rotates to a fresh,
  /// disjoint window of the key space at every boundary.
  uint64_t num_epochs = 10;

  // --- multi-tenant ------------------------------------------------------
  /// One Zipf exponent per tenant; tenants own disjoint key ranges and are
  /// interleaved round-robin (message i belongs to tenant i % T).
  std::vector<double> tenant_exponents = {0.6, 1.1, 1.6};

  // --- single-key-ramp ---------------------------------------------------
  /// Traffic share of the ramping key at the very end of the stream.
  double ramp_final_fraction = 0.5;

  // --- drift -------------------------------------------------------------
  /// Fraction of key identities reshuffled per epoch (see DriftingKeyMapper).
  double drift_swap_fraction = 0.1;
};

/// Flash crowd: a base Zipf stream in which the *coldest* key (rank K-1)
/// spikes to `burst_fraction` of traffic for the window
/// [burst_begin, burst_end) of the stream, then vanishes again. Stresses
/// reaction time: the key is far outside any head sketch when it ignites.
class FlashCrowdStreamGenerator final : public StreamGenerator {
 public:
  explicit FlashCrowdStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "flash-crowd"; }

  uint64_t burst_key() const { return options_.num_keys - 1; }
  /// True while message index `position` falls inside the burst window.
  bool InBurstWindow(uint64_t position) const;

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t burst_first_;  // first message index inside the window
  uint64_t burst_last_;   // one past the last message index inside it
};

/// Rotating hot set: `hot_set_size` keys share `hot_fraction` of the traffic
/// uniformly; at every epoch boundary the set rotates to the next disjoint
/// window of the key space, so *every* hot identity is replaced at once —
/// the worst case for sketches that age out slowly. Background traffic is
/// Zipf over the full key space.
class HotSetChurnStreamGenerator final : public StreamGenerator {
 public:
  explicit HotSetChurnStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "hot-set-churn"; }

  /// First key of the hot window active during `epoch`.
  uint64_t HotSetStart(uint64_t epoch) const;
  uint64_t current_epoch() const { return epoch_; }

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t epoch_ = 0;
  uint64_t epoch_length_;
};

/// Multi-tenant mixture: T tenants with distinct Zipf exponents own disjoint
/// key ranges of floor(K / T) keys each; message i belongs to tenant i % T.
/// Stresses head tracking with several unrelated skew regimes in one stream.
class MultiTenantStreamGenerator final : public StreamGenerator {
 public:
  explicit MultiTenantStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  /// Keys actually reachable: floor(K / T) * T.
  uint64_t num_keys() const override;
  std::string name() const override { return "multi-tenant"; }

  uint64_t num_tenants() const { return tenants_.size(); }
  uint64_t keys_per_tenant() const { return keys_per_tenant_; }

 private:
  ScenarioOptions options_;
  std::vector<ZipfDistribution> tenants_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t keys_per_tenant_;
};

/// Adversarial ramp: the coldest key's traffic share grows linearly from 0
/// to `ramp_final_fraction` over the stream. There is no burst edge to
/// detect — the key crosses the head threshold silently mid-stream, which is
/// exactly where threshold-based head classification lags.
class SingleKeyRampStreamGenerator final : public StreamGenerator {
 public:
  explicit SingleKeyRampStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "single-key-ramp"; }

  uint64_t ramp_key() const { return options_.num_keys - 1; }
  /// Hot-key probability at message index `position`.
  double RampShare(uint64_t position) const;

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
};

/// All catalog names accepted by MakeScenario, in stable order.
std::vector<std::string> ScenarioNames();

/// Builds a catalog scenario by name ("zipf", "drift", "flash-crowd",
/// "hot-set-churn", "multi-tenant", "single-key-ramp"). Returns
/// InvalidArgument for unknown names or out-of-range knobs.
Result<std::unique_ptr<StreamGenerator>> MakeScenario(
    const std::string& name, const ScenarioOptions& options = {});

}  // namespace slb
