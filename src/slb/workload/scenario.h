// Adversarial workload scenario catalog.
//
// The paper's evaluation sticks to static Zipf streams plus the mild CT
// concept drift; the failure modes that matter at scale (AutoFlow,
// arXiv:2103.08888; PKG, arXiv:1510.07623) come from *dynamics*: keys that
// were cold suddenly dominating, hot sets migrating faster than sketches
// decay, and tenants with wildly different skews sharing one stream. Each
// generator here is a fully-seeded, Reset()-able StreamGenerator that
// stresses one such failure mode, and every one is reachable by name through
// MakeScenario() so sweeps and tools can enumerate the whole catalog.
//
//   Name              Stresses
//   zipf              baseline static skew (SyntheticStreamGenerator)
//   drift             slow identity churn (the CT model)
//   flash-crowd       a cold key spikes to p% of traffic for a window
//   hot-set-churn     the hot set rotates wholesale every epoch
//   multi-tenant      interleaved Zipf streams with distinct exponents
//   single-key-ramp   one key ramps linearly from ~0 to p% of traffic
//   correlated-burst  a GROUP of cold keys ignites together for a window
//   diurnal           sinusoidal intensity curves over tenant-like key bands
//   key-space-growth  fresh keys keep arriving; the head is a moving target
//   replay-with-noise wraps any base scenario with seeded key + order noise
//   scale-out-under-flash-crowd  load grows past capacity mid-stream (the
//                     workload that motivates an elastic scale-OUT event)
//   scale-in-during-drift  the live key space shrinks while identities
//                     drift (the workload that motivates a scale-IN event)
//
// Every generator must pass the catalog-wide property-test harness
// (tests/workload/scenario_harness.h): golden-seed determinism, Reset
// round-trip byte-equality, message-count exactness, key-range containment,
// and a per-scenario shape predicate. The harness enumerates
// ScenarioNames(), so a generator registered here without a harness entry
// fails the completeness test.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/rng.h"
#include "slb/common/status.h"
#include "slb/workload/stream_generator.h"
#include "slb/workload/zipf.h"

namespace slb {

/// Knobs shared by the catalog. Scenario-specific fields are ignored by
/// scenarios that do not use them; MakeScenario validates the ones it reads.
struct ScenarioOptions {
  uint64_t num_keys = 10000;
  uint64_t num_messages = 1000000;
  uint64_t seed = 42;

  /// Base / background Zipf exponent.
  double zipf_exponent = 1.0;

  // --- flash-crowd -------------------------------------------------------
  /// Traffic share the bursting key receives while the burst is active.
  double burst_fraction = 0.4;
  /// Burst window as fractions of the stream, [begin, end).
  double burst_begin = 0.4;
  double burst_end = 0.6;

  // --- hot-set-churn -----------------------------------------------------
  /// Keys in the rotating hot set.
  uint64_t hot_set_size = 8;
  /// Traffic share of the hot set (split uniformly inside it).
  double hot_fraction = 0.6;
  /// Epochs for hot-set-churn / drift; the hot set rotates to a fresh,
  /// disjoint window of the key space at every boundary.
  uint64_t num_epochs = 10;

  // --- multi-tenant ------------------------------------------------------
  /// One Zipf exponent per tenant; tenants own disjoint key ranges and are
  /// interleaved round-robin (message i belongs to tenant i % T).
  std::vector<double> tenant_exponents = {0.6, 1.1, 1.6};

  // --- single-key-ramp ---------------------------------------------------
  /// Traffic share of the ramping key at the very end of the stream.
  double ramp_final_fraction = 0.5;

  // --- drift -------------------------------------------------------------
  /// Fraction of key identities reshuffled per epoch (see DriftingKeyMapper).
  double drift_swap_fraction = 0.1;

  // --- correlated-burst ----------------------------------------------------
  /// Keys in the bursting group: the coldest `burst_group_size` ranks ignite
  /// *together* during the [burst_begin, burst_end) window, splitting
  /// `burst_fraction` of traffic uniformly. Must be in [1, num_keys].
  uint64_t burst_group_size = 16;

  // --- diurnal -------------------------------------------------------------
  /// Messages per full sinusoidal intensity cycle. Must be >= 2.
  uint64_t diurnal_period = 5000;
  /// Tenant-like key bands, each with a phase-shifted intensity curve.
  /// Must be in [1, num_keys].
  uint64_t diurnal_num_bands = 4;
  /// Peak-to-mean swing of each band's intensity, in [0, 1].
  double diurnal_amplitude = 0.8;

  // --- key-space-growth ----------------------------------------------------
  /// Fraction of the key space live at stream start, in (0, 1].
  double growth_initial_fraction = 0.1;
  /// Per-message probability that a fresh key joins the live set. Must be
  /// in [0, 1): a rate of 1 would make every message a fresh key.
  double growth_rate = 0.05;

  // --- scale-in-during-drift -----------------------------------------------
  /// Fraction of the key space still live in the final epoch, in (0, 1].
  double shrink_final_fraction = 0.3;

  // --- replay-with-noise ---------------------------------------------------
  /// Catalog name of the base scenario being replayed (any name except
  /// "replay-with-noise" itself).
  std::string replay_base = "zipf";
  /// Probability a replayed key is replaced by a uniform random key, [0, 1].
  double noise_rate = 0.05;
  /// Local-reorder window: keys are emitted from a sliding buffer of this
  /// size, perturbing local ordering while preserving composition. Must be
  /// >= 1 (1 = no reordering).
  uint64_t noise_window = 16;
};

/// Flash crowd: a base Zipf stream in which the *coldest* key (rank K-1)
/// spikes to `burst_fraction` of traffic for the window
/// [burst_begin, burst_end) of the stream, then vanishes again. Stresses
/// reaction time: the key is far outside any head sketch when it ignites.
class FlashCrowdStreamGenerator final : public StreamGenerator {
 public:
  explicit FlashCrowdStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "flash-crowd"; }

  uint64_t burst_key() const { return options_.num_keys - 1; }
  /// True while message index `position` falls inside the burst window.
  bool InBurstWindow(uint64_t position) const;

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t burst_first_;  // first message index inside the window
  uint64_t burst_last_;   // one past the last message index inside it
};

/// Rotating hot set: `hot_set_size` keys share `hot_fraction` of the traffic
/// uniformly; at every epoch boundary the set rotates to the next disjoint
/// window of the key space, so *every* hot identity is replaced at once —
/// the worst case for sketches that age out slowly. Background traffic is
/// Zipf over the full key space.
class HotSetChurnStreamGenerator final : public StreamGenerator {
 public:
  explicit HotSetChurnStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "hot-set-churn"; }

  /// First key of the hot window active during `epoch`.
  uint64_t HotSetStart(uint64_t epoch) const;
  uint64_t current_epoch() const { return epoch_; }

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t epoch_ = 0;
  uint64_t epoch_length_;
};

/// Multi-tenant mixture: T tenants with distinct Zipf exponents own disjoint
/// key ranges of floor(K / T) keys each; message i belongs to tenant i % T.
/// Stresses head tracking with several unrelated skew regimes in one stream.
class MultiTenantStreamGenerator final : public StreamGenerator {
 public:
  explicit MultiTenantStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  /// Keys actually reachable: floor(K / T) * T.
  uint64_t num_keys() const override;
  std::string name() const override { return "multi-tenant"; }

  uint64_t num_tenants() const { return tenants_.size(); }
  uint64_t keys_per_tenant() const { return keys_per_tenant_; }

 private:
  ScenarioOptions options_;
  std::vector<ZipfDistribution> tenants_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t keys_per_tenant_;
};

/// Adversarial ramp: the coldest key's traffic share grows linearly from 0
/// to `ramp_final_fraction` over the stream. There is no burst edge to
/// detect — the key crosses the head threshold silently mid-stream, which is
/// exactly where threshold-based head classification lags.
class SingleKeyRampStreamGenerator final : public StreamGenerator {
 public:
  explicit SingleKeyRampStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "single-key-ramp"; }

  uint64_t ramp_key() const { return options_.num_keys - 1; }
  /// Hot-key probability at message index `position`.
  double RampShare(uint64_t position) const;

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
};

/// Correlated burst: the coldest `burst_group_size` keys ignite *together*
/// for the [burst_begin, burst_end) window, splitting `burst_fraction` of
/// traffic uniformly. Where flash-crowd stresses single-key reaction time,
/// this stresses the sketch's capacity headroom: a whole group of previously
/// unmonitored keys must enter the head at once, evicting each other while
/// they climb.
class CorrelatedBurstStreamGenerator final : public StreamGenerator {
 public:
  explicit CorrelatedBurstStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "correlated-burst"; }

  /// First key of the bursting group (the group is [start, start + size)).
  uint64_t group_start() const {
    return options_.num_keys - options_.burst_group_size;
  }
  uint64_t group_size() const { return options_.burst_group_size; }
  /// True while message index `position` falls inside the burst window.
  bool InBurstWindow(uint64_t position) const;

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t burst_first_;  // first message index inside the window
  uint64_t burst_last_;   // one past the last message index inside it
};

/// Diurnal load curve: `diurnal_num_bands` tenant-like key bands own disjoint
/// key ranges; band b's share of each message is proportional to the
/// phase-shifted sinusoid 1 + amplitude * sin(2*pi*(t/period + b/B)). The
/// per-epoch message *mix* therefore rotates smoothly through the bands —
/// every band's head keys wax and wane on the cycle, so a sketch tuned for
/// one phase is mis-tuned half a period later.
class DiurnalStreamGenerator final : public StreamGenerator {
 public:
  explicit DiurnalStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  /// Keys actually reachable: floor(K / B) * B.
  uint64_t num_keys() const override;
  std::string name() const override { return "diurnal"; }

  uint64_t num_bands() const { return options_.diurnal_num_bands; }
  uint64_t keys_per_band() const { return keys_per_band_; }
  uint64_t period() const { return options_.diurnal_period; }
  /// Band b's (unnormalized) intensity at message index `position`.
  double BandIntensity(uint64_t band, uint64_t position) const;

 private:
  /// Recomputes the cumulative band weights for the phase slot containing
  /// `position` (weights are piecewise-constant over kPhaseSlots per cycle).
  void RefreshWeights(uint64_t position);

  static constexpr uint64_t kPhaseSlots = 64;

  ScenarioOptions options_;
  ZipfDistribution band_zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t keys_per_band_;
  uint64_t slot_ = ~uint64_t{0};           // phase slot of cached weights
  std::vector<double> cumulative_weight_;  // per-band, ascending
};

/// Key-space growth: only `growth_initial_fraction` of the key space exists
/// at stream start; fresh keys arrive at `growth_rate` per message, and the
/// Zipf head is anchored at the *newest* live key — rank 0 is the most
/// recent arrival, so the heavy hitters are by construction keys no sketch
/// has seen before. Stresses head tracking with a permanently moving target
/// (the AutoFlow hotspot-migration regime).
class KeySpaceGrowthStreamGenerator final : public StreamGenerator {
 public:
  explicit KeySpaceGrowthStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "key-space-growth"; }

  /// Keys live at stream start.
  uint64_t initial_live_keys() const { return initial_live_; }
  /// Keys live right now (monotone non-decreasing as the stream advances).
  uint64_t live_keys() const { return live_; }

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t initial_live_;
  uint64_t live_;
};

/// Replay with noise: wraps any base catalog scenario, emitting its key
/// sequence through a sliding `noise_window` buffer (seeded local-order
/// perturbation) and replacing each emitted key with a uniform random key
/// with probability `noise_rate`. Composition is preserved up to the noise
/// rate, ordering only locally — the trace-perturbation robustness check:
/// any conclusion that flips under small noise was overfit to one trace.
class ReplayWithNoiseStreamGenerator final : public StreamGenerator {
 public:
  /// `base` supplies the replayed stream; it is owned and Reset() by the
  /// wrapper. MakeScenario builds it from `options.replay_base`.
  ReplayWithNoiseStreamGenerator(const ScenarioOptions& options,
                                 std::unique_ptr<StreamGenerator> base);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return base_->num_messages(); }
  uint64_t num_keys() const override { return base_->num_keys(); }
  std::string name() const override { return "replay-with-noise"; }

  const StreamGenerator& base() const { return *base_; }
  double noise_rate() const { return options_.noise_rate; }

 private:
  void FillWindow();

  ScenarioOptions options_;
  std::unique_ptr<StreamGenerator> base_;
  Rng rng_;
  std::vector<uint64_t> window_;
  uint64_t pulled_ = 0;  // keys drawn from base_ so far this pass
};

/// Scale-out companion workload: total hot traffic GROWS mid-stream and
/// stays grown. The coldest `burst_group_size` keys ignite together at
/// `burst_begin`, taking burst_fraction/2 of traffic instantly, then ramp
/// linearly to the full `burst_fraction` by stream end. Unlike flash-crowd
/// the load never recedes — the sustained growth is what justifies adding
/// workers mid-stream, so this is the canonical stream for scale-out
/// rescale schedules (bench_elastic_rescale pairs it with a worker-add
/// event inside the ignition window).
class ScaleOutFlashCrowdStreamGenerator final : public StreamGenerator {
 public:
  explicit ScaleOutFlashCrowdStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "scale-out-under-flash-crowd"; }

  /// First key of the igniting group (the group is [start, start + size)).
  uint64_t group_start() const {
    return options_.num_keys - options_.burst_group_size;
  }
  uint64_t group_size() const { return options_.burst_group_size; }
  /// Group traffic share at message index `position`: 0 before ignition,
  /// burst_fraction/2 at ignition, burst_fraction at stream end.
  double BurstShare(uint64_t position) const;

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t burst_first_;  // first message index with the group ignited
};

/// Scale-in companion workload: the live key space SHRINKS while identities
/// drift. The live prefix contracts linearly from the full key space to
/// `shrink_final_fraction` of it across `num_epochs` epochs, and each epoch
/// rotates the Zipf head by ceil(drift_swap_fraction * live) identities —
/// so the stream both needs fewer workers over time (the scale-in trigger)
/// and keeps moving its hot keys (the hard case for migrating state off
/// the workers being retired).
class ScaleInDriftStreamGenerator final : public StreamGenerator {
 public:
  explicit ScaleInDriftStreamGenerator(const ScenarioOptions& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return "scale-in-during-drift"; }

  /// Keys live during `epoch`: linear from num_keys (epoch 0) down to
  /// shrink_final_fraction * num_keys (last epoch), floored at 2.
  uint64_t LiveKeys(uint64_t epoch) const;
  uint64_t current_epoch() const { return epoch_; }

 private:
  ScenarioOptions options_;
  ZipfDistribution zipf_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t epoch_ = 0;
  uint64_t epoch_length_;
};

/// All catalog names accepted by MakeScenario, in stable order.
std::vector<std::string> ScenarioNames();

/// Builds a catalog scenario by name ("zipf", "drift", "flash-crowd",
/// "hot-set-churn", "multi-tenant", "single-key-ramp", "correlated-burst",
/// "diurnal", "key-space-growth", "replay-with-noise",
/// "scale-out-under-flash-crowd", "scale-in-during-drift"). Returns
/// InvalidArgument for unknown names or out-of-range knobs.
Result<std::unique_ptr<StreamGenerator>> MakeScenario(
    const std::string& name, const ScenarioOptions& options = {});

}  // namespace slb
