#include "slb/workload/scenario.h"

#include <algorithm>
#include <cmath>

#include "slb/common/logging.h"

namespace slb {

namespace {

// Salt for the replay-with-noise wrapper's own Rng: the base scenario is
// built from the SAME options.seed, so the wrapper must not reuse the raw
// seed or its noise draws would be correlated with the base stream.
constexpr uint64_t kNoiseSeedSalt = 0x7e91abc5f00dULL;

// Shared knob validation for the factory. Constructors SLB_CHECK the same
// invariants (direct construction with bad knobs is a programmer error);
// the factory returns InvalidArgument so sweeps can report bad cells.
Status ValidateCommon(const ScenarioOptions& options) {
  if (options.num_keys < 2) {
    return Status::InvalidArgument("scenario needs at least 2 keys");
  }
  if (options.num_messages < 1) {
    return Status::InvalidArgument("scenario needs at least 1 message");
  }
  if (options.zipf_exponent < 0.0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }
  return Status::OK();
}

bool IsFraction(double value) { return value >= 0.0 && value <= 1.0; }

}  // namespace

// --- flash-crowd ----------------------------------------------------------

FlashCrowdStreamGenerator::FlashCrowdStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(IsFraction(options_.burst_fraction));
  SLB_CHECK(IsFraction(options_.burst_begin));
  SLB_CHECK(IsFraction(options_.burst_end));
  SLB_CHECK(options_.burst_begin <= options_.burst_end);
  const double m = static_cast<double>(options_.num_messages);
  burst_first_ = static_cast<uint64_t>(options_.burst_begin * m);
  burst_last_ = static_cast<uint64_t>(options_.burst_end * m);
}

bool FlashCrowdStreamGenerator::InBurstWindow(uint64_t position) const {
  return position >= burst_first_ && position < burst_last_;
}

uint64_t FlashCrowdStreamGenerator::NextKey() {
  const bool burning = InBurstWindow(position_);
  ++position_;
  if (burning && rng_.NextBool(options_.burst_fraction)) return burst_key();
  return zipf_.Sample(&rng_);
}

void FlashCrowdStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- hot-set-churn --------------------------------------------------------

HotSetChurnStreamGenerator::HotSetChurnStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(options_.num_epochs >= 1);
  SLB_CHECK(options_.hot_set_size >= 1);
  SLB_CHECK(options_.hot_set_size <= options_.num_keys);
  SLB_CHECK(IsFraction(options_.hot_fraction));
  epoch_length_ =
      std::max<uint64_t>(1, options_.num_messages / options_.num_epochs);
}

uint64_t HotSetChurnStreamGenerator::HotSetStart(uint64_t epoch) const {
  // Offset by K/2 so epoch 0's hot window does not coincide with the Zipf
  // head of the background traffic; advance by one full window per epoch so
  // successive hot sets are disjoint (until the key space wraps).
  return (options_.num_keys / 2 + epoch * options_.hot_set_size) %
         options_.num_keys;
}

uint64_t HotSetChurnStreamGenerator::NextKey() {
  epoch_ = std::min(position_ / epoch_length_, options_.num_epochs - 1);
  ++position_;
  if (rng_.NextBool(options_.hot_fraction)) {
    const uint64_t start = HotSetStart(epoch_);
    return (start + rng_.NextBounded(options_.hot_set_size)) %
           options_.num_keys;
  }
  return zipf_.Sample(&rng_);
}

void HotSetChurnStreamGenerator::Reset() {
  position_ = 0;
  epoch_ = 0;
  rng_.Seed(options_.seed);
}

// --- multi-tenant ---------------------------------------------------------

MultiTenantStreamGenerator::MultiTenantStreamGenerator(
    const ScenarioOptions& options)
    : options_(options), rng_(options.seed) {
  SLB_CHECK(!options_.tenant_exponents.empty());
  SLB_CHECK(options_.num_keys >= options_.tenant_exponents.size());
  SLB_CHECK(options_.num_messages >= 1);
  keys_per_tenant_ = options_.num_keys / options_.tenant_exponents.size();
  tenants_.reserve(options_.tenant_exponents.size());
  for (double z : options_.tenant_exponents) {
    SLB_CHECK(z >= 0.0);
    tenants_.emplace_back(z, keys_per_tenant_);
  }
}

uint64_t MultiTenantStreamGenerator::num_keys() const {
  return keys_per_tenant_ * tenants_.size();
}

uint64_t MultiTenantStreamGenerator::NextKey() {
  const uint64_t tenant = position_ % tenants_.size();
  ++position_;
  return tenant * keys_per_tenant_ + tenants_[tenant].Sample(&rng_);
}

void MultiTenantStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- single-key-ramp ------------------------------------------------------

SingleKeyRampStreamGenerator::SingleKeyRampStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(IsFraction(options_.ramp_final_fraction));
}

double SingleKeyRampStreamGenerator::RampShare(uint64_t position) const {
  return options_.ramp_final_fraction * static_cast<double>(position) /
         static_cast<double>(options_.num_messages);
}

uint64_t SingleKeyRampStreamGenerator::NextKey() {
  const double share = RampShare(position_);
  ++position_;
  if (rng_.NextBool(share)) return ramp_key();
  return zipf_.Sample(&rng_);
}

void SingleKeyRampStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- correlated-burst -----------------------------------------------------

CorrelatedBurstStreamGenerator::CorrelatedBurstStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(IsFraction(options_.burst_fraction));
  SLB_CHECK(IsFraction(options_.burst_begin));
  SLB_CHECK(IsFraction(options_.burst_end));
  SLB_CHECK(options_.burst_begin <= options_.burst_end);
  SLB_CHECK(options_.burst_group_size >= 1);
  SLB_CHECK(options_.burst_group_size <= options_.num_keys);
  const double m = static_cast<double>(options_.num_messages);
  burst_first_ = static_cast<uint64_t>(options_.burst_begin * m);
  burst_last_ = static_cast<uint64_t>(options_.burst_end * m);
}

bool CorrelatedBurstStreamGenerator::InBurstWindow(uint64_t position) const {
  return position >= burst_first_ && position < burst_last_;
}

uint64_t CorrelatedBurstStreamGenerator::NextKey() {
  const bool burning = InBurstWindow(position_);
  ++position_;
  if (burning && rng_.NextBool(options_.burst_fraction)) {
    return group_start() + rng_.NextBounded(options_.burst_group_size);
  }
  return zipf_.Sample(&rng_);
}

void CorrelatedBurstStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- diurnal --------------------------------------------------------------

DiurnalStreamGenerator::DiurnalStreamGenerator(const ScenarioOptions& options)
    : options_(options),
      band_zipf_(options.zipf_exponent,
                 std::max<uint64_t>(
                     1, options.num_keys /
                            std::max<uint64_t>(1, options.diurnal_num_bands))),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(options_.diurnal_period >= 2);
  SLB_CHECK(options_.diurnal_num_bands >= 1);
  SLB_CHECK(options_.diurnal_num_bands <= options_.num_keys);
  SLB_CHECK(IsFraction(options_.diurnal_amplitude));
  keys_per_band_ = options_.num_keys / options_.diurnal_num_bands;
  cumulative_weight_.resize(options_.diurnal_num_bands, 0.0);
}

uint64_t DiurnalStreamGenerator::num_keys() const {
  return keys_per_band_ * options_.diurnal_num_bands;
}

double DiurnalStreamGenerator::BandIntensity(uint64_t band,
                                             uint64_t position) const {
  const double cycle_fraction =
      static_cast<double>(position % options_.diurnal_period) /
      static_cast<double>(options_.diurnal_period);
  const double phase =
      2.0 * M_PI *
      (cycle_fraction + static_cast<double>(band) /
                            static_cast<double>(options_.diurnal_num_bands));
  return 1.0 + options_.diurnal_amplitude * std::sin(phase);
}

void DiurnalStreamGenerator::RefreshWeights(uint64_t position) {
  // Weights are piecewise-constant over kPhaseSlots slots per cycle, so the
  // per-message cost is one slot comparison; the sines are re-evaluated only
  // at slot boundaries.
  const uint64_t slot =
      (position % options_.diurnal_period) * kPhaseSlots /
      options_.diurnal_period;
  if (slot == slot_) return;
  slot_ = slot;
  // Representative position at the slot center.
  const uint64_t slot_center =
      (2 * slot + 1) * options_.diurnal_period / (2 * kPhaseSlots);
  double cumulative = 0.0;
  for (uint64_t b = 0; b < options_.diurnal_num_bands; ++b) {
    cumulative += BandIntensity(b, slot_center);
    cumulative_weight_[b] = cumulative;
  }
}

uint64_t DiurnalStreamGenerator::NextKey() {
  RefreshWeights(position_);
  ++position_;
  const double u = rng_.NextDouble() * cumulative_weight_.back();
  uint64_t band = 0;
  while (band + 1 < options_.diurnal_num_bands &&
         u >= cumulative_weight_[band]) {
    ++band;
  }
  return band * keys_per_band_ + band_zipf_.Sample(&rng_);
}

void DiurnalStreamGenerator::Reset() {
  position_ = 0;
  slot_ = ~uint64_t{0};
  rng_.Seed(options_.seed);
}

// --- key-space-growth -----------------------------------------------------

KeySpaceGrowthStreamGenerator::KeySpaceGrowthStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(options_.growth_initial_fraction > 0.0);
  SLB_CHECK(options_.growth_initial_fraction <= 1.0);
  SLB_CHECK(options_.growth_rate >= 0.0);
  SLB_CHECK(options_.growth_rate < 1.0);
  initial_live_ = std::clamp<uint64_t>(
      static_cast<uint64_t>(options_.growth_initial_fraction *
                            static_cast<double>(options_.num_keys)),
      2, options_.num_keys);
  live_ = initial_live_;
}

uint64_t KeySpaceGrowthStreamGenerator::NextKey() {
  ++position_;
  if (live_ < options_.num_keys && rng_.NextBool(options_.growth_rate)) {
    ++live_;
  }
  // Zipf rank over the live prefix, anchored at the FRONTIER: rank 0 is the
  // newest arrival. Sampling rejects ranks beyond the live count (the Zipf
  // mass concentrates at low ranks, so a handful of tries suffice); the
  // modulo fallback keeps the draw total and the pull O(1) worst-case.
  uint64_t rank = zipf_.Sample(&rng_);
  for (int tries = 0; rank >= live_ && tries < 64; ++tries) {
    rank = zipf_.Sample(&rng_);
  }
  if (rank >= live_) rank %= live_;
  return live_ - 1 - rank;
}

void KeySpaceGrowthStreamGenerator::Reset() {
  position_ = 0;
  live_ = initial_live_;
  rng_.Seed(options_.seed);
}

// --- scale-out-under-flash-crowd ------------------------------------------

ScaleOutFlashCrowdStreamGenerator::ScaleOutFlashCrowdStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(IsFraction(options_.burst_fraction));
  SLB_CHECK(IsFraction(options_.burst_begin));
  SLB_CHECK(options_.burst_group_size >= 1);
  SLB_CHECK(options_.burst_group_size <= options_.num_keys);
  burst_first_ = static_cast<uint64_t>(
      options_.burst_begin * static_cast<double>(options_.num_messages));
}

double ScaleOutFlashCrowdStreamGenerator::BurstShare(uint64_t position) const {
  if (position < burst_first_ || options_.num_messages <= burst_first_) {
    return 0.0;
  }
  // Step to fraction/2 at ignition, then ramp linearly to the full fraction
  // at stream end: the load grows and KEEPS growing (no receding edge).
  const double progress = static_cast<double>(position - burst_first_) /
                          static_cast<double>(options_.num_messages - burst_first_);
  return options_.burst_fraction * 0.5 * (1.0 + progress);
}

uint64_t ScaleOutFlashCrowdStreamGenerator::NextKey() {
  const double share = BurstShare(position_);
  ++position_;
  if (share > 0.0 && rng_.NextBool(share)) {
    return group_start() + rng_.NextBounded(options_.burst_group_size);
  }
  return zipf_.Sample(&rng_);
}

void ScaleOutFlashCrowdStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- scale-in-during-drift ------------------------------------------------

ScaleInDriftStreamGenerator::ScaleInDriftStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(options_.num_epochs >= 1);
  SLB_CHECK(options_.shrink_final_fraction > 0.0);
  SLB_CHECK(options_.shrink_final_fraction <= 1.0);
  SLB_CHECK(IsFraction(options_.drift_swap_fraction));
  epoch_length_ =
      std::max<uint64_t>(1, options_.num_messages / options_.num_epochs);
}

uint64_t ScaleInDriftStreamGenerator::LiveKeys(uint64_t epoch) const {
  const double progress =
      options_.num_epochs <= 1
          ? 1.0
          : static_cast<double>(epoch) /
                static_cast<double>(options_.num_epochs - 1);
  const double fraction =
      1.0 - (1.0 - options_.shrink_final_fraction) * progress;
  return std::max<uint64_t>(
      2, static_cast<uint64_t>(fraction *
                               static_cast<double>(options_.num_keys)));
}

uint64_t ScaleInDriftStreamGenerator::NextKey() {
  epoch_ = std::min(position_ / epoch_length_, options_.num_epochs - 1);
  ++position_;
  const uint64_t live = LiveKeys(epoch_);
  // Zipf rank over the live prefix: reject draws past it (the mass sits at
  // low ranks, so a handful of tries suffice), modulo as the O(1) fallback.
  uint64_t rank = zipf_.Sample(&rng_);
  for (int tries = 0; rank >= live && tries < 64; ++tries) {
    rank = zipf_.Sample(&rng_);
  }
  if (rank >= live) rank %= live;
  // Per-epoch head rotation: identities shift by a drift_swap_fraction slice
  // of the live space each epoch, so the hot keys keep moving while the key
  // space contracts.
  const uint64_t rotation = static_cast<uint64_t>(
      std::ceil(options_.drift_swap_fraction * static_cast<double>(live)));
  return (rank + epoch_ * rotation) % live;
}

void ScaleInDriftStreamGenerator::Reset() {
  position_ = 0;
  epoch_ = 0;
  rng_.Seed(options_.seed);
}

// --- replay-with-noise ----------------------------------------------------

ReplayWithNoiseStreamGenerator::ReplayWithNoiseStreamGenerator(
    const ScenarioOptions& options, std::unique_ptr<StreamGenerator> base)
    : options_(options),
      base_(std::move(base)),
      rng_(options.seed ^ kNoiseSeedSalt) {
  SLB_CHECK(base_ != nullptr);
  SLB_CHECK(IsFraction(options_.noise_rate));
  SLB_CHECK(options_.noise_window >= 1);
  FillWindow();
}

void ReplayWithNoiseStreamGenerator::FillWindow() {
  window_.clear();
  const uint64_t prefill =
      std::min<uint64_t>(options_.noise_window, base_->num_messages());
  window_.reserve(prefill);
  for (uint64_t i = 0; i < prefill; ++i) window_.push_back(base_->NextKey());
  pulled_ = prefill;
}

uint64_t ReplayWithNoiseStreamGenerator::NextKey() {
  SLB_CHECK(!window_.empty()) << "pulled past num_messages(); Reset() first";
  const uint64_t slot = rng_.NextBounded(window_.size());
  uint64_t key = window_[slot];
  if (pulled_ < base_->num_messages()) {
    window_[slot] = base_->NextKey();
    ++pulled_;
  } else {
    // Base exhausted: drain the window (exactly num_messages() keys total).
    window_[slot] = window_.back();
    window_.pop_back();
  }
  if (rng_.NextBool(options_.noise_rate)) {
    key = rng_.NextBounded(num_keys());
  }
  return key;
}

void ReplayWithNoiseStreamGenerator::Reset() {
  base_->Reset();
  rng_.Seed(options_.seed ^ kNoiseSeedSalt);
  FillWindow();
}

// --- factory --------------------------------------------------------------

std::vector<std::string> ScenarioNames() {
  return {"zipf",          "drift",           "flash-crowd",
          "hot-set-churn", "multi-tenant",    "single-key-ramp",
          "correlated-burst", "diurnal",      "key-space-growth",
          "replay-with-noise", "scale-out-under-flash-crowd",
          "scale-in-during-drift"};
}

Result<std::unique_ptr<StreamGenerator>> MakeScenario(
    const std::string& name, const ScenarioOptions& options) {
  SLB_RETURN_NOT_OK(ValidateCommon(options));

  if (name == "zipf" || name == "drift") {
    SyntheticStreamGenerator::Options synth;
    synth.name = name;
    synth.zipf_exponent = options.zipf_exponent;
    synth.num_keys = options.num_keys;
    synth.num_messages = options.num_messages;
    synth.seed = options.seed;
    if (name == "drift") {
      if (options.num_epochs < 1) {
        return Status::InvalidArgument("drift needs num_epochs >= 1");
      }
      if (!IsFraction(options.drift_swap_fraction)) {
        return Status::InvalidArgument("drift_swap_fraction must be in [0,1]");
      }
      synth.num_epochs = options.num_epochs;
      synth.drift_swap_fraction = options.drift_swap_fraction;
    }
    return {std::make_unique<SyntheticStreamGenerator>(synth)};
  }
  if (name == "flash-crowd") {
    if (!IsFraction(options.burst_fraction)) {
      return Status::InvalidArgument("burst_fraction must be in [0,1]");
    }
    if (!IsFraction(options.burst_begin) || !IsFraction(options.burst_end) ||
        options.burst_begin > options.burst_end) {
      return Status::InvalidArgument(
          "burst window must satisfy 0 <= begin <= end <= 1");
    }
    return {std::make_unique<FlashCrowdStreamGenerator>(options)};
  }
  if (name == "hot-set-churn") {
    if (options.hot_set_size < 1 || options.hot_set_size > options.num_keys) {
      return Status::InvalidArgument("hot_set_size must be in [1, num_keys]");
    }
    if (!IsFraction(options.hot_fraction)) {
      return Status::InvalidArgument("hot_fraction must be in [0,1]");
    }
    if (options.num_epochs < 1) {
      return Status::InvalidArgument("hot-set-churn needs num_epochs >= 1");
    }
    return {std::make_unique<HotSetChurnStreamGenerator>(options)};
  }
  if (name == "multi-tenant") {
    if (options.tenant_exponents.empty()) {
      return Status::InvalidArgument("multi-tenant needs >= 1 tenant");
    }
    if (options.num_keys < options.tenant_exponents.size()) {
      return Status::InvalidArgument("multi-tenant needs num_keys >= tenants");
    }
    for (double z : options.tenant_exponents) {
      if (z < 0.0) {
        return Status::InvalidArgument("tenant exponents must be >= 0");
      }
    }
    return {std::make_unique<MultiTenantStreamGenerator>(options)};
  }
  if (name == "single-key-ramp") {
    if (!IsFraction(options.ramp_final_fraction)) {
      return Status::InvalidArgument("ramp_final_fraction must be in [0,1]");
    }
    return {std::make_unique<SingleKeyRampStreamGenerator>(options)};
  }
  if (name == "correlated-burst") {
    if (!IsFraction(options.burst_fraction)) {
      return Status::InvalidArgument("burst_fraction must be in [0,1]");
    }
    if (!IsFraction(options.burst_begin) || !IsFraction(options.burst_end) ||
        options.burst_begin > options.burst_end) {
      return Status::InvalidArgument(
          "burst window must satisfy 0 <= begin <= end <= 1");
    }
    if (options.burst_group_size < 1 ||
        options.burst_group_size > options.num_keys) {
      return Status::InvalidArgument(
          "burst_group_size must be in [1, num_keys]");
    }
    return {std::make_unique<CorrelatedBurstStreamGenerator>(options)};
  }
  if (name == "diurnal") {
    if (options.diurnal_period < 2) {
      return Status::InvalidArgument("diurnal_period must be >= 2 messages");
    }
    if (options.diurnal_num_bands < 1 ||
        options.diurnal_num_bands > options.num_keys) {
      return Status::InvalidArgument(
          "diurnal_num_bands must be in [1, num_keys]");
    }
    if (!IsFraction(options.diurnal_amplitude)) {
      return Status::InvalidArgument("diurnal_amplitude must be in [0,1]");
    }
    return {std::make_unique<DiurnalStreamGenerator>(options)};
  }
  if (name == "key-space-growth") {
    if (options.growth_initial_fraction <= 0.0 ||
        options.growth_initial_fraction > 1.0) {
      return Status::InvalidArgument(
          "growth_initial_fraction must be in (0,1]");
    }
    if (options.growth_rate < 0.0 || options.growth_rate >= 1.0) {
      return Status::InvalidArgument("growth_rate must be in [0,1)");
    }
    return {std::make_unique<KeySpaceGrowthStreamGenerator>(options)};
  }
  if (name == "scale-out-under-flash-crowd") {
    if (!IsFraction(options.burst_fraction)) {
      return Status::InvalidArgument("burst_fraction must be in [0,1]");
    }
    if (!IsFraction(options.burst_begin)) {
      return Status::InvalidArgument("burst_begin must be in [0,1]");
    }
    if (options.burst_group_size < 1 ||
        options.burst_group_size > options.num_keys) {
      return Status::InvalidArgument(
          "burst_group_size must be in [1, num_keys]");
    }
    return {std::make_unique<ScaleOutFlashCrowdStreamGenerator>(options)};
  }
  if (name == "scale-in-during-drift") {
    if (options.num_epochs < 1) {
      return Status::InvalidArgument(
          "scale-in-during-drift needs num_epochs >= 1");
    }
    if (options.shrink_final_fraction <= 0.0 ||
        options.shrink_final_fraction > 1.0) {
      return Status::InvalidArgument("shrink_final_fraction must be in (0,1]");
    }
    if (!IsFraction(options.drift_swap_fraction)) {
      return Status::InvalidArgument("drift_swap_fraction must be in [0,1]");
    }
    return {std::make_unique<ScaleInDriftStreamGenerator>(options)};
  }
  if (name == "replay-with-noise") {
    if (options.noise_rate < 0.0 || options.noise_rate > 1.0) {
      return Status::InvalidArgument("noise_rate must be in [0,1]");
    }
    if (options.noise_window < 1) {
      return Status::InvalidArgument("noise_window must be >= 1");
    }
    if (options.replay_base == "replay-with-noise") {
      return Status::InvalidArgument(
          "replay_base cannot be replay-with-noise itself");
    }
    auto base = MakeScenario(options.replay_base, options);
    if (!base.ok()) {
      return Status::InvalidArgument("replay-with-noise base scenario: " +
                                     base.status().ToString());
    }
    return {std::make_unique<ReplayWithNoiseStreamGenerator>(
        options, std::move(*base))};
  }
  return Status::InvalidArgument("unknown scenario: " + name);
}

}  // namespace slb
