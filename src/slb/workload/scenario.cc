#include "slb/workload/scenario.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

namespace {

// Shared knob validation for the factory. Constructors SLB_CHECK the same
// invariants (direct construction with bad knobs is a programmer error);
// the factory returns InvalidArgument so sweeps can report bad cells.
Status ValidateCommon(const ScenarioOptions& options) {
  if (options.num_keys < 2) {
    return Status::InvalidArgument("scenario needs at least 2 keys");
  }
  if (options.num_messages < 1) {
    return Status::InvalidArgument("scenario needs at least 1 message");
  }
  if (options.zipf_exponent < 0.0) {
    return Status::InvalidArgument("zipf_exponent must be >= 0");
  }
  return Status::OK();
}

bool IsFraction(double value) { return value >= 0.0 && value <= 1.0; }

}  // namespace

// --- flash-crowd ----------------------------------------------------------

FlashCrowdStreamGenerator::FlashCrowdStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(IsFraction(options_.burst_fraction));
  SLB_CHECK(IsFraction(options_.burst_begin));
  SLB_CHECK(IsFraction(options_.burst_end));
  SLB_CHECK(options_.burst_begin <= options_.burst_end);
  const double m = static_cast<double>(options_.num_messages);
  burst_first_ = static_cast<uint64_t>(options_.burst_begin * m);
  burst_last_ = static_cast<uint64_t>(options_.burst_end * m);
}

bool FlashCrowdStreamGenerator::InBurstWindow(uint64_t position) const {
  return position >= burst_first_ && position < burst_last_;
}

uint64_t FlashCrowdStreamGenerator::NextKey() {
  const bool burning = InBurstWindow(position_);
  ++position_;
  if (burning && rng_.NextBool(options_.burst_fraction)) return burst_key();
  return zipf_.Sample(&rng_);
}

void FlashCrowdStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- hot-set-churn --------------------------------------------------------

HotSetChurnStreamGenerator::HotSetChurnStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(options_.num_epochs >= 1);
  SLB_CHECK(options_.hot_set_size >= 1);
  SLB_CHECK(options_.hot_set_size <= options_.num_keys);
  SLB_CHECK(IsFraction(options_.hot_fraction));
  epoch_length_ =
      std::max<uint64_t>(1, options_.num_messages / options_.num_epochs);
}

uint64_t HotSetChurnStreamGenerator::HotSetStart(uint64_t epoch) const {
  // Offset by K/2 so epoch 0's hot window does not coincide with the Zipf
  // head of the background traffic; advance by one full window per epoch so
  // successive hot sets are disjoint (until the key space wraps).
  return (options_.num_keys / 2 + epoch * options_.hot_set_size) %
         options_.num_keys;
}

uint64_t HotSetChurnStreamGenerator::NextKey() {
  epoch_ = std::min(position_ / epoch_length_, options_.num_epochs - 1);
  ++position_;
  if (rng_.NextBool(options_.hot_fraction)) {
    const uint64_t start = HotSetStart(epoch_);
    return (start + rng_.NextBounded(options_.hot_set_size)) %
           options_.num_keys;
  }
  return zipf_.Sample(&rng_);
}

void HotSetChurnStreamGenerator::Reset() {
  position_ = 0;
  epoch_ = 0;
  rng_.Seed(options_.seed);
}

// --- multi-tenant ---------------------------------------------------------

MultiTenantStreamGenerator::MultiTenantStreamGenerator(
    const ScenarioOptions& options)
    : options_(options), rng_(options.seed) {
  SLB_CHECK(!options_.tenant_exponents.empty());
  SLB_CHECK(options_.num_keys >= options_.tenant_exponents.size());
  SLB_CHECK(options_.num_messages >= 1);
  keys_per_tenant_ = options_.num_keys / options_.tenant_exponents.size();
  tenants_.reserve(options_.tenant_exponents.size());
  for (double z : options_.tenant_exponents) {
    SLB_CHECK(z >= 0.0);
    tenants_.emplace_back(z, keys_per_tenant_);
  }
}

uint64_t MultiTenantStreamGenerator::num_keys() const {
  return keys_per_tenant_ * tenants_.size();
}

uint64_t MultiTenantStreamGenerator::NextKey() {
  const uint64_t tenant = position_ % tenants_.size();
  ++position_;
  return tenant * keys_per_tenant_ + tenants_[tenant].Sample(&rng_);
}

void MultiTenantStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- single-key-ramp ------------------------------------------------------

SingleKeyRampStreamGenerator::SingleKeyRampStreamGenerator(
    const ScenarioOptions& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      rng_(options.seed) {
  SLB_CHECK(options_.num_keys >= 2);
  SLB_CHECK(options_.num_messages >= 1);
  SLB_CHECK(IsFraction(options_.ramp_final_fraction));
}

double SingleKeyRampStreamGenerator::RampShare(uint64_t position) const {
  return options_.ramp_final_fraction * static_cast<double>(position) /
         static_cast<double>(options_.num_messages);
}

uint64_t SingleKeyRampStreamGenerator::NextKey() {
  const double share = RampShare(position_);
  ++position_;
  if (rng_.NextBool(share)) return ramp_key();
  return zipf_.Sample(&rng_);
}

void SingleKeyRampStreamGenerator::Reset() {
  position_ = 0;
  rng_.Seed(options_.seed);
}

// --- factory --------------------------------------------------------------

std::vector<std::string> ScenarioNames() {
  return {"zipf",          "drift",        "flash-crowd",
          "hot-set-churn", "multi-tenant", "single-key-ramp"};
}

Result<std::unique_ptr<StreamGenerator>> MakeScenario(
    const std::string& name, const ScenarioOptions& options) {
  SLB_RETURN_NOT_OK(ValidateCommon(options));

  if (name == "zipf" || name == "drift") {
    SyntheticStreamGenerator::Options synth;
    synth.name = name;
    synth.zipf_exponent = options.zipf_exponent;
    synth.num_keys = options.num_keys;
    synth.num_messages = options.num_messages;
    synth.seed = options.seed;
    if (name == "drift") {
      if (options.num_epochs < 1) {
        return Status::InvalidArgument("drift needs num_epochs >= 1");
      }
      if (!IsFraction(options.drift_swap_fraction)) {
        return Status::InvalidArgument("drift_swap_fraction must be in [0,1]");
      }
      synth.num_epochs = options.num_epochs;
      synth.drift_swap_fraction = options.drift_swap_fraction;
    }
    return {std::make_unique<SyntheticStreamGenerator>(synth)};
  }
  if (name == "flash-crowd") {
    if (!IsFraction(options.burst_fraction)) {
      return Status::InvalidArgument("burst_fraction must be in [0,1]");
    }
    if (!IsFraction(options.burst_begin) || !IsFraction(options.burst_end) ||
        options.burst_begin > options.burst_end) {
      return Status::InvalidArgument(
          "burst window must satisfy 0 <= begin <= end <= 1");
    }
    return {std::make_unique<FlashCrowdStreamGenerator>(options)};
  }
  if (name == "hot-set-churn") {
    if (options.hot_set_size < 1 || options.hot_set_size > options.num_keys) {
      return Status::InvalidArgument("hot_set_size must be in [1, num_keys]");
    }
    if (!IsFraction(options.hot_fraction)) {
      return Status::InvalidArgument("hot_fraction must be in [0,1]");
    }
    if (options.num_epochs < 1) {
      return Status::InvalidArgument("hot-set-churn needs num_epochs >= 1");
    }
    return {std::make_unique<HotSetChurnStreamGenerator>(options)};
  }
  if (name == "multi-tenant") {
    if (options.tenant_exponents.empty()) {
      return Status::InvalidArgument("multi-tenant needs >= 1 tenant");
    }
    if (options.num_keys < options.tenant_exponents.size()) {
      return Status::InvalidArgument("multi-tenant needs num_keys >= tenants");
    }
    for (double z : options.tenant_exponents) {
      if (z < 0.0) {
        return Status::InvalidArgument("tenant exponents must be >= 0");
      }
    }
    return {std::make_unique<MultiTenantStreamGenerator>(options)};
  }
  if (name == "single-key-ramp") {
    if (!IsFraction(options.ramp_final_fraction)) {
      return Status::InvalidArgument("ramp_final_fraction must be in [0,1]");
    }
    return {std::make_unique<SingleKeyRampStreamGenerator>(options)};
  }
  return Status::InvalidArgument("unknown scenario: " + name);
}

}  // namespace slb
