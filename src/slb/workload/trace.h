// Trace recording and replay.
//
// Binary format (little-endian):
//   magic "SLBT" | u32 version | u64 num_keys | u64 num_messages | keys...
// Each key is a fixed u64. A text format (one decimal key per line, '#'
// comments) is also supported for hand-written fixtures.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "slb/common/status.h"
#include "slb/workload/stream_generator.h"

namespace slb {

struct Trace {
  uint64_t num_keys = 0;  // declared key-space cardinality
  std::vector<uint64_t> keys;
};

/// Writes a trace in the binary format.
Status WriteTrace(const std::string& path, const Trace& trace);

/// Reads a binary trace; validates magic/version and length.
Result<Trace> ReadTrace(const std::string& path);

/// Reads a text trace: one key per line, blank lines and '#' comments
/// ignored. num_keys is inferred as max(key)+1.
Result<Trace> ReadTextTrace(const std::string& path);

/// Writes a text trace.
Status WriteTextTrace(const std::string& path, const Trace& trace);

/// Materializes a generator's full stream into a trace (for record/replay
/// experiments and cross-implementation validation).
Trace RecordTrace(StreamGenerator* gen);

/// Wraps a trace in a StreamGenerator for replay.
std::unique_ptr<VectorStreamGenerator> MakeTraceGenerator(std::string name,
                                                          Trace trace);

}  // namespace slb
