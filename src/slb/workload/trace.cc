#include "slb/workload/trace.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "slb/common/logging.h"
#include "slb/common/string_util.h"

namespace slb {

namespace {

constexpr char kMagic[4] = {'S', 'L', 'B', 'T'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status WriteTrace(const std::string& path, const Trace& trace) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) return Status::IOError("cannot open for write: " + path);

  const uint64_t count = trace.keys.size();
  if (std::fwrite(kMagic, 1, 4, file.get()) != 4 ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, file.get()) != 1 ||
      std::fwrite(&trace.num_keys, sizeof(trace.num_keys), 1, file.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::IOError("short write of header: " + path);
  }
  if (count > 0 &&
      std::fwrite(trace.keys.data(), sizeof(uint64_t), count, file.get()) != count) {
    return Status::IOError("short write of keys: " + path);
  }
  return Status::OK();
}

Result<Trace> ReadTrace(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) return Status::IOError("cannot open for read: " + path);

  char magic[4];
  uint32_t version = 0;
  Trace trace;
  uint64_t count = 0;
  if (std::fread(magic, 1, 4, file.get()) != 4 ||
      std::fread(&version, sizeof(version), 1, file.get()) != 1 ||
      std::fread(&trace.num_keys, sizeof(trace.num_keys), 1, file.get()) != 1 ||
      std::fread(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::Corruption("truncated trace header: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic in trace: " + path);
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported trace version " + std::to_string(version));
  }
  trace.keys.resize(count);
  if (count > 0 &&
      std::fread(trace.keys.data(), sizeof(uint64_t), count, file.get()) != count) {
    return Status::Corruption("truncated trace body: " + path);
  }
  return trace;
}

Status WriteTextTrace(const std::string& path, const Trace& trace) {
  FilePtr file(std::fopen(path.c_str(), "w"));
  if (!file) return Status::IOError("cannot open for write: " + path);
  std::fprintf(file.get(), "# slb text trace; num_keys=%llu\n",
               static_cast<unsigned long long>(trace.num_keys));
  for (uint64_t key : trace.keys) {
    std::fprintf(file.get(), "%llu\n", static_cast<unsigned long long>(key));
  }
  return Status::OK();
}

Result<Trace> ReadTextTrace(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "r"));
  if (!file) return Status::IOError("cannot open for read: " + path);
  Trace trace;
  char line[256];
  uint64_t max_key = 0;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    std::string_view text = TrimWhitespace(line);
    if (text.empty() || text[0] == '#') continue;
    int64_t key = 0;
    if (!ParseInt64(std::string(text), &key) || key < 0) {
      return Status::Corruption("bad key line in " + path + ": " +
                                std::string(text));
    }
    trace.keys.push_back(static_cast<uint64_t>(key));
    max_key = std::max(max_key, static_cast<uint64_t>(key));
  }
  trace.num_keys = trace.keys.empty() ? 0 : max_key + 1;
  return trace;
}

Trace RecordTrace(StreamGenerator* gen) {
  SLB_CHECK(gen != nullptr);
  gen->Reset();
  Trace trace;
  trace.num_keys = gen->num_keys();
  const uint64_t m = gen->num_messages();
  trace.keys.reserve(m);
  for (uint64_t i = 0; i < m; ++i) trace.keys.push_back(gen->NextKey());
  gen->Reset();
  return trace;
}

std::unique_ptr<VectorStreamGenerator> MakeTraceGenerator(std::string name,
                                                          Trace trace) {
  return std::make_unique<VectorStreamGenerator>(
      std::move(name), std::move(trace.keys), trace.num_keys);
}

}  // namespace slb
