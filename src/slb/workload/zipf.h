// Zipf-distributed key generation.
//
// The paper's synthetic ZF workloads draw keys from Zipf distributions with
// exponent z in {0.1 .. 2.0} over |K| in {1e4, 1e5, 1e6} (Table I). Two
// sampling strategies are provided behind one class:
//   * Walker/Vose alias table — O(1)/sample, O(|K|) memory; used when the
//     key space fits comfortably in memory.
//   * Hörmann-Derflinger rejection-inversion — O(1) memory, a handful of
//     exp/log per sample; used for very large |K| (e.g. the full-scale
//     Twitter dataset with 31M keys).
// Both sample ranks in [0, |K|) with P(rank r) = (r+1)^-z / H(z, |K|).

#pragma once

#include <cstdint>
#include <vector>

#include "slb/common/rng.h"

namespace slb {

/// Generalized harmonic number H(z, k) = sum_{i=1..k} i^-z.
double GeneralizedHarmonic(double z, uint64_t k);

/// Probability of the most frequent key of Zipf(z, num_keys): 1 / H(z, K).
double ZipfTopProbability(double z, uint64_t num_keys);

/// Finds the exponent z such that Zipf(z, num_keys) has top-key probability
/// `p1` (used to calibrate synthetic stand-ins for the paper's real traces).
/// Monotone bisection; accurate to ~1e-10.
double CalibrateZipfExponent(uint64_t num_keys, double p1);

class ZipfDistribution {
 public:
  /// Sampling backend selection.
  enum class Method {
    kAuto,                // alias table if num_keys <= kAliasLimit, else RI
    kAliasTable,          // force alias table
    kRejectionInversion,  // force rejection-inversion
  };

  static constexpr uint64_t kAliasLimit = 1ULL << 22;  // 4M ranks

  ZipfDistribution(double z, uint64_t num_keys, Method method = Method::kAuto);

  /// Draws a rank in [0, num_keys); rank 0 is the most frequent.
  uint64_t Sample(Rng* rng) const;

  /// Exact probability of rank r (0-based).
  double Probability(uint64_t rank) const;

  /// Probabilities of the first `count` ranks (the head prefix used by the
  /// d-choices analysis).
  std::vector<double> TopProbabilities(uint64_t count) const;

  /// Number of ranks with probability >= threshold (analytic head size,
  /// Fig. 3). O(log |K|) via monotonicity of the pmf.
  uint64_t CountAboveThreshold(double threshold) const;

  double z() const { return z_; }
  uint64_t num_keys() const { return num_keys_; }
  bool uses_alias_table() const { return !alias_prob_.empty(); }

 private:
  void BuildAliasTable();
  uint64_t SampleRejectionInversion(Rng* rng) const;

  // Rejection-inversion helpers (see Hörmann & Derflinger 1996).
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  double z_;
  uint64_t num_keys_;
  double harmonic_;  // H(z, num_keys)

  // Alias table state (empty when using rejection-inversion).
  std::vector<double> alias_prob_;
  std::vector<uint32_t> alias_idx_;

  // Rejection-inversion state.
  double ri_h_integral_x1_ = 0;
  double ri_h_integral_n_ = 0;
  double ri_s_ = 0;
};

}  // namespace slb
