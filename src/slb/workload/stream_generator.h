// Keyed message stream generation.
//
// A StreamGenerator yields the key sequence of one experiment run. The
// synthetic generator combines a Zipf rank distribution with a key mapper
// (identity or drifting) and a deterministic seed, so every run is exactly
// reproducible. A trace-backed generator replays recorded streams.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/rng.h"
#include "slb/workload/key_mapper.h"
#include "slb/workload/zipf.h"

namespace slb {

/// Pull-based key stream of a fixed configured length.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  /// Next key. Callers must not pull more than num_messages() keys per pass;
  /// use Reset() to start a new identical (same-seed) pass.
  virtual uint64_t NextKey() = 0;

  /// Restarts the stream from the beginning (same sequence).
  virtual void Reset() = 0;

  virtual uint64_t num_messages() const = 0;
  virtual uint64_t num_keys() const = 0;
  virtual std::string name() const = 0;
};

/// Synthetic Zipf stream with optional concept drift.
class SyntheticStreamGenerator final : public StreamGenerator {
 public:
  struct Options {
    std::string name = "ZF";
    double zipf_exponent = 1.0;
    uint64_t num_keys = 10000;
    uint64_t num_messages = 1000000;
    uint64_t seed = 42;
    /// Number of epochs ("hours") the stream is divided into; the mapper
    /// advances at each boundary. Must be >= 1.
    uint64_t num_epochs = 1;
    /// Fraction of keys reshuffled per epoch (0 = static identities).
    double drift_swap_fraction = 0.0;
  };

  explicit SyntheticStreamGenerator(const Options& options);

  uint64_t NextKey() override;
  void Reset() override;
  uint64_t num_messages() const override { return options_.num_messages; }
  uint64_t num_keys() const override { return options_.num_keys; }
  std::string name() const override { return options_.name; }

  /// Current epoch index (advances as the stream is consumed).
  uint64_t current_epoch() const { return epoch_; }

  const ZipfDistribution& distribution() const { return zipf_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  ZipfDistribution zipf_;
  DriftingKeyMapper mapper_;
  bool drifting_;
  Rng rng_;
  uint64_t position_ = 0;
  uint64_t epoch_ = 0;
  uint64_t epoch_length_;
};

/// Replays an in-memory key vector (e.g. loaded from a trace file).
class VectorStreamGenerator final : public StreamGenerator {
 public:
  VectorStreamGenerator(std::string name, std::vector<uint64_t> keys,
                        uint64_t num_keys);

  /// Aborts (SLB_CHECK) when pulled past num_messages(); call Reset() to
  /// start another pass.
  uint64_t NextKey() override;
  void Reset() override { position_ = 0; }
  uint64_t num_messages() const override { return keys_.size(); }
  uint64_t num_keys() const override { return num_keys_; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<uint64_t> keys_;
  uint64_t num_keys_;
  size_t position_ = 0;
};

}  // namespace slb
