#include "slb/workload/datasets.h"

#include <algorithm>
#include <unordered_map>

#include "slb/common/logging.h"

namespace slb {

namespace {

uint64_t Scaled(uint64_t value, double scale, uint64_t floor_value) {
  const auto scaled = static_cast<uint64_t>(static_cast<double>(value) * scale);
  return std::max(scaled, floor_value);
}

DatasetSpec CalibratedSpec(std::string name, uint64_t messages, uint64_t keys,
                           double p1, uint64_t epochs, double drift,
                           double scale) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.num_messages = Scaled(messages, scale, 10000);
  spec.num_keys = Scaled(keys, scale, 100);
  spec.target_p1 = p1;
  spec.zipf_exponent = CalibrateZipfExponent(spec.num_keys, p1);
  spec.num_epochs = epochs;
  spec.drift_swap_fraction = drift;
  return spec;
}

}  // namespace

DatasetSpec MakeWikipediaSpec(double scale) {
  // Table I: 22M messages, 2.9M keys, p1 = 9.32%. Fig. 12 reports WP over
  // ~40 hours. No drift: the page-popularity mix within one day is stable.
  return CalibratedSpec("WP", 22000000, 2900000, 0.0932, 40, 0.0, scale);
}

DatasetSpec MakeTwitterSpec(double scale) {
  // Table I: 1.2G messages, 31M keys, p1 = 2.67%; ~30 hours in Fig. 12.
  return CalibratedSpec("TW", 1200000000, 31000000, 0.0267, 30, 0.0, scale);
}

DatasetSpec MakeCashtagsSpec(double scale) {
  // Table I: 690k messages, 2.9k keys, p1 = 3.29%; ~80 hours in Fig. 12.
  // "characterized by high concept drift ... the distribution of keys
  // changes drastically throughout time". A cashtag stays hot for a stretch
  // of hours before another takes over, so the *instantaneous* skew is much
  // higher than the whole-stream p1 of Table I. We calibrate the per-epoch
  // distribution to 4x the whole-stream p1 and reshuffle 5% of identities
  // per hour; the resulting whole-stream maximum key frequency lands close
  // to the 3.29% Table I reports (validated in bench_table1_datasets).
  DatasetSpec spec = CalibratedSpec("CT", 690000, 2900, 4 * 0.0329, 80, 0.05, scale);
  spec.target_p1 = 0.0329;  // what Table I reports for the whole stream
  return spec;
}

DatasetSpec MakeZipfSpec(double z, uint64_t num_keys, uint64_t num_messages,
                         uint64_t seed) {
  DatasetSpec spec;
  spec.name = "ZF";
  spec.num_messages = num_messages;
  spec.num_keys = num_keys;
  spec.zipf_exponent = z;
  spec.target_p1 = ZipfTopProbability(z, num_keys);
  spec.seed = seed;
  return spec;
}

std::unique_ptr<SyntheticStreamGenerator> MakeGenerator(const DatasetSpec& spec) {
  SyntheticStreamGenerator::Options options;
  options.name = spec.name;
  options.zipf_exponent = spec.zipf_exponent;
  options.num_keys = spec.num_keys;
  options.num_messages = spec.num_messages;
  options.seed = spec.seed;
  options.num_epochs = std::max<uint64_t>(1, spec.num_epochs);
  options.drift_swap_fraction = spec.drift_swap_fraction;
  return std::make_unique<SyntheticStreamGenerator>(options);
}

DatasetStats MeasureDataset(StreamGenerator* gen) {
  SLB_CHECK(gen != nullptr);
  gen->Reset();
  std::unordered_map<uint64_t, uint64_t> counts;
  counts.reserve(gen->num_keys() * 2);
  const uint64_t m = gen->num_messages();
  uint64_t max_count = 0;
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t c = ++counts[gen->NextKey()];
    max_count = std::max(max_count, c);
  }
  DatasetStats stats;
  stats.messages = m;
  stats.distinct_keys = counts.size();
  stats.measured_p1 =
      m == 0 ? 0.0 : static_cast<double>(max_count) / static_cast<double>(m);
  gen->Reset();
  return stats;
}

}  // namespace slb
