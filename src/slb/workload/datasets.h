// Synthetic stand-ins for the paper's datasets (Table I).
//
// We do not have the original Wikipedia/Twitter traces, so each dataset is
// replaced by a Zipf stream whose exponent is *calibrated* so the most
// frequent key matches the paper's reported p1, with the paper's key
// cardinality and message count (optionally scaled down for quick runs).
// CT additionally carries concept drift (see DriftingKeyMapper), which is
// the property Figs. 11-12 use it for. The substitution is recorded in
// DESIGN.md.
//
//   Dataset    Messages   Keys    p1       Drift
//   WP         22M        2.9M    9.32%    none
//   TW         1.2G       31M     2.67%    none
//   CT         690k       2.9k    3.29%    heavy
//
// Note: TW at scale 1.0 generates 1.2e9 messages per run — use the default
// bench scales unless you intend a multi-hour run.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "slb/workload/stream_generator.h"

namespace slb {

/// Full description of a synthetic dataset; feed to MakeGenerator().
struct DatasetSpec {
  std::string name;
  uint64_t num_messages = 0;
  uint64_t num_keys = 0;
  double target_p1 = 0.0;        // paper's reported p1 (fraction)
  double zipf_exponent = 0.0;    // calibrated from target_p1
  uint64_t num_epochs = 1;       // reporting "hours" (Fig. 12 x-axis)
  double drift_swap_fraction = 0.0;
  uint64_t seed = 42;
};

/// Wikipedia page-visit stream (paper Sec. V-A). `scale` multiplies both
/// message count and key cardinality; scale=1 reproduces Table I sizes.
DatasetSpec MakeWikipediaSpec(double scale = 1.0);

/// Twitter word stream. scale=1 is 1.2G messages.
DatasetSpec MakeTwitterSpec(double scale = 1.0);

/// Twitter cashtag stream with concept drift. Small enough that scale=1 is
/// the default everywhere.
DatasetSpec MakeCashtagsSpec(double scale = 1.0);

/// Plain Zipf stream, the paper's ZF synthetic workload.
DatasetSpec MakeZipfSpec(double z, uint64_t num_keys, uint64_t num_messages,
                         uint64_t seed = 42);

/// Instantiates the generator for a spec.
std::unique_ptr<SyntheticStreamGenerator> MakeGenerator(const DatasetSpec& spec);

/// Measured statistics of a generated stream (Table I reproduction).
struct DatasetStats {
  uint64_t messages = 0;
  uint64_t distinct_keys = 0;
  double measured_p1 = 0.0;  // frequency of the most frequent key
};

/// Runs the full stream once and measures Table I statistics.
DatasetStats MeasureDataset(StreamGenerator* gen);

}  // namespace slb
