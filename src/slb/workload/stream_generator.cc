#include "slb/workload/stream_generator.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

SyntheticStreamGenerator::SyntheticStreamGenerator(const Options& options)
    : options_(options),
      zipf_(options.zipf_exponent, options.num_keys),
      mapper_(options.num_keys,
              options.drift_swap_fraction > 0.0 ? options.drift_swap_fraction : 0.0,
              options.seed ^ 0x5eedULL),
      drifting_(options.drift_swap_fraction > 0.0),
      rng_(options.seed) {
  SLB_CHECK(options_.num_epochs >= 1) << "need at least one epoch";
  SLB_CHECK(options_.num_messages >= 1) << "need at least one message";
  epoch_length_ =
      std::max<uint64_t>(1, options_.num_messages / options_.num_epochs);
}

uint64_t SyntheticStreamGenerator::NextKey() {
  const uint64_t new_epoch = std::min(position_ / epoch_length_,
                                      options_.num_epochs - 1);
  if (new_epoch != epoch_) {
    // Advance the mapper once per crossed boundary (sequential consumption
    // crosses one boundary at a time).
    while (epoch_ < new_epoch) {
      if (drifting_) mapper_.AdvanceEpoch(&rng_);
      ++epoch_;
    }
  }
  ++position_;
  const uint64_t rank = zipf_.Sample(&rng_);
  return drifting_ ? mapper_.Map(rank) : rank;
}

void SyntheticStreamGenerator::Reset() {
  position_ = 0;
  epoch_ = 0;
  rng_.Seed(options_.seed);
  if (drifting_) {
    mapper_ = DriftingKeyMapper(options_.num_keys, options_.drift_swap_fraction,
                                options_.seed ^ 0x5eedULL);
  }
}

VectorStreamGenerator::VectorStreamGenerator(std::string name,
                                             std::vector<uint64_t> keys,
                                             uint64_t num_keys)
    : name_(std::move(name)), keys_(std::move(keys)), num_keys_(num_keys) {}

uint64_t VectorStreamGenerator::NextKey() {
  SLB_CHECK(position_ < keys_.size()) << "stream exhausted; call Reset()";
  return keys_[position_++];
}

}  // namespace slb
