#include "slb/workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "slb/common/logging.h"

namespace slb {

double GeneralizedHarmonic(double z, uint64_t k) {
  // Exact summation up to a cutoff; Euler-Maclaurin for the smooth tail.
  // The tail approximation's error is O(z(z+1)(z+2) a^{-z-3}) ~ 1e-15 at
  // a = 1e5, far below the bisection tolerance used by calibration.
  constexpr uint64_t kExactCutoff = 100000;
  const uint64_t exact_upto = std::min(k, kExactCutoff);
  // Sum smallest-to-largest terms for better floating-point accuracy.
  double sum = 0.0;
  for (uint64_t i = exact_upto; i >= 1; --i) {
    sum += std::pow(static_cast<double>(i), -z);
  }
  if (k <= kExactCutoff) return sum;

  // sum_{i=a}^{k} i^-z ~= I(a,k) + (f(a)+f(k))/2 + (f'(k)-f'(a))/12, with
  // f(x) = x^-z, starting the tail at a = cutoff + 1.
  const double a = static_cast<double>(kExactCutoff + 1);
  const double b = static_cast<double>(k);
  double integral;
  if (std::fabs(z - 1.0) < 1e-12) {
    integral = std::log(b / a);
  } else {
    integral = (std::pow(b, 1.0 - z) - std::pow(a, 1.0 - z)) / (1.0 - z);
  }
  const double fa = std::pow(a, -z);
  const double fb = std::pow(b, -z);
  const double dfa = -z * std::pow(a, -z - 1.0);
  const double dfb = -z * std::pow(b, -z - 1.0);
  return sum + integral + 0.5 * (fa + fb) + (dfb - dfa) / 12.0;
}

double ZipfTopProbability(double z, uint64_t num_keys) {
  return 1.0 / GeneralizedHarmonic(z, num_keys);
}

double CalibrateZipfExponent(uint64_t num_keys, double p1) {
  SLB_CHECK(num_keys >= 2) << "need at least two keys to calibrate";
  SLB_CHECK(p1 > 0.0 && p1 < 1.0) << "target p1 must be in (0,1)";
  // p1(z) = 1/H(z,K) is strictly increasing in z; bisect.
  double lo = 0.0;
  double hi = 64.0;
  SLB_CHECK(ZipfTopProbability(lo, num_keys) <= p1)
      << "target p1 below uniform 1/K; unreachable";
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ZipfTopProbability(mid, num_keys) < p1) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

namespace {

// (e^x - 1) / x, stable near zero.
double Helper2(double x) {
  if (std::fabs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + x * 0.25));
}

// log(1+x) / x, stable near zero.
double Helper1(double x) {
  if (std::fabs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

}  // namespace

ZipfDistribution::ZipfDistribution(double z, uint64_t num_keys, Method method)
    : z_(z), num_keys_(num_keys) {
  SLB_CHECK(num_keys_ >= 1) << "Zipf needs at least one key";
  SLB_CHECK(z_ >= 0.0) << "Zipf exponent must be non-negative";
  harmonic_ = GeneralizedHarmonic(z_, num_keys_);

  const bool use_alias = method == Method::kAliasTable ||
                         (method == Method::kAuto && num_keys_ <= kAliasLimit);
  if (use_alias) {
    BuildAliasTable();
  } else {
    // Rejection-inversion precomputation (ranks are 1-based internally).
    ri_h_integral_x1_ = HIntegral(1.5) - 1.0;
    ri_h_integral_n_ = HIntegral(static_cast<double>(num_keys_) + 0.5);
    ri_s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
  }
}

double ZipfDistribution::Probability(uint64_t rank) const {
  if (rank >= num_keys_) return 0.0;
  return std::pow(static_cast<double>(rank + 1), -z_) / harmonic_;
}

std::vector<double> ZipfDistribution::TopProbabilities(uint64_t count) const {
  count = std::min(count, num_keys_);
  std::vector<double> out(count);
  for (uint64_t r = 0; r < count; ++r) out[r] = Probability(r);
  return out;
}

uint64_t ZipfDistribution::CountAboveThreshold(double threshold) const {
  if (threshold <= 0.0) return num_keys_;
  if (Probability(0) < threshold) return 0;
  // pmf decreases in rank: binary search the last rank still >= threshold.
  uint64_t lo = 0;             // P(lo) >= threshold
  uint64_t hi = num_keys_;     // P(hi) < threshold (one past the end)
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (Probability(mid) >= threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

void ZipfDistribution::BuildAliasTable() {
  // Walker/Vose alias method over the pmf.
  const size_t n = static_cast<size_t>(num_keys_);
  alias_prob_.assign(n, 0.0);
  alias_idx_.assign(n, 0);

  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = Probability(i) * static_cast<double>(n);
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    alias_prob_[s] = scaled[s];
    alias_idx_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1.0 up to rounding.
  for (uint32_t i : large) {
    alias_prob_[i] = 1.0;
    alias_idx_[i] = i;
  }
  for (uint32_t i : small) {
    alias_prob_[i] = 1.0;
    alias_idx_[i] = i;
  }
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  if (!alias_prob_.empty()) {
    const uint64_t slot = rng->NextBounded(num_keys_);
    return rng->NextDouble() < alias_prob_[slot] ? slot : alias_idx_[slot];
  }
  return SampleRejectionInversion(rng);
}

double ZipfDistribution::H(double x) const { return std::exp(-z_ * std::log(x)); }

double ZipfDistribution::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - z_) * log_x) * log_x;
}

double ZipfDistribution::HIntegralInverse(double x) const {
  double t = x * (1.0 - z_);
  if (t < -1.0) t = -1.0;  // guard rounding at the left boundary
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfDistribution::SampleRejectionInversion(Rng* rng) const {
  // Hörmann & Derflinger rejection-inversion; expected < 2 iterations for
  // any (z, |K|).
  while (true) {
    const double u = ri_h_integral_n_ +
                     rng->NextDouble() * (ri_h_integral_x1_ - ri_h_integral_n_);
    const double x = HIntegralInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(num_keys_)) k = static_cast<double>(num_keys_);
    if (k - x <= ri_s_ || u >= HIntegral(k + 0.5) - H(k)) {
      return static_cast<uint64_t>(k) - 1;  // convert to 0-based rank
    }
  }
}

}  // namespace slb
