// Status / Result error model for the slb library.
//
// Follows the RocksDB / Arrow idiom: fallible, non-hot-path operations return a
// Status (or Result<T>) instead of throwing. Hot paths (per-message routing)
// return plain values and never fail.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace slb {

/// Error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIOError = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kCorruption = 9,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight success/error value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (the common OK case stores no string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-Status union, in the spirit of arrow::Result.
///
/// Either holds a T (status().ok() == true) or an error Status. Accessing the
/// value of an errored Result aborts, so callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace slb

/// Propagates an error Status from an expression, RocksDB-style.
#define SLB_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::slb::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)
