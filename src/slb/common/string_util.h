// String parsing/formatting helpers shared across the library.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slb {

/// Parses a signed 64-bit integer. Accepts scientific-style suffixes used in
/// experiment configs: k/K (*1e3), m/M (*1e6), g/G (*1e9), e.g. "2m" == 2000000.
/// Returns false (leaving *out untouched) on any malformed input.
bool ParseInt64(const std::string& text, int64_t* out);

/// Parses a double; returns false on malformed input or trailing garbage.
bool ParseDouble(const std::string& text, double* out);

/// Formats a double compactly ("0.5", "1e-04" style), trimming trailing zeros.
std::string FormatDouble(double value);

/// Splits on a delimiter; empty tokens are preserved.
std::vector<std::string> SplitString(std::string_view text, char delim);

/// Joins tokens with a delimiter.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Human-readable count, e.g. 21500000 -> "21.5M".
std::string HumanCount(uint64_t value);

}  // namespace slb
