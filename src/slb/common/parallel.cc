#include "slb/common/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace slb {

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (count == 0) return;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic work stealing via a shared atomic counter: sweep points have very
  // uneven costs (m scales with n and |K|), so static chunking would straggle.
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&]() {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace slb
