#include "slb/common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace slb {

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (count == 0) return;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic work stealing via a shared atomic counter: sweep points have very
  // uneven costs (m scales with n and |K|), so static chunking would straggle.
  // Indices are claimed with a compare-exchange loop that never advances the
  // counter past `count`, so it cannot wrap when count is near SIZE_MAX.
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_exception;
  std::mutex exception_mu;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&]() {
      while (!failed.load(std::memory_order_relaxed)) {
        size_t i = next.load(std::memory_order_relaxed);
        do {
          if (i >= count) return;
        } while (!next.compare_exchange_weak(i, i + 1,
                                             std::memory_order_relaxed));
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(exception_mu);
          if (first_exception == nullptr) {
            first_exception = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace slb
