// Open-addressed uint64 -> int32 index map (header-only).
//
// Purpose-built for the sketch hot path: SpaceSaving resolves key -> counter
// index once per routed message, and std::unordered_map pays a pointer chase
// per lookup plus a node allocation per insert. This map stores 12-byte
// {key, value} slots contiguously (5+ slots per cache line), probes
// linearly, and deletes with backward shifting — no tombstones, so probe
// chains never degrade over the sketch's endless insert/evict churn.
//
// Restrictions that keep it this small: values must be >= 0 (the empty slot
// sentinel is value == -1; SpaceSaving stores vector indices, which qualify)
// and there is no iteration — callers that need to enumerate entries keep
// their own dense array, which SpaceSaving already does.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "slb/common/logging.h"

namespace slb {

class FlatIndexMap {
 public:
  static constexpr int32_t kAbsent = -1;

  explicit FlatIndexMap(size_t expected = 0) { Rehash(SlotsFor(expected)); }

  /// Value stored for `key`, or kAbsent.
  int32_t Get(uint64_t key) const {
    size_t i = Mix(key) & mask_;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.value == kAbsent) return kAbsent;
      if (slot.key == key) return slot.value;
      i = (i + 1) & mask_;
    }
  }

  bool Contains(uint64_t key) const { return Get(key) != kAbsent; }

  /// Inserts or overwrites. `value` must be >= 0.
  void Set(uint64_t key, int32_t value) {
    SLB_CHECK(value >= 0) << "FlatIndexMap reserves negative values";
    if ((size_ + 1) * 4 > slots_.size() * 3) Rehash(slots_.size() * 2);
    size_t i = Mix(key) & mask_;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.value == kAbsent) {
        slot.key = key;
        slot.value = value;
        ++size_;
        return;
      }
      if (slot.key == key) {
        slot.value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Removes `key`; returns false if it was absent. Backward-shift deletion:
  /// subsequent probe-chain entries slide back over the hole, so lookups
  /// never traverse tombstones.
  bool Erase(uint64_t key) {
    size_t i = Mix(key) & mask_;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.value == kAbsent) return false;
      if (slot.key == key) break;
      i = (i + 1) & mask_;
    }
    size_t hole = i;
    size_t j = (hole + 1) & mask_;
    while (slots_[j].value != kAbsent) {
      // An entry may slide into the hole only if the hole still lies within
      // its probe path, i.e. its ideal slot is not "after" the hole when
      // walking (cyclically) from the ideal slot to j.
      const size_t ideal = Mix(slots_[j].key) & mask_;
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].value = kAbsent;
    --size_;
    return true;
  }

  void Clear() {
    for (Slot& slot : slots_) slot.value = kAbsent;
    size_ = 0;
  }

  void Reserve(size_t expected) {
    const size_t want = SlotsFor(expected);
    if (want > slots_.size()) Rehash(want);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Slot {
    uint64_t key = 0;
    int32_t value = kAbsent;
  };

  // MurmurHash3's fmix64, inlined here so the common/ layer stays
  // self-contained (slb/hash depends on common, not the other way around).
  static uint64_t Mix(uint64_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }

  /// Smallest power-of-two slot count holding `expected` entries under the
  /// 3/4 load-factor ceiling (minimum 16).
  static size_t SlotsFor(size_t expected) {
    size_t slots = 16;
    while (expected * 4 > slots * 3) slots <<= 1;
    return slots;
  }

  void Rehash(size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.value != kAbsent) Set(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace slb
