// Streaming statistics and exact-percentile histograms.
//
// Used by the DSPE simulator and threaded runtime (latency percentiles,
// Fig. 14) and by test assertions on distributions. Two flavours:
//   * RunningStats  — O(1) memory mean/variance/min/max (Welford).
//   * Histogram     — stores samples, exact quantiles; optionally reservoir-
//                     subsampled past a cap so unbounded streams stay bounded.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "slb/common/rng.h"

namespace slb {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than 2 samples).
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with exact quantiles. If more than `reservoir_capacity`
/// samples arrive, switches to uniform reservoir sampling (Vitter's R), so
/// quantiles become estimates with bounded memory. Min/max/mean stay exact.
///
/// Thread safety: writes (Add/Merge) require external exclusion, but any
/// number of threads may call Quantile()/p50()/p95()/p99() concurrently once
/// writes have quiesced — the lazy sort is guarded internally.
class Histogram {
 public:
  /// `reservoir_capacity` == 0 means "never subsample" (unbounded memory).
  explicit Histogram(size_t reservoir_capacity = 1 << 20, uint64_t seed = 1);

  void Add(double x);

  /// Folds another histogram in (parallel reduction of per-thread latency
  /// histograms). count/mean/min/max stay exact; the sample reservoir is the
  /// union of both reservoirs, uniformly downsampled back to capacity when it
  /// overflows — quantiles stay unbiased when neither input subsampled and
  /// remain estimates otherwise.
  void Merge(const Histogram& other);

  int64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double stddev() const { return stats_.stddev(); }

  /// Quantile in [0,1]; e.g. 0.5 = median, 0.99 = p99. Returns 0 when empty.
  /// Uses the nearest-rank definition on the (possibly subsampled) samples.
  /// Safe to call from multiple threads concurrently (but not concurrently
  /// with Add/Merge).
  double Quantile(double q) const;

  /// Convenience accessors matching the paper's reporting (Fig. 14).
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  bool subsampled() const { return subsampled_; }
  size_t sample_count() const { return samples_.size(); }

 private:
  RunningStats stats_;
  // mutable: Quantile() sorts in place (multiset unchanged) under sort_mu_.
  mutable std::vector<double> samples_;
  size_t capacity_;
  bool subsampled_ = false;
  Rng rng_;
  // Lazy-sort state: the first Quantile() after a write sorts the reservoir.
  // Double-checked under sort_mu_; the release store / acquire load pair on
  // sorted_ publishes the sorted contents to lock-free fast-path readers.
  mutable std::mutex sort_mu_;
  mutable std::atomic<bool> sorted_{true};
};

}  // namespace slb
