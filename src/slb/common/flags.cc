#include "slb/common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "slb/common/string_util.h"

namespace slb {

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::AddInt64(const std::string& name, int64_t* target,
                       const std::string& help) {
  flags_[name] = Flag{Type::kInt64, target, help, std::to_string(*target)};
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  flags_[name] = Flag{Type::kDouble, target, help, FormatDouble(*target)};
}

void FlagSet::AddBool(const std::string& name, bool* target, const std::string& help) {
  flags_[name] = Flag{Type::kBool, target, help, *target ? "true" : "false"};
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  flags_[name] = Flag{Type::kString, target, help, *target};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt64: {
      int64_t parsed = 0;
      if (!ParseInt64(value, &parsed)) {
        return Status::InvalidArgument("flag --" + name + ": bad integer '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(flag.target) = parsed;
      return Status::OK();
    }
    case Type::kDouble: {
      double parsed = 0;
      if (!ParseDouble(value, &parsed)) {
        return Status::InvalidArgument("flag --" + name + ": bad number '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = parsed;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value == "yes") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0" || value == "no") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name + ": bad boolean '" + value +
                                       "'");
      }
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagSet::Parse(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Status FlagSet::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::fputs(Usage().c_str(), stdout);
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      SLB_RETURN_NOT_OK(SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // `--no-name` for booleans.
    if (body.rfind("no-", 0) == 0) {
      auto it = flags_.find(body.substr(3));
      if (it != flags_.end() && it->second.type == Type::kBool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (it->second.type == Type::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("flag --" + body + " expects a value");
    }
    SLB_RETURN_NOT_OK(SetValue(body, args[++i]));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::ostringstream out;
  if (!description_.empty()) out << description_ << "\n\n";
  out << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default: " << flag.default_repr << ")\n      "
        << flag.help << "\n";
  }
  return out.str();
}

}  // namespace slb
