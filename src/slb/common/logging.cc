#include "slb/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace slb {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so that interleaved multi-threaded logs stay line-atomic.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_min_level.load(std::memory_order_relaxed) ||
         level == LogLevel::kFatal;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories for terser output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace slb
