#include "slb/common/histogram.h"

#include <algorithm>
#include <cmath>

namespace slb {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  count_ = total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(size_t reservoir_capacity, uint64_t seed)
    : capacity_(reservoir_capacity), rng_(seed) {}

void Histogram::Add(double x) {
  stats_.Add(x);
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_.store(false, std::memory_order_relaxed);
    return;
  }
  // Reservoir sampling: keep each of the first N samples with prob cap/N.
  subsampled_ = true;
  const uint64_t seen = static_cast<uint64_t>(stats_.count());
  const uint64_t slot = rng_.NextBounded(seen);
  if (slot < capacity_) {
    samples_[slot] = x;
    sorted_.store(false, std::memory_order_relaxed);
  }
}

void Histogram::Merge(const Histogram& other) {
  stats_.Merge(other.stats_);
  if (other.subsampled_) subsampled_ = true;
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  if (capacity_ > 0 && samples_.size() > capacity_) {
    // Uniformly downsample the union back to capacity: partial Fisher-Yates
    // moves a uniform random subset into the prefix.
    for (size_t i = 0; i < capacity_; ++i) {
      const uint64_t j =
          i + rng_.NextBounded(static_cast<uint64_t>(samples_.size() - i));
      std::swap(samples_[i], samples_[j]);
    }
    samples_.resize(capacity_);
    subsampled_ = true;
  }
  sorted_.store(false, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  // Double-checked lazy sort. The sample multiset is logically unchanged, so
  // Quantile stays const; the mutex makes concurrent readers safe (the old
  // const_cast sort raced when two threads read percentiles at once) and the
  // release/acquire pair on sorted_ publishes the sorted vector to readers
  // that skip the lock.
  if (!sorted_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(sort_mu_);
    if (!sorted_.load(std::memory_order_relaxed)) {
      std::sort(samples_.begin(), samples_.end());
      sorted_.store(true, std::memory_order_release);
    }
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  // ceil(rank) <= size-1 mathematically; the min guards against any floating
  // point drift so the interpolation can never index past the last sample.
  const size_t hi = std::min(static_cast<size_t>(std::ceil(rank)),
                             samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace slb
