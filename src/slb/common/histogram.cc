#include "slb/common/histogram.h"

#include <algorithm>
#include <cmath>

namespace slb {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  count_ = total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(size_t reservoir_capacity, uint64_t seed)
    : capacity_(reservoir_capacity), rng_(seed) {}

void Histogram::Add(double x) {
  stats_.Add(x);
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Reservoir sampling: keep each of the first N samples with prob cap/N.
  subsampled_ = true;
  const uint64_t seen = static_cast<uint64_t>(stats_.count());
  const uint64_t slot = rng_.NextBounded(seen);
  if (slot < capacity_) {
    samples_[slot] = x;
    sorted_ = false;
  }
}

double Histogram::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    // Sorting is logically const: the sample multiset is unchanged.
    auto* self = const_cast<Histogram*>(this);
    std::sort(self->samples_.begin(), self->samples_.end());
    self->sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace slb
