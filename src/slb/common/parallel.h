// Simple blocking parallel-for over an index range.
//
// Experiment sweeps (one simulation per (z, n, algorithm) point) are
// embarrassingly parallel; this helper fans them out over hardware threads.
// Each worker thread processes a contiguous chunk, so callers that want
// determinism should make each index fully self-contained (own Rng seed).

#pragma once

#include <cstddef>
#include <functional>

namespace slb {

/// Runs fn(i) for every i in [0, count) across up to `num_threads` threads
/// (0 = hardware concurrency). Blocks until all indices complete. If `fn`
/// throws, the first exception (by observation order) is rethrown on the
/// calling thread after all workers join; remaining unclaimed indices are
/// skipped, so callers treating exceptions as fatal see consistent state.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace slb
