#include "slb/common/status.h"

namespace slb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace slb
