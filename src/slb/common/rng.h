// Deterministic, fast pseudo-random number generation.
//
// All randomized components of the library (workload generators, simulators,
// tie-breaking) take an explicit Rng so that every experiment is reproducible
// from a single seed. The generator is xoshiro256**, seeded via SplitMix64,
// which is the standard seeding recipe recommended by the xoshiro authors.

#pragma once

#include <array>
#include <cstdint>

namespace slb {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value into a well-distributed 64-bit value (stateless).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(&s);
}

/// xoshiro256** generator. Satisfies the C++ UniformRandomBitGenerator
/// concept so it can be used with <random> distributions when needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(&sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    // Multiply-shift maps a uniform 64-bit value into [0, bound). The bias is
    // at most bound / 2^64, negligible for every bound used in this library.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * static_cast<__uint128_t>(bound)) >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace slb
