#include "slb/common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace slb {

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  std::string body = text;
  int64_t multiplier = 1;
  char last = body.back();
  if (last == 'k' || last == 'K') {
    multiplier = 1000;
    body.pop_back();
  } else if (last == 'm' || last == 'M') {
    multiplier = 1000000;
    body.pop_back();
  } else if (last == 'g' || last == 'G') {
    multiplier = 1000000000;
    body.pop_back();
  }
  if (body.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(body.c_str(), &end, 10);
  if (errno != 0 || end == body.c_str() || *end != '\0') {
    // Allow scientific notation for integers too, e.g. "1e7".
    errno = 0;
    double as_double = std::strtod(body.c_str(), &end);
    if (errno != 0 || end == body.c_str() || *end != '\0') return false;
    if (std::floor(as_double) != as_double) return false;
    parsed = static_cast<long long>(as_double);
  }
  *out = static_cast<int64_t>(parsed) * multiplier;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::vector<std::string> SplitString(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string HumanCount(uint64_t value) {
  char buf[32];
  if (value >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(value) / 1e9);
  } else if (value >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(value) / 1e6);
  } else if (value >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(value) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  }
  return buf;
}

}  // namespace slb
