// Minimal leveled logging to stderr.
//
// The library itself logs nothing on hot paths; logging is used by the
// benchmark harness and examples for progress reporting. SLB_CHECK aborts
// the process on failure (fatal), mirroring the glog/Arrow DCHECK idiom.

#pragma once

#include <sstream>
#include <string>

namespace slb {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are discarded. Fatal is never
/// filtered.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool LogLevelEnabled(LogLevel level);

}  // namespace internal
}  // namespace slb

#define SLB_LOG(level)                                                         \
  if (!::slb::internal::LogLevelEnabled(::slb::LogLevel::k##level)) {          \
  } else                                                                       \
    ::slb::internal::LogMessage(::slb::LogLevel::k##level, __FILE__, __LINE__) \
        .stream()

/// Aborts with a diagnostic when `cond` is false. Enabled in all build types;
/// use only for programmer errors, not data-dependent conditions.
#define SLB_CHECK(cond)                                                      \
  if (cond) {                                                                \
  } else                                                                     \
    ::slb::internal::LogMessage(::slb::LogLevel::kFatal, __FILE__, __LINE__) \
        .stream()                                                            \
        << "Check failed: " #cond " "
