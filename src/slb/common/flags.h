// Tiny command-line flag parser for the benchmark harness and examples.
//
// Supports `--name=value`, `--name value`, and bare boolean `--name` /
// `--no-name`. Unrecognized flags produce an error Status so typos in
// experiment scripts fail loudly instead of silently using defaults.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "slb/common/status.h"

namespace slb {

/// Declarative flag set: register flags bound to caller-owned variables, then
/// Parse(argc, argv).
class FlagSet {
 public:
  explicit FlagSet(std::string program_description = "");

  /// Registers a flag bound to `*target`; the current value of `*target` is
  /// the default shown in help text. Pointers must outlive Parse().
  void AddInt64(const std::string& name, int64_t* target, const std::string& help);
  void AddDouble(const std::string& name, double* target, const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target, const std::string& help);

  /// Parses argv. Leftover positional arguments are available via
  /// positional(). Returns InvalidArgument on unknown flags or bad values.
  Status Parse(int argc, char** argv);

  /// Parses a pre-split token vector (convenient for tests).
  Status Parse(const std::vector<std::string>& args);

  const std::vector<std::string>& positional() const { return positional_; }

  /// True when `--help` was seen; Usage() has already been printed to stdout.
  bool help_requested() const { return help_requested_; }

  /// Human-readable help text for all registered flags.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };

  struct Flag {
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace slb
