#include "slb/sketch/decaying_space_saving.h"

#include "slb/common/logging.h"

namespace slb {

DecayingSpaceSaving::DecayingSpaceSaving(size_t capacity, uint64_t half_life)
    : inner_(capacity), half_life_(half_life) {
  SLB_CHECK(half_life >= 1) << "half life must be positive";
}

void DecayingSpaceSaving::Reset() {
  inner_.Reset();
  since_decay_ = 0;
  decays_ = 0;
}

uint64_t DecayingSpaceSaving::UpdateAndEstimate(uint64_t key) {
  if (++since_decay_ >= half_life_) {
    inner_.ScaleDown(2);
    since_decay_ = 0;
    ++decays_;
  }
  return inner_.UpdateAndEstimate(key);
}

}  // namespace slb
