#include "slb/sketch/decaying_space_saving.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

DecayingSpaceSaving::DecayingSpaceSaving(size_t capacity, uint64_t half_life)
    : DecayingSpaceSaving(capacity, half_life, AutoTune()) {}

DecayingSpaceSaving::DecayingSpaceSaving(size_t capacity, uint64_t half_life,
                                         AutoTune auto_tune)
    : inner_(capacity),
      half_life_(half_life),
      initial_half_life_(half_life),
      auto_tune_(auto_tune) {
  SLB_CHECK(half_life >= 1) << "half life must be positive";
  if (auto_tune_.enabled) {
    SLB_CHECK(auto_tune_.min_half_life >= 1);
    SLB_CHECK(auto_tune_.min_half_life <= auto_tune_.max_half_life);
    SLB_CHECK(auto_tune_.head_size >= 1);
    SLB_CHECK(auto_tune_.churn_threshold >= 0.0 &&
              auto_tune_.churn_threshold <= 1.0);
    SLB_CHECK(auto_tune_.stable_threshold >= 0.0 &&
              auto_tune_.stable_threshold <= 1.0);
    SLB_CHECK(auto_tune_.churn_threshold <= auto_tune_.stable_threshold)
        << "an overlap cannot be churning and stable at once";
    half_life_ = std::clamp(half_life_, auto_tune_.min_half_life,
                            auto_tune_.max_half_life);
    initial_half_life_ = half_life_;
  }
}

void DecayingSpaceSaving::Reset() {
  inner_.Reset();
  half_life_ = initial_half_life_;
  since_decay_ = 0;
  decays_ = 0;
  tune_shrinks_ = 0;
  tune_growths_ = 0;
  head_snapshot_.clear();
}

void DecayingSpaceSaving::TuneHalfLife() {
  std::vector<HeavyKey> counters = inner_.Counters();  // descending by count
  const size_t k = std::min(auto_tune_.head_size, counters.size());
  std::vector<uint64_t> head;
  head.reserve(k);
  for (size_t i = 0; i < k; ++i) head.push_back(counters[i].key);
  std::sort(head.begin(), head.end());

  if (!head_snapshot_.empty() && !head.empty()) {
    std::vector<uint64_t> common;
    std::set_intersection(head.begin(), head.end(), head_snapshot_.begin(),
                          head_snapshot_.end(), std::back_inserter(common));
    const double overlap = static_cast<double>(common.size()) /
                           static_cast<double>(head_snapshot_.size());
    if (overlap < auto_tune_.churn_threshold) {
      const uint64_t shrunk =
          std::max(auto_tune_.min_half_life, half_life_ / 2);
      tune_shrinks_ += shrunk != half_life_;
      half_life_ = shrunk;
    } else if (overlap >= auto_tune_.stable_threshold) {
      const uint64_t grown =
          std::min(auto_tune_.max_half_life, half_life_ * 2);
      tune_growths_ += grown != half_life_;
      half_life_ = grown;
    }
  }
  head_snapshot_ = std::move(head);
}

uint64_t DecayingSpaceSaving::UpdateAndEstimate(uint64_t key) {
  if (++since_decay_ >= half_life_) {
    if (auto_tune_.enabled) TuneHalfLife();
    inner_.ScaleDown(2);
    since_decay_ = 0;
    ++decays_;
  }
  return inner_.UpdateAndEstimate(key);
}

}  // namespace slb
