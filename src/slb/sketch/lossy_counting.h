// Lossy Counting (Manku & Motwani, VLDB'02).
//
// Divides the stream into windows of width ceil(1/epsilon). Each tracked key
// stores (count, delta) where delta bounds the occurrences it may have had
// before tracking started. At every window boundary, entries with
// count + delta <= current window id are pruned. Guarantees:
//   count <= true <= count + delta <= count + epsilon * N.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "slb/sketch/frequency_estimator.h"

namespace slb {

class LossyCounting final : public FrequencyEstimator {
 public:
  /// `epsilon` is the frequency error bound (e.g. 1/(10n) for head tracking
  /// at threshold 1/(5n)).
  explicit LossyCounting(double epsilon);

  uint64_t UpdateAndEstimate(uint64_t key) override;
  uint64_t Estimate(uint64_t key) const override;
  uint64_t total() const override { return total_; }
  std::vector<HeavyKey> HeavyHitters(double phi) const override;
  size_t memory_counters() const override { return entries_.size(); }
  void Reset() override;
  std::string name() const override { return "lossycounting"; }

  double epsilon() const { return epsilon_; }
  uint64_t window_width() const { return width_; }

 private:
  struct Entry {
    uint64_t count;
    uint64_t delta;
  };

  void PruneWindow();

  double epsilon_;
  uint64_t width_;
  uint64_t total_ = 0;
  uint64_t current_window_ = 1;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace slb
