// SpaceSaving heavy-hitter algorithm (Metwally, Agrawal, El Abbadi, ICDT'05),
// implemented with the Stream-Summary structure for O(1) updates.
//
// With `capacity` counters and N total updates:
//   * every monitored count overestimates the true count by at most N/capacity;
//   * every key with true count > N/capacity is monitored;
// which makes it exactly the tracker Sec. III-A of the paper needs: choosing
// capacity >= 10*n guarantees keys at threshold theta = 1/(5n) are found with
// relative error <= 1/2.
//
// The structure is mergeable (Berinde et al., TODS'10) for the distributed
// setting: see Merge().

#pragma once

#include <cstdint>
#include <vector>

#include "slb/common/flat_hash.h"
#include "slb/sketch/frequency_estimator.h"

namespace slb {

class SpaceSaving final : public FrequencyEstimator {
 public:
  /// `capacity` = number of monitored counters (the paper's O(1)-per-message,
  /// O(capacity)-memory regime).
  explicit SpaceSaving(size_t capacity);

  uint64_t UpdateAndEstimate(uint64_t key) override;
  uint64_t Estimate(uint64_t key) const override;
  uint64_t total() const override { return total_; }
  std::vector<HeavyKey> HeavyHitters(double phi) const override;
  size_t memory_counters() const override { return map_.size(); }
  void Reset() override;
  std::string name() const override { return "spacesaving"; }

  size_t capacity() const { return capacity_; }

  /// Smallest monitored count (0 while not full). An upper bound on the true
  /// count of ANY unmonitored key; also the eviction error floor.
  uint64_t min_count() const;

  /// Lower bound on the true count of `key` (count - error), 0 if unmonitored.
  uint64_t GuaranteedCount(uint64_t key) const;

  /// All monitored counters, sorted by descending count.
  std::vector<HeavyKey> Counters() const;

  /// Divides every count, error, and the total by `divisor` (integer
  /// division; counters reaching zero are dropped). Relative frequencies
  /// are preserved, which is what DecayingSpaceSaving's periodic halving
  /// relies on. O(capacity log capacity).
  void ScaleDown(uint64_t divisor);

  /// Merges `other` into this summary (distributed SpaceSaving, [12]).
  ///
  /// Counts of keys present in both summaries add; a key present in only one
  /// summary could have occurred up to the other's min_count() times there,
  /// so that bound is added to both its count and its error, preserving the
  /// invariant count >= true >= count - error. The union is then pruned back
  /// to `capacity` by descending count.
  void Merge(const SpaceSaving& other);

 private:
  static constexpr int32_t kNil = -1;

  // One monitored key. Counters with equal count are grouped into a bucket;
  // buckets form an ascending doubly-linked list, giving O(1) increment and
  // O(1) min eviction (classic Stream-Summary layout).
  struct Counter {
    uint64_t key;
    uint64_t count;
    uint64_t error;
    int32_t bucket;
    int32_t prev;  // sibling links within the bucket
    int32_t next;
  };

  struct Bucket {
    uint64_t count;
    int32_t head;  // first counter in this bucket
    int32_t prev;  // neighbouring buckets, ascending by count
    int32_t next;
  };

  // Moves counter `c` from its bucket to the bucket with count+1 (creating
  // it if needed), maintaining all invariants.
  void IncrementCounter(int32_t c);

  // Replaces the whole structure with `sorted_desc` (descending by count,
  // size <= capacity) and the given total. Used by Merge and ScaleDown.
  void RebuildFrom(const std::vector<HeavyKey>& sorted_desc, uint64_t new_total);

  void DetachCounter(int32_t c);
  void AttachCounter(int32_t c, int32_t bucket);
  int32_t AllocBucket(uint64_t count);
  void FreeBucketIfEmpty(int32_t b);

  size_t capacity_;
  uint64_t total_ = 0;
  std::vector<Counter> counters_;
  std::vector<Bucket> buckets_;
  std::vector<int32_t> free_buckets_;
  int32_t min_bucket_ = kNil;  // bucket with the smallest count
  FlatIndexMap map_;  // key -> counter index (flat: one probe, no node chase)
};

}  // namespace slb
