// Misra-Gries frequent-items summary (Misra & Gries, 1982).
//
// Keeps at most `capacity` counters. When a new key arrives into a full
// summary, all counters are decremented (zeroed ones are dropped) — the
// classic "cancel one of each" step. The global number of decrement rounds
// `decrements()` bounds the underestimation: for every key,
//   count <= true <= count + decrements().
// Amortized O(1) per update: each full-decrement round of cost O(capacity)
// cancels `capacity` prior increments.
//
// Provided as a drop-in alternative to SpaceSaving for the sketch ablation.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "slb/sketch/frequency_estimator.h"

namespace slb {

class MisraGries final : public FrequencyEstimator {
 public:
  explicit MisraGries(size_t capacity);

  uint64_t UpdateAndEstimate(uint64_t key) override;
  uint64_t Estimate(uint64_t key) const override;
  uint64_t total() const override { return total_; }
  std::vector<HeavyKey> HeavyHitters(double phi) const override;
  size_t memory_counters() const override { return counts_.size(); }
  void Reset() override;
  std::string name() const override { return "misragries"; }

  size_t capacity() const { return capacity_; }

  /// Number of global decrement rounds so far (== max underestimation).
  uint64_t decrements() const { return decrements_; }

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  uint64_t decrements_ = 0;
  std::unordered_map<uint64_t, uint64_t> counts_;
};

}  // namespace slb
