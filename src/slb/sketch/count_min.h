// Count-Min sketch (Cormode & Muthukrishnan, 2005) with a candidate set for
// heavy-hitter reporting.
//
// The sketch itself answers point queries with one-sided error:
//   true <= Estimate(key) <= true + epsilon * N   w.p. >= 1 - delta,
// for width = ceil(e / epsilon) and depth = ceil(ln(1/delta)).
// Because a plain CMS cannot enumerate keys, a bounded candidate map of the
// hottest recently-seen keys is maintained alongside (standard practice) so
// HeavyHitters() can be served.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "slb/sketch/frequency_estimator.h"

namespace slb {

class CountMin final : public FrequencyEstimator {
 public:
  /// `width` cells per row, `depth` rows, `candidates` bound on the tracked
  /// candidate heavy keys, `seed` for the row hash functions.
  CountMin(size_t width, size_t depth, size_t candidates, uint64_t seed = 7);

  /// Convenience: sizes the sketch for error `epsilon` w.p. 1-`delta`.
  static CountMin ForError(double epsilon, double delta, size_t candidates,
                           uint64_t seed = 7);

  uint64_t UpdateAndEstimate(uint64_t key) override;
  uint64_t Estimate(uint64_t key) const override;
  uint64_t total() const override { return total_; }
  std::vector<HeavyKey> HeavyHitters(double phi) const override;
  size_t memory_counters() const override {
    return width_ * depth_ + candidates_.size();
  }
  void Reset() override;
  std::string name() const override { return "countmin"; }

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

 private:
  size_t Cell(size_t row, uint64_t key) const;
  void MaybePruneCandidates();

  size_t width_;
  size_t depth_;
  size_t max_candidates_;
  uint64_t seed_;
  uint64_t total_ = 0;
  std::vector<uint64_t> cells_;  // row-major depth_ x width_
  // Tracked candidate heavy keys -> last estimated count.
  std::unordered_map<uint64_t, uint64_t> candidates_;
};

}  // namespace slb
