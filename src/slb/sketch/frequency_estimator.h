// Abstract interface for streaming frequency / heavy-hitter estimation.
//
// The paper's partitioners (Sec. III-A) need, per sender, an online answer to
// "is this key's frequency above threshold theta?" plus a snapshot of the
// estimated head of the distribution. SpaceSaving [11] is the algorithm the
// paper uses; Misra-Gries, Lossy Counting and Count-Min are provided as
// drop-in alternates for the sketch-ablation study (bench_ablation_sketch).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slb {

/// One reported heavy key: `count` is an upper bound on the true frequency,
/// `count - error` a lower bound (error == 0 means the count is exact).
struct HeavyKey {
  uint64_t key = 0;
  uint64_t count = 0;
  uint64_t error = 0;

  bool operator==(const HeavyKey&) const = default;
};

/// Streaming frequency estimator over a keyed stream.
///
/// Implementations guarantee that Estimate() never underestimates the true
/// count by more than their documented bound, and that HeavyHitters(phi)
/// returns a superset of all keys with true frequency >= phi * total().
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /// Observes one occurrence of `key` and returns the new estimated count
  /// (an upper bound on the true count). Hot path: O(1) for all provided
  /// implementations.
  virtual uint64_t UpdateAndEstimate(uint64_t key) = 0;

  /// Upper bound on the number of occurrences of `key` seen so far.
  virtual uint64_t Estimate(uint64_t key) const = 0;

  /// Total number of updates observed.
  virtual uint64_t total() const = 0;

  /// All keys whose estimated frequency is >= phi * total(), sorted by
  /// descending count. Guaranteed to contain every key with true frequency
  /// >= phi * total() (one-sided error).
  virtual std::vector<HeavyKey> HeavyHitters(double phi) const = 0;

  /// Number of counters/cells the structure currently holds (memory proxy).
  virtual size_t memory_counters() const = 0;

  /// Resets to the empty state.
  virtual void Reset() = 0;

  virtual std::string name() const = 0;
};

}  // namespace slb
