#include "slb/sketch/misra_gries.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

MisraGries::MisraGries(size_t capacity) : capacity_(capacity) {
  SLB_CHECK(capacity >= 1) << "MisraGries capacity must be positive";
  counts_.reserve(capacity * 2);
}

void MisraGries::Reset() {
  total_ = 0;
  decrements_ = 0;
  counts_.clear();
}

uint64_t MisraGries::UpdateAndEstimate(uint64_t key) {
  ++total_;
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    return ++it->second + decrements_;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(key, 1);
    return 1 + decrements_;
  }
  // Full: decrement every counter by one; the incoming key's single
  // occurrence cancels against the round as well (it is not inserted).
  ++decrements_;
  for (auto iter = counts_.begin(); iter != counts_.end();) {
    if (--iter->second == 0) {
      iter = counts_.erase(iter);
    } else {
      ++iter;
    }
  }
  return decrements_;  // key is unmonitored; upper bound is decrements_.
}

uint64_t MisraGries::Estimate(uint64_t key) const {
  auto it = counts_.find(key);
  const uint64_t stored = it == counts_.end() ? 0 : it->second;
  return stored + decrements_;
}

std::vector<HeavyKey> MisraGries::HeavyHitters(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<HeavyKey> out;
  for (const auto& [key, count] : counts_) {
    const uint64_t upper = count + decrements_;
    if (static_cast<double>(upper) >= threshold) {
      out.push_back(HeavyKey{key, upper, decrements_});
    }
  }
  std::sort(out.begin(), out.end(), [](const HeavyKey& a, const HeavyKey& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  return out;
}

}  // namespace slb
