#include "slb/sketch/lossy_counting.h"

#include <algorithm>
#include <cmath>

#include "slb/common/logging.h"

namespace slb {

LossyCounting::LossyCounting(double epsilon) : epsilon_(epsilon) {
  SLB_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon must be in (0,1)";
  width_ = static_cast<uint64_t>(std::ceil(1.0 / epsilon));
}

void LossyCounting::Reset() {
  total_ = 0;
  current_window_ = 1;
  entries_.clear();
}

void LossyCounting::PruneWindow() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.count + it->second.delta <= current_window_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t LossyCounting::UpdateAndEstimate(uint64_t key) {
  ++total_;
  auto it = entries_.find(key);
  uint64_t upper;
  if (it != entries_.end()) {
    ++it->second.count;
    upper = it->second.count + it->second.delta;
  } else {
    entries_.emplace(key, Entry{1, current_window_ - 1});
    upper = 1 + (current_window_ - 1);
  }
  if (total_ % width_ == 0) {
    PruneWindow();
    ++current_window_;
  }
  return upper;
}

uint64_t LossyCounting::Estimate(uint64_t key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // An untracked key may have occurred up to once per elapsed window.
    return current_window_ - 1;
  }
  return it->second.count + it->second.delta;
}

std::vector<HeavyKey> LossyCounting::HeavyHitters(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<HeavyKey> out;
  for (const auto& [key, entry] : entries_) {
    const uint64_t upper = entry.count + entry.delta;
    if (static_cast<double>(upper) >= threshold) {
      out.push_back(HeavyKey{key, upper, entry.delta});
    }
  }
  std::sort(out.begin(), out.end(), [](const HeavyKey& a, const HeavyKey& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  return out;
}

}  // namespace slb
