#include "slb/sketch/distributed_tracker.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

DistributedHeadTracker::DistributedHeadTracker(uint32_t num_sources,
                                               size_t capacity,
                                               uint64_t sync_interval)
    : capacity_(capacity), sync_interval_(sync_interval), global_(capacity) {
  SLB_CHECK(num_sources >= 1);
  SLB_CHECK(capacity >= 1);
  locals_.reserve(num_sources);
  for (uint32_t i = 0; i < num_sources; ++i) {
    locals_.push_back(std::make_unique<SpaceSaving>(capacity));
  }
  updates_since_sync_.assign(num_sources, 0);
}

void DistributedHeadTracker::Update(uint32_t source, uint64_t key) {
  SLB_CHECK(source < locals_.size());
  ++total_;
  locals_[source]->UpdateAndEstimate(key);
  if (sync_interval_ > 0 && ++updates_since_sync_[source] >= sync_interval_) {
    ForceSync();
  }
}

void DistributedHeadTracker::ForceSync() {
  // Merge every local delta into the global snapshot, then reset the deltas
  // (their mass now lives in the snapshot).
  for (auto& local : locals_) {
    if (local->total() == 0) continue;
    global_.Merge(*local);
    local->Reset();
  }
  std::fill(updates_since_sync_.begin(), updates_since_sync_.end(), 0);
  ++syncs_;
}

uint64_t DistributedHeadTracker::EstimateGlobal(uint32_t source,
                                                uint64_t key) const {
  SLB_CHECK(source < locals_.size());
  // Snapshot estimate plus the local delta. Deltas at OTHER sources since
  // the last sync are not visible — the staleness the sync period bounds.
  return global_.Estimate(key) + locals_[source]->Estimate(key);
}

bool DistributedHeadTracker::IsGlobalHeavy(uint32_t source, uint64_t key,
                                           double phi) const {
  return static_cast<double>(EstimateGlobal(source, key)) >=
         phi * static_cast<double>(total_);
}

std::vector<HeavyKey> DistributedHeadTracker::GlobalHeavyHitters(
    double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<HeavyKey> out;
  for (const HeavyKey& hk : global_.Counters()) {
    if (static_cast<double>(hk.count) >= threshold) out.push_back(hk);
  }
  return out;
}

}  // namespace slb
