#include "slb/sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "slb/common/logging.h"
#include "slb/hash/hash.h"

namespace slb {

CountMin::CountMin(size_t width, size_t depth, size_t candidates, uint64_t seed)
    : width_(width), depth_(depth), max_candidates_(candidates), seed_(seed) {
  SLB_CHECK(width >= 1 && depth >= 1) << "CountMin needs positive dimensions";
  SLB_CHECK(candidates >= 1) << "CountMin needs a positive candidate budget";
  cells_.assign(width_ * depth_, 0);
  candidates_.reserve(max_candidates_ * 2);
}

CountMin CountMin::ForError(double epsilon, double delta, size_t candidates,
                            uint64_t seed) {
  SLB_CHECK(epsilon > 0 && epsilon < 1) << "epsilon must be in (0,1)";
  SLB_CHECK(delta > 0 && delta < 1) << "delta must be in (0,1)";
  const size_t width = static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  const size_t depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMin(width, std::max<size_t>(depth, 1), candidates, seed);
}

size_t CountMin::Cell(size_t row, uint64_t key) const {
  const uint64_t h = SeededHash64(key, seed_ + 0x51ed2701u * (row + 1));
  return row * width_ + HashToRange(h, static_cast<uint32_t>(width_));
}

void CountMin::Reset() {
  total_ = 0;
  std::fill(cells_.begin(), cells_.end(), 0);
  candidates_.clear();
}

uint64_t CountMin::UpdateAndEstimate(uint64_t key) {
  ++total_;
  uint64_t est = ~uint64_t{0};
  for (size_t row = 0; row < depth_; ++row) {
    uint64_t& cell = cells_[Cell(row, key)];
    ++cell;
    est = std::min(est, cell);
  }
  candidates_[key] = est;
  MaybePruneCandidates();
  return est;
}

void CountMin::MaybePruneCandidates() {
  if (candidates_.size() <= max_candidates_ * 2) return;
  // Keep the max_candidates_ hottest; amortized cheap (runs every
  // ~max_candidates_ insertions).
  std::vector<std::pair<uint64_t, uint64_t>> all(candidates_.begin(),
                                                 candidates_.end());
  std::nth_element(all.begin(), all.begin() + max_candidates_, all.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  all.resize(max_candidates_);
  candidates_.clear();
  candidates_.insert(all.begin(), all.end());
}

uint64_t CountMin::Estimate(uint64_t key) const {
  uint64_t est = ~uint64_t{0};
  for (size_t row = 0; row < depth_; ++row) {
    est = std::min(est, cells_[Cell(row, key)]);
  }
  return est;
}

std::vector<HeavyKey> CountMin::HeavyHitters(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<HeavyKey> out;
  for (const auto& [key, cached] : candidates_) {
    const uint64_t est = Estimate(key);
    if (static_cast<double>(est) >= threshold) {
      // CMS cannot bound the per-key error exactly; report the generic bound.
      const uint64_t err_bound = static_cast<uint64_t>(
          std::ceil(std::exp(1.0) / static_cast<double>(width_) *
                    static_cast<double>(total_)));
      out.push_back(HeavyKey{key, est, err_bound});
    }
  }
  std::sort(out.begin(), out.end(), [](const HeavyKey& a, const HeavyKey& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  return out;
}

}  // namespace slb
