// Distributed heavy-hitter tracking across sources.
//
// Sec. III-A: "we track the head H of the key distribution in a distributed
// fashion across sources", leveraging the mergeable-summary generalization
// of SpaceSaving (Berinde et al., TODS'10 [12]). Each source owns a local
// SpaceSaving instance; a coordinator periodically collects and merges the
// local summaries into a global view and redistributes it. Between syncs,
// sources answer head queries from the latest global snapshot plus their
// local delta, so a key that becomes hot at ONE source is still detected
// globally after at most one sync period.
//
// This module is the communication-free simulation of that protocol: the
// coordinator is an object, the "network" is a method call, and the sync
// period is counted in per-source updates. The per-sender partitioners use
// purely local sketches by default (as the paper's implementation does);
// DistributedHeadTracker is the building block for deployments where
// sources see disjoint key subsets.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "slb/sketch/space_saving.h"

namespace slb {

class DistributedHeadTracker {
 public:
  /// `num_sources` participating sources, each with a `capacity`-counter
  /// local summary; the coordinator merges every `sync_interval` updates
  /// per source (0 = only on demand via ForceSync()).
  DistributedHeadTracker(uint32_t num_sources, size_t capacity,
                         uint64_t sync_interval);

  /// Records one observation at `source`. O(1); may trigger a sync.
  void Update(uint32_t source, uint64_t key);

  /// Global estimate: merged snapshot plus the source-local delta since the
  /// last sync (upper bound on the true global count).
  uint64_t EstimateGlobal(uint32_t source, uint64_t key) const;

  /// True when the key's global estimated frequency clears `phi`.
  bool IsGlobalHeavy(uint32_t source, uint64_t key, double phi) const;

  /// Heavy hitters of the merged snapshot at threshold `phi` of the global
  /// stream.
  std::vector<HeavyKey> GlobalHeavyHitters(double phi) const;

  /// Merges all local summaries into the global snapshot immediately and
  /// resets the local deltas.
  void ForceSync();

  /// Total updates observed across all sources (exact).
  uint64_t total() const { return total_; }

  uint64_t syncs_performed() const { return syncs_; }

  const SpaceSaving& global_snapshot() const { return global_; }
  const SpaceSaving& local_summary(uint32_t source) const {
    return *locals_[source];
  }

 private:
  size_t capacity_;
  uint64_t sync_interval_;
  uint64_t total_ = 0;
  uint64_t syncs_ = 0;
  std::vector<std::unique_ptr<SpaceSaving>> locals_;  // deltas since last sync
  std::vector<uint64_t> updates_since_sync_;
  SpaceSaving global_;
};

}  // namespace slb
