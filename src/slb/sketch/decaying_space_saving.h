// Time-decaying SpaceSaving — an extension beyond the paper.
//
// The paper's CT experiments (Figs. 11-12) show that concept drift "poses
// additional challenges to our method, especially for the heavy hitters
// algorithm that tracks the head": a plain sketch accumulates the WHOLE
// stream, so a key that was hot yesterday keeps out-counting today's hot
// key for a long time. This estimator applies periodic exponential decay:
// every `half_life` updates all counts (and the running total) are halved,
// making estimates recency-weighted while preserving SpaceSaving's
// one-sided error relative to the decayed stream.
//
// The half-life can additionally be AUTO-TUNED online: at every decay
// boundary the sketch compares its current top-k head against the previous
// boundary's snapshot. A churning head (small overlap) halves the half-life
// — forget faster, the hot set is moving; a stable head (large overlap)
// doubles it — decay is pure error when nothing changes. The adjustment is
// a deterministic function of the update sequence, so seeded experiments
// stay reproducible (golden tests in tests/sketch/decaying_test.cc).
//
// Used via SketchKind::kDecayingSpaceSaving in PartitionerOptions
// (decay_half_life / decay_auto_tune knobs); the sketch-ablation and
// adversarial-headroom benches quantify the effect on dynamic workloads.

#pragma once

#include <cstdint>
#include <vector>

#include "slb/sketch/space_saving.h"

namespace slb {

class DecayingSpaceSaving final : public FrequencyEstimator {
 public:
  /// Online half-life adaptation policy (disabled by default).
  struct AutoTune {
    bool enabled = false;
    /// Clamp bounds for the adapted half-life.
    uint64_t min_half_life = 256;
    uint64_t max_half_life = 1ULL << 22;
    /// Top-k head snapshot compared across decay boundaries.
    size_t head_size = 8;
    /// Head overlap below this fraction halves the half-life.
    double churn_threshold = 0.5;
    /// Head overlap at/above this fraction doubles the half-life.
    double stable_threshold = 0.875;
  };

  /// `capacity` monitored counters; counts halve every `half_life` updates
  /// (the *starting* half-life when auto-tuning is enabled).
  DecayingSpaceSaving(size_t capacity, uint64_t half_life);
  DecayingSpaceSaving(size_t capacity, uint64_t half_life, AutoTune auto_tune);

  uint64_t UpdateAndEstimate(uint64_t key) override;
  uint64_t Estimate(uint64_t key) const override { return inner_.Estimate(key); }
  /// Decayed stream mass (halved together with the counters, so frequency
  /// ratios Estimate()/total() stay comparable against thresholds).
  uint64_t total() const override { return inner_.total(); }
  std::vector<HeavyKey> HeavyHitters(double phi) const override {
    return inner_.HeavyHitters(phi);
  }
  size_t memory_counters() const override { return inner_.memory_counters(); }
  void Reset() override;
  std::string name() const override { return "decaying-spacesaving"; }

  /// Current half-life (== initial_half_life() unless auto-tuning moved it).
  uint64_t half_life() const { return half_life_; }
  uint64_t initial_half_life() const { return initial_half_life_; }
  const AutoTune& auto_tune() const { return auto_tune_; }
  uint64_t decays_performed() const { return decays_; }
  /// Auto-tune adjustments so far (halvings / doublings).
  uint64_t tune_shrinks() const { return tune_shrinks_; }
  uint64_t tune_growths() const { return tune_growths_; }
  const SpaceSaving& inner() const { return inner_; }

 private:
  /// Compares the current top-k head with the last boundary's snapshot and
  /// adapts half_life_; called at every decay boundary when enabled.
  void TuneHalfLife();

  SpaceSaving inner_;
  uint64_t half_life_;
  uint64_t initial_half_life_;
  AutoTune auto_tune_;
  uint64_t since_decay_ = 0;
  uint64_t decays_ = 0;
  uint64_t tune_shrinks_ = 0;
  uint64_t tune_growths_ = 0;
  std::vector<uint64_t> head_snapshot_;  // sorted keys of the previous head
};

}  // namespace slb
