// Time-decaying SpaceSaving — an extension beyond the paper.
//
// The paper's CT experiments (Figs. 11-12) show that concept drift "poses
// additional challenges to our method, especially for the heavy hitters
// algorithm that tracks the head": a plain sketch accumulates the WHOLE
// stream, so a key that was hot yesterday keeps out-counting today's hot
// key for a long time. This estimator applies periodic exponential decay:
// every `half_life` updates all counts (and the running total) are halved,
// making estimates recency-weighted while preserving SpaceSaving's
// one-sided error relative to the decayed stream.
//
// Used via SketchKind::kDecayingSpaceSaving in PartitionerOptions; the
// sketch-ablation bench quantifies the effect on drifting workloads.

#pragma once

#include <cstdint>

#include "slb/sketch/space_saving.h"

namespace slb {

class DecayingSpaceSaving final : public FrequencyEstimator {
 public:
  /// `capacity` monitored counters; counts halve every `half_life` updates.
  DecayingSpaceSaving(size_t capacity, uint64_t half_life);

  uint64_t UpdateAndEstimate(uint64_t key) override;
  uint64_t Estimate(uint64_t key) const override { return inner_.Estimate(key); }
  /// Decayed stream mass (halved together with the counters, so frequency
  /// ratios Estimate()/total() stay comparable against thresholds).
  uint64_t total() const override { return inner_.total(); }
  std::vector<HeavyKey> HeavyHitters(double phi) const override {
    return inner_.HeavyHitters(phi);
  }
  size_t memory_counters() const override { return inner_.memory_counters(); }
  void Reset() override;
  std::string name() const override { return "decaying-spacesaving"; }

  uint64_t half_life() const { return half_life_; }
  uint64_t decays_performed() const { return decays_; }
  const SpaceSaving& inner() const { return inner_; }

 private:
  SpaceSaving inner_;
  uint64_t half_life_;
  uint64_t since_decay_ = 0;
  uint64_t decays_ = 0;
};

}  // namespace slb
