#include "slb/sketch/space_saving.h"

#include <algorithm>
#include <unordered_map>

#include "slb/common/logging.h"

namespace slb {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  SLB_CHECK(capacity >= 1) << "SpaceSaving capacity must be positive";
  counters_.reserve(capacity_);
  map_.Reserve(capacity_);
}

void SpaceSaving::Reset() {
  total_ = 0;
  counters_.clear();
  buckets_.clear();
  free_buckets_.clear();
  min_bucket_ = kNil;
  map_.Clear();
}

int32_t SpaceSaving::AllocBucket(uint64_t count) {
  int32_t b;
  if (!free_buckets_.empty()) {
    b = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    b = static_cast<int32_t>(buckets_.size());
    buckets_.push_back(Bucket{});
  }
  buckets_[b] = Bucket{count, kNil, kNil, kNil};
  return b;
}

void SpaceSaving::FreeBucketIfEmpty(int32_t b) {
  Bucket& bucket = buckets_[b];
  if (bucket.head != kNil) return;
  if (bucket.prev != kNil) buckets_[bucket.prev].next = bucket.next;
  if (bucket.next != kNil) buckets_[bucket.next].prev = bucket.prev;
  if (min_bucket_ == b) min_bucket_ = bucket.next;
  free_buckets_.push_back(b);
}

void SpaceSaving::DetachCounter(int32_t c) {
  Counter& counter = counters_[c];
  if (counter.prev != kNil) counters_[counter.prev].next = counter.next;
  if (counter.next != kNil) counters_[counter.next].prev = counter.prev;
  Bucket& bucket = buckets_[counter.bucket];
  if (bucket.head == c) bucket.head = counter.next;
  counter.prev = counter.next = kNil;
}

void SpaceSaving::AttachCounter(int32_t c, int32_t b) {
  Counter& counter = counters_[c];
  Bucket& bucket = buckets_[b];
  counter.bucket = b;
  counter.prev = kNil;
  counter.next = bucket.head;
  if (bucket.head != kNil) counters_[bucket.head].prev = c;
  bucket.head = c;
}

void SpaceSaving::IncrementCounter(int32_t c) {
  Counter& counter = counters_[c];
  const int32_t old_b = counter.bucket;
  const uint64_t new_count = counter.count + 1;

  DetachCounter(c);
  counter.count = new_count;

  const int32_t next_b = buckets_[old_b].next;
  int32_t target;
  if (next_b != kNil && buckets_[next_b].count == new_count) {
    target = next_b;
  } else {
    target = AllocBucket(new_count);
    // Link `target` right after old_b. Note AllocBucket may have invalidated
    // no references (index-based), but re-read neighbours after allocation.
    Bucket& old_bucket = buckets_[old_b];
    buckets_[target].prev = old_b;
    buckets_[target].next = old_bucket.next;
    if (old_bucket.next != kNil) buckets_[old_bucket.next].prev = target;
    old_bucket.next = target;
  }
  AttachCounter(c, target);
  FreeBucketIfEmpty(old_b);
}

uint64_t SpaceSaving::UpdateAndEstimate(uint64_t key) {
  ++total_;
  const int32_t found = map_.Get(key);
  if (found != FlatIndexMap::kAbsent) {
    IncrementCounter(found);
    return counters_[found].count;
  }

  if (counters_.size() < capacity_) {
    // Monitor the new key with exact count 1.
    const int32_t c = static_cast<int32_t>(counters_.size());
    counters_.push_back(Counter{key, 1, 0, kNil, kNil, kNil});
    int32_t b;
    if (min_bucket_ != kNil && buckets_[min_bucket_].count == 1) {
      b = min_bucket_;
    } else {
      b = AllocBucket(1);
      buckets_[b].next = min_bucket_;
      if (min_bucket_ != kNil) buckets_[min_bucket_].prev = b;
      min_bucket_ = b;
    }
    AttachCounter(c, b);
    map_.Set(key, c);
    return 1;
  }

  // Evict the (a) counter with the minimum count and recycle it for `key`,
  // charging the evicted count as error (SpaceSaving replacement rule).
  const int32_t c = buckets_[min_bucket_].head;
  Counter& counter = counters_[c];
  map_.Erase(counter.key);
  counter.error = counter.count;
  counter.key = key;
  map_.Set(key, c);
  IncrementCounter(c);
  return counters_[c].count;
}

uint64_t SpaceSaving::Estimate(uint64_t key) const {
  const int32_t c = map_.Get(key);
  if (c != FlatIndexMap::kAbsent) return counters_[c].count;
  // Any unmonitored key occurred at most min_count() times.
  return counters_.size() < capacity_ ? 0 : min_count();
}

uint64_t SpaceSaving::min_count() const {
  if (min_bucket_ == kNil) return 0;
  return buckets_[min_bucket_].count;
}

uint64_t SpaceSaving::GuaranteedCount(uint64_t key) const {
  const int32_t idx = map_.Get(key);
  if (idx == FlatIndexMap::kAbsent) return 0;
  const Counter& c = counters_[idx];
  return c.count - c.error;
}

std::vector<HeavyKey> SpaceSaving::Counters() const {
  std::vector<HeavyKey> out;
  out.reserve(counters_.size());
  for (const Counter& c : counters_) {
    out.push_back(HeavyKey{c.key, c.count, c.error});
  }
  std::sort(out.begin(), out.end(), [](const HeavyKey& a, const HeavyKey& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  return out;
}

std::vector<HeavyKey> SpaceSaving::HeavyHitters(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<HeavyKey> out;
  for (const Counter& c : counters_) {
    if (static_cast<double>(c.count) >= threshold) {
      out.push_back(HeavyKey{c.key, c.count, c.error});
    }
  }
  std::sort(out.begin(), out.end(), [](const HeavyKey& a, const HeavyKey& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  return out;
}

void SpaceSaving::Merge(const SpaceSaving& other) {
  const uint64_t my_min = counters_.size() < capacity_ ? 0 : min_count();
  const uint64_t other_min =
      other.counters_.size() < other.capacity_ ? 0 : other.min_count();

  std::unordered_map<uint64_t, HeavyKey> merged;
  merged.reserve(map_.size() + other.map_.size());
  for (const Counter& c : counters_) {
    merged[c.key] = HeavyKey{c.key, c.count, c.error};
  }
  for (const Counter& c : other.counters_) {
    auto [it, inserted] = merged.emplace(c.key, HeavyKey{c.key, c.count, c.error});
    if (!inserted) {
      it->second.count += c.count;
      it->second.error += c.error;
    } else if (my_min > 0) {
      // Key unseen locally: it may have occurred up to my_min times here.
      it->second.count += my_min;
      it->second.error += my_min;
    }
  }
  for (auto& [key, hk] : merged) {
    if (!other.map_.Contains(key) && other_min > 0) {
      hk.count += other_min;
      hk.error += other_min;
    }
  }

  std::vector<HeavyKey> all;
  all.reserve(merged.size());
  for (auto& [key, hk] : merged) all.push_back(hk);
  std::sort(all.begin(), all.end(), [](const HeavyKey& a, const HeavyKey& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  if (all.size() > capacity_) all.resize(capacity_);

  RebuildFrom(all, total_ + other.total_);
}

void SpaceSaving::RebuildFrom(const std::vector<HeavyKey>& sorted_desc,
                              uint64_t new_total) {
  Reset();
  total_ = new_total;
  // Rebuild the stream-summary coldest-first so bucket construction walks
  // ascending counts (amortized O(1) bucket lookup).
  for (auto it = sorted_desc.rbegin(); it != sorted_desc.rend(); ++it) {
    const int32_t c = static_cast<int32_t>(counters_.size());
    counters_.push_back(Counter{it->key, it->count, it->error, kNil, kNil, kNil});
    int32_t b = min_bucket_;
    int32_t last = kNil;
    while (b != kNil && buckets_[b].count < it->count) {
      last = b;
      b = buckets_[b].next;
    }
    if (b != kNil && buckets_[b].count == it->count) {
      AttachCounter(c, b);
    } else {
      const int32_t nb = AllocBucket(it->count);
      buckets_[nb].prev = last;
      buckets_[nb].next = b;
      if (last != kNil) {
        buckets_[last].next = nb;
      } else {
        min_bucket_ = nb;
      }
      if (b != kNil) buckets_[b].prev = nb;
      AttachCounter(c, nb);
    }
    map_.Set(it->key, c);
  }
}

void SpaceSaving::ScaleDown(uint64_t divisor) {
  SLB_CHECK(divisor >= 1);
  if (divisor == 1 || counters_.empty()) {
    total_ /= divisor;
    return;
  }
  std::vector<HeavyKey> scaled;
  scaled.reserve(counters_.size());
  for (const Counter& c : counters_) {
    const uint64_t count = c.count / divisor;
    if (count == 0) continue;  // decayed out entirely
    scaled.push_back(HeavyKey{c.key, count, c.error / divisor});
  }
  std::sort(scaled.begin(), scaled.end(), [](const HeavyKey& a, const HeavyKey& b) {
    return a.count > b.count || (a.count == b.count && a.key < b.key);
  });
  RebuildFrom(scaled, total_ / divisor);
}

}  // namespace slb
