// Sender-local state behind PartitionerOptions::balance_on (ROADMAP item 2).
//
// Greedy min-choice partitioners keep an integer routed-message count per
// worker. When a cost model is attached, the comparison signal becomes
// either the cumulative service cost or the outstanding (in-flight) cost
// under a deterministic constant-rate completion model. Outstanding work is
// drained lazily: between touches a worker's backlog decays linearly at
// service_rate per sender step and clamps at zero, so reading the signal is
// O(1) and exact — no per-message sweep over all workers. Shared by GreedyD
// and HeadTailPartitioner so both cost-aware paths stay byte-identical.
//
// The in-flight signal alone is degenerate at low utilization: once every
// candidate's backlog has drained to zero the comparison ties on 0.0 and
// the choice collapses to the first hash function — plain key hashing. The
// signal therefore carries a cumulative-cost TieBreak() that callers
// compare lexicographically after the primary signal, so an idle system
// falls back to cost-balanced greedy instead of degenerating.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "slb/core/partitioner.h"

namespace slb {

class CostSignal {
 public:
  void Init(const PartitionerOptions& options) {
    mode_ = options.balance_on;
    cost_model_ = options.cost_model;
    service_rate_ = options.service_rate;
    value_.assign(options.num_workers, 0.0);
    touched_.assign(options.num_workers, 0);
    if (mode_ == BalanceSignal::kInFlight) {
      cumulative_.assign(options.num_workers, 0.0);
    }
  }

  /// True when routing must compare this signal instead of message counts.
  bool active() const { return mode_ != BalanceSignal::kCount; }

  /// The signal for `worker` at sender step `now` (messages routed so far).
  double At(uint32_t worker, uint64_t now) const {
    if (mode_ == BalanceSignal::kCost) return value_[worker];
    const double drained =
        service_rate_ * static_cast<double>(now - touched_[worker]);
    const double outstanding = value_[worker] - drained;
    return outstanding > 0.0 ? outstanding : 0.0;
  }

  /// Secondary comparison key: cumulative cost, compared only when At()
  /// ties (which in kInFlight mode means both backlogs are empty).
  double TieBreak(uint32_t worker) const {
    return mode_ == BalanceSignal::kInFlight ? cumulative_[worker]
                                             : value_[worker];
  }

  /// Cost of the message about to be routed. Only valid when active().
  double CostOf(uint64_t key) const { return cost_model_->CostOf(key); }

  /// Charges `cost` to the chosen worker at step `now`.
  void OnRoute(uint32_t worker, double cost, uint64_t now) {
    if (mode_ == BalanceSignal::kInFlight) {
      value_[worker] = At(worker, now) + cost;
      touched_[worker] = now;
      cumulative_[worker] += cost;
    } else {
      value_[worker] += cost;
    }
  }

  /// Keeps surviving workers' signal; added workers start empty at `now`.
  void Rescale(uint32_t new_num_workers, uint64_t now) {
    value_.resize(new_num_workers, 0.0);
    touched_.resize(new_num_workers, now);
    if (mode_ == BalanceSignal::kInFlight) {
      cumulative_.resize(new_num_workers, 0.0);
    }
  }

 private:
  BalanceSignal mode_ = BalanceSignal::kCount;
  std::shared_ptr<const KeyCostFunction> cost_model_;
  double service_rate_ = 0.0;
  std::vector<double> value_;     // cumulative cost, or outstanding cost as
                                  // of the worker's `touched_` step
  std::vector<uint64_t> touched_; // kInFlight: step of last materialization
  std::vector<double> cumulative_;  // kInFlight: cumulative cost tie-break
};

}  // namespace slb
