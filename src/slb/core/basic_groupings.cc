#include "slb/core/basic_groupings.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

KeyGrouping::KeyGrouping(const PartitionerOptions& options)
    : family_(1, options.num_workers, options.hash_seed) {}

uint32_t KeyGrouping::Route(uint64_t key) {
  ++messages_;
  return family_.Worker(key, 0);
}

Status KeyGrouping::Rescale(uint32_t new_num_workers) {
  if (new_num_workers < 1) {
    return Status::InvalidArgument("rescale needs at least one worker");
  }
  family_ = HashFamily(1, new_num_workers, family_.seed());
  return Status::OK();
}

ShuffleGrouping::ShuffleGrouping(const PartitionerOptions& options)
    : num_workers_(options.num_workers) {
  SLB_CHECK(num_workers_ >= 1);
}

uint32_t ShuffleGrouping::Route(uint64_t /*key*/) {
  ++messages_;
  const uint32_t worker = next_;
  next_ = (next_ + 1) % num_workers_;
  return worker;
}

Status ShuffleGrouping::Rescale(uint32_t new_num_workers) {
  if (new_num_workers < 1) {
    return Status::InvalidArgument("rescale needs at least one worker");
  }
  num_workers_ = new_num_workers;
  next_ %= num_workers_;
  return Status::OK();
}

GreedyD::GreedyD(const PartitionerOptions& options, uint32_t d, std::string name)
    : family_(std::clamp(d, 1u, options.num_workers), options.num_workers,
              options.hash_seed),
      requested_d_(d),
      d_(std::clamp(d, 1u, options.num_workers)),
      name_(std::move(name)),
      loads_(options.num_workers, 0) {
  SLB_CHECK(options.num_workers >= 1);
  signal_.Init(options);
}

Status GreedyD::Rescale(uint32_t new_num_workers) {
  if (new_num_workers < 1) {
    return Status::InvalidArgument("rescale needs at least one worker");
  }
  d_ = std::clamp(requested_d_, 1u, new_num_workers);
  family_ = HashFamily(d_, new_num_workers, family_.seed());
  loads_.resize(new_num_workers, 0);
  signal_.Rescale(new_num_workers, messages_);
  return Status::OK();
}

uint32_t GreedyD::Route(uint64_t key) {
  ++messages_;
  if (signal_.active()) {
    // Cost-aware path: d-way min over the cost/in-flight signal. The
    // candidate set is identical to the count path (same hash family); no
    // branchless special case — the cost-model call dominates anyway.
    uint32_t best = family_.Worker(key, 0);
    double best_load = signal_.At(best, messages_);
    double best_tie = signal_.TieBreak(best);
    for (uint32_t i = 1; i < d_; ++i) {
      const uint32_t candidate = family_.Worker(key, i);
      const double load = signal_.At(candidate, messages_);
      const double tie = signal_.TieBreak(candidate);
      if (load < best_load || (load == best_load && tie < best_tie)) {
        best = candidate;
        best_load = load;
        best_tie = tie;
      }
    }
    ++loads_[best];
    signal_.OnRoute(best, signal_.CostOf(key), messages_);
    return best;
  }
  uint32_t best;
  if (d_ == 2) {
    // The PKG fast path: pair-hash both candidates, pick the lighter one
    // with a branchless select (skewed streams make the comparison outcome
    // unpredictable, so a cmov beats a branch here).
    uint32_t w0, w1;
    family_.Worker2(key, &w0, &w1);
    best = loads_[w1] < loads_[w0] ? w1 : w0;
  } else {
    best = family_.Worker(key, 0);
    uint64_t best_load = loads_[best];
    for (uint32_t i = 1; i < d_; ++i) {
      const uint32_t candidate = family_.Worker(key, i);
      if (loads_[candidate] < best_load) {
        best = candidate;
        best_load = loads_[candidate];
      }
    }
  }
  ++loads_[best];
  return best;
}

void GreedyD::RouteBatch(const uint64_t* keys, size_t count, uint32_t* out) {
  // Route() is final on this type, so the loop body is a direct call the
  // compiler can inline — one virtual dispatch per batch, not per message.
  for (size_t i = 0; i < count; ++i) out[i] = GreedyD::Route(keys[i]);
}

PartialKeyGrouping::PartialKeyGrouping(const PartitionerOptions& options)
    : inner_(options, 2, "PKG") {}

}  // namespace slb
