#include <algorithm>
#include <cctype>

#include "slb/core/basic_groupings.h"
#include "slb/core/consistent_hash.h"
#include "slb/core/d_choices.h"
#include "slb/core/head_tail_partitioner.h"
#include "slb/core/partitioner.h"

namespace slb {

namespace {

std::string ToLower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return text;
}

}  // namespace

Result<AlgorithmKind> ParseAlgorithmKind(const std::string& text) {
  const std::string t = ToLower(text);
  if (t == "kg" || t == "key" || t == "keygrouping") {
    return AlgorithmKind::kKeyGrouping;
  }
  if (t == "sg" || t == "shuffle" || t == "shufflegrouping") {
    return AlgorithmKind::kShuffleGrouping;
  }
  if (t == "pkg" || t == "partial") return AlgorithmKind::kPkg;
  if (t == "dc" || t == "d-c" || t == "dchoices" || t == "d-choices") {
    return AlgorithmKind::kDChoices;
  }
  if (t == "wc" || t == "w-c" || t == "wchoices" || t == "w-choices") {
    return AlgorithmKind::kWChoices;
  }
  if (t == "rr" || t == "roundrobin" || t == "round-robin") {
    return AlgorithmKind::kRoundRobinHead;
  }
  if (t == "fixed" || t == "fixedd" || t == "fixed-d") {
    return AlgorithmKind::kFixedDChoices;
  }
  if (t == "greedyd" || t == "greedy-d") return AlgorithmKind::kGreedyD;
  if (t == "ch" || t == "consistent" || t == "consistent-hash") {
    return AlgorithmKind::kConsistentHash;
  }
  return Status::InvalidArgument("unknown algorithm: " + text);
}

std::string AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kKeyGrouping:
      return "KG";
    case AlgorithmKind::kShuffleGrouping:
      return "SG";
    case AlgorithmKind::kPkg:
      return "PKG";
    case AlgorithmKind::kDChoices:
      return "D-C";
    case AlgorithmKind::kWChoices:
      return "W-C";
    case AlgorithmKind::kRoundRobinHead:
      return "RR";
    case AlgorithmKind::kFixedDChoices:
      return "Fixed-D";
    case AlgorithmKind::kGreedyD:
      return "Greedy-D";
    case AlgorithmKind::kConsistentHash:
      return "CH";
  }
  return "?";
}

Result<std::unique_ptr<StreamPartitioner>> CreatePartitioner(
    AlgorithmKind kind, const PartitionerOptions& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.theta_ratio <= 0.0) {
    return Status::InvalidArgument("theta_ratio must be positive");
  }
  if (options.balance_on != BalanceSignal::kCount &&
      options.cost_model == nullptr) {
    return Status::InvalidArgument(
        "balance_on=cost/in-flight requires a cost model");
  }
  if (options.balance_on == BalanceSignal::kInFlight &&
      !(options.service_rate > 0.0)) {
    return Status::InvalidArgument(
        "in-flight balancing requires service_rate > 0");
  }
  switch (kind) {
    case AlgorithmKind::kKeyGrouping:
      return std::unique_ptr<StreamPartitioner>(new KeyGrouping(options));
    case AlgorithmKind::kShuffleGrouping:
      return std::unique_ptr<StreamPartitioner>(new ShuffleGrouping(options));
    case AlgorithmKind::kPkg:
      return std::unique_ptr<StreamPartitioner>(new PartialKeyGrouping(options));
    case AlgorithmKind::kDChoices:
      return std::unique_ptr<StreamPartitioner>(new DChoices(options));
    case AlgorithmKind::kWChoices:
      return std::unique_ptr<StreamPartitioner>(new WChoices(options));
    case AlgorithmKind::kRoundRobinHead:
      return std::unique_ptr<StreamPartitioner>(new RoundRobinHead(options));
    case AlgorithmKind::kFixedDChoices:
      return std::unique_ptr<StreamPartitioner>(new FixedDChoices(options));
    case AlgorithmKind::kGreedyD:
      return std::unique_ptr<StreamPartitioner>(
          new GreedyD(options, options.fixed_d, "Greedy-D"));
    case AlgorithmKind::kConsistentHash:
      return std::unique_ptr<StreamPartitioner>(
          new ConsistentHashGrouping(options));
  }
  return Status::InvalidArgument("unhandled algorithm kind");
}

}  // namespace slb
