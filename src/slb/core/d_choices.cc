#include "slb/core/d_choices.h"

#include <algorithm>

namespace slb {

void DChoices::Reoptimize() {
  const FrequencyEstimator& sk = sketch();
  if (sk.total() == 0) return;
  ++reoptimize_count_;

  // Snapshot the estimated head from the sketch: keys whose estimated
  // frequency is at least theta. Convert counts to probabilities.
  const auto heavy = sk.HeavyHitters(options().theta());
  if (heavy.empty()) {
    d_ = 2;
    return;
  }
  std::vector<double> probs;
  probs.reserve(heavy.size());
  const double total = static_cast<double>(sk.total());
  for (const HeavyKey& hk : heavy) {
    probs.push_back(static_cast<double>(hk.count) / total);
  }
  const HeadProfile head = HeadProfile::FromProbabilities(std::move(probs));
  d_ = std::max<uint32_t>(
      2, FindOptimalChoices(head, num_workers(), options().epsilon));
}

}  // namespace slb
