// Stream partitioning interface (Sec. II-B / Sec. III of the paper).
//
// A StreamPartitioner is *sender-local* state: each source operator instance
// owns one. Route(key) returns the downstream worker for the next message
// with that key, updating the sender's local load estimate, exactly as in
// Algorithm 1. All senders share hash seeds, so a key's candidate worker set
// is identical across senders; load vectors and sketches are per-sender
// ("the load is determined based only on local information available at the
// sender", Sec. III-B).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/status.h"

namespace slb {

/// The grouping schemes of Table II plus internal building blocks.
enum class AlgorithmKind {
  kKeyGrouping,     // KG : hashing, 1 choice
  kShuffleGrouping, // SG : round-robin, stateless
  kPkg,             // PKG: power of both choices [7]
  kDChoices,        // D-C: head keys get analytically-minimal d choices
  kWChoices,        // W-C: head keys get all n workers
  kRoundRobinHead,  // RR : head keys round-robin, tail PKG (baseline)
  kFixedDChoices,   // head keys get a caller-fixed d (used by Fig. 9 search)
  kGreedyD,         // every key gets d choices (power-of-d ablation)
  kConsistentHash,  // CH : ring with virtual nodes; minimal-movement rescale
};

/// Every AlgorithmKind, for tests/benches that iterate all algorithms.
/// Append here when extending the enum — the build smoke test walks this
/// list, so a kind missing from it escapes the factory-drift canary.
inline constexpr AlgorithmKind kAllAlgorithmKinds[] = {
    AlgorithmKind::kKeyGrouping,    AlgorithmKind::kShuffleGrouping,
    AlgorithmKind::kPkg,            AlgorithmKind::kDChoices,
    AlgorithmKind::kWChoices,       AlgorithmKind::kRoundRobinHead,
    AlgorithmKind::kFixedDChoices,  AlgorithmKind::kGreedyD,
    AlgorithmKind::kConsistentHash,
};

/// Parses "kg", "sg", "pkg", "dc"/"d-c", "wc"/"w-c", "rr", "ch"
/// (case-insensitive).
Result<AlgorithmKind> ParseAlgorithmKind(const std::string& text);
std::string AlgorithmKindName(AlgorithmKind kind);

/// Which frequency estimator head-aware algorithms use (sketch ablation).
enum class SketchKind {
  kSpaceSaving,          // the paper's choice [11]
  kMisraGries,
  kLossyCounting,
  kCountMin,
  kDecayingSpaceSaving,  // recency-weighted extension for drifting streams
};

/// Per-key service-cost oracle (ROADMAP item 2). Implementations must be
/// pure functions of (construction options, key): senders, the ground-truth
/// tracker, and the mis-rank analysis evaluate costs independently — and
/// concurrently — so two oracles built from the same options must agree
/// byte-for-byte. slb/workload/cost_model.h provides the catalog
/// implementations behind MakeCostModel().
class KeyCostFunction {
 public:
  virtual ~KeyCostFunction() = default;
  /// Service cost of one message carrying `key`; always > 0.
  virtual double CostOf(uint64_t key) const = 0;
};

/// Which sender-local quantity the greedy min-choice comparisons minimize.
/// Only algorithms with a least-loaded step (PKG/Greedy-d and the head-aware
/// schemes) read it; KG/SG/CH route load-obliviously and ignore it.
enum class BalanceSignal {
  kCount,     // cumulative routed messages — the paper's unit-cost signal
  kCost,      // cumulative service cost (requires cost_model)
  kInFlight,  // outstanding (routed minus completed) service cost — the
              // partialkey exemplar's contention-avoidance variant
              // (requires cost_model and service_rate > 0)
};

struct PartitionerOptions {
  uint32_t num_workers = 1;

  /// Seed for the hash family; MUST be equal across senders of one stream.
  uint64_t hash_seed = 0;

  /// Head threshold as a multiple of 1/n: theta = theta_ratio / n.
  /// Paper default theta = 1/(5n) (Sec. III-A) => theta_ratio = 0.2.
  double theta_ratio = 0.2;

  /// Imbalance tolerance epsilon for the D-Choices optimizer (Table III).
  double epsilon = 1e-4;

  /// Sketch counters per sender; 0 = auto (2/theta, i.e. 10n at the default
  /// theta), which bounds SpaceSaving error below theta/2 of the stream.
  size_t sketch_capacity = 0;

  SketchKind sketch = SketchKind::kSpaceSaving;

  /// kDecayingSpaceSaving only: fixed decay half-life in messages
  /// (0 = derive from theta: max(1024, 4/theta), the calibrated default).
  uint64_t decay_half_life = 0;

  /// kDecayingSpaceSaving only: adapt the half-life online. At each decay
  /// boundary the sketch halves the half-life when its top-k head churned
  /// since the previous boundary and doubles it when the head was stable,
  /// within [max(256, half_life/16), max(half_life*16, 2^22)] — the ceiling
  /// reaches "effectively no decay" so a stable head converges to plain
  /// SpaceSaving behaviour. Deterministic (no RNG), so seeded experiments
  /// remain reproducible.
  bool decay_auto_tune = false;

  /// Messages between FINDOPTIMALCHOICES refreshes in D-Choices. The paper's
  /// Algorithm 1 calls it per message; recomputing on a short interval is
  /// behaviourally identical (the head evolves slowly) and keeps routing O(1).
  uint32_t reoptimize_interval = 2048;

  /// Fixed d for kFixedDChoices / kGreedyD.
  uint32_t fixed_d = 2;

  /// Which load estimate the greedy min-choice comparisons use (ROADMAP
  /// item 2). kCost and kInFlight require `cost_model`; kInFlight also
  /// requires service_rate > 0. CreatePartitioner rejects inconsistent
  /// combinations with InvalidArgument.
  BalanceSignal balance_on = BalanceSignal::kCount;

  /// Per-key service-cost oracle for cost-aware balance signals. Like
  /// hash_seed it MUST be identical across all senders of one stream (share
  /// one instance — implementations are immutable and thread-safe).
  std::shared_ptr<const KeyCostFunction> cost_model;

  /// kInFlight only: service units each worker completes per message routed
  /// BY THIS SENDER — the sender-local deterministic completion model that
  /// drains outstanding work. A sender sees only 1/num_sources of the
  /// stream, so the simulator derives this as
  /// PartitionSimConfig::service.rate x num_sources.
  double service_rate = 1.0;

  /// Effective threshold: theta_ratio / num_workers.
  double theta() const {
    return theta_ratio / static_cast<double>(num_workers);
  }
};

/// Sender-local stream partitioning function P_t (Sec. II-B).
class StreamPartitioner {
 public:
  virtual ~StreamPartitioner() = default;

  /// Routes one message; returns the destination worker in [0, num_workers).
  virtual uint32_t Route(uint64_t key) = 0;

  /// Routes `count` messages, writing destinations to `out[0..count)`.
  /// Semantically identical to calling Route() per key in order; subclasses
  /// override to amortize virtual dispatch over the batch (the emit path of
  /// a real DSPE routes tuples in batches, not one call per message).
  virtual void RouteBatch(const uint64_t* keys, size_t count, uint32_t* out) {
    for (size_t i = 0; i < count; ++i) out[i] = Route(keys[i]);
  }

  virtual uint32_t num_workers() const = 0;
  virtual std::string name() const = 0;

  /// Messages this sender has routed.
  virtual uint64_t messages_routed() const = 0;

  /// Elastic rescaling (ROADMAP item 1) --------------------------------------

  /// True when this partitioner can re-target to a different worker count
  /// mid-stream via Rescale().
  virtual bool SupportsRescale() const { return false; }

  /// Re-targets the partitioner to `new_num_workers` downstream workers
  /// (dense ids [0, new_num_workers)); scale-in drops the highest ids. All
  /// senders of one stream must rescale at the same stream position — they
  /// share hash seeds, so the post-rescale candidate sets stay identical
  /// across senders. After a successful rescale every Route() result is in
  /// [0, new_num_workers). State migration is the *receiver's* problem; the
  /// sim layer accounts for it (slb/sim/migration_tracker.h).
  virtual Status Rescale(uint32_t new_num_workers) {
    (void)new_num_workers;
    return Status::Unimplemented(name() + " does not support rescaling");
  }

  /// Diagnostics for the evaluation harness -------------------------------

  /// True when the most recent Route() classified its key as a head key.
  virtual bool last_was_head() const { return false; }

  /// Number of choices currently granted to head keys (2 when the algorithm
  /// has no separate head handling; n for W-Choices).
  virtual uint32_t head_choices() const { return 2; }

  /// Times the head-choices optimizer has run (0 for algorithms without one;
  /// D-Choices overrides — the reoptimization-cadence ablation reads this).
  virtual uint64_t reoptimize_count() const { return 0; }
};

/// Creates a sender-local partitioner instance.
Result<std::unique_ptr<StreamPartitioner>> CreatePartitioner(
    AlgorithmKind kind, const PartitionerOptions& options);

}  // namespace slb
