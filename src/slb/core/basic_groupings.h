// The pre-existing grouping schemes the paper compares against (Sec. II-B):
// key grouping, shuffle grouping, partial key grouping, and the generic
// Greedy-d process applied uniformly to all keys.

#pragma once

#include <cstdint>
#include <vector>

#include "slb/core/balance_signal.h"
#include "slb/core/partitioner.h"
#include "slb/hash/hash_family.h"

namespace slb {

/// KG — all messages of a key go to hash(key) mod-range n. Stateless beyond
/// the hash; the baseline that collapses under skew.
class KeyGrouping final : public StreamPartitioner {
 public:
  explicit KeyGrouping(const PartitionerOptions& options);

  uint32_t Route(uint64_t key) override;
  uint32_t num_workers() const override { return family_.num_workers(); }
  std::string name() const override { return "KG"; }
  uint64_t messages_routed() const override { return messages_; }

  /// Mod-range hashing rebinds EVERY key on rescale — the full-reshuffle
  /// worst case the consistent-hash ring exists to avoid.
  bool SupportsRescale() const override { return true; }
  Status Rescale(uint32_t new_num_workers) override;

 private:
  HashFamily family_;
  uint64_t messages_ = 0;
};

/// SG — round-robin across workers; ideal balance, but every worker may see
/// every key (maximal state replication).
class ShuffleGrouping final : public StreamPartitioner {
 public:
  explicit ShuffleGrouping(const PartitionerOptions& options);

  uint32_t Route(uint64_t key) override;
  uint32_t num_workers() const override { return num_workers_; }
  std::string name() const override { return "SG"; }
  uint64_t messages_routed() const override { return messages_; }

  bool SupportsRescale() const override { return true; }
  Status Rescale(uint32_t new_num_workers) override;

 private:
  uint32_t num_workers_;
  uint32_t next_ = 0;
  uint64_t messages_ = 0;
};

/// Greedy-d applied to *every* key (Sec. III-B): the message goes to the
/// least loaded (by this sender's local estimate) of the d hashed candidates.
/// d = 2 is exactly PKG [7]; larger d is the power-of-d-choices ablation.
class GreedyD final : public StreamPartitioner {
 public:
  /// `d` is clamped to [1, n]; d == n degenerates to least-loaded-of-all.
  GreedyD(const PartitionerOptions& options, uint32_t d, std::string name);

  uint32_t Route(uint64_t key) override;
  void RouteBatch(const uint64_t* keys, size_t count, uint32_t* out) override;
  uint32_t num_workers() const override { return family_.num_workers(); }
  std::string name() const override { return name_; }
  uint64_t messages_routed() const override { return messages_; }
  uint32_t head_choices() const override { return d_; }

  /// Rebuilds the hash family at the new n (both candidates of ~every key
  /// change — mod-range hashing has no minimal-movement property) and keeps
  /// surviving workers' local load estimates; new workers start at zero.
  bool SupportsRescale() const override { return true; }
  Status Rescale(uint32_t new_num_workers) override;

 private:
  HashFamily family_;
  uint32_t requested_d_;  // caller's d before clamping to [1, n]
  uint32_t d_;
  std::string name_;
  std::vector<uint64_t> loads_;  // sender-local routed-message counts
  CostSignal signal_;            // cost/in-flight signal when balance_on != kCount
  uint64_t messages_ = 0;
};

/// PKG — Partial Key Grouping [7] == Greedy-2. Kept as its own type so the
/// evaluation reads like the paper.
class PartialKeyGrouping final : public StreamPartitioner {
 public:
  explicit PartialKeyGrouping(const PartitionerOptions& options);

  uint32_t Route(uint64_t key) override { return inner_.Route(key); }
  void RouteBatch(const uint64_t* keys, size_t count, uint32_t* out) override {
    inner_.RouteBatch(keys, count, out);
  }
  uint32_t num_workers() const override { return inner_.num_workers(); }
  std::string name() const override { return "PKG"; }
  uint64_t messages_routed() const override { return inner_.messages_routed(); }

  bool SupportsRescale() const override { return true; }
  Status Rescale(uint32_t new_num_workers) override {
    return inner_.Rescale(new_num_workers);
  }

 private:
  GreedyD inner_;
};

}  // namespace slb
