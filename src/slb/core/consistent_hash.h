// Consistent-hash key grouping (related-work baseline, cf. Gedik [8]).
//
// A classic ring with virtual nodes: each worker owns `virtual_nodes`
// pseudo-random points on a 64-bit ring and a key routes to the owner of
// the first point clockwise from its hash. Load-balance-wise it behaves
// like KG (one owner per key — skew hits one worker in full), but worker
// additions/removals move only ~1/n of the key space, which is the property
// migration-based balancers build on. Included both as a baseline and as
// the substrate a routing-table approach would need.

#pragma once

#include <cstdint>
#include <vector>

#include "slb/core/partitioner.h"

namespace slb {

class ConsistentHashRing {
 public:
  ConsistentHashRing(uint32_t num_workers, uint32_t virtual_nodes,
                     uint64_t seed);

  /// Owner of `key`: the worker whose ring point follows hash(key).
  uint32_t Owner(uint64_t key) const;

  /// Adds one worker (id = current worker count). O(v log R) rebuild.
  void AddWorker();

  /// Removes the given worker; its ranges fall to clockwise successors.
  void RemoveWorker(uint32_t worker);

  uint32_t num_workers() const { return num_workers_; }
  size_t ring_size() const { return ring_.size(); }

 private:
  struct Point {
    uint64_t position;
    uint32_t worker;
    bool operator<(const Point& other) const {
      return position < other.position ||
             (position == other.position && worker < other.worker);
    }
  };

  void InsertWorkerPoints(uint32_t worker);

  uint32_t num_workers_;
  uint32_t virtual_nodes_;
  uint64_t seed_;
  std::vector<Point> ring_;  // sorted by position
};

/// StreamPartitioner adapter so the ring plugs into simulators and benches.
class ConsistentHashGrouping final : public StreamPartitioner {
 public:
  /// `virtual_nodes` per worker; 128 is a common production choice.
  ConsistentHashGrouping(const PartitionerOptions& options,
                         uint32_t virtual_nodes = 128);

  uint32_t Route(uint64_t key) override {
    ++messages_;
    return ring_.Owner(key);
  }
  uint32_t num_workers() const override { return ring_.num_workers(); }
  std::string name() const override { return "CH"; }
  uint64_t messages_routed() const override { return messages_; }

  const ConsistentHashRing& ring() const { return ring_; }

 private:
  ConsistentHashRing ring_;
  uint64_t messages_ = 0;
};

}  // namespace slb
