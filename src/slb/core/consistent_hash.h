// Consistent-hash key grouping (related-work baseline, cf. Gedik [8]).
//
// A classic ring with virtual nodes: each worker owns `virtual_nodes`
// pseudo-random points on a 64-bit ring and a key routes to the owner of
// the first point clockwise from its hash. Load-balance-wise it behaves
// like KG (one owner per key — skew hits one worker in full), but worker
// additions/removals move only ~1/n of the key space, which is the property
// migration-based balancers build on. Included both as a baseline and as
// the substrate the elastic-rescale protocol (slb/sim/migration_tracker.h)
// builds on.
//
// Point positions are hashed from a per-worker GENERATION token, not from
// the dense worker id. Dense ids are reused — RemoveWorker relabels the last
// worker into the freed id to keep ids contiguous — so hashing from the id
// would make a later AddWorker reproduce the removed worker's exact point
// positions, leaving duplicate ring points whose ownership depends on a
// tie-break. Generations are handed out monotonically and retire with the
// worker, so every insertion lands on fresh positions.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "slb/core/partitioner.h"

namespace slb {

class ConsistentHashRing {
 public:
  ConsistentHashRing(uint32_t num_workers, uint32_t virtual_nodes,
                     uint64_t seed);

  /// Owner of `key`: the worker whose ring point follows hash(key).
  uint32_t Owner(uint64_t key) const;

  /// Adds one worker (id = current worker count) on fresh ring positions.
  void AddWorker();

  /// Removes the given worker; its ranges fall to clockwise successors. The
  /// last worker id is relabeled into the freed id (dense [0, n) ids), its
  /// ring points — and generation token — traveling with the relabel.
  void RemoveWorker(uint32_t worker);

  uint32_t num_workers() const { return num_workers_; }
  size_t ring_size() const { return ring_.size(); }

  /// The ring's (position, worker) points in ring order. Positions are
  /// strictly increasing in a healthy ring — duplicate positions would make
  /// ownership depend on the sort tie-break (the churn-corruption bug this
  /// accessor exists to regression-test).
  std::vector<std::pair<uint64_t, uint32_t>> Points() const;

 private:
  struct Point {
    uint64_t position;
    uint32_t worker;
    bool operator<(const Point& other) const {
      return position < other.position ||
             (position == other.position && worker < other.worker);
    }
  };

  /// Appends (unsorted) the points for `worker`'s current generation token.
  void InsertWorkerPoints(uint32_t worker);

  uint32_t num_workers_;
  uint32_t virtual_nodes_;
  uint64_t seed_;
  uint64_t next_generation_ = 0;
  std::vector<uint64_t> generation_;  // per dense worker id
  std::vector<Point> ring_;           // sorted by position
};

/// StreamPartitioner adapter so the ring plugs into simulators and benches.
class ConsistentHashGrouping final : public StreamPartitioner {
 public:
  /// `virtual_nodes` per worker; 128 is a common production choice.
  ConsistentHashGrouping(const PartitionerOptions& options,
                         uint32_t virtual_nodes = 128);

  uint32_t Route(uint64_t key) override {
    ++messages_;
    return ring_.Owner(key);
  }
  uint32_t num_workers() const override { return ring_.num_workers(); }
  std::string name() const override { return "CH"; }
  uint64_t messages_routed() const override { return messages_; }

  /// Minimal-movement rescale: workers are added on fresh ring positions /
  /// removed highest-id-first, so only ~|delta|/n of the key space moves.
  bool SupportsRescale() const override { return true; }
  Status Rescale(uint32_t new_num_workers) override;

  const ConsistentHashRing& ring() const { return ring_; }

 private:
  ConsistentHashRing ring_;
  uint64_t messages_ = 0;
};

}  // namespace slb
