// D-Choices (Sec. III-B / IV-A) — the paper's primary contribution.
//
// Head keys are routed with the Greedy-d process where d is the *minimal*
// number of choices that keeps expected imbalance below epsilon, computed
// online by FINDOPTIMALCHOICES from the sketch's current estimate of the
// head. When no d < n satisfies the constraints, the algorithm degenerates
// to W-Choices (least loaded of all workers), as the paper prescribes.

#pragma once

#include <cstdint>

#include "slb/analysis/choices.h"
#include "slb/core/head_tail_partitioner.h"

namespace slb {

class DChoices final : public HeadTailPartitioner {
 public:
  explicit DChoices(const PartitionerOptions& options)
      : HeadTailPartitioner(options) {}

  std::string name() const override { return "D-C"; }

  /// Current optimizer output: d in [2, n]; n means "acting as W-Choices".
  uint32_t head_choices() const override { return d_; }

  /// Number of times FINDOPTIMALCHOICES has run (diagnostics).
  uint64_t reoptimize_count() const override { return reoptimize_count_; }

 protected:
  uint32_t RouteHead(uint64_t key) override {
    if (d_ >= num_workers()) return LeastLoadedOverall();
    return LeastLoadedOfChoices(key, d_);
  }

  void Reoptimize() override;

 private:
  uint32_t d_ = 2;
  uint64_t reoptimize_count_ = 0;
};

}  // namespace slb
