#include "slb/core/head_tail_partitioner.h"

#include <algorithm>
#include <cmath>

#include "slb/common/logging.h"
#include "slb/sketch/count_min.h"
#include "slb/sketch/decaying_space_saving.h"
#include "slb/sketch/lossy_counting.h"
#include "slb/sketch/misra_gries.h"
#include "slb/sketch/space_saving.h"

namespace slb {

std::unique_ptr<FrequencyEstimator> HeadTailPartitioner::MakeSketch(
    const PartitionerOptions& options) {
  const double theta = options.theta();
  size_t capacity = options.sketch_capacity;
  if (capacity == 0) {
    // Auto-size so the count error stays below theta/2 of the stream:
    // SpaceSaving/Misra-Gries error <= N/capacity, so capacity = 2/theta.
    capacity = static_cast<size_t>(std::ceil(2.0 / theta));
    capacity = std::max<size_t>(capacity, 64);
  }
  switch (options.sketch) {
    case SketchKind::kSpaceSaving:
      return std::make_unique<SpaceSaving>(capacity);
    case SketchKind::kMisraGries:
      return std::make_unique<MisraGries>(capacity);
    case SketchKind::kLossyCounting:
      return std::make_unique<LossyCounting>(std::min(0.5, theta / 2.0));
    case SketchKind::kCountMin:
      return std::make_unique<CountMin>(CountMin::ForError(
          std::min(0.5, theta / 2.0), 1e-4, capacity,
          options.hash_seed ^ 0xc01dbeefULL));
    case SketchKind::kDecayingSpaceSaving: {
      // One half-life per ~4/theta messages: long enough that a stable
      // head key keeps a decisive count, short enough to forget yesterday's
      // hot keys within a few head-turnover periods. decay_half_life
      // overrides; decay_auto_tune lets the sketch walk away from the
      // starting point when the observed head churn disagrees with it.
      const auto derived =
          static_cast<uint64_t>(std::max(1024.0, std::ceil(4.0 / theta)));
      const uint64_t half_life =
          options.decay_half_life > 0 ? options.decay_half_life : derived;
      DecayingSpaceSaving::AutoTune tune;
      if (options.decay_auto_tune) {
        tune.enabled = true;
        tune.min_half_life = std::max<uint64_t>(256, half_life / 16);
        // The ceiling must reach "effectively no decay": on a stable head
        // the tuner keeps doubling, and capping near the starting point
        // would freeze the over-decay it exists to escape (a 1024-message
        // half-life on a 10M-message stream shreds the counts).
        tune.max_half_life = std::max(half_life * 16, uint64_t{1} << 22);
      }
      return std::make_unique<DecayingSpaceSaving>(capacity, half_life, tune);
    }
  }
  return nullptr;
}

HeadTailPartitioner::HeadTailPartitioner(const PartitionerOptions& options)
    : options_(options),
      family_(options.num_workers, options.num_workers, options.hash_seed),
      sketch_(MakeSketch(options)),
      loads_(options.num_workers, 0) {
  SLB_CHECK(options_.num_workers >= 1);
  SLB_CHECK(options_.theta_ratio > 0.0) << "theta must be positive";
  SLB_CHECK(sketch_ != nullptr);
  signal_.Init(options);
}

Status HeadTailPartitioner::Rescale(uint32_t new_num_workers) {
  if (new_num_workers < 1) {
    return Status::InvalidArgument("rescale needs at least one worker");
  }
  options_.num_workers = new_num_workers;
  family_ = HashFamily(new_num_workers, new_num_workers, options_.hash_seed);
  loads_.resize(new_num_workers, 0);
  signal_.Rescale(new_num_workers, messages_);
  // Force Reoptimize() on the next Route(): derived head policy (D-Choices'
  // d, the theta threshold's 1/n factor) must see the new n before routing.
  next_reoptimize_ = messages_;
  return Status::OK();
}

uint32_t HeadTailPartitioner::LeastLoadedOfChoices(uint64_t key, uint32_t d) const {
  // The family holds one function per worker, so the two-choices tail step
  // must degrade to one choice when n == 1 (d > n never helps anyway: the
  // candidate set cannot contain more than n distinct workers).
  d = std::min(d, family_.max_functions());
  if (signal_.active()) {
    // Cost-aware path: same candidate set, min over the cost/in-flight
    // signal instead of the message count.
    uint32_t best = family_.Worker(key, 0);
    double best_load = signal_.At(best, messages_);
    double best_tie = signal_.TieBreak(best);
    for (uint32_t i = 1; i < d; ++i) {
      const uint32_t candidate = family_.Worker(key, i);
      const double load = signal_.At(candidate, messages_);
      const double tie = signal_.TieBreak(candidate);
      if (load < best_load || (load == best_load && tie < best_tie)) {
        best = candidate;
        best_load = load;
        best_tie = tie;
      }
    }
    return best;
  }
  if (d == 2) {
    // The tail-key fast path (the overwhelming majority of routed messages):
    // pair-hash both candidates and select branchlessly — on skewed streams
    // the load comparison is unpredictable, so a cmov beats a branch.
    uint32_t w0, w1;
    family_.Worker2(key, &w0, &w1);
    return loads_[w1] < loads_[w0] ? w1 : w0;
  }
  uint32_t best = family_.Worker(key, 0);
  uint64_t best_load = loads_[best];
  for (uint32_t i = 1; i < d; ++i) {
    const uint32_t candidate = family_.Worker(key, i);
    if (loads_[candidate] < best_load) {
      best = candidate;
      best_load = loads_[candidate];
    }
  }
  return best;
}

void HeadTailPartitioner::RouteBatch(const uint64_t* keys, size_t count,
                                     uint32_t* out) {
  // Route() is final on this class: the loop makes direct calls into the
  // sketch + tail fast path, paying one virtual dispatch per batch.
  for (size_t i = 0; i < count; ++i) out[i] = HeadTailPartitioner::Route(keys[i]);
}

uint32_t HeadTailPartitioner::LeastLoadedOverall() const {
  if (signal_.active()) {
    uint32_t best = 0;
    double best_load = signal_.At(0, messages_);
    double best_tie = signal_.TieBreak(0);
    for (uint32_t w = 1; w < loads_.size(); ++w) {
      const double load = signal_.At(w, messages_);
      const double tie = signal_.TieBreak(w);
      if (load < best_load || (load == best_load && tie < best_tie)) {
        best = w;
        best_load = load;
        best_tie = tie;
      }
    }
    return best;
  }
  uint32_t best = 0;
  uint64_t best_load = loads_[0];
  for (uint32_t w = 1; w < loads_.size(); ++w) {
    if (loads_[w] < best_load) {
      best = w;
      best_load = loads_[w];
    }
  }
  return best;
}

uint32_t HeadTailPartitioner::Route(uint64_t key) {
  if (messages_ >= next_reoptimize_) {
    Reoptimize();
    // Warm-up: re-run the optimizer at doubling intervals (64, 128, ...) so
    // the head policy adapts within the first few thousand messages, then
    // settle into the steady-state cadence.
    const uint64_t doubled = std::max<uint64_t>(messages_ * 2, 64);
    next_reoptimize_ =
        std::min(doubled, messages_ + options_.reoptimize_interval);
  }
  ++messages_;
  const uint64_t estimate = sketch_->UpdateAndEstimate(key);

  // k is in the head iff its estimated frequency clears theta. The floor of
  // 2 occurrences avoids declaring every key "hot" in the first 1/theta
  // messages of the stream, where theta * messages < 1.
  const double threshold =
      std::max(2.0, options_.theta() * static_cast<double>(messages_));
  last_was_head_ = static_cast<double>(estimate) >= threshold;

  const uint32_t worker =
      last_was_head_ ? RouteHead(key) : LeastLoadedOfChoices(key, 2);
  ++loads_[worker];
  if (signal_.active()) signal_.OnRoute(worker, signal_.CostOf(key), messages_);
  return worker;
}

}  // namespace slb
