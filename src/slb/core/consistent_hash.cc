#include "slb/core/consistent_hash.h"

#include <algorithm>

#include "slb/common/logging.h"
#include "slb/hash/hash.h"

namespace slb {

ConsistentHashRing::ConsistentHashRing(uint32_t num_workers,
                                       uint32_t virtual_nodes, uint64_t seed)
    : num_workers_(num_workers), virtual_nodes_(virtual_nodes), seed_(seed) {
  SLB_CHECK(num_workers >= 1);
  SLB_CHECK(virtual_nodes >= 1);
  // Bulk construction: append every worker's points, then sort ONCE. Sorting
  // inside a per-worker add loop would make the ctor O(W^2 * V * log) — at
  // production vnode counts that dominated ring construction.
  ring_.reserve(static_cast<size_t>(num_workers) * virtual_nodes);
  generation_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    generation_.push_back(next_generation_++);
    InsertWorkerPoints(w);
  }
  std::sort(ring_.begin(), ring_.end());
}

void ConsistentHashRing::InsertWorkerPoints(uint32_t worker) {
  // Positions are hashed from the worker's generation token; generations are
  // never reused, so a worker added after a removal lands on fresh positions
  // even though its dense id is recycled.
  const uint64_t generation = generation_[worker];
  SLB_CHECK(generation >> 32 == 0) << "generation tokens exhausted";
  for (uint32_t v = 0; v < virtual_nodes_; ++v) {
    const uint64_t position =
        SeededHash64((generation << 32) | v, seed_);
    ring_.push_back(Point{position, worker});
  }
}

void ConsistentHashRing::AddWorker() {
  generation_.push_back(next_generation_++);
  InsertWorkerPoints(num_workers_);
  ++num_workers_;
  // Sort the appended tail, then merge — O(V log V + R) instead of the
  // full-ring O(R log R) re-sort.
  auto tail = ring_.end() - virtual_nodes_;
  std::sort(tail, ring_.end());
  std::inplace_merge(ring_.begin(), tail, ring_.end());
}

void ConsistentHashRing::RemoveWorker(uint32_t worker) {
  SLB_CHECK(worker < num_workers_) << "no such worker";
  SLB_CHECK(num_workers_ > 1) << "cannot remove the last worker";
  // Drop the worker's points; re-label the last worker id to keep ids dense
  // (the ring identifies workers by index, as the partitioner interface
  // expects a contiguous [0, n)). The relabeled worker keeps its generation
  // token, so its point positions remain valid — and the removed worker's
  // generation retires with it, never to be re-hashed.
  const uint32_t last = num_workers_ - 1;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [worker](const Point& p) {
                               return p.worker == worker;
                             }),
              ring_.end());
  if (worker != last) {
    for (Point& p : ring_) {
      if (p.worker == last) p.worker = worker;
    }
    generation_[worker] = generation_[last];
  }
  generation_.pop_back();
  --num_workers_;
  // Erase/relabel preserve position order, so no re-sort is needed:
  // positions are distinct hashes of distinct (generation, vnode) inputs.
}

uint32_t ConsistentHashRing::Owner(uint64_t key) const {
  const uint64_t h = Murmur3Fmix64(key ^ seed_);
  // First point clockwise from h (wrapping).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), Point{h, 0},
      [](const Point& a, const Point& b) { return a.position < b.position; });
  if (it == ring_.end()) it = ring_.begin();
  return it->worker;
}

std::vector<std::pair<uint64_t, uint32_t>> ConsistentHashRing::Points() const {
  std::vector<std::pair<uint64_t, uint32_t>> points;
  points.reserve(ring_.size());
  for (const Point& p : ring_) points.emplace_back(p.position, p.worker);
  return points;
}

ConsistentHashGrouping::ConsistentHashGrouping(const PartitionerOptions& options,
                                               uint32_t virtual_nodes)
    : ring_(options.num_workers, virtual_nodes, options.hash_seed) {}

Status ConsistentHashGrouping::Rescale(uint32_t new_num_workers) {
  if (new_num_workers < 1) {
    return Status::InvalidArgument("rescale needs at least one worker");
  }
  while (ring_.num_workers() < new_num_workers) ring_.AddWorker();
  // Scale-in removes the highest ids (the sim-layer convention), which also
  // avoids relabel churn: removing the last id never renames a survivor.
  while (ring_.num_workers() > new_num_workers) {
    ring_.RemoveWorker(ring_.num_workers() - 1);
  }
  return Status::OK();
}

}  // namespace slb
