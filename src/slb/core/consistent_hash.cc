#include "slb/core/consistent_hash.h"

#include <algorithm>

#include "slb/common/logging.h"
#include "slb/hash/hash.h"

namespace slb {

ConsistentHashRing::ConsistentHashRing(uint32_t num_workers,
                                       uint32_t virtual_nodes, uint64_t seed)
    : num_workers_(0), virtual_nodes_(virtual_nodes), seed_(seed) {
  SLB_CHECK(num_workers >= 1);
  SLB_CHECK(virtual_nodes >= 1);
  ring_.reserve(static_cast<size_t>(num_workers) * virtual_nodes);
  for (uint32_t w = 0; w < num_workers; ++w) AddWorker();
}

void ConsistentHashRing::InsertWorkerPoints(uint32_t worker) {
  for (uint32_t v = 0; v < virtual_nodes_; ++v) {
    const uint64_t position =
        SeededHash64((static_cast<uint64_t>(worker) << 32) | v, seed_);
    ring_.push_back(Point{position, worker});
  }
}

void ConsistentHashRing::AddWorker() {
  InsertWorkerPoints(num_workers_);
  ++num_workers_;
  std::sort(ring_.begin(), ring_.end());
}

void ConsistentHashRing::RemoveWorker(uint32_t worker) {
  SLB_CHECK(worker < num_workers_) << "no such worker";
  SLB_CHECK(num_workers_ > 1) << "cannot remove the last worker";
  // Drop the worker's points; re-label the last worker id to keep ids dense
  // (the ring identifies workers by index, as the partitioner interface
  // expects a contiguous [0, n)).
  const uint32_t last = num_workers_ - 1;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [worker](const Point& p) {
                               return p.worker == worker;
                             }),
              ring_.end());
  if (worker != last) {
    for (Point& p : ring_) {
      if (p.worker == last) p.worker = worker;
    }
  }
  --num_workers_;
  std::sort(ring_.begin(), ring_.end());
}

uint32_t ConsistentHashRing::Owner(uint64_t key) const {
  const uint64_t h = Murmur3Fmix64(key ^ seed_);
  // First point clockwise from h (wrapping).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), Point{h, 0},
      [](const Point& a, const Point& b) { return a.position < b.position; });
  if (it == ring_.end()) it = ring_.begin();
  return it->worker;
}

ConsistentHashGrouping::ConsistentHashGrouping(const PartitionerOptions& options,
                                               uint32_t virtual_nodes)
    : ring_(options.num_workers, virtual_nodes, options.hash_seed) {}

}  // namespace slb
