// Shared machinery for head-aware partitioners (Algorithm 1 of the paper).
//
// Every sender runs a streaming heavy-hitter sketch. On each message the
// sketch is updated; if the key's estimated frequency clears the threshold
// theta it is routed by the subclass's head policy, otherwise by the
// standard two-choices tail policy of PKG. Subclasses: DChoices, WChoices,
// RoundRobinHead, FixedDChoices.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "slb/core/balance_signal.h"
#include "slb/core/partitioner.h"
#include "slb/hash/hash_family.h"
#include "slb/sketch/frequency_estimator.h"

namespace slb {

class HeadTailPartitioner : public StreamPartitioner {
 public:
  explicit HeadTailPartitioner(const PartitionerOptions& options);

  uint32_t Route(uint64_t key) final;
  void RouteBatch(const uint64_t* keys, size_t count, uint32_t* out) final;

  uint32_t num_workers() const final { return options_.num_workers; }
  uint64_t messages_routed() const final { return messages_; }
  bool last_was_head() const final { return last_was_head_; }

  /// Rebuilds the hash family at the new n and keeps the sketch — head
  /// frequency estimates survive the rescale (the head doesn't change just
  /// because the worker set did). Surviving workers keep their local load
  /// estimates; a re-optimize is forced before the next message so derived
  /// head policy (e.g. D-Choices' d) reflects the new n immediately.
  bool SupportsRescale() const override { return true; }
  Status Rescale(uint32_t new_num_workers) override;

  const FrequencyEstimator& sketch() const { return *sketch_; }
  const PartitionerOptions& options() const { return options_; }

 protected:
  /// Routing policy for head keys; must return a worker in [0, n).
  virtual uint32_t RouteHead(uint64_t key) = 0;

  /// Hook called once every options_.reoptimize_interval messages, before
  /// routing; lets subclasses refresh derived state (e.g. recompute d).
  virtual void Reoptimize() {}

  /// Least loaded among the first `d` hashed candidates of `key`
  /// (the Greedy-d step, using this sender's local load vector).
  uint32_t LeastLoadedOfChoices(uint64_t key, uint32_t d) const;

  /// Least loaded among all workers (the W-Choices head step).
  uint32_t LeastLoadedOverall() const;

  const std::vector<uint64_t>& local_loads() const { return loads_; }
  const HashFamily& family() const { return family_; }

 private:
  static std::unique_ptr<FrequencyEstimator> MakeSketch(
      const PartitionerOptions& options);

  PartitionerOptions options_;
  HashFamily family_;
  std::unique_ptr<FrequencyEstimator> sketch_;
  std::vector<uint64_t> loads_;
  CostSignal signal_;  // cost/in-flight signal when balance_on != kCount
  uint64_t messages_ = 0;
  uint64_t next_reoptimize_ = 0;  // doubling warm-up, then fixed cadence
  bool last_was_head_ = false;
};

/// W-Choices (Sec. III-B): head keys go to the least loaded of *all* n
/// workers; no hashing needed for the head.
class WChoices final : public HeadTailPartitioner {
 public:
  explicit WChoices(const PartitionerOptions& options)
      : HeadTailPartitioner(options) {}

  std::string name() const override { return "W-C"; }
  uint32_t head_choices() const override { return num_workers(); }

 protected:
  uint32_t RouteHead(uint64_t /*key*/) override { return LeastLoadedOverall(); }
};

/// Round-Robin head baseline (Table II): head keys are spread round-robin,
/// load-obliviously, across all workers; tail keys use PKG.
class RoundRobinHead final : public HeadTailPartitioner {
 public:
  explicit RoundRobinHead(const PartitionerOptions& options)
      : HeadTailPartitioner(options) {}

  std::string name() const override { return "RR"; }
  uint32_t head_choices() const override { return num_workers(); }

 protected:
  uint32_t RouteHead(uint64_t /*key*/) override {
    // A scale-in can leave the cursor past the new worker set; wrap before
    // use, not just after advancing.
    if (next_ >= num_workers()) next_ = 0;
    const uint32_t worker = next_;
    next_ = (next_ + 1) % num_workers();
    return worker;
  }

 private:
  uint32_t next_ = 0;
};

/// Head keys get a fixed, caller-chosen d (the Greedy-d sweep behind the
/// Fig. 9 "Minimal-d" search); tail keys use two choices.
class FixedDChoices final : public HeadTailPartitioner {
 public:
  explicit FixedDChoices(const PartitionerOptions& options)
      : HeadTailPartitioner(options),
        d_(std::min(options.fixed_d, options.num_workers)) {}

  std::string name() const override { return "Fixed-D"; }
  uint32_t head_choices() const override { return d_; }

  Status Rescale(uint32_t new_num_workers) override {
    Status status = HeadTailPartitioner::Rescale(new_num_workers);
    if (status.ok()) d_ = std::min(options().fixed_d, new_num_workers);
    return status;
  }

 protected:
  uint32_t RouteHead(uint64_t key) override {
    if (d_ >= num_workers()) return LeastLoadedOverall();
    return LeastLoadedOfChoices(key, d_);
  }

 private:
  uint32_t d_;
};

}  // namespace slb
