#include "slb/hash/hash.h"

#include <cstring>

#include "slb/common/rng.h"

namespace slb {

uint64_t Murmur3Fmix64(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}

namespace {

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t LoadLE64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // Little-endian host assumed (x86-64 / aarch64).
}

inline uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

uint64_t Murmur3_x64_64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = len / 16;

  uint64_t h1 = seed;
  uint64_t h2 = seed;
  const uint64_t c1 = 0x87c37b91114253d5ULL;
  const uint64_t c2 = 0x4cf5ad432745937fULL;

  for (size_t i = 0; i < nblocks; ++i) {
    uint64_t k1 = LoadLE64(bytes + i * 16);
    uint64_t k2 = LoadLE64(bytes + i * 16 + 8);

    k1 *= c1;
    k1 = Rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = Rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= c2;
    k2 = Rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = Rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const uint8_t* tail = bytes + nblocks * 16;
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]);
      k2 *= c2;
      k2 = Rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]);
      k1 *= c1;
      k1 = Rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    case 0:
      break;
  }

  h1 ^= static_cast<uint64_t>(len);
  h2 ^= static_cast<uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = Murmur3Fmix64(h1);
  h2 = Murmur3Fmix64(h2);
  h1 += h2;
  return h1;
}

uint64_t XxHash64(const void* data, size_t len, uint64_t seed) {
  static constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
  static constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
  static constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;
  static constexpr uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
  static constexpr uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* limit = end - 32;
    do {
      v1 = Rotl64(v1 + LoadLE64(p) * kPrime2, 31) * kPrime1;
      v2 = Rotl64(v2 + LoadLE64(p + 8) * kPrime2, 31) * kPrime1;
      v3 = Rotl64(v3 + LoadLE64(p + 16) * kPrime2, 31) * kPrime1;
      v4 = Rotl64(v4 + LoadLE64(p + 24) * kPrime2, 31) * kPrime1;
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    auto merge = [&h](uint64_t v) {
      h ^= Rotl64(v * kPrime2, 31) * kPrime1;
      h = h * kPrime1 + kPrime4;
    };
    merge(v1);
    merge(v2);
    merge(v3);
    merge(v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Rotl64(LoadLE64(p) * kPrime2, 31) * kPrime1;
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(LoadLE32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

uint64_t Fnv1a64(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashString64(std::string_view text, uint64_t seed) {
  return XxHash64(text.data(), text.size(), seed);
}

TabulationHash::TabulationHash(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) entry = SplitMix64(&sm);
  }
}

}  // namespace slb
