// Hash primitives used across the library.
//
// Greedy-d (Sec. III-B of the paper) assumes d independent hash functions
// F_1..F_d mapping the key space uniformly onto [n]. We provide several
// industrial-strength 64-bit hashes (MurmurHash3 finalizer, xxHash64,
// FNV-1a, tabulation hashing) implemented from scratch; HashFamily composes
// any of them with per-function seeds into the family Greedy-d needs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace slb {

/// MurmurHash3's 64-bit finalizer (fmix64). An excellent mixer for integer
/// keys: bijective, passes avalanche tests.
uint64_t Murmur3Fmix64(uint64_t key);

/// Full MurmurHash3 x64-128 over a byte buffer, returning the low 64 bits.
uint64_t Murmur3_x64_64(const void* data, size_t len, uint64_t seed);

/// xxHash64 over a byte buffer.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

/// FNV-1a 64-bit over a byte buffer (weak but fast; used in tests as a
/// deliberately lower-quality comparator).
uint64_t Fnv1a64(const void* data, size_t len);

/// Hashes a 64-bit key with a seed: mix of seed and key through fmix64
/// applied twice, giving independent functions for distinct seeds.
inline uint64_t SeededHash64(uint64_t key, uint64_t seed) {
  // XOR-fold the seed in before and between the two mixing rounds so that
  // families {H_seed} behave as independent functions (verified empirically
  // in hash_test.cc via pairwise collision statistics).
  uint64_t h = key ^ (seed * 0x9e3779b97f4a7c15ULL);
  h = Murmur3Fmix64(h);
  h ^= seed;
  return Murmur3Fmix64(h);
}

/// Maps a 64-bit hash onto [0, n) without modulo bias (fixed-point multiply).
inline uint32_t HashToRange(uint64_t hash, uint32_t n) {
  return static_cast<uint32_t>(
      (static_cast<__uint128_t>(hash) * static_cast<__uint128_t>(n)) >> 64);
}

/// Convenience: hash of a string (used to key real-world-style tuples).
uint64_t HashString64(std::string_view text, uint64_t seed = 0);

/// 4-table tabulation hashing over 64-bit keys (processes 16-bit chunks).
/// 3-independent; strong theoretical guarantees for load-balancing
/// applications (Patrascu & Thorup). Tables are filled from a seed.
class TabulationHash {
 public:
  explicit TabulationHash(uint64_t seed);

  uint64_t Hash(uint64_t key) const {
    return tables_[0][key & 0xffff] ^ tables_[1][(key >> 16) & 0xffff] ^
           tables_[2][(key >> 32) & 0xffff] ^ tables_[3][(key >> 48) & 0xffff];
  }

 private:
  uint64_t tables_[4][65536];
};

}  // namespace slb
