// A family of d independent hash functions K -> [n], as used by Greedy-d.

#pragma once

#include <cstdint>
#include <vector>

#include "slb/hash/hash.h"

namespace slb {

/// The hash functions F_1..F_d of the Greedy-d process (Sec. III-B).
///
/// Candidate i for key k is `Worker(k, i)`. All partitioners in the library
/// share one family per sender so that, per the paper, the *same* key always
/// maps to the same candidate set regardless of which sender routes it
/// (families are seeded identically across senders).
class HashFamily {
 public:
  /// `max_functions` is the largest d any caller will request (<= n is
  /// typical); `num_workers` is n; `seed` derives all per-function seeds.
  HashFamily(uint32_t max_functions, uint32_t num_workers, uint64_t seed = 0);

  /// The i-th candidate worker for `key`, i in [0, max_functions).
  uint32_t Worker(uint64_t key, uint32_t i) const {
    return HashToRange(SeededHash64(key, seeds_[i]), num_workers_);
  }

  /// Writes the first `d` candidates for `key` into `out` (size >= d).
  /// Candidates may repeat: hash collisions are part of the model the
  /// paper analyzes (expected distinct count b in Eqn. 10).
  void Candidates(uint64_t key, uint32_t d, uint32_t* out) const {
    for (uint32_t i = 0; i < d; ++i) out[i] = Worker(key, i);
  }

  /// Both two-choices candidates in one call (requires max_functions >= 2).
  /// The two hash chains share no data, so they pipeline back to back
  /// instead of serializing through the Worker() call boundary — the routing
  /// hot path of PKG and of every head-aware scheme's tail step.
  void Worker2(uint64_t key, uint32_t* w0, uint32_t* w1) const {
    const uint64_t h0 = SeededHash64(key, seeds_[0]);
    const uint64_t h1 = SeededHash64(key, seeds_[1]);
    *w0 = HashToRange(h0, num_workers_);
    *w1 = HashToRange(h1, num_workers_);
  }

  uint32_t max_functions() const { return max_functions_; }
  uint32_t num_workers() const { return num_workers_; }
  uint64_t seed() const { return seed_; }

 private:
  uint32_t max_functions_;
  uint32_t num_workers_;
  uint64_t seed_;
  std::vector<uint64_t> seeds_;
};

}  // namespace slb
