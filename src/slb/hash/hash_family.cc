#include "slb/hash/hash_family.h"

#include "slb/common/logging.h"
#include "slb/common/rng.h"

namespace slb {

HashFamily::HashFamily(uint32_t max_functions, uint32_t num_workers, uint64_t seed)
    : max_functions_(max_functions), num_workers_(num_workers), seed_(seed) {
  SLB_CHECK(max_functions >= 1) << "a hash family needs at least one function";
  SLB_CHECK(num_workers >= 1) << "need at least one worker";
  seeds_.resize(max_functions_);
  uint64_t sm = seed ^ 0xabcdef0123456789ULL;
  for (auto& s : seeds_) s = SplitMix64(&sm);
}

}  // namespace slb
