#include "slb/sim/report.h"

#include <cstdio>
#include <vector>

namespace slb {

namespace {

// Fixed-precision scientific notation with 17 significant digits — enough
// to round-trip any IEEE double, so a byte-compare of two renderings really
// is an equality check on the underlying metrics. Locale-independent
// (snprintf with the C locale's %e), hence byte-stable.
std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.16e", value);
  return buf;
}

std::string Count(uint64_t value) { return std::to_string(value); }

// Integral payload metrics carry exact counts in a double; render without
// an exponent so they read (and diff) like the counts they are.
std::string MetricValue(const PayloadMetric& metric) {
  if (metric.integral) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", metric.value);
    return buf;
  }
  return Num(metric.value);
}

std::string StatusField(const Status& status) {
  if (status.ok()) return "OK";
  return std::string(StatusCodeToString(status.code()));
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

constexpr const char* kFixedColumns[] = {
    "scenario",       "variant",        "algo",
    "workers",        "seed",           "runs",
    "status",         "final_imbalance", "avg_imbalance",
    "max_imbalance",  "memory_entries", "head_choices",
    "head_messages",  "total_messages"};

constexpr const char* kMemoryColumns[] = {
    "mem_baseline",         "mem_baseline_entries", "mem_estimated_entries",
    "mem_est_overhead_pct", "mem_measured_overhead_pct"};

constexpr const char* kLatencyColumns[] = {
    "lat_count", "lat_avg_ms", "lat_p50_ms",
    "lat_p95_ms", "lat_p99_ms", "lat_max_ms"};

constexpr const char* kThroughputColumns[] = {"throughput_per_s", "makespan_s",
                                              "completed"};

constexpr const char* kMigrationColumns[] = {
    "final_workers",  "rescale_events",   "keys_migrated",
    "state_bytes_migrated", "stalled_messages", "moved_key_fraction"};

constexpr const char* kCostColumns[] = {
    "cost_imbalance", "count_imbalance", "misrank_rate",
    "peak_outstanding", "total_cost"};

// Which payload columns this table renders. Derived by scanning the cells
// in stable row order, so it is a pure function of the table — identical
// across thread counts, and identical for every row (cells missing a
// component render zeros).
struct PayloadColumns {
  bool memory = false;
  bool latency = false;
  bool throughput = false;
  bool migration = false;
  bool cost = false;
  /// Union of metric names in first-seen (cell-order, then payload-order)
  /// appearance; `integral` is taken from the first definition.
  std::vector<PayloadMetric> metrics;
};

PayloadColumns ScanPayloadColumns(const SweepResultTable& table) {
  PayloadColumns columns;
  for (const SweepCellResult& cell : table.cells) {
    if (cell.payload.memory.has_value()) columns.memory = true;
    if (cell.payload.latency.has_value()) columns.latency = true;
    if (cell.payload.throughput.has_value()) columns.throughput = true;
    if (cell.payload.migration.has_value()) columns.migration = true;
    if (cell.payload.cost.has_value()) columns.cost = true;
    for (const PayloadMetric& metric : cell.payload.metrics) {
      if (FindMetric(columns.metrics, metric.name) == nullptr) {
        columns.metrics.push_back(PayloadMetric{metric.name, 0.0, metric.integral});
      }
    }
  }
  return columns;
}

void AppendHeader(std::string* out, const PayloadColumns& columns, char sep) {
  bool first = true;
  auto name = [&](const char* text) {
    if (!first) *out += sep;
    first = false;
    *out += text;
  };
  for (const char* text : kFixedColumns) name(text);
  if (columns.memory) {
    for (const char* text : kMemoryColumns) name(text);
  }
  if (columns.latency) {
    for (const char* text : kLatencyColumns) name(text);
  }
  if (columns.throughput) {
    for (const char* text : kThroughputColumns) name(text);
  }
  if (columns.migration) {
    for (const char* text : kMigrationColumns) name(text);
  }
  if (columns.cost) {
    for (const char* text : kCostColumns) name(text);
  }
  for (const PayloadMetric& metric : columns.metrics) name(metric.name.c_str());
  *out += '\n';
}

void AppendRow(std::string* out, const SweepCellResult& cell,
               const PayloadColumns& columns, char sep, bool csv) {
  auto field = [&](const std::string& text) {
    *out += csv ? CsvEscape(text) : text;
    *out += sep;
  };
  const CellPayload& payload = cell.payload;
  field(cell.scenario);
  field(cell.variant.empty() && !csv ? "-" : cell.variant);
  field(AlgorithmKindName(cell.algorithm));
  field(Count(cell.num_workers));
  field(Count(cell.seed));
  field(Count(cell.runs));
  field(StatusField(cell.status));
  field(Num(cell.mean_final_imbalance));
  field(Num(cell.mean_avg_imbalance));
  field(Num(cell.mean_max_imbalance));
  field(Count(payload.sim.memory_entries));
  field(Count(payload.sim.final_head_choices));
  field(Count(payload.sim.head_messages));
  field(Count(payload.sim.total_messages));
  if (columns.memory) {
    static const MemoryModelTable kNoMemory;
    const MemoryModelTable& mem = payload.memory.value_or(kNoMemory);
    field(mem.baseline.empty() && !csv ? "-" : mem.baseline);
    field(Count(mem.baseline_entries));
    field(Count(mem.estimated_entries));
    field(Num(mem.estimated_overhead_pct));
    field(Num(mem.measured_overhead_pct));
  }
  if (columns.latency) {
    const LatencySnapshot lat = payload.latency.value_or(LatencySnapshot{});
    field(Count(static_cast<uint64_t>(lat.count)));
    field(Num(lat.avg_ms));
    field(Num(lat.p50_ms));
    field(Num(lat.p95_ms));
    field(Num(lat.p99_ms));
    field(Num(lat.max_ms));
  }
  if (columns.throughput) {
    const ThroughputCounters thr =
        payload.throughput.value_or(ThroughputCounters{});
    field(Num(thr.throughput_per_s));
    field(Num(thr.makespan_s));
    field(Count(thr.completed));
  }
  if (columns.migration) {
    const MigrationCounters mig =
        payload.migration.value_or(MigrationCounters{});
    field(Count(mig.final_num_workers));
    field(Count(mig.rescale_events));
    field(Count(mig.keys_migrated));
    field(Count(mig.state_bytes_migrated));
    field(Count(mig.stalled_messages));
    field(Num(mig.moved_key_fraction));
  }
  if (columns.cost) {
    const CostCounters cost = payload.cost.value_or(CostCounters{});
    field(Num(cost.cost_imbalance));
    field(Num(cost.count_imbalance));
    field(Num(cost.misrank_rate));
    field(Num(cost.peak_outstanding));
    field(Num(cost.total_cost));
  }
  for (const PayloadMetric& column : columns.metrics) {
    const PayloadMetric* metric = FindMetric(payload.metrics, column.name);
    PayloadMetric absent{column.name, 0.0, column.integral};
    field(MetricValue(metric != nullptr ? *metric : absent));
  }
  out->back() = '\n';  // replace the trailing separator
}

}  // namespace

std::string SweepToTsv(const SweepResultTable& table) {
  const PayloadColumns columns = ScanPayloadColumns(table);
  std::string out = "#";
  AppendHeader(&out, columns, '\t');
  for (const SweepCellResult& cell : table.cells) {
    AppendRow(&out, cell, columns, '\t', /*csv=*/false);
  }
  return out;
}

std::string SweepToCsv(const SweepResultTable& table) {
  const PayloadColumns columns = ScanPayloadColumns(table);
  std::string out;
  AppendHeader(&out, columns, ',');
  for (const SweepCellResult& cell : table.cells) {
    AppendRow(&out, cell, columns, ',', /*csv=*/true);
  }
  return out;
}

std::string SweepToJson(const SweepResultTable& table) {
  std::string out = "[\n";
  for (size_t i = 0; i < table.cells.size(); ++i) {
    const SweepCellResult& cell = table.cells[i];
    const CellPayload& payload = cell.payload;
    out += "  {\"scenario\":\"" + JsonEscape(cell.scenario) + "\"";
    out += ",\"variant\":\"" + JsonEscape(cell.variant) + "\"";
    out += ",\"algo\":\"" + JsonEscape(AlgorithmKindName(cell.algorithm)) + "\"";
    out += ",\"workers\":" + Count(cell.num_workers);
    out += ",\"seed\":" + Count(cell.seed);
    out += ",\"runs\":" + Count(cell.runs);
    out += ",\"status\":\"" + JsonEscape(StatusField(cell.status)) + "\"";
    if (!cell.status.ok()) {
      out += ",\"error\":\"" + JsonEscape(cell.status.message()) + "\"";
    }
    out += ",\"final_imbalance\":" + Num(cell.mean_final_imbalance);
    out += ",\"avg_imbalance\":" + Num(cell.mean_avg_imbalance);
    out += ",\"max_imbalance\":" + Num(cell.mean_max_imbalance);
    out += ",\"memory_entries\":" + Count(payload.sim.memory_entries);
    out += ",\"head_choices\":" + Count(payload.sim.final_head_choices);
    out += ",\"head_messages\":" + Count(payload.sim.head_messages);
    out += ",\"total_messages\":" + Count(payload.sim.total_messages);
    if (payload.memory.has_value()) {
      const MemoryModelTable& mem = *payload.memory;
      out += ",\"memory\":{\"baseline\":\"" + JsonEscape(mem.baseline) + "\"";
      out += ",\"baseline_entries\":" + Count(mem.baseline_entries);
      out += ",\"estimated_entries\":" + Count(mem.estimated_entries);
      out += ",\"measured_entries\":" + Count(mem.measured_entries);
      out += ",\"estimated_overhead_pct\":" + Num(mem.estimated_overhead_pct);
      out += ",\"measured_overhead_pct\":" + Num(mem.measured_overhead_pct);
      out += "}";
    }
    if (payload.latency.has_value()) {
      const LatencySnapshot& lat = *payload.latency;
      out += ",\"latency\":{\"count\":" + Count(static_cast<uint64_t>(lat.count));
      out += ",\"avg_ms\":" + Num(lat.avg_ms);
      out += ",\"p50_ms\":" + Num(lat.p50_ms);
      out += ",\"p95_ms\":" + Num(lat.p95_ms);
      out += ",\"p99_ms\":" + Num(lat.p99_ms);
      out += ",\"max_ms\":" + Num(lat.max_ms);
      out += "}";
    }
    if (payload.throughput.has_value()) {
      const ThroughputCounters& thr = *payload.throughput;
      out += ",\"throughput\":{\"per_s\":" + Num(thr.throughput_per_s);
      out += ",\"makespan_s\":" + Num(thr.makespan_s);
      out += ",\"completed\":" + Count(thr.completed);
      out += "}";
    }
    if (payload.migration.has_value()) {
      const MigrationCounters& mig = *payload.migration;
      out += ",\"migration\":{\"final_workers\":" + Count(mig.final_num_workers);
      out += ",\"rescale_events\":" + Count(mig.rescale_events);
      out += ",\"keys_migrated\":" + Count(mig.keys_migrated);
      out += ",\"state_bytes_migrated\":" + Count(mig.state_bytes_migrated);
      out += ",\"stalled_messages\":" + Count(mig.stalled_messages);
      out += ",\"moved_key_fraction\":" + Num(mig.moved_key_fraction);
      out += "}";
    }
    if (payload.cost.has_value()) {
      const CostCounters& cost = *payload.cost;
      out += ",\"cost\":{\"cost_imbalance\":";
      out += Num(cost.cost_imbalance);
      out += ",\"count_imbalance\":" + Num(cost.count_imbalance);
      out += ",\"misrank_rate\":" + Num(cost.misrank_rate);
      out += ",\"peak_outstanding\":" + Num(cost.peak_outstanding);
      out += ",\"total_cost\":" + Num(cost.total_cost);
      out += "}";
    }
    if (!payload.metrics.empty()) {
      out += ",\"metrics\":{";
      for (size_t mi = 0; mi < payload.metrics.size(); ++mi) {
        if (mi > 0) out += ',';
        out += '"';
        out += JsonEscape(payload.metrics[mi].name);
        out += "\":";
        out += MetricValue(payload.metrics[mi]);
      }
      out += "}";
    }
    out += ",\"imbalance_series\":[";
    for (size_t s = 0; s < payload.sim.imbalance_series.size(); ++s) {
      if (s > 0) out += ',';
      out += Num(payload.sim.imbalance_series[s]);
    }
    out += "]}";
    if (i + 1 < table.cells.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

std::string SweepSeriesToTsv(const SweepResultTable& table) {
  std::string out =
      "#scenario\tvariant\talgo\tworkers\tsample\tposition\timbalance\n";
  for (const SweepCellResult& cell : table.cells) {
    if (!cell.status.ok()) continue;
    const PartitionSimResult& sim = cell.payload.sim;
    for (size_t s = 0; s < sim.imbalance_series.size(); ++s) {
      out += cell.scenario;
      out += '\t';
      out += cell.variant.empty() ? "-" : cell.variant;
      out += '\t';
      out += AlgorithmKindName(cell.algorithm);
      out += '\t';
      out += Count(cell.num_workers);
      out += '\t';
      out += Count(s + 1);
      out += '\t';
      out += Count(sim.sample_positions[s]);
      out += '\t';
      out += Num(sim.imbalance_series[s]);
      out += '\n';
    }
  }
  return out;
}

std::string SweepWorkerLoadsToTsv(const SweepResultTable& table) {
  std::string out =
      "#scenario\tvariant\talgo\tworkers\tworker\thead_pct\ttail_pct\t"
      "total_pct\n";
  for (const SweepCellResult& cell : table.cells) {
    if (!cell.status.ok()) continue;
    const PartitionSimResult& sim = cell.payload.sim;
    for (size_t w = 0; w < sim.worker_loads.size(); ++w) {
      const double head =
          w < sim.worker_head_loads.size() ? sim.worker_head_loads[w] : 0.0;
      const double tail =
          w < sim.worker_tail_loads.size() ? sim.worker_tail_loads[w] : 0.0;
      out += cell.scenario;
      out += '\t';
      out += cell.variant.empty() ? "-" : cell.variant;
      out += '\t';
      out += AlgorithmKindName(cell.algorithm);
      out += '\t';
      out += Count(cell.num_workers);
      out += '\t';
      out += Count(w + 1);
      out += '\t';
      out += Num(100.0 * head);
      out += '\t';
      out += Num(100.0 * tail);
      out += '\t';
      out += Num(100.0 * sim.worker_loads[w]);
      out += '\n';
    }
  }
  return out;
}

}  // namespace slb
