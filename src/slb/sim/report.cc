#include "slb/sim/report.h"

#include <cstdio>

namespace slb {

namespace {

// Fixed-precision scientific notation with 17 significant digits — enough
// to round-trip any IEEE double, so a byte-compare of two renderings really
// is an equality check on the underlying metrics. Locale-independent
// (snprintf with the C locale's %e), hence byte-stable.
std::string Num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.16e", value);
  return buf;
}

std::string StatusField(const Status& status) {
  if (status.ok()) return "OK";
  return std::string(StatusCodeToString(status.code()));
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendRow(std::string* out, const SweepCellResult& cell, char sep,
               bool csv) {
  auto field = [&](const std::string& text) {
    *out += csv ? CsvEscape(text) : text;
    *out += sep;
  };
  field(cell.scenario);
  field(cell.variant.empty() && !csv ? "-" : cell.variant);
  field(AlgorithmKindName(cell.algorithm));
  field(std::to_string(cell.num_workers));
  field(std::to_string(cell.seed));
  field(std::to_string(cell.runs));
  field(StatusField(cell.status));
  field(Num(cell.mean_final_imbalance));
  field(Num(cell.mean_avg_imbalance));
  field(Num(cell.mean_max_imbalance));
  field(std::to_string(cell.result.memory_entries));
  field(std::to_string(cell.result.final_head_choices));
  field(std::to_string(cell.result.head_messages));
  field(std::to_string(cell.result.total_messages));
  out->back() = '\n';  // replace the trailing separator
}

constexpr const char* kColumns[] = {
    "scenario",       "variant",        "algo",
    "workers",        "seed",           "runs",
    "status",         "final_imbalance", "avg_imbalance",
    "max_imbalance",  "memory_entries", "head_choices",
    "head_messages",  "total_messages"};

}  // namespace

std::string SweepToTsv(const SweepResultTable& table) {
  std::string out = "#";
  for (size_t i = 0; i < std::size(kColumns); ++i) {
    if (i > 0) out += '\t';
    out += kColumns[i];
  }
  out += '\n';
  for (const SweepCellResult& cell : table.cells) {
    AppendRow(&out, cell, '\t', /*csv=*/false);
  }
  return out;
}

std::string SweepToCsv(const SweepResultTable& table) {
  std::string out;
  for (size_t i = 0; i < std::size(kColumns); ++i) {
    if (i > 0) out += ',';
    out += kColumns[i];
  }
  out += '\n';
  for (const SweepCellResult& cell : table.cells) {
    AppendRow(&out, cell, ',', /*csv=*/true);
  }
  return out;
}

std::string SweepToJson(const SweepResultTable& table) {
  std::string out = "[\n";
  for (size_t i = 0; i < table.cells.size(); ++i) {
    const SweepCellResult& cell = table.cells[i];
    out += "  {\"scenario\":\"" + JsonEscape(cell.scenario) + "\"";
    out += ",\"variant\":\"" + JsonEscape(cell.variant) + "\"";
    out += ",\"algo\":\"" + JsonEscape(AlgorithmKindName(cell.algorithm)) + "\"";
    out += ",\"workers\":" + std::to_string(cell.num_workers);
    out += ",\"seed\":" + std::to_string(cell.seed);
    out += ",\"runs\":" + std::to_string(cell.runs);
    out += ",\"status\":\"" + JsonEscape(StatusField(cell.status)) + "\"";
    if (!cell.status.ok()) {
      out += ",\"error\":\"" + JsonEscape(cell.status.message()) + "\"";
    }
    out += ",\"final_imbalance\":" + Num(cell.mean_final_imbalance);
    out += ",\"avg_imbalance\":" + Num(cell.mean_avg_imbalance);
    out += ",\"max_imbalance\":" + Num(cell.mean_max_imbalance);
    out += ",\"memory_entries\":" + std::to_string(cell.result.memory_entries);
    out += ",\"head_choices\":" + std::to_string(cell.result.final_head_choices);
    out += ",\"head_messages\":" + std::to_string(cell.result.head_messages);
    out += ",\"total_messages\":" + std::to_string(cell.result.total_messages);
    out += ",\"imbalance_series\":[";
    for (size_t s = 0; s < cell.result.imbalance_series.size(); ++s) {
      if (s > 0) out += ',';
      out += Num(cell.result.imbalance_series[s]);
    }
    out += "]}";
    if (i + 1 < table.cells.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

std::string SweepSeriesToTsv(const SweepResultTable& table) {
  std::string out =
      "#scenario\tvariant\talgo\tworkers\tsample\tposition\timbalance\n";
  for (const SweepCellResult& cell : table.cells) {
    if (!cell.status.ok()) continue;
    for (size_t s = 0; s < cell.result.imbalance_series.size(); ++s) {
      out += cell.scenario;
      out += '\t';
      out += cell.variant.empty() ? "-" : cell.variant;
      out += '\t';
      out += AlgorithmKindName(cell.algorithm);
      out += '\t';
      out += std::to_string(cell.num_workers);
      out += '\t';
      out += std::to_string(s + 1);
      out += '\t';
      out += std::to_string(cell.result.sample_positions[s]);
      out += '\t';
      out += Num(cell.result.imbalance_series[s]);
      out += '\n';
    }
  }
  return out;
}

}  // namespace slb
