// Renderers for sweep result tables.
//
// All emitters are pure functions of the table with fixed formatting
// (snprintf, no locale), so a byte-compare of two renderings is a valid
// equality check on the tables themselves — the sweep determinism tests
// rely on this. TSV output is gnuplot-ready ('#'-prefixed header).
//
// Columns come in two groups: the fixed coordinate/metric prefix every
// table shares, then *payload columns* — derived from the typed CellPayload
// components a grid's cells actually carry (memory-model table, latency
// snapshot, throughput counters, named metrics). A component's columns
// appear when any cell in the table has it; absent cells render zeros.
// Since payloads are a deterministic function of the grid, the column set
// is too — renderings stay byte-stable and thread-count-invariant.
// docs/SWEEP_FORMATS.md documents every column of every emitter.

#pragma once

#include <string>

#include "slb/sim/sweep.h"

namespace slb {

/// One row per cell, tab-separated:
/// scenario variant algo workers seed runs status I(m) avg(I) max(I) ...
/// followed by the table's payload columns.
std::string SweepToTsv(const SweepResultTable& table);

/// Same rows as CSV with a header line; fields containing commas, quotes, or
/// newlines are double-quoted (RFC 4180).
std::string SweepToCsv(const SweepResultTable& table);

/// JSON array of cell objects, including the sampled imbalance series and,
/// when present, the payload components as nested objects
/// ("memory"/"latency"/"throughput"/"metrics").
std::string SweepToJson(const SweepResultTable& table);

/// Long-format series TSV: one row per (cell, sample) — the Fig. 12 shape.
/// Failed cells contribute no rows.
std::string SweepSeriesToTsv(const SweepResultTable& table);

/// Long-format per-worker load TSV: one row per (cell, worker) with the
/// head / tail / total load percentages — the Fig. 8 shape. Failed cells
/// contribute no rows.
std::string SweepWorkerLoadsToTsv(const SweepResultTable& table);

}  // namespace slb
