// Renderers for sweep result tables.
//
// All emitters are pure functions of the table with fixed formatting
// (snprintf, no locale), so a byte-compare of two renderings is a valid
// equality check on the tables themselves — the sweep determinism tests
// rely on this. TSV output is gnuplot-ready ('#'-prefixed header).

#pragma once

#include <string>

#include "slb/sim/sweep.h"

namespace slb {

/// One row per cell, tab-separated:
/// scenario variant algo workers seed runs status I(m) avg(I) max(I) ...
std::string SweepToTsv(const SweepResultTable& table);

/// Same rows as CSV with a header line; fields containing commas, quotes, or
/// newlines are double-quoted (RFC 4180).
std::string SweepToCsv(const SweepResultTable& table);

/// JSON array of cell objects, including the sampled imbalance series.
std::string SweepToJson(const SweepResultTable& table);

/// Long-format series TSV: one row per (cell, sample) — the Fig. 12 shape.
/// Failed cells contribute no rows.
std::string SweepSeriesToTsv(const SweepResultTable& table);

}  // namespace slb
