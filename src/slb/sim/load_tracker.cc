#include "slb/sim/load_tracker.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

LoadTracker::LoadTracker(uint32_t num_workers, bool track_memory)
    : counts_(num_workers, 0),
      head_counts_(num_workers, 0),
      track_memory_(track_memory),
      costs_(num_workers, 0.0),
      outstanding_(num_workers, 0.0),
      outstanding_step_(num_workers, 0) {
  SLB_CHECK(num_workers >= 1);
}

void LoadTracker::EnableCostTracking(double service_rate) {
  SLB_CHECK(service_rate > 0.0) << "service rate must be positive";
  service_rate_ = service_rate;
}

void LoadTracker::MaterializeOutstanding(uint32_t worker) {
  if (service_rate_ > 0.0) {
    const double drain = service_rate_ * static_cast<double>(
                             steps_ - outstanding_step_[worker]);
    const double applied = std::min(drain, outstanding_[worker]);
    outstanding_[worker] -= applied;
    completed_cost_ += applied;
  }
  outstanding_step_[worker] = steps_;
}

void LoadTracker::Record(uint32_t worker, uint64_t key, bool is_head,
                         double cost) {
  SLB_CHECK(worker < counts_.size()) << "worker id out of range";
  ++counts_[worker];
  ++total_;
  if (is_head) {
    ++head_counts_[worker];
    ++head_messages_;
  }
  if (track_memory_) {
    // The pair encoding must not depend on the current worker count — under
    // elastic rescale `counts_.size()` changes mid-stream, and a count-
    // dependent encoding (key * n + worker) would alias pairs recorded at
    // different worker counts.
    SLB_CHECK(worker < (1u << 16)) << "memory tracking supports < 65536 workers";
    key_worker_pairs_.insert((key << 16) | worker);
  }

  ++steps_;
  MaterializeOutstanding(worker);
  costs_[worker] += cost;
  total_cost_ += cost;
  outstanding_[worker] += cost;
  // Between Records a worker's backlog only drains, so the peak over all
  // steps is always hit right after an arrival — lazy drain sees every peak.
  peak_outstanding_ = std::max(peak_outstanding_, outstanding_[worker]);
}

void LoadTracker::Rescale(uint32_t new_num_workers) {
  SLB_CHECK(new_num_workers >= 1);
  for (size_t w = new_num_workers; w < counts_.size(); ++w) {
    total_ -= counts_[w];
    head_messages_ -= head_counts_[w];
    total_cost_ -= costs_[w];
  }
  counts_.resize(new_num_workers, 0);
  head_counts_.resize(new_num_workers, 0);
  costs_.resize(new_num_workers, 0.0);
  outstanding_.resize(new_num_workers, 0.0);
  outstanding_step_.resize(new_num_workers, steps_);
}

double LoadTracker::Imbalance() const {
  if (total_ == 0) return 0.0;
  const uint64_t max_count = *std::max_element(counts_.begin(), counts_.end());
  return static_cast<double>(max_count) / static_cast<double>(total_) -
         1.0 / static_cast<double>(counts_.size());
}

std::vector<double> LoadTracker::NormalizedLoads() const {
  std::vector<double> loads(counts_.size(), 0.0);
  if (total_ == 0) return loads;
  for (size_t w = 0; w < counts_.size(); ++w) {
    loads[w] = static_cast<double>(counts_[w]) / static_cast<double>(total_);
  }
  return loads;
}

std::vector<double> LoadTracker::NormalizedHeadLoads() const {
  std::vector<double> loads(head_counts_.size(), 0.0);
  if (total_ == 0) return loads;
  for (size_t w = 0; w < head_counts_.size(); ++w) {
    loads[w] =
        static_cast<double>(head_counts_[w]) / static_cast<double>(total_);
  }
  return loads;
}

std::vector<double> LoadTracker::NormalizedTailLoads() const {
  std::vector<double> loads(counts_.size(), 0.0);
  if (total_ == 0) return loads;
  for (size_t w = 0; w < counts_.size(); ++w) {
    loads[w] = static_cast<double>(counts_[w] - head_counts_[w]) /
               static_cast<double>(total_);
  }
  return loads;
}

double LoadTracker::CostImbalance() const {
  if (!(total_cost_ > 0.0)) return 0.0;
  const double max_cost = *std::max_element(costs_.begin(), costs_.end());
  return max_cost / total_cost_ - 1.0 / static_cast<double>(costs_.size());
}

std::vector<double> LoadTracker::NormalizedCostLoads() const {
  std::vector<double> loads(costs_.size(), 0.0);
  if (!(total_cost_ > 0.0)) return loads;
  for (size_t w = 0; w < costs_.size(); ++w) {
    loads[w] = costs_[w] / total_cost_;
  }
  return loads;
}

double LoadTracker::OutstandingWork(uint32_t worker) const {
  SLB_CHECK(worker < outstanding_.size()) << "worker id out of range";
  if (service_rate_ <= 0.0) return outstanding_[worker];
  const double drain = service_rate_ * static_cast<double>(
                           steps_ - outstanding_step_[worker]);
  return std::max(0.0, outstanding_[worker] - drain);
}

double LoadTracker::TotalOutstanding() const {
  double sum = 0.0;
  for (uint32_t w = 0; w < outstanding_.size(); ++w) {
    sum += OutstandingWork(w);
  }
  return sum;
}

double LoadTracker::completed_cost() const {
  // Fold in drains that have elapsed but not yet been materialized by a
  // Record on the worker, so the conservation invariant holds at any step.
  double pending = 0.0;
  if (service_rate_ > 0.0) {
    for (size_t w = 0; w < outstanding_.size(); ++w) {
      const double drain = service_rate_ * static_cast<double>(
                               steps_ - outstanding_step_[w]);
      pending += std::min(drain, outstanding_[w]);
    }
  }
  return completed_cost_ + pending;
}

}  // namespace slb
