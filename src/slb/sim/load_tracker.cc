#include "slb/sim/load_tracker.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

LoadTracker::LoadTracker(uint32_t num_workers, bool track_memory)
    : counts_(num_workers, 0),
      head_counts_(num_workers, 0),
      track_memory_(track_memory) {
  SLB_CHECK(num_workers >= 1);
}

void LoadTracker::Record(uint32_t worker, uint64_t key, bool is_head) {
  SLB_CHECK(worker < counts_.size()) << "worker id out of range";
  ++counts_[worker];
  ++total_;
  if (is_head) {
    ++head_counts_[worker];
    ++head_messages_;
  }
  if (track_memory_) {
    // The pair encoding must not depend on the current worker count — under
    // elastic rescale `counts_.size()` changes mid-stream, and a count-
    // dependent encoding (key * n + worker) would alias pairs recorded at
    // different worker counts.
    SLB_CHECK(worker < (1u << 16)) << "memory tracking supports < 65536 workers";
    key_worker_pairs_.insert((key << 16) | worker);
  }
}

void LoadTracker::Rescale(uint32_t new_num_workers) {
  SLB_CHECK(new_num_workers >= 1);
  for (size_t w = new_num_workers; w < counts_.size(); ++w) {
    total_ -= counts_[w];
    head_messages_ -= head_counts_[w];
  }
  counts_.resize(new_num_workers, 0);
  head_counts_.resize(new_num_workers, 0);
}

double LoadTracker::Imbalance() const {
  if (total_ == 0) return 0.0;
  const uint64_t max_count = *std::max_element(counts_.begin(), counts_.end());
  return static_cast<double>(max_count) / static_cast<double>(total_) -
         1.0 / static_cast<double>(counts_.size());
}

std::vector<double> LoadTracker::NormalizedLoads() const {
  std::vector<double> loads(counts_.size(), 0.0);
  if (total_ == 0) return loads;
  for (size_t w = 0; w < counts_.size(); ++w) {
    loads[w] = static_cast<double>(counts_[w]) / static_cast<double>(total_);
  }
  return loads;
}

std::vector<double> LoadTracker::NormalizedHeadLoads() const {
  std::vector<double> loads(head_counts_.size(), 0.0);
  if (total_ == 0) return loads;
  for (size_t w = 0; w < head_counts_.size(); ++w) {
    loads[w] =
        static_cast<double>(head_counts_[w]) / static_cast<double>(total_);
  }
  return loads;
}

std::vector<double> LoadTracker::NormalizedTailLoads() const {
  std::vector<double> loads(counts_.size(), 0.0);
  if (total_ == 0) return loads;
  for (size_t w = 0; w < counts_.size(); ++w) {
    loads[w] = static_cast<double>(counts_[w] - head_counts_[w]) /
               static_cast<double>(total_);
  }
  return loads;
}

}  // namespace slb
