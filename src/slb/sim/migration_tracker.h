// Key-state migration accounting for elastic rescaling (ROADMAP item 1).
//
// When the worker set changes mid-stream, per-key state (counters, windows,
// whatever the operator keeps) must follow the keys to their new owners. The
// tracker models the two protocols real engines use (cf. Madsen et al. and
// the Malstrom rescaling notes):
//
//  * Scale-IN is EAGER: a removed worker is draining toward shutdown, so
//    every key with state on it is handed off at the event, entering a FIFO
//    handoff channel that drains `migration_keys_per_message` keys per
//    routed message. Messages for a key whose handoff has not completed yet
//    are counted as stalled (in a real engine they buffer at the receiver).
//
//  * Scale-OUT is LAZY: nothing moves at the event. The first time each
//    pre-existing key is routed afterwards, its placement is rechecked; if
//    it lands on a worker that lacks its state, the state is pulled over —
//    one migration — through the same handoff channel.
//
// `moved_key_fraction` = keys migrated / keys whose placement was checked
// (live keys at scale-in events + lazily rechecked keys after scale-out).
// For a consistent-hash ring this converges to ~|delta|/n — the minimal-
// movement property — while mod-range hashing schemes (KG/PKG/D-C/W-C)
// re-home nearly everything. That contrast is what bench_elastic_rescale
// measures.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "slb/common/status.h"

namespace slb {

/// One timed worker-set change. Fractions are of the total stream length so
/// schedules compose with any message count.
struct RescaleEvent {
  double at_fraction = 0.5;   // stream position in (0, 1)
  uint32_t num_workers = 1;   // target worker count after the event
};

/// Knobs of the migration cost model.
struct RescaleCostModel {
  /// Bytes of operator state migrated per key handoff.
  uint64_t state_bytes_per_key = 64;

  /// Handoff channel drain rate: key handoffs completed per routed message.
  uint32_t migration_keys_per_message = 4;
};

struct RescaleSchedule {
  /// Events sorted by strictly increasing at_fraction.
  std::vector<RescaleEvent> events;
  RescaleCostModel cost;

  bool empty() const { return events.empty(); }
};

/// Checks a schedule's invariants (fractions strictly increasing in (0, 1),
/// targets >= 1 workers, sane cost model). Shared by the simulator
/// (PartitionSimConfig::rescale) and the threaded engine
/// (TopologyRuntimeOptions::rescale).
Status ValidateRescaleSchedule(const RescaleSchedule& schedule);

/// A worker-set change that actually fired, pinned to its global stream
/// position in the canonical round-robin interleave across senders (the
/// simulator's shuffle-grouping order: message i belongs to sender i mod S).
struct RescaleFiredEvent {
  uint64_t at_message = 0;
  uint32_t old_num_workers = 0;
  uint32_t new_num_workers = 0;
};

/// One sender's routed stream on the rescaled edge, in emission order.
struct SenderRoutingLog {
  std::vector<uint64_t> keys;
  std::vector<uint32_t> workers;
};

/// Per-key state-replica and handoff accounting. One instance per simulation
/// (it sees the ground-truth routed stream, like LoadTracker).
class MigrationTracker {
 public:
  explicit MigrationTracker(const RescaleCostModel& cost);

  /// Records message `seq` (0-based stream position) of `key` routed to
  /// `worker`. Performs the lazy post-scale-out recheck and stall test.
  void OnMessage(uint64_t seq, uint64_t key, uint32_t worker);

  /// The worker set changed at message position `seq` (before the message at
  /// `seq` is routed). Scale-in migrates eagerly; scale-out opens a lazy
  /// recheck epoch.
  void OnRescale(uint64_t seq, uint32_t old_num_workers,
                 uint32_t new_num_workers);

  uint64_t keys_migrated() const { return keys_migrated_; }
  uint64_t keys_checked() const { return keys_checked_; }
  uint64_t state_bytes_migrated() const { return state_bytes_migrated_; }
  uint64_t stalled_messages() const { return stalled_messages_; }
  uint32_t rescale_events() const { return rescale_events_; }

  /// Every migrated key in handoff-enqueue order (eager events contribute
  /// their affected keys sorted; lazy pulls in first-touch order). The
  /// sim-vs-threaded equivalence tests compare this vector byte-for-byte.
  const std::vector<uint64_t>& migrated_keys() const { return migrated_keys_; }

  /// Fraction of checked keys that actually moved; the minimal-movement
  /// headline number (0 when no placement was ever checked).
  double moved_key_fraction() const {
    return keys_checked_ == 0 ? 0.0
                              : static_cast<double>(keys_migrated_) /
                                    static_cast<double>(keys_checked_);
  }

 private:
  struct KeyState {
    /// Workers holding this key's state (small: 1 for single-home schemes,
    /// ~2 for PKG tails; unsorted, linear scan).
    std::vector<uint32_t> replicas;

    /// First message position at which this key's in-flight handoff (if any)
    /// has completed; messages before it are stalled.
    uint64_t available_at = 0;

    /// Last lazy-recheck epoch this key was examined in.
    uint32_t checked_epoch = 0;
  };

  /// Enqueues one key handoff at message `seq`; returns the message position
  /// at which it completes (FIFO channel, `migration_keys_per_message` rate).
  uint64_t EnqueueHandoff(uint64_t seq, uint64_t key);

  RescaleCostModel cost_;
  std::unordered_map<uint64_t, KeyState> keys_;
  std::vector<uint64_t> migrated_keys_;
  uint32_t epoch_ = 0;             // bumped by scale-out events
  uint64_t next_free_slot_ = 0;    // handoff channel tail, in key-slot units
  uint64_t keys_migrated_ = 0;
  uint64_t keys_checked_ = 0;
  uint64_t state_bytes_migrated_ = 0;
  uint64_t stalled_messages_ = 0;
  uint32_t rescale_events_ = 0;
};

/// Replays per-sender routing logs through a fresh MigrationTracker in the
/// canonical global order: message i belongs to sender i mod S (skipping a
/// sender once its log is exhausted), and each fired event's OnRescale runs
/// before the message at its position — exactly the simulator's loop. The
/// threaded engine records logs live and replays them after the run, so its
/// modeled migration columns are byte-identical to RunPartitionSimulation on
/// the same per-sender streams and event positions, independent of thread
/// interleaving.
MigrationTracker ReplayRoundRobinMigration(
    const RescaleCostModel& cost, const std::vector<RescaleFiredEvent>& events,
    const std::vector<SenderRoutingLog>& senders);

}  // namespace slb
