#include "slb/sim/migration_tracker.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

MigrationTracker::MigrationTracker(const RescaleCostModel& cost) : cost_(cost) {
  SLB_CHECK(cost_.migration_keys_per_message >= 1);
}

uint64_t MigrationTracker::EnqueueHandoff(uint64_t seq) {
  // The channel transfers `rate` keys per message, so slot s completes by
  // message ceil((s + 1) / rate). A handoff enqueued at message `seq` cannot
  // start before slot seq * rate (the channel capacity up to that point is
  // already spent), and queued handoffs occupy consecutive slots.
  const uint64_t rate = cost_.migration_keys_per_message;
  const uint64_t slot = std::max(next_free_slot_, seq * rate);
  next_free_slot_ = slot + 1;
  state_bytes_migrated_ += cost_.state_bytes_per_key;
  ++keys_migrated_;
  return (slot + rate) / rate;  // == ceil((slot + 1) / rate)
}

void MigrationTracker::OnMessage(uint64_t seq, uint64_t key, uint32_t worker) {
  KeyState& state = keys_[key];
  if (seq < state.available_at) ++stalled_messages_;

  if (state.checked_epoch < epoch_ && !state.replicas.empty()) {
    // First routing of a pre-existing key since the last scale-out: the lazy
    // placement recheck. If its new home lacks the state, pull it over.
    state.checked_epoch = epoch_;
    ++keys_checked_;
    const bool has_state =
        std::find(state.replicas.begin(), state.replicas.end(), worker) !=
        state.replicas.end();
    if (!has_state) {
      state.available_at = std::max(state.available_at, EnqueueHandoff(seq));
    }
  } else {
    state.checked_epoch = epoch_;
  }

  if (std::find(state.replicas.begin(), state.replicas.end(), worker) ==
      state.replicas.end()) {
    state.replicas.push_back(worker);
  }
}

void MigrationTracker::OnRescale(uint64_t seq, uint32_t old_num_workers,
                                 uint32_t new_num_workers) {
  ++rescale_events_;
  if (new_num_workers < old_num_workers) {
    // Eager scale-in: every key with state on a removed worker (dense ids
    // >= new_n) hands off now. Keys are processed in sorted order so the
    // FIFO completion sequence — and hence the stall counts — do not depend
    // on unordered_map iteration order.
    std::vector<uint64_t> affected;
    for (auto& [key, state] : keys_) {
      if (state.replicas.empty()) continue;
      ++keys_checked_;
      const bool on_removed =
          std::any_of(state.replicas.begin(), state.replicas.end(),
                      [new_num_workers](uint32_t w) {
                        return w >= new_num_workers;
                      });
      if (on_removed) affected.push_back(key);
    }
    std::sort(affected.begin(), affected.end());
    for (uint64_t key : affected) {
      KeyState& state = keys_[key];
      state.replicas.erase(
          std::remove_if(state.replicas.begin(), state.replicas.end(),
                         [new_num_workers](uint32_t w) {
                           return w >= new_num_workers;
                         }),
          state.replicas.end());
      state.available_at = std::max(state.available_at, EnqueueHandoff(seq));
    }
  } else if (new_num_workers > old_num_workers) {
    // Lazy scale-out: open a recheck epoch; OnMessage migrates on first
    // contact with each pre-existing key.
    ++epoch_;
  }
}

}  // namespace slb
