#include "slb/sim/migration_tracker.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

Status ValidateRescaleSchedule(const RescaleSchedule& schedule) {
  double prev_fraction = 0.0;
  for (const RescaleEvent& event : schedule.events) {
    if (event.at_fraction <= 0.0 || event.at_fraction >= 1.0) {
      return Status::InvalidArgument(
          "rescale event fraction must be in (0, 1)");
    }
    if (event.at_fraction <= prev_fraction) {
      return Status::InvalidArgument(
          "rescale events must have strictly increasing fractions");
    }
    if (event.num_workers < 1) {
      return Status::InvalidArgument("rescale target must be >= 1 workers");
    }
    prev_fraction = event.at_fraction;
  }
  if (schedule.cost.migration_keys_per_message < 1) {
    return Status::InvalidArgument(
        "migration_keys_per_message must be >= 1");
  }
  return Status::OK();
}

MigrationTracker::MigrationTracker(const RescaleCostModel& cost) : cost_(cost) {
  SLB_CHECK(cost_.migration_keys_per_message >= 1);
}

uint64_t MigrationTracker::EnqueueHandoff(uint64_t seq, uint64_t key) {
  // The channel transfers `rate` keys per message, so slot s completes by
  // message ceil((s + 1) / rate). A handoff enqueued at message `seq` cannot
  // start before slot seq * rate (the channel capacity up to that point is
  // already spent), and queued handoffs occupy consecutive slots.
  const uint64_t rate = cost_.migration_keys_per_message;
  const uint64_t slot = std::max(next_free_slot_, seq * rate);
  next_free_slot_ = slot + 1;
  state_bytes_migrated_ += cost_.state_bytes_per_key;
  ++keys_migrated_;
  migrated_keys_.push_back(key);
  return (slot + rate) / rate;  // == ceil((slot + 1) / rate)
}

void MigrationTracker::OnMessage(uint64_t seq, uint64_t key, uint32_t worker) {
  KeyState& state = keys_[key];
  if (seq < state.available_at) ++stalled_messages_;

  if (state.checked_epoch < epoch_ && !state.replicas.empty()) {
    // First routing of a pre-existing key since the last scale-out: the lazy
    // placement recheck. If its new home lacks the state, pull it over.
    state.checked_epoch = epoch_;
    ++keys_checked_;
    const bool has_state =
        std::find(state.replicas.begin(), state.replicas.end(), worker) !=
        state.replicas.end();
    if (!has_state) {
      state.available_at =
          std::max(state.available_at, EnqueueHandoff(seq, key));
    }
  } else {
    state.checked_epoch = epoch_;
  }

  if (std::find(state.replicas.begin(), state.replicas.end(), worker) ==
      state.replicas.end()) {
    state.replicas.push_back(worker);
  }
}

void MigrationTracker::OnRescale(uint64_t seq, uint32_t old_num_workers,
                                 uint32_t new_num_workers) {
  ++rescale_events_;
  if (new_num_workers < old_num_workers) {
    // Eager scale-in: every key with state on a removed worker (dense ids
    // >= new_n) hands off now. Keys are processed in sorted order so the
    // FIFO completion sequence — and hence the stall counts — do not depend
    // on unordered_map iteration order.
    std::vector<uint64_t> affected;
    for (auto& [key, state] : keys_) {
      if (state.replicas.empty()) continue;
      ++keys_checked_;
      const bool on_removed =
          std::any_of(state.replicas.begin(), state.replicas.end(),
                      [new_num_workers](uint32_t w) {
                        return w >= new_num_workers;
                      });
      if (on_removed) affected.push_back(key);
    }
    std::sort(affected.begin(), affected.end());
    for (uint64_t key : affected) {
      KeyState& state = keys_[key];
      state.replicas.erase(
          std::remove_if(state.replicas.begin(), state.replicas.end(),
                         [new_num_workers](uint32_t w) {
                           return w >= new_num_workers;
                         }),
          state.replicas.end());
      state.available_at =
          std::max(state.available_at, EnqueueHandoff(seq, key));
    }
  } else if (new_num_workers > old_num_workers) {
    // Lazy scale-out: open a recheck epoch; OnMessage migrates on first
    // contact with each pre-existing key.
    ++epoch_;
  }
}

MigrationTracker ReplayRoundRobinMigration(
    const RescaleCostModel& cost, const std::vector<RescaleFiredEvent>& events,
    const std::vector<SenderRoutingLog>& senders) {
  MigrationTracker tracker(cost);
  const size_t num_senders = senders.size();
  SLB_CHECK(num_senders > 0);
  uint64_t total = 0;
  for (const SenderRoutingLog& log : senders) {
    SLB_CHECK(log.keys.size() == log.workers.size());
    total += log.keys.size();
  }

  std::vector<size_t> cursor(num_senders, 0);
  size_t next_event = 0;
  uint64_t position = 0;
  for (uint64_t consumed = 0; consumed < total; ++consumed, ++position) {
    while (next_event < events.size() &&
           position >= events[next_event].at_message) {
      const RescaleFiredEvent& event = events[next_event];
      tracker.OnRescale(position, event.old_num_workers,
                        event.new_num_workers);
      ++next_event;
    }
    // Round-robin: position i belongs to sender i mod S. A sender whose log
    // ran out (shorter stream than the even split) cedes its slot to the
    // next sender in cyclic order.
    size_t s = static_cast<size_t>(position % num_senders);
    for (size_t probe = 0; probe < num_senders; ++probe) {
      const size_t candidate = (s + probe) % num_senders;
      if (cursor[candidate] < senders[candidate].keys.size()) {
        s = candidate;
        break;
      }
    }
    tracker.OnMessage(position, senders[s].keys[cursor[s]],
                      senders[s].workers[cursor[s]]);
    ++cursor[s];
  }
  // Events pinned at or past the end of the logs (possible only if a caller
  // fired an event after its last message) still replay.
  for (; next_event < events.size(); ++next_event) {
    const RescaleFiredEvent& event = events[next_event];
    tracker.OnRescale(position, event.old_num_workers, event.new_num_workers);
  }
  return tracker;
}

}  // namespace slb
