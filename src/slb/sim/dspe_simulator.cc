#include "slb/sim/dspe_simulator.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>

#include "slb/common/logging.h"
#include "slb/common/rng.h"

namespace slb {

namespace {

// In-flight tuple bookkeeping.
struct Tuple {
  double emit_time_s;
  uint32_t source;
  uint32_t worker;
};

enum class EventType : uint8_t { kTransportDone, kWorkerDone };

struct Event {
  double time_s;
  EventType type;
  uint32_t worker;  // meaningful for kWorkerDone

  bool operator>(const Event& other) const { return time_s > other.time_s; }
};

}  // namespace

Result<DspeResult> RunDspeSimulation(const DspeConfig& config) {
  if (config.num_sources < 1) {
    return Status::InvalidArgument("need at least one source");
  }
  if (config.num_messages < 1) {
    return Status::InvalidArgument("need at least one message");
  }
  if (config.worker_service_ms <= 0 || config.transport_rate_per_s <= 0) {
    return Status::InvalidArgument("service times must be positive");
  }
  if (config.max_pending_per_source < 1) {
    return Status::InvalidArgument("need a positive credit window");
  }

  const uint32_t s = config.num_sources;
  const uint32_t n = config.partitioner.num_workers;
  const double worker_service_s = config.worker_service_ms / 1e3;
  const double transport_service_s = 1.0 / config.transport_rate_per_s;

  // Sender-local partitioners and per-source generators.
  std::vector<std::unique_ptr<StreamPartitioner>> senders;
  senders.reserve(s);
  for (uint32_t i = 0; i < s; ++i) {
    auto sender = CreatePartitioner(config.algorithm, config.partitioner);
    if (!sender.ok()) return sender.status();
    senders.push_back(std::move(sender.value()));
  }
  const ZipfDistribution zipf(config.zipf_exponent, config.num_keys);
  std::vector<Rng> rngs;
  rngs.reserve(s);
  for (uint32_t i = 0; i < s; ++i) rngs.emplace_back(config.seed + 1000003ULL * i);

  // Per-source emission budget: split the total as evenly as possible.
  std::vector<uint64_t> remaining(s, config.num_messages / s);
  for (uint64_t i = 0; i < config.num_messages % s; ++i) ++remaining[i];
  std::vector<uint32_t> credits(s, config.max_pending_per_source);

  std::deque<Tuple> transport_queue;
  bool transport_busy = false;
  std::vector<std::deque<Tuple>> worker_queues(n);
  std::vector<bool> worker_busy(n, false);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  DspeResult result;
  Histogram latency_ms(1 << 19, config.seed ^ 0x1a7e9cULL);
  std::vector<RunningStats> worker_latency(n);
  double last_completion_s = 0.0;

  double now_s = 0.0;

  auto try_emit = [&](uint32_t source) {
    while (credits[source] > 0 && remaining[source] > 0) {
      --credits[source];
      --remaining[source];
      const uint64_t key = zipf.Sample(&rngs[source]);
      const uint32_t worker = senders[source]->Route(key);
      transport_queue.push_back(Tuple{now_s, source, worker});
      if (!transport_busy) {
        transport_busy = true;
        events.push(Event{now_s + transport_service_s, EventType::kTransportDone, 0});
      }
    }
  };

  for (uint32_t source = 0; source < s; ++source) try_emit(source);

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now_s = ev.time_s;

    if (ev.type == EventType::kTransportDone) {
      SLB_CHECK(!transport_queue.empty());
      const Tuple tuple = transport_queue.front();
      transport_queue.pop_front();
      // Deliver to the destination worker's queue.
      worker_queues[tuple.worker].push_back(tuple);
      if (!worker_busy[tuple.worker]) {
        worker_busy[tuple.worker] = true;
        events.push(
            Event{now_s + worker_service_s, EventType::kWorkerDone, tuple.worker});
      }
      if (!transport_queue.empty()) {
        events.push(
            Event{now_s + transport_service_s, EventType::kTransportDone, 0});
      } else {
        transport_busy = false;
      }
      continue;
    }

    // kWorkerDone: the tuple at the head of this worker's queue finishes.
    const uint32_t w = ev.worker;
    SLB_CHECK(!worker_queues[w].empty());
    const Tuple tuple = worker_queues[w].front();
    worker_queues[w].pop_front();

    const double latency = (now_s - tuple.emit_time_s) * 1e3;
    latency_ms.Add(latency);
    worker_latency[w].Add(latency);
    ++result.completed;
    last_completion_s = now_s;

    // Ack: the source regains a credit and emits its next tuple.
    ++credits[tuple.source];
    try_emit(tuple.source);

    if (!worker_queues[w].empty()) {
      events.push(Event{now_s + worker_service_s, EventType::kWorkerDone, w});
    } else {
      worker_busy[w] = false;
    }
  }

  SLB_CHECK(result.completed == config.num_messages)
      << "conservation violated: completed " << result.completed << " of "
      << config.num_messages;

  result.makespan_s = last_completion_s;
  result.throughput_per_s =
      last_completion_s > 0
          ? static_cast<double>(result.completed) / last_completion_s
          : 0.0;
  result.latency_avg_ms = latency_ms.mean();
  result.latency_p50_ms = latency_ms.p50();
  result.latency_p95_ms = latency_ms.p95();
  result.latency_p99_ms = latency_ms.p99();
  result.latency_max_ms = latency_ms.max();

  // Fig. 14 reporting: distribution across workers of per-worker averages.
  Histogram across_workers(0, 1);
  double max_avg = 0.0;
  for (const RunningStats& stats : worker_latency) {
    if (stats.count() == 0) continue;
    across_workers.Add(stats.mean());
    max_avg = std::max(max_avg, stats.mean());
  }
  result.max_worker_avg_latency_ms = max_avg;
  result.p50_worker_avg_latency_ms = across_workers.p50();
  result.p95_worker_avg_latency_ms = across_workers.p95();
  result.p99_worker_avg_latency_ms = across_workers.p99();
  return result;
}

}  // namespace slb
