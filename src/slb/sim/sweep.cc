#include "slb/sim/sweep.h"

#include <memory>
#include <utility>

#include "slb/common/logging.h"
#include "slb/common/parallel.h"

namespace slb {

SweepScenario ScenarioFromDataset(const DatasetSpec& spec) {
  SweepScenario scenario;
  scenario.label = spec.name;
  scenario.param = spec.zipf_exponent;
  scenario.make = [spec](uint64_t seed) -> Result<std::unique_ptr<StreamGenerator>> {
    DatasetSpec seeded = spec;
    seeded.seed = seed;
    return {std::unique_ptr<StreamGenerator>(MakeGenerator(seeded))};
  };
  return scenario;
}

SweepScenario ScenarioFromCatalog(const std::string& name,
                                  const ScenarioOptions& options,
                                  std::string label) {
  SweepScenario scenario;
  scenario.label = label.empty() ? name : std::move(label);
  scenario.param = options.zipf_exponent;
  scenario.make = [name, options](uint64_t seed) {
    ScenarioOptions seeded = options;
    seeded.seed = seed;
    return MakeScenario(name, seeded);
  };
  return scenario;
}

namespace {

// Replays a trace shared read-only across concurrent cells — only the
// cursor is per-cell, so arbitrarily many cells replay one trace buffer.
class SharedTraceStreamGenerator final : public StreamGenerator {
 public:
  SharedTraceStreamGenerator(std::string name,
                             std::shared_ptr<const Trace> trace)
      : name_(std::move(name)), trace_(std::move(trace)) {}

  uint64_t NextKey() override {
    SLB_CHECK(position_ < trace_->keys.size())
        << "stream exhausted; call Reset()";
    return trace_->keys[position_++];
  }
  void Reset() override { position_ = 0; }
  uint64_t num_messages() const override { return trace_->keys.size(); }
  uint64_t num_keys() const override { return trace_->num_keys; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::shared_ptr<const Trace> trace_;
  size_t position_ = 0;
};

}  // namespace

SweepScenario ScenarioFromTrace(std::string label, Trace trace) {
  SweepScenario scenario;
  scenario.label = std::move(label);
  auto shared = std::make_shared<const Trace>(std::move(trace));
  const std::string name = scenario.label;
  scenario.make =
      [shared, name](uint64_t /*seed*/) -> Result<std::unique_ptr<StreamGenerator>> {
    return {std::make_unique<SharedTraceStreamGenerator>(name, shared)};
  };
  return scenario;
}

LatencySnapshot LatencySnapshot::FromHistogram(const Histogram& histogram) {
  LatencySnapshot snapshot;
  snapshot.count = histogram.count();
  snapshot.avg_ms = histogram.mean();
  snapshot.p50_ms = histogram.p50();
  snapshot.p95_ms = histogram.p95();
  snapshot.p99_ms = histogram.p99();
  snapshot.max_ms = histogram.max();
  return snapshot;
}

void CellPayload::AddMetric(std::string name, double value) {
  metrics.push_back(PayloadMetric{std::move(name), value, /*integral=*/false});
}

void CellPayload::AddCount(std::string name, uint64_t value) {
  metrics.push_back(PayloadMetric{std::move(name),
                                  static_cast<double>(value),
                                  /*integral=*/true});
}

const PayloadMetric* FindMetric(const std::vector<PayloadMetric>& metrics,
                                const std::string& name) {
  for (const PayloadMetric& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

const PayloadMetric* CellPayload::FindMetric(const std::string& name) const {
  return slb::FindMetric(metrics, name);
}

PartitionSimConfig SweepCellContext::MakeSimConfig() const {
  PartitionSimConfig config;
  config.algorithm = algorithm;
  config.partitioner = variant->options;
  config.partitioner.num_workers = num_workers;
  config.partitioner.hash_seed = grid->seed;
  config.num_sources =
      variant->num_sources > 0 ? variant->num_sources : grid->num_sources;
  config.num_samples =
      scenario->num_samples > 0 ? scenario->num_samples : grid->num_samples;
  config.track_memory = grid->track_memory;
  config.oracle_head_size = grid->oracle_head_size;
  config.rescale = variant->rescale.empty() ? grid->rescale : variant->rescale;
  config.service =
      variant->service.enabled() ? variant->service : grid->service;
  return config;
}

Result<std::unique_ptr<StreamGenerator>> SweepCellContext::MakeStream() const {
  return scenario->make(run_seed);
}

Result<CellPayload> SweepCellContext::RunDefault() const {
  auto gen = MakeStream();
  if (!gen.ok()) return gen.status();
  const PartitionSimConfig config = MakeSimConfig();
  auto result = RunPartitionSimulation(config, gen->get());
  if (!result.ok()) return result.status();
  CellPayload payload;
  payload.sim = std::move(result.value());
  if (!config.rescale.empty()) {
    MigrationCounters counters;
    counters.final_num_workers = payload.sim.final_num_workers;
    counters.rescale_events = payload.sim.rescale_events;
    counters.keys_migrated = payload.sim.keys_migrated;
    counters.state_bytes_migrated = payload.sim.state_bytes_migrated;
    counters.stalled_messages = payload.sim.stalled_messages;
    counters.moved_key_fraction = payload.sim.moved_key_fraction;
    payload.migration = counters;
  }
  if (config.service.enabled()) {
    CostCounters counters;
    counters.cost_imbalance = payload.sim.cost_imbalance;
    counters.count_imbalance = payload.sim.final_imbalance;
    counters.misrank_rate = payload.sim.misrank_rate;
    counters.peak_outstanding = payload.sim.peak_outstanding;
    counters.total_cost = payload.sim.total_cost;
    payload.cost = counters;
  }
  return payload;
}

size_t SweepResultTable::num_errors() const {
  size_t errors = 0;
  for (const SweepCellResult& cell : cells) {
    if (!cell.status.ok()) ++errors;
  }
  return errors;
}

const SweepCellResult* SweepResultTable::Find(const std::string& scenario,
                                              const std::string& variant,
                                              AlgorithmKind algorithm,
                                              uint32_t num_workers) const {
  for (const SweepCellResult& cell : cells) {
    if (cell.scenario == scenario && cell.variant == variant &&
        cell.algorithm == algorithm && cell.num_workers == num_workers) {
      return &cell;
    }
  }
  return nullptr;
}

size_t SweepCellCount(const SweepGrid& grid) {
  const size_t variants = grid.variants.empty() ? 1 : grid.variants.size();
  return grid.scenarios.size() * variants * grid.worker_counts.size() *
         grid.algorithms.size();
}

namespace {

// Records a cell failure, zeroing any metrics accumulated by earlier runs.
void FailCell(SweepCellResult* cell, Status status) {
  cell->status = std::move(status);
  cell->mean_final_imbalance = 0.0;
  cell->mean_avg_imbalance = 0.0;
  cell->mean_max_imbalance = 0.0;
  cell->payload = CellPayload{};
}

// Runs one fully-expanded cell: `runs` independent experiments averaged,
// with the last run's full payload retained. Self-contained — reads nothing
// mutable outside the cell, so cells can execute in any order. `runs` is
// the caller's clamped count (grid.runs may be 0).
void RunCell(const SweepGrid& grid, uint32_t runs,
             const SweepScenario& scenario, const SweepVariant& variant,
             SweepCellResult* cell) {
  for (uint32_t r = 0; r < runs; ++r) {
    SweepCellContext context;
    context.grid = &grid;
    context.scenario = &scenario;
    context.variant = &variant;
    context.algorithm = cell->algorithm;
    context.num_workers = cell->num_workers;
    context.run_seed = grid.seed + r;
    context.run = r;

    auto payload = grid.runner ? grid.runner(context) : context.RunDefault();
    if (!payload.ok()) {
      FailCell(cell, payload.status());
      return;
    }
    cell->mean_final_imbalance += payload->sim.final_imbalance;
    cell->mean_avg_imbalance += payload->sim.avg_imbalance;
    cell->mean_max_imbalance += payload->sim.max_imbalance;
    if (r == runs - 1) cell->payload = std::move(payload.value());
  }
  cell->mean_final_imbalance /= runs;
  cell->mean_avg_imbalance /= runs;
  cell->mean_max_imbalance /= runs;
}

}  // namespace

SweepResultTable RunSweep(const SweepGrid& grid, size_t num_threads) {
  std::vector<SweepVariant> variants = grid.variants;
  if (variants.empty()) variants.push_back(SweepVariant{});

  // Expand the grid into cells up front; the row order is fixed here and the
  // parallel phase only ever writes to its own row.
  const size_t cell_count = SweepCellCount(grid);
  SweepResultTable table;
  table.cells.reserve(cell_count);
  struct CellInput {
    const SweepScenario* scenario;
    const SweepVariant* variant;
  };
  std::vector<CellInput> inputs;
  inputs.reserve(cell_count);
  const uint32_t runs = grid.runs < 1 ? 1 : grid.runs;
  for (const SweepScenario& scenario : grid.scenarios) {
    for (const SweepVariant& variant : variants) {
      for (uint32_t workers : grid.worker_counts) {
        for (AlgorithmKind algorithm : grid.algorithms) {
          SweepCellResult cell;
          cell.scenario = scenario.label;
          cell.variant = variant.label;
          cell.algorithm = algorithm;
          cell.num_workers = workers;
          cell.seed = grid.seed;
          cell.runs = runs;
          table.cells.push_back(std::move(cell));
          inputs.push_back(CellInput{&scenario, &variant});
        }
      }
    }
  }

  ParallelFor(
      table.cells.size(),
      [&](size_t i) {
        RunCell(grid, runs, *inputs[i].scenario, *inputs[i].variant,
                &table.cells[i]);
      },
      num_threads);
  return table;
}

}  // namespace slb
