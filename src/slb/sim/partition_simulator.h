// The paper's simulation setup (Sec. V-A, "Simulation"): the simplest DAG —
// a set of sources S receiving the input stream via shuffle grouping, one
// partitioned intermediate stream, and a set of workers W. Each source runs
// its own sender-local partitioner (own load vector, own sketch); the
// simulator measures ground-truth imbalance over time, the head/tail load
// split, and the distinct (key,worker) memory footprint.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "slb/common/status.h"
#include "slb/core/partitioner.h"
#include "slb/sim/load_tracker.h"
#include "slb/sim/migration_tracker.h"
#include "slb/workload/cost_model.h"
#include "slb/workload/stream_generator.h"

namespace slb {

/// Heterogeneous service model (ROADMAP item 2). When a cost model is named,
/// every message is priced by it (the tracker's ground-truth accounting and
/// the senders' cost-aware signals evaluate the same per-key oracle) and a
/// deterministic completion model drains `rate` cost units per worker per
/// routed message, which drives the outstanding-work (in-flight) view.
struct ServiceConfig {
  /// Cost model name for MakeCostModel ("unit", "pareto", "correlated",
  /// "anti-correlated"); empty disables the cost layer entirely.
  std::string cost_model;
  /// Knobs for the model. num_keys is overwritten with the stream's key
  /// count so rank-aligned models see the true frequency ranks.
  CostModelOptions options;
  /// Completion rate: cost units each worker finishes per stream message.
  /// Must be > 0 when the layer is enabled. Rates near mean_cost/num_workers
  /// put workers at ~full utilization, where backlog differences show.
  double rate = 1.0;

  bool enabled() const { return !cost_model.empty(); }
};

struct PartitionSimConfig {
  AlgorithmKind algorithm = AlgorithmKind::kPkg;
  PartitionerOptions partitioner;

  /// Number of source operator instances (Table III default s = 5).
  uint32_t num_sources = 5;

  /// Points at which the imbalance time series I(t) is sampled.
  uint32_t num_samples = 60;

  /// Enables distinct (key,worker) memory accounting (Figs. 5-6).
  bool track_memory = false;

  /// When > 0, the head/tail load split uses the *oracle* classification
  /// key < oracle_head_size instead of the partitioner's own head flag
  /// (Fig. 8 applies one ground-truth head to head-oblivious schemes too;
  /// keys equal ranks in the non-drifting ZF streams, so the oracle test is
  /// rank < |H|).
  uint64_t oracle_head_size = 0;

  /// Elastic rescale schedule (ROADMAP item 1). When non-empty, every sender
  /// is rescaled in lockstep at each event's stream position (all senders
  /// share hash seeds, so their post-rescale candidate sets stay identical)
  /// and key-state migration costs are tracked. Events must have strictly
  /// increasing at_fraction in (0, 1) and target >= 1 workers; the algorithm
  /// must support rescaling. partitioner.num_workers is the INITIAL count.
  RescaleSchedule rescale;

  /// Copies the per-key migration log into the result (equivalence tests;
  /// static sweeps should leave it off — the vector grows with migrations).
  bool record_migrated_keys = false;

  /// Heterogeneous per-key service costs + completion model. Disabled (unit
  /// cost, no backlog) when service.cost_model is empty. Required whenever
  /// partitioner.balance_on != kCount — the senders need the cost oracle.
  ServiceConfig service;
};

struct PartitionSimResult {
  /// I(m): imbalance at the end of the stream (the paper's headline metric).
  double final_imbalance = 0.0;
  /// Mean/max of I(t) over the sampled series.
  double avg_imbalance = 0.0;
  double max_imbalance = 0.0;

  /// I(t) sampled num_samples times, plus the message index of each sample.
  std::vector<double> imbalance_series;
  std::vector<uint64_t> sample_positions;

  /// Final normalized per-worker loads, split by head/tail (Fig. 8).
  std::vector<double> worker_loads;
  std::vector<double> worker_head_loads;
  std::vector<double> worker_tail_loads;

  /// Distinct (key,worker) pairs (only when track_memory).
  uint64_t memory_entries = 0;

  /// d reported by source 0 at the end (D-Choices diagnostics).
  uint32_t final_head_choices = 0;

  /// FINDOPTIMALCHOICES invocations by source 0 (0 for algorithms without a
  /// cached optimizer; the reoptimization-cadence ablation reads this).
  uint64_t reoptimizations = 0;

  uint64_t head_messages = 0;
  uint64_t total_messages = 0;

  /// Elastic rescale outcome. final_num_workers is always set (it equals the
  /// configured count when no rescale ran); the migration counters are zeros
  /// when config.rescale was empty. worker_loads and the imbalance series
  /// reflect the worker set current at each point — final arrays have
  /// final_num_workers entries.
  uint32_t final_num_workers = 0;
  uint32_t rescale_events = 0;
  uint64_t keys_migrated = 0;
  uint64_t state_bytes_migrated = 0;
  uint64_t stalled_messages = 0;
  double moved_key_fraction = 0.0;
  /// Migrated keys in handoff-enqueue order (only when
  /// config.record_migrated_keys).
  std::vector<uint64_t> migrated_keys;

  /// Heterogeneous cost outcome (zeros unless config.service is enabled).
  /// cost_imbalance is the paper's metric computed over true service cost;
  /// misrank_rate is the fraction of TRUE cost-heavy keys (cost load >=
  /// theta * total cost) that a frequency threshold at the same theta
  /// misses — exactly 0 under the unit model.
  double total_cost = 0.0;
  double cost_imbalance = 0.0;
  double peak_outstanding = 0.0;
  double misrank_rate = 0.0;
};

/// Runs the full stream through `config.num_sources` independent senders.
/// The generator is Reset() before use. Returns InvalidArgument for bad
/// configurations.
Result<PartitionSimResult> RunPartitionSimulation(const PartitionSimConfig& config,
                                                  StreamGenerator* stream);

}  // namespace slb
