// Discrete-event DSPE simulator — the stand-in for the paper's Apache Storm
// cluster deployment (Sec. V, Q4; Figs. 13-14).
//
// Queueing model (see DESIGN.md for the substitution argument):
//
//   sources --(credit window)--> transport stage --> worker FIFO queues
//
//   * Each of the `s` sources generates keyed tuples from the workload
//     distribution, routes them with its sender-local partitioner, and may
//     have at most `max_pending_per_source` tuples in flight (Storm's "max
//     spout pending" acking backpressure).
//   * The transport stage is a single FIFO server with aggregate rate
//     `transport_rate_per_s`. It models the framework's per-tuple emission /
//     serialization / dispatch cost, which is what bounds the throughput of
//     a *balanced* Storm topology (the paper's SG plateau).
//   * Each worker is a FIFO queue with deterministic service time
//     `worker_service_ms` (the paper injects 1 ms of CPU per tuple; the
//     default adds the framework's per-tuple processing overhead on top).
//
// Under imbalance the hottest worker's queue absorbs the whole credit
// window, which simultaneously caps throughput at service_rate / max_share
// and inflates tail latency to window * service_time — exactly the
// mechanism the paper measures on the cluster.

#pragma once

#include <cstdint>
#include <vector>

#include "slb/common/histogram.h"
#include "slb/common/status.h"
#include "slb/core/partitioner.h"
#include "slb/workload/zipf.h"

namespace slb {

struct DspeConfig {
  AlgorithmKind algorithm = AlgorithmKind::kShuffleGrouping;
  PartitionerOptions partitioner;  // num_workers = n (paper: 80)

  uint32_t num_sources = 48;       // paper: 48 spouts
  uint64_t num_messages = 200000;  // total tuples (paper: 2e6)

  /// Workload: Zipf(z, num_keys) drawn independently per source.
  double zipf_exponent = 1.4;
  uint64_t num_keys = 10000;

  double worker_service_ms = 1.5;     // 1 ms injected delay + framework cost
  double transport_rate_per_s = 3300; // aggregate emission capacity
  uint32_t max_pending_per_source = 70;

  uint64_t seed = 42;
};

struct DspeResult {
  /// Sustained throughput: completed tuples / makespan.
  double throughput_per_s = 0.0;
  double makespan_s = 0.0;

  /// Tuple-level end-to-end latency (emission -> processing completion).
  double latency_avg_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  /// The paper's Fig. 14 reporting: per-worker *average* latencies, then the
  /// max / percentiles across workers.
  double max_worker_avg_latency_ms = 0.0;
  double p50_worker_avg_latency_ms = 0.0;
  double p95_worker_avg_latency_ms = 0.0;
  double p99_worker_avg_latency_ms = 0.0;

  uint64_t completed = 0;
};

/// Runs the closed-loop event simulation to completion of all tuples.
Result<DspeResult> RunDspeSimulation(const DspeConfig& config);

}  // namespace slb
