// Parallel scenario-sweep engine.
//
// The paper's evaluation is one cartesian sweep: (algorithm x partitioner
// variant x stream scenario x worker count), each cell an independent
// experiment. This engine expands a SweepGrid into fully-seeded cells, fans
// them out over ParallelFor, and collects results into a table whose row
// order depends only on the grid — never on thread scheduling — so a
// multi-threaded sweep is byte-identical to a serial one (locked down by
// tests/sim/sweep_test.cc and tests/sim/payload_test.cc).
//
// What a cell *computes* is pluggable: by default it is one
// RunPartitionSimulation call, but a grid may install a custom
// SweepCellRunner returning a typed CellPayload — the partition-simulation
// result plus optional memory-model tables, latency histogram snapshots,
// throughput counters, and free-form named metrics. slb/sim/report.h
// renders whichever payload columns a grid produces. Every bench driver and
// experiment tool sweeps through here instead of rolling its own loop.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "slb/common/histogram.h"
#include "slb/common/status.h"
#include "slb/sim/partition_simulator.h"
#include "slb/workload/datasets.h"
#include "slb/workload/scenario.h"
#include "slb/workload/trace.h"

namespace slb {

/// One value of the stream-scenario axis: a label plus a factory that builds
/// a fresh generator for a given seed. The factory is called concurrently
/// from sweep workers and must be a pure function of the seed.
struct SweepScenario {
  std::string label;
  std::function<Result<std::unique_ptr<StreamGenerator>>(uint64_t seed)> make;
  /// Per-scenario imbalance-series resolution (0 = grid default). Dataset
  /// sweeps sample once per "hour" (Fig. 12), so this varies per scenario.
  uint32_t num_samples = 0;
  /// Free-form scenario parameter for custom cell runners (e.g. the Zipf
  /// exponent a DSPE cell regenerates its workload from). The factory
  /// helpers below fill it with the scenario's Zipf exponent.
  double param = 0.0;
};

/// Scenario from a calibrated dataset spec (WP/TW/CT/ZF); the cell seed
/// overrides spec.seed.
SweepScenario ScenarioFromDataset(const DatasetSpec& spec);

/// Scenario from the adversarial catalog (slb/workload/scenario.h); the cell
/// seed overrides options.seed. The label defaults to the catalog name.
SweepScenario ScenarioFromCatalog(const std::string& name,
                                  const ScenarioOptions& options = {},
                                  std::string label = "");

/// Scenario replaying a recorded trace (seed-independent).
SweepScenario ScenarioFromTrace(std::string label, Trace trace);

/// One value of the partitioner-option axis (e.g. a theta_ratio setting).
/// num_workers and hash_seed are overwritten per cell by the engine.
struct SweepVariant {
  std::string label;  // empty for the single default variant
  PartitionerOptions options;
  /// Source-count override for this variant (0 = grid default). Makes the
  /// deployment's source count sweepable (the sender-local-state ablation).
  uint32_t num_sources = 0;
  /// Rescale-schedule override for this variant (empty = grid default).
  /// Makes the elastic schedule itself a sweep axis (bench_elastic_rescale).
  RescaleSchedule rescale;
  /// Service-model override for this variant (disabled = grid default).
  /// Makes the cost model / completion rate a sweep axis
  /// (bench_cost_routing pairs it with options.balance_on).
  ServiceConfig service;
};

// ---------------------------------------------------------------------------
// Typed per-cell payloads
// ---------------------------------------------------------------------------

/// Sec. IV-B memory comparison for one cell: the model estimate and the
/// simulated footprint for the cell's algorithm, both as overhead relative
/// to a named baseline scheme (Figs. 5-6 use "pkg" and "sg").
struct MemoryModelTable {
  std::string baseline;            // baseline scheme name, e.g. "pkg" / "sg"
  uint64_t baseline_entries = 0;   // baseline's (key,worker) entries
  uint64_t estimated_entries = 0;  // model estimate for the cell's algorithm
  uint64_t measured_entries = 0;   // distinct (key,worker) pairs simulated
  double estimated_overhead_pct = 0.0;
  double measured_overhead_pct = 0.0;
};

/// Immutable summary of a latency Histogram (count/mean/quantiles), cheap
/// enough to keep per cell without retaining the sample reservoir.
struct LatencySnapshot {
  static LatencySnapshot FromHistogram(const Histogram& histogram);

  int64_t count = 0;
  double avg_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Throughput counters from a cluster-level (DSPE) cell run (Fig. 13).
struct ThroughputCounters {
  double throughput_per_s = 0.0;
  double makespan_s = 0.0;
  uint64_t completed = 0;
};

/// Heterogeneous-cost outcome of a cell run with an enabled ServiceConfig:
/// the paper's imbalance metric over true service cost next to the count
/// metric on the SAME routing decisions, the sketch mis-rank rate, and the
/// completion model's peak backlog. All five render as byte-stable columns.
struct CostCounters {
  double cost_imbalance = 0.0;
  double count_imbalance = 0.0;
  double misrank_rate = 0.0;
  double peak_outstanding = 0.0;
  double total_cost = 0.0;
};

/// Key-state migration costs from an elastic (rescaling) cell run — the
/// simulator's MigrationTracker counters (slb/sim/migration_tracker.h).
struct MigrationCounters {
  uint32_t final_num_workers = 0;
  uint32_t rescale_events = 0;
  uint64_t keys_migrated = 0;
  uint64_t state_bytes_migrated = 0;
  uint64_t stalled_messages = 0;
  double moved_key_fraction = 0.0;
};

/// An extra named column attached by a custom cell runner. All cells of one
/// grid should attach the same metric names; the report renders the union
/// in first-seen cell order, filling absences with zero.
struct PayloadMetric {
  std::string name;
  double value = 0.0;
  /// Rendered as a decimal integer instead of full-precision scientific.
  bool integral = false;
};

/// Finds a metric by name in a payload-metric list; nullptr when absent.
const PayloadMetric* FindMetric(const std::vector<PayloadMetric>& metrics,
                                const std::string& name);

/// What one cell produced: the partition-simulation result (zeroed for
/// runners that do not simulate routing) composed with the optional typed
/// extensions above.
struct CellPayload {
  PartitionSimResult sim;

  std::optional<MemoryModelTable> memory;
  std::optional<LatencySnapshot> latency;
  std::optional<ThroughputCounters> throughput;
  std::optional<MigrationCounters> migration;
  std::optional<CostCounters> cost;
  std::vector<PayloadMetric> metrics;

  void AddMetric(std::string name, double value);
  void AddCount(std::string name, uint64_t value);
  /// Finds a metric by name; nullptr when absent.
  const PayloadMetric* FindMetric(const std::string& name) const;
};

struct SweepGrid;  // forward declaration for SweepCellContext

/// Everything a cell runner may depend on: the cell's coordinates plus the
/// grid it came from. run_seed already includes the run index, so a pure
/// function of this context is automatically deterministic.
struct SweepCellContext {
  const SweepGrid* grid = nullptr;
  const SweepScenario* scenario = nullptr;
  const SweepVariant* variant = nullptr;
  AlgorithmKind algorithm = AlgorithmKind::kPkg;
  uint32_t num_workers = 0;
  /// Seed of this run: grid.seed + run.
  uint64_t run_seed = 0;
  uint32_t run = 0;

  /// The fully-resolved simulator configuration for this cell (variant
  /// options + per-cell worker count + grid-level knobs).
  PartitionSimConfig MakeSimConfig() const;
  /// Builds the scenario's generator for this run's seed.
  Result<std::unique_ptr<StreamGenerator>> MakeStream() const;
  /// The default cell behaviour: MakeStream() + RunPartitionSimulation with
  /// MakeSimConfig(). Custom runners can call this and then decorate the
  /// payload with extra tables/metrics.
  Result<CellPayload> RunDefault() const;
};

/// A custom per-cell experiment. Must be a pure function of the context —
/// it is called concurrently and its results must not depend on ordering.
using SweepCellRunner = std::function<Result<CellPayload>(const SweepCellContext&)>;

/// The experiment grid. Cells are the cartesian product
/// scenarios x variants x worker_counts x algorithms, expanded in exactly
/// that nesting order (last axis fastest).
struct SweepGrid {
  std::vector<SweepScenario> scenarios;
  std::vector<AlgorithmKind> algorithms;
  std::vector<uint32_t> worker_counts;
  /// Optional partitioner-option axis; empty means one default variant.
  std::vector<SweepVariant> variants;

  uint32_t num_sources = 5;
  uint32_t num_samples = 60;
  bool track_memory = false;
  /// Oracle head classification for the load breakdown (Fig. 8): when > 0,
  /// the simulator classifies key < oracle_head_size as head traffic instead
  /// of trusting the partitioner's own (possibly head-oblivious) flag.
  uint64_t oracle_head_size = 0;

  /// Elastic rescale schedule applied to every cell (variants may override).
  /// Non-empty schedules make RunDefault() attach MigrationCounters.
  RescaleSchedule rescale;

  /// Heterogeneous service model applied to every cell (variants may
  /// override). Enabled configs make RunDefault() attach CostCounters.
  ServiceConfig service;

  /// Custom per-cell experiment; empty = SweepCellContext::RunDefault().
  SweepCellRunner runner;

  /// Master seed: run r of a cell builds its generator with seed + r and all
  /// cells share hash_seed = seed, matching the bench harness convention.
  uint64_t seed = 42;
  /// Independent runs averaged per cell (seeds seed, seed+1, ...).
  uint32_t runs = 1;
};

/// One row of the result table: the cell's coordinates plus its outcome.
/// A failed cell carries the error in `status` and a zeroed payload;
/// failures never affect sibling cells.
struct SweepCellResult {
  std::string scenario;
  std::string variant;
  AlgorithmKind algorithm = AlgorithmKind::kPkg;
  uint32_t num_workers = 0;
  uint64_t seed = 0;
  uint32_t runs = 1;

  Status status;
  /// Means over the cell's runs (the headline metrics).
  double mean_final_imbalance = 0.0;
  double mean_avg_imbalance = 0.0;
  double mean_max_imbalance = 0.0;
  /// Full payload of the cell's last run (series, loads, memory, ...).
  CellPayload payload;
};

/// Result table in stable grid order (independent of thread count).
struct SweepResultTable {
  std::vector<SweepCellResult> cells;

  size_t num_errors() const;
  /// Finds a cell by coordinates; nullptr when absent.
  const SweepCellResult* Find(const std::string& scenario,
                              const std::string& variant, AlgorithmKind algorithm,
                              uint32_t num_workers) const;
};

/// Number of cells the grid expands to.
size_t SweepCellCount(const SweepGrid& grid);

/// Runs every cell of the grid across `num_threads` threads (0 = hardware
/// concurrency, 1 = serial). The returned table is identical for every
/// thread count.
SweepResultTable RunSweep(const SweepGrid& grid, size_t num_threads = 0);

}  // namespace slb
