// Parallel scenario-sweep engine.
//
// The paper's evaluation (Figs. 1, 4, 7, 9-14) is one cartesian sweep:
// (algorithm x partitioner variant x stream scenario x worker count), each
// cell an independent RunPartitionSimulation call. This engine expands a
// SweepGrid into fully-seeded cells, fans them out over ParallelFor, and
// collects results into a table whose row order depends only on the grid —
// never on thread scheduling — so a multi-threaded sweep is byte-identical
// to a serial one (locked down by tests/sim/sweep_test.cc). Every bench
// driver and experiment tool should sweep through here instead of rolling
// its own loop; slb/sim/report.h renders the table as TSV/CSV/JSON.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/status.h"
#include "slb/sim/partition_simulator.h"
#include "slb/workload/datasets.h"
#include "slb/workload/scenario.h"
#include "slb/workload/trace.h"

namespace slb {

/// One value of the stream-scenario axis: a label plus a factory that builds
/// a fresh generator for a given seed. The factory is called concurrently
/// from sweep workers and must be a pure function of the seed.
struct SweepScenario {
  std::string label;
  std::function<Result<std::unique_ptr<StreamGenerator>>(uint64_t seed)> make;
  /// Per-scenario imbalance-series resolution (0 = grid default). Dataset
  /// sweeps sample once per "hour" (Fig. 12), so this varies per scenario.
  uint32_t num_samples = 0;
};

/// Scenario from a calibrated dataset spec (WP/TW/CT/ZF); the cell seed
/// overrides spec.seed.
SweepScenario ScenarioFromDataset(const DatasetSpec& spec);

/// Scenario from the adversarial catalog (slb/workload/scenario.h); the cell
/// seed overrides options.seed. The label defaults to the catalog name.
SweepScenario ScenarioFromCatalog(const std::string& name,
                                  const ScenarioOptions& options = {},
                                  std::string label = "");

/// Scenario replaying a recorded trace (seed-independent).
SweepScenario ScenarioFromTrace(std::string label, Trace trace);

/// One value of the partitioner-option axis (e.g. a theta_ratio setting).
/// num_workers and hash_seed are overwritten per cell by the engine.
struct SweepVariant {
  std::string label;  // empty for the single default variant
  PartitionerOptions options;
};

/// The experiment grid. Cells are the cartesian product
/// scenarios x variants x worker_counts x algorithms, expanded in exactly
/// that nesting order (last axis fastest).
struct SweepGrid {
  std::vector<SweepScenario> scenarios;
  std::vector<AlgorithmKind> algorithms;
  std::vector<uint32_t> worker_counts;
  /// Optional partitioner-option axis; empty means one default variant.
  std::vector<SweepVariant> variants;

  uint32_t num_sources = 5;
  uint32_t num_samples = 60;
  bool track_memory = false;

  /// Master seed: run r of a cell builds its generator with seed + r and all
  /// cells share hash_seed = seed, matching the bench harness convention.
  uint64_t seed = 42;
  /// Independent runs averaged per cell (seeds seed, seed+1, ...).
  uint32_t runs = 1;
};

/// One row of the result table: the cell's coordinates plus its outcome.
/// A failed cell carries the error in `status` and zeroed metrics; failures
/// never affect sibling cells.
struct SweepCellResult {
  std::string scenario;
  std::string variant;
  AlgorithmKind algorithm = AlgorithmKind::kPkg;
  uint32_t num_workers = 0;
  uint64_t seed = 0;
  uint32_t runs = 1;

  Status status;
  /// Means over the cell's runs (the headline metrics).
  double mean_final_imbalance = 0.0;
  double mean_avg_imbalance = 0.0;
  double mean_max_imbalance = 0.0;
  /// Full result of the cell's last run (series, loads, memory, ...).
  PartitionSimResult result;
};

/// Result table in stable grid order (independent of thread count).
struct SweepResultTable {
  std::vector<SweepCellResult> cells;

  size_t num_errors() const;
  /// Finds a cell by coordinates; nullptr when absent.
  const SweepCellResult* Find(const std::string& scenario,
                              const std::string& variant, AlgorithmKind algorithm,
                              uint32_t num_workers) const;
};

/// Number of cells the grid expands to.
size_t SweepCellCount(const SweepGrid& grid);

/// Runs every cell of the grid across `num_threads` threads (0 = hardware
/// concurrency, 1 = serial). The returned table is identical for every
/// thread count.
SweepResultTable RunSweep(const SweepGrid& grid, size_t num_threads = 0);

}  // namespace slb
