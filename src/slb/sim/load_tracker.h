// Ground-truth load accounting for simulations.
//
// Tracks the *actual* per-worker message counts (across all senders) and
// computes the paper's imbalance metric
//   I(t) = max_w L_w(t) - avg_w L_w(t),
// with loads normalized by the total number of messages (Sec. II-B). Also
// tracks the head/tail load split per worker (Fig. 8) and, optionally, the
// distinct (key, worker) assignments that determine memory overhead
// (Sec. IV-B, Figs. 5-6).

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace slb {

class LoadTracker {
 public:
  /// `track_memory` enables distinct (key,worker) accounting (costs one hash
  /// set insert per message).
  explicit LoadTracker(uint32_t num_workers, bool track_memory = false);

  /// Records one message routed to `worker`; `is_head` is the router's
  /// classification of the key (for the head/tail breakdown).
  void Record(uint32_t worker, uint64_t key, bool is_head);

  /// Re-targets the tracker to a new worker count (elastic rescale). Added
  /// workers start at zero load. Removed workers' counts leave the totals —
  /// the tracker reports the load carried by the *current* worker set, so
  /// post-rescale imbalance compares like-for-like. Memory entries persist
  /// (distinct (key,worker) state replicas were created regardless).
  void Rescale(uint32_t new_num_workers);

  uint32_t num_workers() const { return static_cast<uint32_t>(counts_.size()); }
  uint64_t total() const { return total_; }

  /// I(t) = max_w L_w - 1/n (the average normalized load is exactly 1/n).
  double Imbalance() const;

  /// Normalized loads L_w (fractions of the total stream).
  std::vector<double> NormalizedLoads() const;

  /// Normalized per-worker load carried by head / tail keys.
  std::vector<double> NormalizedHeadLoads() const;
  std::vector<double> NormalizedTailLoads() const;

  uint64_t head_messages() const { return head_messages_; }

  /// Distinct (key, worker) assignments — the measured memory footprint.
  /// Valid only when constructed with track_memory = true.
  uint64_t memory_entries() const { return key_worker_pairs_.size(); }
  bool tracks_memory() const { return track_memory_; }

  /// Raw per-worker counts.
  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> head_counts_;
  uint64_t total_ = 0;
  uint64_t head_messages_ = 0;
  bool track_memory_;
  std::unordered_set<uint64_t> key_worker_pairs_;  // (key << 16) | worker
};

}  // namespace slb
