// Ground-truth load accounting for simulations.
//
// Tracks the *actual* per-worker message counts (across all senders) and
// computes the paper's imbalance metric
//   I(t) = max_w L_w(t) - avg_w L_w(t),
// with loads normalized by the total number of messages (Sec. II-B). Also
// tracks the head/tail load split per worker (Fig. 8) and, optionally, the
// distinct (key, worker) assignments that determine memory overhead
// (Sec. IV-B, Figs. 5-6).
//
// Heterogeneous cost layer (ROADMAP item 2): every Record carries a service
// cost (1.0 by default), accumulated into per-worker cost totals so the
// SAME metric can be computed over true work — CostImbalance(). With
// EnableCostTracking(rate) the tracker additionally keeps an outstanding-
// work (in-flight) view under a deterministic completion model: each worker
// completes `rate` cost units per recorded step, drained lazily (linear
// decay, clamped at zero, materialized on touch) so Record stays O(1).

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace slb {

class LoadTracker {
 public:
  /// `track_memory` enables distinct (key,worker) accounting (costs one hash
  /// set insert per message).
  explicit LoadTracker(uint32_t num_workers, bool track_memory = false);

  /// Turns on the completion model behind the outstanding-work view:
  /// `service_rate` cost units complete per worker per recorded step.
  /// Must be > 0. Without it outstanding work never drains (it equals the
  /// cumulative cost), which is what a pure cost-imbalance run wants.
  void EnableCostTracking(double service_rate);

  /// Records one message routed to `worker`; `is_head` is the router's
  /// classification of the key (for the head/tail breakdown); `cost` is the
  /// message's service cost (unit by default, so count == cost accounting).
  void Record(uint32_t worker, uint64_t key, bool is_head, double cost = 1.0);

  /// Re-targets the tracker to a new worker count (elastic rescale). Added
  /// workers start at zero load. Removed workers' counts — and their cost
  /// mass and outstanding work — leave the totals: the tracker reports the
  /// load carried by the *current* worker set, so post-rescale imbalance
  /// compares like-for-like. Memory entries persist (distinct (key,worker)
  /// state replicas were created regardless).
  void Rescale(uint32_t new_num_workers);

  uint32_t num_workers() const { return static_cast<uint32_t>(counts_.size()); }
  uint64_t total() const { return total_; }

  /// I(t) = max_w L_w - 1/n (the average normalized load is exactly 1/n).
  double Imbalance() const;

  /// Normalized loads L_w (fractions of the total stream).
  std::vector<double> NormalizedLoads() const;

  /// Normalized per-worker load carried by head / tail keys.
  std::vector<double> NormalizedHeadLoads() const;
  std::vector<double> NormalizedTailLoads() const;

  uint64_t head_messages() const { return head_messages_; }

  /// Distinct (key, worker) assignments — the measured memory footprint.
  /// Valid only when constructed with track_memory = true. Unaffected by
  /// cost weighting: a replica exists whether the message was cheap or dear.
  uint64_t memory_entries() const { return key_worker_pairs_.size(); }
  bool tracks_memory() const { return track_memory_; }

  /// Raw per-worker counts.
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Heterogeneous cost accounting --------------------------------------

  /// Total recorded service cost on the current worker set.
  double total_cost() const { return total_cost_; }

  /// Raw per-worker cumulative cost.
  const std::vector<double>& costs() const { return costs_; }

  /// The paper's imbalance metric over true cost instead of counts:
  /// max_w C_w / C_total - 1/n. Equals Imbalance() under unit costs.
  double CostImbalance() const;

  /// Normalized per-worker cost loads (fractions of total_cost).
  std::vector<double> NormalizedCostLoads() const;

  /// Outstanding (recorded minus completed) work on `worker`, drained to
  /// the current step. Never negative.
  double OutstandingWork(uint32_t worker) const;
  double TotalOutstanding() const;

  /// Cost completed by the deterministic service model so far. Conservation
  /// invariant (no rescale): completed_cost() + TotalOutstanding() equals
  /// total_cost() up to floating-point rounding.
  double completed_cost() const;

  /// Max over all recorded steps of any single worker's outstanding work.
  double peak_outstanding() const { return peak_outstanding_; }

 private:
  /// Applies the pending lazy drain to `worker`, moving completed cost out
  /// of its backlog.
  void MaterializeOutstanding(uint32_t worker);

  std::vector<uint64_t> counts_;
  std::vector<uint64_t> head_counts_;
  uint64_t total_ = 0;
  uint64_t head_messages_ = 0;
  bool track_memory_;
  std::unordered_set<uint64_t> key_worker_pairs_;  // (key << 16) | worker

  std::vector<double> costs_;
  double total_cost_ = 0.0;
  double service_rate_ = 0.0;  // completions per worker per step; 0 = never
  uint64_t steps_ = 0;         // one step per Record
  std::vector<double> outstanding_;        // backlog as of outstanding_step_
  std::vector<uint64_t> outstanding_step_; // step of last materialization
  double completed_cost_ = 0.0;            // materialized completions
  double peak_outstanding_ = 0.0;
};

}  // namespace slb
