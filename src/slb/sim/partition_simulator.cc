#include "slb/sim/partition_simulator.h"

#include <algorithm>

#include "slb/common/logging.h"

namespace slb {

Result<PartitionSimResult> RunPartitionSimulation(const PartitionSimConfig& config,
                                                  StreamGenerator* stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("stream must not be null");
  }
  if (config.num_sources < 1) {
    return Status::InvalidArgument("need at least one source");
  }

  // One sender-local partitioner per source, identical configuration
  // (and hence identical hash functions — only load estimates differ).
  std::vector<std::unique_ptr<StreamPartitioner>> senders;
  senders.reserve(config.num_sources);
  for (uint32_t si = 0; si < config.num_sources; ++si) {
    auto sender = CreatePartitioner(config.algorithm, config.partitioner);
    if (!sender.ok()) return sender.status();
    senders.push_back(std::move(sender.value()));
  }

  stream->Reset();
  const uint64_t m = stream->num_messages();
  LoadTracker tracker(config.partitioner.num_workers, config.track_memory);

  PartitionSimResult result;
  const uint32_t samples = std::max<uint32_t>(1, config.num_samples);
  const uint64_t sample_every = std::max<uint64_t>(1, m / samples);

  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t key = stream->NextKey();
    // The input stream reaches the sources via shuffle grouping (Sec. V-A):
    // round-robin across sources.
    StreamPartitioner& sender = *senders[i % config.num_sources];
    const uint32_t worker = sender.Route(key);
    const bool is_head = config.oracle_head_size > 0
                             ? key < config.oracle_head_size
                             : sender.last_was_head();
    tracker.Record(worker, key, is_head);

    if ((i + 1) % sample_every == 0 || i + 1 == m) {
      result.imbalance_series.push_back(tracker.Imbalance());
      result.sample_positions.push_back(i + 1);
    }
  }

  result.final_imbalance = tracker.Imbalance();
  if (!result.imbalance_series.empty()) {
    double sum = 0.0;
    double max_v = 0.0;
    for (double v : result.imbalance_series) {
      sum += v;
      max_v = std::max(max_v, v);
    }
    result.avg_imbalance = sum / static_cast<double>(result.imbalance_series.size());
    result.max_imbalance = max_v;
  }
  result.worker_loads = tracker.NormalizedLoads();
  result.worker_head_loads = tracker.NormalizedHeadLoads();
  result.worker_tail_loads = tracker.NormalizedTailLoads();
  result.memory_entries = tracker.memory_entries();
  result.final_head_choices = senders.front()->head_choices();
  result.reoptimizations = senders.front()->reoptimize_count();
  result.head_messages = tracker.head_messages();
  result.total_messages = tracker.total();
  return result;
}

}  // namespace slb
