#include "slb/sim/partition_simulator.h"

#include <algorithm>
#include <optional>

#include "slb/common/logging.h"

namespace slb {

Result<PartitionSimResult> RunPartitionSimulation(const PartitionSimConfig& config,
                                                  StreamGenerator* stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("stream must not be null");
  }
  if (config.num_sources < 1) {
    return Status::InvalidArgument("need at least one source");
  }
  if (Status status = ValidateRescaleSchedule(config.rescale); !status.ok()) {
    return status;
  }

  // Heterogeneous cost layer: build the per-key cost oracle shared by the
  // senders (cost-aware signals) and the ground-truth tracker.
  std::shared_ptr<const CostModel> cost_model;
  if (config.service.enabled()) {
    if (!(config.service.rate > 0.0)) {
      return Status::InvalidArgument("service rate must be positive");
    }
    CostModelOptions model_options = config.service.options;
    model_options.num_keys =
        std::max<uint64_t>(1, stream != nullptr ? stream->num_keys() : 1);
    auto model = MakeCostModel(config.service.cost_model, model_options);
    if (!model.ok()) return model.status();
    cost_model = std::move(model.value());
  }
  PartitionerOptions partitioner_options = config.partitioner;
  if (partitioner_options.balance_on != BalanceSignal::kCount) {
    if (!config.service.enabled()) {
      return Status::InvalidArgument(
          "balance_on=cost/in-flight requires config.service");
    }
    partitioner_options.cost_model = cost_model;
    // Each sender sees a 1/num_sources slice of the stream, so per-sender
    // "time" advances num_sources times slower than global completions.
    partitioner_options.service_rate =
        config.service.rate * static_cast<double>(config.num_sources);
  }

  // One sender-local partitioner per source, identical configuration
  // (and hence identical hash functions — only load estimates differ).
  std::vector<std::unique_ptr<StreamPartitioner>> senders;
  senders.reserve(config.num_sources);
  for (uint32_t si = 0; si < config.num_sources; ++si) {
    auto sender = CreatePartitioner(config.algorithm, partitioner_options);
    if (!sender.ok()) return sender.status();
    senders.push_back(std::move(sender.value()));
  }

  if (!config.rescale.empty() && !senders.front()->SupportsRescale()) {
    return Status::InvalidArgument(senders.front()->name() +
                                   " does not support rescaling");
  }

  stream->Reset();
  const uint64_t m = stream->num_messages();
  LoadTracker tracker(config.partitioner.num_workers, config.track_memory);
  if (cost_model != nullptr) tracker.EnableCostTracking(config.service.rate);
  // Per-key arrival counts for the mis-rank analysis (cost runs only).
  std::vector<uint64_t> key_freq;
  if (cost_model != nullptr) key_freq.resize(cost_model->num_keys(), 0);

  // Rescale events, converted from stream fractions to message positions.
  // The migration tracker exists only for elastic runs — it keeps per-key
  // replica state, which static sweeps should not pay for.
  struct PendingEvent {
    uint64_t at_message;
    uint32_t num_workers;
  };
  std::vector<PendingEvent> events;
  for (const RescaleEvent& event : config.rescale.events) {
    events.push_back(PendingEvent{
        static_cast<uint64_t>(event.at_fraction * static_cast<double>(m)),
        event.num_workers});
  }
  std::optional<MigrationTracker> migration;
  if (!events.empty()) migration.emplace(config.rescale.cost);
  size_t next_event = 0;

  PartitionSimResult result;
  const uint32_t samples = std::max<uint32_t>(1, config.num_samples);
  const uint64_t sample_every = std::max<uint64_t>(1, m / samples);

  for (uint64_t i = 0; i < m; ++i) {
    while (next_event < events.size() && i >= events[next_event].at_message) {
      const uint32_t target = events[next_event].num_workers;
      const uint32_t before = senders.front()->num_workers();
      if (target != before) {
        // All senders rescale in lockstep at the same stream position.
        for (auto& sender : senders) {
          if (Status status = sender->Rescale(target); !status.ok()) {
            return status;
          }
        }
        migration->OnRescale(i, before, target);
        tracker.Rescale(target);
      }
      ++next_event;
    }

    const uint64_t key = stream->NextKey();
    // The input stream reaches the sources via shuffle grouping (Sec. V-A):
    // round-robin across sources.
    StreamPartitioner& sender = *senders[i % config.num_sources];
    const uint32_t worker = sender.Route(key);
    const bool is_head = config.oracle_head_size > 0
                             ? key < config.oracle_head_size
                             : sender.last_was_head();
    if (cost_model != nullptr) {
      tracker.Record(worker, key, is_head, cost_model->CostOf(key));
      if (key >= key_freq.size()) key_freq.resize(key + 1, 0);
      ++key_freq[key];
    } else {
      tracker.Record(worker, key, is_head);
    }
    if (migration) migration->OnMessage(i, key, worker);

    if ((i + 1) % sample_every == 0 || i + 1 == m) {
      result.imbalance_series.push_back(tracker.Imbalance());
      result.sample_positions.push_back(i + 1);
    }
  }

  result.final_imbalance = tracker.Imbalance();
  if (!result.imbalance_series.empty()) {
    double sum = 0.0;
    double max_v = 0.0;
    for (double v : result.imbalance_series) {
      sum += v;
      max_v = std::max(max_v, v);
    }
    result.avg_imbalance = sum / static_cast<double>(result.imbalance_series.size());
    result.max_imbalance = max_v;
  }
  result.worker_loads = tracker.NormalizedLoads();
  result.worker_head_loads = tracker.NormalizedHeadLoads();
  result.worker_tail_loads = tracker.NormalizedTailLoads();
  result.memory_entries = tracker.memory_entries();
  result.final_head_choices = senders.front()->head_choices();
  result.reoptimizations = senders.front()->reoptimize_count();
  result.head_messages = tracker.head_messages();
  result.total_messages = tracker.total();
  result.final_num_workers = senders.front()->num_workers();
  if (migration) {
    result.rescale_events = migration->rescale_events();
    result.keys_migrated = migration->keys_migrated();
    result.state_bytes_migrated = migration->state_bytes_migrated();
    result.stalled_messages = migration->stalled_messages();
    result.moved_key_fraction = migration->moved_key_fraction();
    if (config.record_migrated_keys) {
      result.migrated_keys = migration->migrated_keys();
    }
  }
  if (cost_model != nullptr) {
    result.total_cost = tracker.total_cost();
    result.cost_imbalance = tracker.CostImbalance();
    result.peak_outstanding = tracker.peak_outstanding();

    // Mis-rank rate: of the keys whose TRUE cost load clears the head
    // threshold theta (as a fraction of total cost), how many would a
    // frequency threshold at the same theta fail to flag? This is the blind
    // spot of frequency-only sketches on heterogeneous work. The full
    // stream length m anchors both thresholds (tracker totals shrink under
    // rescale and would skew them).
    const double theta = config.partitioner.theta();
    const double freq_threshold = theta * static_cast<double>(m);
    double total_cost_load = 0.0;
    for (uint64_t k = 0; k < key_freq.size(); ++k) {
      if (key_freq[k] == 0) continue;
      total_cost_load +=
          static_cast<double>(key_freq[k]) * cost_model->CostOf(k);
    }
    const double cost_threshold = theta * total_cost_load;
    uint64_t cost_heavy = 0;
    uint64_t missed = 0;
    for (uint64_t k = 0; k < key_freq.size(); ++k) {
      if (key_freq[k] == 0) continue;
      const double cost_load =
          static_cast<double>(key_freq[k]) * cost_model->CostOf(k);
      if (cost_load >= cost_threshold) {
        ++cost_heavy;
        if (static_cast<double>(key_freq[k]) < freq_threshold) ++missed;
      }
    }
    result.misrank_rate = static_cast<double>(missed) /
                          static_cast<double>(std::max<uint64_t>(1, cost_heavy));
  }
  return result;
}

}  // namespace slb
