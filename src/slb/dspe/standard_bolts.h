// Reusable bolts for common streaming-aggregation patterns.
//
// These are the operators the paper's motivating applications are built
// from (Sec. V: "computing statistics for classification, or extracting
// frequent patterns"), written against the topology API so examples and
// tests can compose them. All are deterministic and single-threaded (the
// engine serializes task execution).

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "slb/dspe/topology.h"
#include "slb/sketch/space_saving.h"

namespace slb {

/// Running per-key sum. The canonical stateful operator: its state fan-out
/// across tasks is exactly what the paper's memory analysis charges.
/// Optionally mirrors updates into a caller-owned sink (the engine owns the
/// bolt instances, so callers must not keep raw pointers into them).
class CountingBolt final : public Bolt {
 public:
  using Sink = std::function<void(uint64_t key, uint64_t value)>;

  explicit CountingBolt(Sink sink = nullptr) : sink_(std::move(sink)) {}

  void Execute(const TopologyTuple& tuple, OutputCollector*) override {
    counts_[tuple.key] += tuple.value;
    if (sink_) sink_(tuple.key, tuple.value);
  }
  size_t StateEntries() const override { return counts_.size(); }

  // Elastic key-state handoff: the state is the running sum itself, so a
  // migrating key ships its count and the receiver adds it in (installs do
  // not re-fire the sink — the updates were already mirrored at the source).
  bool SupportsStateHandoff() const override { return true; }
  void AppendStateKeys(std::vector<uint64_t>* keys) const override {
    keys->reserve(keys->size() + counts_.size());
    for (const auto& [key, count] : counts_) keys->push_back(key);
  }
  bool ExtractKeyState(uint64_t key, uint64_t* value) override {
    auto it = counts_.find(key);
    if (it == counts_.end()) {
      *value = 0;
      return false;
    }
    *value = it->second;
    counts_.erase(it);
    return true;
  }
  void InstallKeyState(uint64_t key, uint64_t value) override {
    counts_[key] += value;
  }

 private:
  std::unordered_map<uint64_t, uint64_t> counts_;
  Sink sink_;
};

/// Emits one partial-sum tuple per key every `window` input tuples — the
/// periodic "flush" stage that makes multi-worker key splitting exact:
/// downstream, a MergingBolt adds the partials back together (the
/// aggregation phase of Sec. IV-B, cost proportional to d).
class WindowedSumBolt final : public Bolt {
 public:
  explicit WindowedSumBolt(uint64_t window) : window_(window) {}

  void Execute(const TopologyTuple& tuple, OutputCollector* out) override {
    partial_[tuple.key] += tuple.value;
    if (++since_flush_ >= window_) Flush(out);
  }

  size_t StateEntries() const override { return partial_.size(); }

 private:
  void Flush(OutputCollector* out) {
    for (const auto& [key, sum] : partial_) {
      out->Emit(TopologyTuple{key, sum});
    }
    partial_.clear();
    since_flush_ = 0;
  }

  uint64_t window_;
  uint64_t since_flush_ = 0;
  std::unordered_map<uint64_t, uint64_t> partial_;
};

/// Adds up partial sums per key (the reconciliation stage downstream of a
/// WindowedSumBolt; routed with key grouping so each key's partials meet).
class MergingBolt final : public Bolt {
 public:
  using Sink = std::function<void(uint64_t key, uint64_t value)>;

  explicit MergingBolt(Sink sink = nullptr) : sink_(std::move(sink)) {}

  void Execute(const TopologyTuple& tuple, OutputCollector*) override {
    totals_[tuple.key] += tuple.value;
    if (sink_) sink_(tuple.key, tuple.value);
  }
  size_t StateEntries() const override { return totals_.size(); }

  bool SupportsStateHandoff() const override { return true; }
  void AppendStateKeys(std::vector<uint64_t>* keys) const override {
    keys->reserve(keys->size() + totals_.size());
    for (const auto& [key, total] : totals_) keys->push_back(key);
  }
  bool ExtractKeyState(uint64_t key, uint64_t* value) override {
    auto it = totals_.find(key);
    if (it == totals_.end()) {
      *value = 0;
      return false;
    }
    *value = it->second;
    totals_.erase(it);
    return true;
  }
  void InstallKeyState(uint64_t key, uint64_t value) override {
    totals_[key] += value;
  }

 private:
  std::unordered_map<uint64_t, uint64_t> totals_;
  Sink sink_;
};

/// Tracks the top keys of its sub-stream with a SpaceSaving sketch and
/// periodically emits its current heavy hitters (key, estimated count) —
/// the distributed top-k pattern ([11, 12]).
class TopKBolt final : public Bolt {
 public:
  TopKBolt(size_t sketch_capacity, size_t k, uint64_t report_every)
      : sketch_(sketch_capacity), k_(k), report_every_(report_every) {}

  void Execute(const TopologyTuple& tuple, OutputCollector* out) override {
    sketch_.UpdateAndEstimate(tuple.key);
    if (++since_report_ >= report_every_) {
      since_report_ = 0;
      auto counters = sketch_.Counters();
      if (counters.size() > k_) counters.resize(k_);
      for (const HeavyKey& hk : counters) {
        out->Emit(TopologyTuple{hk.key, hk.count});
      }
    }
  }
  size_t StateEntries() const override { return sketch_.memory_counters(); }

 private:
  SpaceSaving sketch_;
  size_t k_;
  uint64_t report_every_;
  uint64_t since_report_ = 0;
};

/// Applies a pure function to each tuple (stateless transform; the kind of
/// operator shuffle grouping is ideal for).
class MapBolt final : public Bolt {
 public:
  using Fn = std::function<TopologyTuple(const TopologyTuple&)>;

  explicit MapBolt(Fn fn) : fn_(std::move(fn)) {}

  void Execute(const TopologyTuple& tuple, OutputCollector* out) override {
    out->Emit(fn_(tuple));
  }

 private:
  Fn fn_;
};

/// Drops tuples failing a predicate.
class FilterBolt final : public Bolt {
 public:
  using Predicate = std::function<bool(const TopologyTuple&)>;

  explicit FilterBolt(Predicate pred) : pred_(std::move(pred)) {}

  void Execute(const TopologyTuple& tuple, OutputCollector* out) override {
    if (pred_(tuple)) out->Emit(tuple);
  }

 private:
  Predicate pred_;
};

}  // namespace slb
