// Bounded lock-free single-producer / single-consumer ring queue.
//
// The threaded runtime's transport fabric: every (producer task, consumer
// task) pair of an edge gets one ring, so bolts see MPSC fan-in as a poll
// over per-producer SPSC rings — no CAS loops, no shared tail contention,
// FIFO order preserved per sender (the property the partitioners' sender-
// local load estimates rely on).
//
// Classic cached-index design: producer and consumer each own one index and
// keep a cached copy of the other's, so the hot path touches a shared cache
// line only when its cached view goes stale. Batch push/pop amortize even
// those refreshes across `batch_size` tuples (the runtime's emit batching).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace slb {

/// Destructive-interference granularity assumed by the runtime's hot
/// structures (ring indices, root-slot array, per-task counters). A fixed 64
/// rather than std::hardware_destructive_interference_size: the constant
/// feeds alignas() in headers, so it must not vary between TUs/compilers.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return buffer_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool TryPush(const T& item) { return TryPushBatch(&item, 1) == 1; }

  /// Pushes up to `count` items; returns how many were accepted (a prefix of
  /// `items`). One release store publishes the whole batch.
  size_t TryPushBatch(const T* items, size_t count) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = cached_head_ + buffer_.size() - tail;
    if (free < count) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = cached_head_ + buffer_.size() - tail;
      if (free == 0) return 0;
    }
    const size_t n = count < free ? count : free;
    for (size_t i = 0; i < n; ++i) {
      buffer_[(tail + i) & mask_] = items[i];
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) { return TryPopBatch(out, 1) == 1; }

  /// Pops up to `max` items into `out`; returns how many were taken. One
  /// release store frees the whole batch for the producer.
  size_t TryPopBatch(T* out, size_t max) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t available = cached_tail_ - head;
    if (available == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      available = cached_tail_ - head;
      if (available == 0) return 0;
    }
    const size_t n = max < available ? max : available;
    for (size_t i = 0; i < n; ++i) {
      out[i] = buffer_[(head + i) & mask_];
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Drains everything currently visible into `out` (appending); returns the
  /// count. Consumer-side; used by the rescale mutator to settle rings while
  /// every executor is parked, and by shutdown paths that must not drop
  /// in-flight items.
  size_t TryPopAll(std::vector<T>* out) {
    size_t total = 0;
    T item;
    while (TryPop(&item)) {
      out->push_back(item);
      ++total;
    }
    return total;
  }

  /// Approximate occupancy (exact only when both sides are quiescent).
  size_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;
  // Producer-owned line: tail plus its cached view of head.
  alignas(kCacheLineBytes) std::atomic<size_t> tail_{0};
  size_t cached_head_ = 0;
  // Consumer-owned line: head plus its cached view of tail.
  alignas(kCacheLineBytes) std::atomic<size_t> head_{0};
  size_t cached_tail_ = 0;
  // Trailing pad so a ring packed in an array never shares the consumer's
  // line with whatever follows it.
  [[maybe_unused]] char pad_[kCacheLineBytes - sizeof(size_t)];
};

}  // namespace slb
