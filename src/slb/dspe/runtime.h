// Threaded topology executor — the real (measured, not simulated) engine.
//
// ExecuteTopology in topology.h replays Storm's scheduling semantics inside
// a discrete-event loop; every throughput/latency number it produces is
// *modeled*. This runtime executes the same declarative topology on real
// threads so bench_fig13/fig14 can report hardware-measured msgs/sec and
// queue-delay percentiles (ROADMAP item 1):
//
//   * transport: one bounded lock-free SPSC ring (spsc_queue.h) per
//     (producer task, consumer task) pair of every edge; a bolt consumes by
//     polling its per-producer rings round-robin (MPSC fan-in without CAS);
//   * emit batching: producers buffer up to `batch_size` routed tuples per
//     destination and publish each batch with a single release store;
//   * backpressure: spouts hold a credit window of `max_pending_per_spout`
//     root tuples (TopologyOptions), returned when the tuple tree acks; full
//     rings additionally stall producers without blocking their thread, so
//     pressure propagates source-ward exactly like Storm's max-spout-pending;
//   * scheduling: tasks are assigned round-robin to `num_threads` executor
//     threads; each thread runs its tasks cooperatively (a task quantum
//     never blocks, so one thread can host many tasks without deadlock).
//
// Determinism: each task's partitioner state is sender-local and fed only by
// that task's own tuple sequence, so for single-layer topologies the routing
// decisions — and therefore per-component tuple counts, load vectors, and
// imbalance — are byte-identical to ExecuteTopology's, independent of thread
// count and interleaving (locked down by tests/dspe/runtime_test.cc). Timing
// fields (makespan, throughput, latency percentiles) are measured wall-clock
// and naturally vary run to run.

#pragma once

#include <cstdint>

#include "slb/common/status.h"
#include "slb/dspe/topology.h"

namespace slb {

struct TopologyRuntimeOptions {
  /// Executor threads (0 = hardware concurrency, capped at the task count).
  uint32_t num_threads = 0;
  /// Per (producer, consumer) ring capacity in tuples (rounded up to a power
  /// of two). Small rings surface backpressure earlier.
  uint32_t queue_capacity = 1024;
  /// Emit-path batch: tuples buffered per destination before one ring
  /// publish; also the number of tuples a task processes per quantum.
  uint32_t batch_size = 64;
};

/// Runs the topology on real threads until every spout is exhausted and all
/// in-flight tuple trees have acked. Service-time knobs of TopologyOptions
/// (spout_service_ms / bolt_service_ms) are ignored — execution cost is
/// whatever the spout/bolt code actually costs; hash_seed, seed,
/// max_pending_per_spout, and max_tuples apply as in ExecuteTopology.
///
/// Bolt instances are driven by exactly one executor thread each (tasks
/// never migrate), so Bolt/Spout implementations need no internal locking —
/// but factories must return distinct instances per task, and any caller-
/// owned sinks shared across tasks must be thread-safe.
Result<TopologyStats> ExecuteTopologyThreaded(
    const TopologyBuilder::Topology& topology, const TopologyOptions& options,
    const TopologyRuntimeOptions& runtime_options = {});

}  // namespace slb
