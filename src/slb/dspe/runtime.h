// Threaded topology executor — the real (measured, not simulated) engine.
//
// ExecuteTopology in topology.h replays Storm's scheduling semantics inside
// a discrete-event loop; every throughput/latency number it produces is
// *modeled*. This runtime executes the same declarative topology on real
// threads so bench_fig13/fig14 can report hardware-measured msgs/sec and
// queue-delay percentiles (ROADMAP item 1):
//
//   * transport: one bounded lock-free SPSC ring (spsc_queue.h) per
//     (producer task, consumer task) pair of every edge; a bolt consumes by
//     polling its per-producer rings round-robin (MPSC fan-in without CAS);
//   * emit batching: producers buffer up to `batch_size` routed tuples per
//     destination and publish each batch with a single release store;
//   * backpressure: spouts hold a credit window of `max_pending_per_spout`
//     root tuples (TopologyOptions), returned when the tuple tree acks; full
//     rings additionally stall producers without blocking their thread, so
//     pressure propagates source-ward exactly like Storm's max-spout-pending;
//   * scheduling: tasks are assigned round-robin to `num_threads` executor
//     threads; each thread runs its tasks cooperatively (a task quantum
//     never blocks, so one thread can host many tasks without deadlock).
//
// Determinism: each task's partitioner state is sender-local and fed only by
// that task's own tuple sequence, so for single-layer topologies the routing
// decisions — and therefore per-component tuple counts, load vectors, and
// imbalance — are byte-identical to ExecuteTopology's, independent of thread
// count and interleaving (locked down by tests/dspe/runtime_test.cc). Timing
// fields (makespan, throughput, latency percentiles) are measured wall-clock
// and naturally vary run to run.
//
// Live elastic rescale (TopologyRuntimeOptions::rescale): the runtime can
// grow and shrink the bolt component of a spout->bolt topology while it
// runs — executor threads are started and retired without tearing the
// topology down, and per-key bolt state follows the keys through real
// handoff frames on dedicated rings. Which keys move is governed by the
// same protocol RunPartitionSimulation models (eager sorted handoff on
// scale-in, lazy recheck on scale-out; see docs/ARCHITECTURE.md "Elastic
// rescale protocol"), while TopologyStats::rescale additionally reports the
// *measured* costs: quiesce latency, credit-drain time, and post-resume
// migration stall.

#pragma once

#include <cstdint>
#include <string>

#include "slb/common/status.h"
#include "slb/dspe/topology.h"
#include "slb/sim/migration_tracker.h"

namespace slb {

/// A live worker add/remove schedule for ExecuteTopologyThreaded. Event
/// positions are fractions of `total_messages` (the caller's intended spout
/// root-tuple total), converted with the same truncation the simulator uses,
/// so a threaded run and a RunPartitionSimulation over the same per-sender
/// streams fire at identical global stream positions. The runtime turns each
/// position into per-spout emission triggers: spout s (of S spouts, fed
/// round-robin) pauses after emitting its share of the first `position`
/// global messages, the topology quiesces (credit windows drain to zero),
/// the worker set mutates at a barrier, and execution resumes. If a spout
/// exhausts before reaching its trigger the remaining events are cancelled
/// (the stream was shorter than `total_messages` promised).
struct ThreadedRescaleSchedule {
  RescaleSchedule schedule;
  /// Total root tuples the spouts will emit (sets event positions).
  uint64_t total_messages = 0;
  /// Bolt component to rescale; empty = the topology's only bolt. Live
  /// rescale supports exactly the paper's simulation DAG: one spout
  /// component feeding one sink bolt component over one partitioned edge.
  std::string component;

  bool empty() const { return schedule.empty(); }
};

/// How an executor thread waits when a full pass over its tasks finds no
/// runnable work.
enum class WaitStrategy : uint8_t {
  /// Unconditional sched-yield per idle pass — the legacy behavior. Wakes
  /// within one scheduler slice but burns a hardware thread while idle.
  kSpin,
  /// Escalating ladder: cpu-relax spin -> timed yield -> park on a condition
  /// variable until a producer signals new work (ring publish, credit
  /// return, phase change, shutdown). Parked threads cost nothing; a 1 ms
  /// timed wait bounds any missed-wakeup window. Idle/park time is surfaced
  /// in TopologyStats (idle_s / park_s / parks).
  kAdaptive,
};

struct TopologyRuntimeOptions {
  /// Executor threads (0 = hardware concurrency, capped at the task count).
  uint32_t num_threads = 0;
  /// Per (producer, consumer) ring capacity in tuples (rounded up to a power
  /// of two). Small rings surface backpressure earlier.
  uint32_t queue_capacity = 1024;
  /// Emit-path batch: tuples buffered per destination before one ring
  /// publish; also the number of tuples a task processes per quantum.
  uint32_t batch_size = 64;
  /// Idle executor policy (see WaitStrategy).
  WaitStrategy wait_strategy = WaitStrategy::kAdaptive;
  /// kAdaptive: consecutive idle passes spent cpu-relax spinning before the
  /// ladder escalates to yielding. Each idle pass re-polls every hosted
  /// task's rings, so this is "polls between relaxes", not raw pause count.
  uint32_t spin_iterations = 32;
  /// kAdaptive: consecutive idle passes spent yielding before parking.
  uint32_t yield_iterations = 8;
  /// Pin executor threads round-robin over the CPUs in the process's
  /// affinity mask (Linux). Graceful no-op where unsupported; the count of
  /// successfully pinned threads lands in TopologyStats::threads_pinned.
  bool pin_threads = false;
  /// Live elastic rescale schedule (empty = static worker set). Requires a
  /// rescalable partitioner on the spout->bolt edge and bolts that implement
  /// the Bolt state-handoff API.
  ThreadedRescaleSchedule rescale;
};

/// Runs the topology on real threads until every spout is exhausted and all
/// in-flight tuple trees have acked. Service-time knobs of TopologyOptions
/// (spout_service_ms / bolt_service_ms) are ignored — execution cost is
/// whatever the spout/bolt code actually costs; hash_seed, seed,
/// max_pending_per_spout, and max_tuples apply as in ExecuteTopology.
///
/// Bolt instances are driven by exactly one executor thread each (tasks
/// never migrate), so Bolt/Spout implementations need no internal locking —
/// but factories must return distinct instances per task, and any caller-
/// owned sinks shared across tasks must be thread-safe.
Result<TopologyStats> ExecuteTopologyThreaded(
    const TopologyBuilder::Topology& topology, const TopologyOptions& options,
    const TopologyRuntimeOptions& runtime_options = {});

}  // namespace slb
