#include "slb/dspe/plan.h"

#include <functional>
#include <unordered_map>
#include <utility>

#include "slb/common/logging.h"

namespace slb {

const PlannedComponent& TopologyPlan::task_component(uint32_t task) const {
  SLB_CHECK(task < num_tasks);
  // Components are contiguous in task space; linear scan is fine for the
  // component counts topologies have (a handful), binary search if not.
  for (const PlannedComponent& comp : components) {
    if (task < comp.first_task + comp.parallelism) return comp;
  }
  SLB_CHECK(false) << "task id out of range";
  return components.back();
}

Result<TopologyPlan> PlanTopology(const TopologyBuilder::Topology& topology) {
  if (topology.spouts.empty()) {
    return Status::InvalidArgument("topology needs at least one spout");
  }

  TopologyPlan plan;
  std::unordered_map<std::string, uint32_t> by_name;
  for (uint32_t i = 0; i < topology.spouts.size(); ++i) {
    const auto& spout = topology.spouts[i];
    if (spout.parallelism < 1) {
      return Status::InvalidArgument("spout '" + spout.name +
                                     "' needs parallelism >= 1");
    }
    if (!by_name.emplace(spout.name, plan.components.size()).second) {
      return Status::InvalidArgument("duplicate component name: " + spout.name);
    }
    plan.components.push_back(
        PlannedComponent{spout.name, true, spout.parallelism, 0, i, {}});
  }
  plan.num_spout_components = static_cast<uint32_t>(plan.components.size());
  for (uint32_t i = 0; i < topology.bolts.size(); ++i) {
    const auto& bolt = topology.bolts[i];
    if (bolt.parallelism < 1) {
      return Status::InvalidArgument("bolt '" + bolt.name +
                                     "' needs parallelism >= 1");
    }
    if (!by_name.emplace(bolt.name, plan.components.size()).second) {
      return Status::InvalidArgument("duplicate component name: " + bolt.name);
    }
    if (bolt.inputs.empty()) {
      return Status::InvalidArgument("bolt '" + bolt.name + "' has no inputs");
    }
    plan.components.push_back(
        PlannedComponent{bolt.name, false, bolt.parallelism, 0, i, {}});
  }
  for (const auto& bolt : topology.bolts) {
    const uint32_t to = by_name.at(bolt.name);
    for (const auto& [upstream, grouping] : bolt.inputs) {
      auto it = by_name.find(upstream);
      if (it == by_name.end()) {
        return Status::InvalidArgument("bolt '" + bolt.name +
                                       "' consumes unknown component '" +
                                       upstream + "'");
      }
      if (it->second == to) {
        return Status::InvalidArgument("bolt '" + bolt.name +
                                       "' cannot consume itself");
      }
      plan.components[it->second].outputs.push_back(PlannedEdge{to, grouping});
    }
  }

  // Cycle check: DFS over the component graph.
  {
    enum class Mark : uint8_t { kWhite, kGray, kBlack };
    std::vector<Mark> marks(plan.components.size(), Mark::kWhite);
    std::function<bool(uint32_t)> has_cycle = [&](uint32_t c) {
      marks[c] = Mark::kGray;
      for (const PlannedEdge& e : plan.components[c].outputs) {
        if (marks[e.to_component] == Mark::kGray) return true;
        if (marks[e.to_component] == Mark::kWhite && has_cycle(e.to_component)) {
          return true;
        }
      }
      marks[c] = Mark::kBlack;
      return false;
    };
    for (uint32_t c = 0; c < plan.components.size(); ++c) {
      if (marks[c] == Mark::kWhite && has_cycle(c)) {
        return Status::InvalidArgument("topology contains a cycle");
      }
    }
  }

  uint32_t next_task = 0;
  for (PlannedComponent& comp : plan.components) {
    comp.first_task = next_task;
    next_task += comp.parallelism;
  }
  plan.num_tasks = next_task;
  return plan;
}

uint64_t EdgeHashSeed(uint64_t base_seed, uint32_t component, size_t edge_index) {
  return base_seed ^ (0x9e3779b97f4a7c15ULL * (component + 1)) ^
         (0x517cc1b727220a95ULL * (edge_index + 1));
}

Result<ElasticTargetPlan> ResolveElasticTarget(const TopologyPlan& plan,
                                               const std::string& component) {
  if (plan.components.size() != 2 || plan.num_spout_components != 1) {
    return Status::InvalidArgument(
        "live rescale requires exactly one spout component feeding one bolt "
        "component");
  }
  const PlannedComponent& spout = plan.components[0];
  const PlannedComponent& bolt = plan.components[1];
  if (spout.outputs.size() != 1 || spout.outputs[0].to_component != 1) {
    return Status::InvalidArgument(
        "live rescale requires a single spout->bolt edge");
  }
  if (!bolt.outputs.empty()) {
    return Status::InvalidArgument(
        "live rescale requires the rescaled bolt to be a sink");
  }
  if (!component.empty() && component != bolt.name) {
    return Status::InvalidArgument("rescale target component '" + component +
                                   "' is not the topology's bolt '" +
                                   bolt.name + "'");
  }
  return ElasticTargetPlan{0, 1};
}

Result<std::vector<std::unique_ptr<StreamPartitioner>>> MakeEdgePartitioners(
    const TopologyPlan& plan, uint32_t component, uint64_t base_hash_seed) {
  const PlannedComponent& comp = plan.components[component];
  std::vector<std::unique_ptr<StreamPartitioner>> partitioners;
  partitioners.reserve(comp.outputs.size());
  for (size_t e = 0; e < comp.outputs.size(); ++e) {
    const PlannedEdge& edge = comp.outputs[e];
    PartitionerOptions popt = edge.grouping.options;
    popt.num_workers = plan.components[edge.to_component].parallelism;
    popt.hash_seed = EdgeHashSeed(base_hash_seed, component, e);
    auto partitioner = CreatePartitioner(edge.grouping.algorithm, popt);
    if (!partitioner.ok()) return partitioner.status();
    partitioners.push_back(std::move(partitioner.value()));
  }
  return partitioners;
}

}  // namespace slb
