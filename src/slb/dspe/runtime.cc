#include "slb/dspe/runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "slb/common/histogram.h"
#include "slb/common/logging.h"
#include "slb/dspe/plan.h"
#include "slb/dspe/spsc_queue.h"
#include "slb/hash/hash.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace slb {
namespace {

// A tuple in transit. The (spout_task, root_slot) pair names the root tree
// this tuple belongs to for ack accounting.
struct RtTuple {
  uint64_t key = 0;
  uint64_t value = 0;
  uint32_t spout_task = 0;
  uint32_t root_slot = 0;
};

// One in-flight root tuple tree of a spout task. `pending` counts the
// not-yet-accounted references on the tree: the spout seeds it with ONE
// release-store covering every routed copy of the root (the copies are
// invisible downstream until the trailing FlushTask publishes them, so no
// anchor reference is needed), bolts apply only the NET change of a
// processed tuple (emitted copies minus the consumed one — a +k add while
// their own reference still holds the tree open, or a deferred -1 batched
// into the executor's ack flush). emit_time_s is written by the spout
// strictly before the release-store that makes pending non-zero, and read by
// completers strictly before the final decrement, so slot reuse never races.
// Cache-line sized: the slot array is indexed concurrently by every executor
// completing trees of this spout, and padding keeps one tree's refcount
// traffic from invalidating its neighbors' lines.
struct alignas(kCacheLineBytes) RootSlot {
  std::atomic<uint32_t> pending{0};
  double emit_time_s = 0.0;
};

class ReusableCollector final : public OutputCollector {
 public:
  void Emit(const TopologyTuple& tuple) override { emitted.push_back(tuple); }
  std::vector<TopologyTuple> emitted;
};

struct TaskState;

// Per-destination emit buffer of one outgoing edge: tuples routed but not
// yet published to the destination ring (the batch plus, under backpressure,
// the stash of rejected pushes).
struct OutEdge {
  uint32_t to_component = 0;
  std::vector<SpscRing<RtTuple>*> rings;      // one per destination task
  std::vector<TaskState*> dest_tasks;         // parallel to rings (for wakes)
  std::vector<std::vector<RtTuple>> buffers;  // parallel to rings
  std::vector<size_t> flushed;                // prefix of buffer already sent
};

// Spout trigger sentinel: no rescale event pending for this spout.
constexpr uint64_t kNoTrigger = ~0ULL;

// Key-state handoff frames, carried on dedicated SPSC rings between bolt
// workers of the rescaled component. kStateFrame ships one key's state to
// its new owner; kPullRequest asks the owner named by the directory to ship
// it (the lazy scale-out pull).
constexpr uint32_t kStateFrame = 0;
constexpr uint32_t kPullRequest = 1;
constexpr uint32_t kHandoffRingCapacity = 128;

struct HandoffFrame {
  uint64_t key = 0;
  uint64_t value = 0;
  uint32_t kind = kStateFrame;
  uint32_t from_worker = 0;  // sender's worker index in the rescaled bolt
};

struct ThreadCtx;

struct TaskState {
  // Executor thread hosting this task (tasks never migrate; set before the
  // host starts, or at the rescale barrier for scale-out workers). Producers
  // use it to wake the host when they publish into one of its empty rings.
  ThreadCtx* host = nullptr;
  uint32_t task_id = 0;
  uint32_t component = 0;
  uint32_t index = 0;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  std::vector<std::unique_ptr<StreamPartitioner>> partitioners;
  std::vector<OutEdge> out;
  // Bolt: input rings, one per upstream producer task (MPSC as polled SPSC).
  std::vector<SpscRing<RtTuple>*> inputs;
  size_t input_cursor = 0;
  ReusableCollector collector;
  uint64_t processed = 0;
  // Spout: root-slot table (size = credit window) and live-root count.
  std::unique_ptr<RootSlot[]> slots;
  uint32_t num_slots = 0;
  // Credit counter: hammered by every executor's ack flush while the owning
  // spout polls it for backpressure — isolated on its own cache line so that
  // traffic never invalidates the spout's cursor/flag fields around it.
  alignas(kCacheLineBytes) std::atomic<uint32_t> in_flight{0};
  alignas(kCacheLineBytes) uint32_t slot_cursor = 0;
  bool exhausted = false;

  // --- Elastic rescale (all meaningful only when Runtime::elastic set). ----
  // Spout side: pause after `processed == next_trigger` emissions; the
  // routed stream is logged for the post-run migration replay.
  uint64_t next_trigger = kNoTrigger;
  bool paused = false;
  bool log_routing = false;
  SenderRoutingLog routing_log;
  // Bolt side: membership in the rescaled component, scale-in drain state,
  // and the key-state handoff mesh endpoints this task owns.
  bool elastic = false;
  bool draining = false;
  bool retired = false;
  std::vector<uint64_t> drain_keys;
  size_t drain_cursor = 0;
  std::vector<std::pair<TaskState*, SpscRing<HandoffFrame>*>> handoff_out;
  std::vector<SpscRing<HandoffFrame>*> handoff_in;
  std::vector<std::pair<TaskState*, HandoffFrame>> handoff_stash;
};

struct Runtime;

// Live-rescale coordination. Ownership discipline: fields below the barrier
// block are written only by the mutator (the last executor to park at a
// barrier) or before threads start; every executor re-reads them only after
// the barrier generation advances, so barrier_mu carries the happens-before.
struct ElasticState {
  // Static configuration.
  Runtime* runtime = nullptr;  // backpointer for targeted handoff wakes
  uint32_t spout_component = 0;
  uint32_t bolt_component = 0;
  uint32_t num_spouts = 0;
  uint64_t edge_hash_seed = 0;
  RescaleCostModel cost;
  BoltFactory bolt_factory;
  uint64_t thread_seed_base = 0;

  struct PendingEvent {
    uint64_t at_message = 0;
    uint32_t num_workers = 0;
  };
  std::vector<PendingEvent> pending;

  // Mutator-owned topology view.
  size_t next_event = 0;
  std::vector<TaskState*> spouts;      // elastic spout tasks, index order
  std::vector<TaskState*> workers;     // live bolt tasks by worker index
  std::vector<TaskState*> bolt_tasks;  // every bolt task ever (stats)
  std::vector<TaskState*> draining;    // scale-in tasks not yet settled
  std::vector<RescaleFiredEvent> fired;

  // Quiesce barrier: phase flips 0->1 when every spout sits at its trigger
  // and every in-flight tuple tree has acked; threads then park on the
  // generation barrier and the last arrival mutates the worker set.
  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  uint64_t barrier_gen = 0;      // guarded by barrier_mu
  uint32_t barrier_waiting = 0;  // guarded by barrier_mu
  uint32_t active_threads = 0;   // guarded by barrier_mu
  std::atomic<uint32_t> spouts_quiesced{0};
  std::atomic<uint32_t> phase{0};
  std::atomic<bool> cancelled{false};

  // Migration directory: the keys that still owe a move this window.
  // Scale-in entries are created at the barrier (frames_pending = number of
  // removed holders); scale-out entries hold the lazy owner lists and
  // resolve on first post-event touch. dir_active mirrors directory.size()
  // so the per-tuple hot path can skip the lock when nothing is pending
  // (entries are only created at barriers, so a stale zero is impossible
  // while a key is actually unresolved).
  struct DirEntry {
    std::vector<uint32_t> owners;
    uint32_t frames_pending = 0;
  };
  std::mutex dir_mu;
  std::unordered_map<uint64_t, DirEntry> directory;  // guarded by dir_mu
  std::atomic<uint64_t> dir_active{0};
  std::atomic<uint64_t> inflight_keys{0};
  std::atomic<uint32_t> draining_tasks{0};

  // Measured protocol costs.
  std::atomic<uint64_t> handoff_frames{0};
  std::atomic<uint64_t> measured_stalls{0};
  std::atomic<int64_t> quiesce_start_ns{0};
  std::atomic<int64_t> drain_done_ns{0};
  std::atomic<int64_t> stall_window_start_ns{0};
  std::atomic<int64_t> last_install_ns{0};
  double total_quiesce_s = 0.0;          // mutator / post-join main only
  double total_credit_drain_s = 0.0;     // mutator / post-join main only
  double total_migration_stall_s = 0.0;  // mutator / post-join main only
};

struct ThreadCtx;

// Wakeup gate of ONE parked executor (WaitStrategy::kAdaptive) — per-thread
// so producers wake exactly the host of the consumer they published to,
// never the whole fleet. `epoch` ticks on every signal; the parker snapshots
// it before announcing itself in `parked`, so the cv predicate catches any
// signal racing the park. The signaller's seq_cst fence pairs with the
// parker's (Dekker-style): either the signaller sees `parked` > 0 and
// notifies, or the parker's final work poll sees whatever the signaller
// published before signalling.
struct IdleGate {
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint32_t> parked{0};
  std::mutex mu;
  std::condition_variable cv;
};

struct Runtime {
  std::vector<std::unique_ptr<TaskState>> tasks;
  std::vector<std::unique_ptr<SpscRing<RtTuple>>> rings;
  std::vector<std::unique_ptr<SpscRing<HandoffFrame>>> handoff_rings;
  uint32_t batch_size = 64;
  uint32_t max_pending = 1;
  uint32_t queue_capacity = 1024;
  uint64_t max_tuples = 0;
  uint32_t num_spout_tasks = 0;  // spout task ids are [0, num_spout_tasks)
  WaitStrategy wait_strategy = WaitStrategy::kAdaptive;
  uint32_t spin_iterations = 32;
  uint32_t yield_iterations = 8;
  bool pin_threads = false;

  std::chrono::steady_clock::time_point start;
  std::atomic<uint32_t> active_spouts{0};
  std::atomic<uint64_t> active_roots{0};
  std::atomic<uint64_t> total_processed{0};
  std::atomic<bool> stop{false};
  std::atomic<uint32_t> threads_pinned{0};

  std::unique_ptr<ElasticState> elastic;  // null = static worker set

  bool adaptive() const { return wait_strategy == WaitStrategy::kAdaptive; }

  // Broadcast wake for rare global transitions (stop, failure, quiesce
  // phase, schedule pause/cancel, thread retirement): pokes every executor's
  // gate. Defined after ThreadCtx (needs its gate member).
  void WakeAll();

  // Executor threads and their contexts. A scale-out barrier appends while
  // the main thread is join-looping, so both live behind spawn_mu and the
  // thread container is a deque (stable references across growth).
  std::mutex spawn_mu;
  std::deque<std::thread> threads;                   // guarded by spawn_mu
  std::vector<std::unique_ptr<ThreadCtx>> contexts;  // guarded by spawn_mu

  std::mutex error_mu;
  Status first_error;  // guarded by error_mu

  double NowSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }

  void Fail(Status status) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = std::move(status);
    }
    stop.store(true, std::memory_order_release);
    WakeAll();  // parked executors must observe the stop
  }
};

// One deferred root-tree reference drop, batched per executor pass.
struct PendingAck {
  uint32_t spout_task = 0;
  uint32_t root_slot = 0;
  uint32_t count = 0;
};

// Per-executor-thread accumulators, merged after join. Histogram is
// non-movable (internal mutex), so contexts live behind unique_ptr.
struct ThreadCtx {
  explicit ThreadCtx(uint64_t seed) : latency_ms(1 << 16, seed) {}
  std::vector<TaskState*> tasks;
  Histogram latency_ms;
  uint64_t roots_acked = 0;
  double last_ack_s = 0.0;
  uint64_t processed_delta = 0;
  uint32_t thread_index = 0;  // spawn order; drives round-robin CPU pinning
  // Coalesced acking: reference drops accumulated during the pass, flushed
  // by FlushAcks before the pass's idle/park decision. Consecutive drops on
  // the same tree merge in place (descendants of one root arrive adjacent).
  std::vector<PendingAck> acks;
  std::vector<uint32_t> spout_acked;  // per-spout completions, scratch
  // This executor's park gate, signalled by producers publishing to one of
  // its tasks and by the global transitions in Runtime::WakeAll.
  IdleGate gate;
  // Idle-ladder accounting (kAdaptive only): idle_s covers the yield + park
  // stages, park_s the parked subset, parks the episode count.
  double idle_s = 0.0;
  double park_s = 0.0;
  uint64_t parks = 0;
};

// Signals one gate: any signal racing a park is caught either by the epoch
// tick (cv predicate) or by the parker's post-announce work poll.
void WakeGate(IdleGate& gate) {
  gate.epoch.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (gate.parked.load(std::memory_order_relaxed) > 0) {
    // Empty critical section: a parker between its predicate check and
    // cv.wait cannot miss the notify once we pass through the mutex.
    { std::lock_guard<std::mutex> lock(gate.mu); }
    gate.cv.notify_all();
  }
}

// Targeted wake: pokes the executor hosting `task`. Cheap when that thread
// is not parked — one fetch_add, one fence, one load on its gate.
inline void WakeHost(Runtime& rt, TaskState* task) {
  if (rt.adaptive() && task->host != nullptr) WakeGate(task->host->gate);
}

void Runtime::WakeAll() {
  if (!adaptive()) return;
  std::lock_guard<std::mutex> lock(spawn_mu);
  for (auto& ctx : contexts) WakeGate(ctx->gate);
}

void ThreadMain(Runtime& rt, ThreadCtx& ctx);

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Messages spout s (of S, fed round-robin) emits before global position p:
// the count of i < p with i == s (mod S). Triggers derived this way make the
// threaded engine fire events at exactly the simulator's stream positions.
uint64_t PreCount(uint64_t p, uint32_t s, uint32_t num_spouts) {
  return p > s ? (p - s - 1) / num_spouts + 1 : 0;
}

// Attempts to publish every buffered tuple; returns true if any tuple moved.
// Publishing into an EMPTY ring wakes the consumer's host: a consumer can
// only park after observing all its rings empty, so every tuple it could be
// sleeping on crosses an empty->non-empty edge and fires exactly this wake.
// The edge detection is approximate: was_empty is sampled before the push,
// so a consumer popping the last pre-existing element in that window can
// make the producer see "non-empty" and skip the wake while the consumer
// parks. That lost edge is deliberately tolerated — ParkIdle's 1 ms timed
// wait re-polls the rings, so the worst case is a bounded latency blip, not
// a deadlock; closing it would cost a seq_cst fence on every flush.
bool FlushTask(Runtime& rt, TaskState& task) {
  bool moved = false;
  for (OutEdge& edge : task.out) {
    for (size_t d = 0; d < edge.rings.size(); ++d) {
      std::vector<RtTuple>& buf = edge.buffers[d];
      size_t& sent = edge.flushed[d];
      if (sent == buf.size()) continue;
      SpscRing<RtTuple>& ring = *edge.rings[d];
      const bool was_empty = ring.EmptyApprox();
      const size_t pushed =
          ring.TryPushBatch(buf.data() + sent, buf.size() - sent);
      sent += pushed;
      if (pushed > 0) {
        moved = true;
        if (was_empty) WakeHost(rt, edge.dest_tasks[d]);
      }
      if (sent == buf.size()) {
        buf.clear();
        sent = 0;
      }
    }
  }
  return moved;
}

bool AllFlushed(const TaskState& task) {
  for (const OutEdge& edge : task.out) {
    for (const auto& buf : edge.buffers) {
      if (!buf.empty()) return false;
    }
  }
  return true;
}

// Routes `tuple` along every outgoing edge of `task` into the per-
// destination emit buffers and returns the number of copies queued. Does NOT
// touch the root's refcount — buffered copies are invisible downstream until
// FlushTask publishes them, so the caller charges all copies in one step
// (the spout's seeding store, or a bolt's net adjustment) before flushing.
// Routing-log capture is a template parameter so the non-logging
// instantiation — the only one bolts and non-rescale spouts ever run —
// carries zero branches and zero allocation for it (pinned by the
// routing_log_capacity_bytes audit in TopologyStats).
template <bool kLogRouting>
uint32_t RouteCopies(TaskState& task, const TopologyTuple& tuple,
                     uint32_t spout_task, uint32_t root_slot) {
  uint32_t copies = 0;
  for (size_t e = 0; e < task.out.size(); ++e) {
    OutEdge& edge = task.out[e];
    const uint32_t dest = task.partitioners[e]->Route(tuple.key);
    if constexpr (kLogRouting) {
      if (e == 0) {
        task.routing_log.keys.push_back(tuple.key);
        task.routing_log.workers.push_back(dest);
      }
    }
    edge.buffers[dest].push_back(
        RtTuple{tuple.key, tuple.value, spout_task, root_slot});
    ++copies;
  }
  return copies;
}

// Queues one deferred reference drop on a root tree, merging with the
// previous entry when it names the same tree (a batch of one root's
// descendants processed back-to-back coalesces into a single decrement).
void DeferAck(ThreadCtx& ctx, uint32_t spout_task, uint32_t root_slot) {
  if (!ctx.acks.empty()) {
    PendingAck& last = ctx.acks.back();
    if (last.spout_task == spout_task && last.root_slot == root_slot) {
      ++last.count;
      return;
    }
  }
  ctx.acks.push_back(PendingAck{spout_task, root_slot, 1});
}

// Applies the pass's deferred reference drops: one acq_rel fetch_sub per
// distinct tree touched, then one credit return per spout and one
// active_roots adjustment for the whole batch. The release on active_roots
// pairs with the quiesce/termination checks' acquire loads, so an observer
// of active_roots == 0 also sees every in_flight return of this flush.
bool FlushAcks(Runtime& rt, ThreadCtx& ctx) {
  if (ctx.acks.empty()) return false;
  if (ctx.spout_acked.size() < rt.num_spout_tasks) {
    ctx.spout_acked.assign(rt.num_spout_tasks, 0);
  }
  uint64_t completed = 0;
  double now_s = 0.0;
  for (const PendingAck& ack : ctx.acks) {
    RootSlot& root = rt.tasks[ack.spout_task]->slots[ack.root_slot];
    const double emit_s = root.emit_time_s;  // must precede the decrement
    if (root.pending.fetch_sub(ack.count, std::memory_order_acq_rel) ==
        ack.count) {
      if (completed == 0) now_s = rt.NowSeconds();
      ctx.latency_ms.Add((now_s - emit_s) * 1e3);
      ++ctx.roots_acked;
      ++ctx.spout_acked[ack.spout_task];
      ++completed;
    }
  }
  ctx.acks.clear();
  if (completed == 0) return false;
  ctx.last_ack_s = std::max(ctx.last_ack_s, now_s);
  for (uint32_t s = 0; s < rt.num_spout_tasks; ++s) {
    if (ctx.spout_acked[s] == 0) continue;
    rt.tasks[s]->in_flight.fetch_sub(ctx.spout_acked[s],
                                     std::memory_order_relaxed);
    ctx.spout_acked[s] = 0;
    // Returned credit may unblock a spout parked on an exhausted window.
    WakeHost(rt, rt.tasks[s].get());
  }
  rt.active_roots.fetch_sub(completed, std::memory_order_release);
  return true;
}

// Finds a root slot with pending == 0. Guaranteed to exist because the
// caller checked in_flight < num_slots and every live root holds exactly one
// slot at pending > 0.
uint32_t ClaimRootSlot(TaskState& task) {
  for (uint32_t i = 0; i < task.num_slots; ++i) {
    const uint32_t s = (task.slot_cursor + i) % task.num_slots;
    // acquire: pairs with the final acq_rel decrement in CompleteOne so the
    // spout's upcoming emit_time_s write cannot race the completer's read.
    if (task.slots[s].pending.load(std::memory_order_acquire) == 0) {
      task.slot_cursor = (s + 1) % task.num_slots;
      return s;
    }
  }
  SLB_CHECK(false) << "no free root slot despite available credit";
  return 0;
}

// ---------------------------------------------------------------------------
// Key-state handoff mesh.
// ---------------------------------------------------------------------------

SpscRing<HandoffFrame>* FindHandoffRing(TaskState& from, const TaskState* to) {
  for (auto& [dest, ring] : from.handoff_out) {
    if (dest == to) return ring;
  }
  return nullptr;
}

// Sends one frame from `from` toward `to`, stashing on a full ring (the
// stash preserves order and is retried each quantum — natural backpressure
// for the drain pace). Counts the frame exactly once, at send time.
void PushHandoff(ElasticState& els, TaskState& from, TaskState* to,
                 const HandoffFrame& frame) {
  els.handoff_frames.fetch_add(1, std::memory_order_relaxed);
  if (!from.handoff_stash.empty()) {
    from.handoff_stash.emplace_back(to, frame);
    return;
  }
  SpscRing<HandoffFrame>* ring = FindHandoffRing(from, to);
  SLB_CHECK(ring != nullptr) << "no handoff ring for worker pair";
  if (ring == nullptr || !ring->TryPush(frame)) {
    from.handoff_stash.emplace_back(to, frame);
    return;
  }
  if (els.runtime != nullptr) WakeHost(*els.runtime, to);
}

bool FlushHandoffStash(ElasticState& els, TaskState& task) {
  bool moved = false;
  auto& stash = task.handoff_stash;
  for (size_t i = 0; i < stash.size();) {
    SpscRing<HandoffFrame>* ring = FindHandoffRing(task, stash[i].first);
    SLB_CHECK(ring != nullptr) << "no handoff ring for stashed frame";
    if (ring != nullptr && ring->TryPush(stash[i].second)) {
      if (els.runtime != nullptr) WakeHost(*els.runtime, stash[i].first);
      stash.erase(stash.begin() + i);  // stashes are tiny; O(n) is fine
      moved = true;
    } else {
      ++i;
    }
  }
  return moved;
}

// A state frame landed: retire its directory obligation. Erasing the entry
// (once all expected frames arrived) is what re-opens the key's hot path.
void ResolveInstalledKey(ElasticState& els, uint64_t key) {
  std::lock_guard<std::mutex> lock(els.dir_mu);
  auto it = els.directory.find(key);
  SLB_CHECK(it != els.directory.end()) << "state frame for unknown key";
  if (--it->second.frames_pending == 0) {
    els.directory.erase(it);
    els.dir_active.fetch_sub(1, std::memory_order_relaxed);
    els.inflight_keys.fetch_sub(1, std::memory_order_relaxed);
  }
  els.last_install_ns.store(NowNs(), std::memory_order_relaxed);
}

// Services this worker's side of the handoff mesh: retries the stash, then
// drains incoming frames — installing state, or answering pull requests by
// extracting the key and shipping it back.
bool ServiceHandoffs(ElasticState& els, TaskState& task) {
  bool did_work = FlushHandoffStash(els, task);
  HandoffFrame frame;
  for (SpscRing<HandoffFrame>* ring : task.handoff_in) {
    while (ring->TryPop(&frame)) {
      did_work = true;
      if (frame.kind == kStateFrame) {
        task.bolt->InstallKeyState(frame.key, frame.value);
        ResolveInstalledKey(els, frame.key);
      } else {
        uint64_t value = 0;
        task.bolt->ExtractKeyState(frame.key, &value);
        PushHandoff(els, task, els.workers[frame.from_worker],
                    HandoffFrame{frame.key, value, kStateFrame, task.index});
      }
    }
  }
  return did_work;
}

// Per-tuple migration check on the rescaled bolt, active only while the
// directory is non-empty. Mirrors MigrationTracker::OnMessage: a key whose
// state is in flight counts as a measured stall (the tuple is processed
// anyway; counters merge once the frame lands); a key landing on a worker
// that already holds its state resolves without moving; a key landing
// anywhere else pulls the state from its lowest-indexed owner.
void ElasticCheck(ElasticState& els, TaskState& task, uint64_t key) {
  std::lock_guard<std::mutex> lock(els.dir_mu);
  auto it = els.directory.find(key);
  if (it == els.directory.end()) return;
  ElasticState::DirEntry& entry = it->second;
  if (entry.frames_pending > 0) {
    els.measured_stalls.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint32_t self = task.index;
  if (std::find(entry.owners.begin(), entry.owners.end(), self) !=
      entry.owners.end()) {
    els.directory.erase(it);  // checked, nothing moves
    els.dir_active.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const uint32_t owner = entry.owners.front();
  entry.frames_pending = 1;
  els.inflight_keys.fetch_add(1, std::memory_order_relaxed);
  PushHandoff(els, task, els.workers[owner],
              HandoffFrame{key, 0, kPullRequest, task.index});
}

// Quantum of a worker removed by scale-in: stream its sorted key state to
// the survivors at batch pace, then retire. The thread hosting it exits once
// every task it owns has retired.
bool DrainQuantum(Runtime& rt, ElasticState& els, TaskState& task) {
  bool did_work = FlushHandoffStash(els, task);
  if (!task.handoff_stash.empty()) return did_work;
  const uint32_t n_live = static_cast<uint32_t>(els.workers.size());
  uint32_t budget = rt.batch_size;
  while (budget > 0 && task.drain_cursor < task.drain_keys.size()) {
    const uint64_t key = task.drain_keys[task.drain_cursor++];
    uint64_t value = 0;
    task.bolt->ExtractKeyState(key, &value);
    const uint32_t dest =
        HashToRange(SeededHash64(key, els.edge_hash_seed), n_live);
    PushHandoff(els, task, els.workers[dest],
                HandoffFrame{key, value, kStateFrame, task.index});
    --budget;
    did_work = true;
    if (!task.handoff_stash.empty()) break;  // ring full: resume next quantum
  }
  if (task.drain_cursor == task.drain_keys.size() &&
      task.handoff_stash.empty()) {
    task.draining = false;
    task.retired = true;
    els.draining_tasks.fetch_sub(1, std::memory_order_relaxed);
    did_work = true;
  }
  return did_work;
}

// Emission loop of one spout quantum, instantiated with and without routing-
// log capture (only elastic spouts ever log; everyone else runs the
// zero-overhead variant). Credit is charged in ONE batched fetch_add per
// quantum: the loop works against a snapshot of in_flight plus a local
// emitted count — in_flight is only ever *incremented* by this thread, so
// the snapshot over-approximates the live value and the credit window is
// never exceeded. That same bound keeps ClaimRootSlot's free-slot guarantee:
// trees holding slots <= snapshot + emitted < num_slots.
template <bool kLogRouting>
bool SpoutEmitLoop(Runtime& rt, ThreadCtx& ctx, TaskState& task,
                   ElasticState* els) {
  bool did_work = false;
  uint32_t emitted = 0;
  const uint32_t in_flight_now =
      task.in_flight.load(std::memory_order_relaxed);
  // Publishes the quantum's batched credit charge. Must run BEFORE any store
  // that another thread pairs with an active_roots == 0 observation — the
  // quiesce announcement and the exhaustion decrement below — otherwise the
  // observer can conclude no roots are live while this quantum's emitted
  // tuples are still uncharged (and unflushed), and stop the topology or
  // flip the rescale phase out from under them.
  const auto charge_emitted = [&] {
    if (emitted == 0) return;
    task.in_flight.fetch_add(emitted, std::memory_order_relaxed);
    rt.active_roots.fetch_add(emitted, std::memory_order_relaxed);
    emitted = 0;
  };
  for (uint32_t n = 0; n < rt.batch_size; ++n) {
    if (els != nullptr && task.processed == task.next_trigger) {
      if (els->cancelled.load(std::memory_order_acquire)) {
        task.next_trigger = kNoTrigger;
      } else {
        // Quiesce point: pause before emitting the first post-event tuple.
        // Charge this quantum's roots before announcing: the acq_rel publish
        // on spouts_quiesced makes the charge visible to any thread that
        // observes the full quiesce count, so the phase 0->1 CAS cannot fire
        // while these roots are uncharged and their tuples unflushed.
        charge_emitted();
        task.paused = true;
        els->spouts_quiesced.fetch_add(1, std::memory_order_acq_rel);
        int64_t expected = 0;
        els->quiesce_start_ns.compare_exchange_strong(
            expected, NowNs(), std::memory_order_acq_rel);
        rt.WakeAll();  // parked peers must re-evaluate the quiesce state
        break;
      }
    }
    if (in_flight_now + emitted >= rt.max_pending) {
      break;  // credit window exhausted: wait for acks (backpressure)
    }
    TopologyTuple tuple;
    if (!task.spout->NextTuple(&tuple)) {
      // Charge before the exhaustion decrement, and make that decrement a
      // release: a peer whose termination check acquires active_spouts == 0
      // then also sees these roots in active_roots, so it cannot store stop
      // with this quantum's tuples still uncharged/unflushed.
      charge_emitted();
      task.exhausted = true;
      rt.active_spouts.fetch_sub(1, std::memory_order_release);
      if (els != nullptr && task.next_trigger != kNoTrigger) {
        // The stream ran out short of the schedule's promised length: this
        // spout can never reach its trigger, so no barrier can assemble.
        // Cancel the remaining events (paused peers release themselves).
        els->cancelled.store(true, std::memory_order_release);
        els->quiesce_start_ns.store(0, std::memory_order_relaxed);
        rt.WakeAll();  // a peer may be parked with only a paused spout
      }
      break;
    }
    ++task.processed;
    ++ctx.processed_delta;
    const uint32_t slot = ClaimRootSlot(task);
    RootSlot& root = task.slots[slot];
    root.emit_time_s = rt.NowSeconds();
    const uint32_t copies =
        RouteCopies<kLogRouting>(task, tuple, task.task_id, slot);
    if (copies == 0) {
      // Edgeless spout: the tree is just the root — acked on emission.
      const double now_s = rt.NowSeconds();
      ctx.latency_ms.Add((now_s - root.emit_time_s) * 1e3);
      ctx.last_ack_s = std::max(ctx.last_ack_s, now_s);
      ++ctx.roots_acked;
    } else {
      // One release-store seeds the whole tree's refcount; the copies only
      // become visible downstream at the flush below, after the batched
      // credit charge, so pending can never transiently hit zero and no
      // completer can outrun the accounting.
      root.pending.store(copies, std::memory_order_release);
      ++emitted;
    }
    did_work = true;
  }
  charge_emitted();
  return did_work;
}

bool SpoutQuantum(Runtime& rt, ThreadCtx& ctx, TaskState& task) {
  bool did_work = FlushTask(rt, task);
  if (!AllFlushed(task) || task.exhausted) return did_work;

  ElasticState* els = rt.elastic.get();
  if (els != nullptr && task.paused) {
    if (!els->cancelled.load(std::memory_order_acquire)) return did_work;
    // The schedule was cancelled while this spout sat at its trigger.
    task.paused = false;
    task.next_trigger = kNoTrigger;
    els->spouts_quiesced.fetch_sub(1, std::memory_order_acq_rel);
  }

  did_work |= task.log_routing
                  ? SpoutEmitLoop<true>(rt, ctx, task, els)
                  : SpoutEmitLoop<false>(rt, ctx, task, els);
  did_work |= FlushTask(rt, task);
  return did_work;
}

bool BoltQuantum(Runtime& rt, ThreadCtx& ctx, TaskState& task) {
  ElasticState* els = rt.elastic.get();
  bool did_work = false;
  if (els != nullptr && task.elastic) did_work |= ServiceHandoffs(*els, task);
  did_work |= FlushTask(rt, task);
  if (!AllFlushed(task)) return did_work;  // backpressure: do not consume

  uint32_t budget = rt.batch_size;
  RtTuple chunk[32];
  while (budget > 0) {
    // MPSC fan-in: poll the per-producer SPSC rings round-robin.
    size_t popped = 0;
    for (size_t i = 0; i < task.inputs.size(); ++i) {
      const size_t r = (task.input_cursor + i) % task.inputs.size();
      const size_t want =
          std::min<size_t>(budget, sizeof(chunk) / sizeof(chunk[0]));
      popped = task.inputs[r]->TryPopBatch(chunk, want);
      if (popped > 0) {
        task.input_cursor = (r + 1) % task.inputs.size();
        break;
      }
    }
    if (popped == 0) break;

    for (size_t i = 0; i < popped; ++i) {
      const RtTuple& in = chunk[i];
      if (els != nullptr && task.elastic &&
          els->dir_active.load(std::memory_order_relaxed) > 0) {
        ElasticCheck(*els, task, in.key);
      }
      task.collector.emitted.clear();
      task.bolt->Execute(TopologyTuple{in.key, in.value}, &task.collector);
      ++task.processed;
      ++ctx.processed_delta;
      uint32_t new_refs = 0;
      for (const TopologyTuple& out : task.collector.emitted) {
        new_refs += RouteCopies<false>(task, out, in.spout_task, in.root_slot);
      }
      // Net refcount change: +new_refs for the queued copies, -1 for the
      // consumed input. A pure relay (net zero) touches no atomic at all; a
      // fan-out applies one relaxed add — safe because our own still-held
      // reference keeps the tree open until the children are charged; a leaf
      // defers its lone decrement into the pass's coalesced ack flush.
      if (new_refs == 0) {
        DeferAck(ctx, in.spout_task, in.root_slot);
      } else if (new_refs > 1) {
        rt.tasks[in.spout_task]->slots[in.root_slot].pending.fetch_add(
            new_refs - 1, std::memory_order_relaxed);
      }
    }
    budget -= static_cast<uint32_t>(popped);
    did_work = true;
  }
  did_work |= FlushTask(rt, task);
  return did_work;
}

// ---------------------------------------------------------------------------
// Barrier-time mutation (runs with every other executor parked).
// ---------------------------------------------------------------------------

void CloseStallWindow(ElasticState& els) {
  const int64_t start =
      els.stall_window_start_ns.load(std::memory_order_relaxed);
  const int64_t last = els.last_install_ns.load(std::memory_order_relaxed);
  if (start != 0 && last > start) {
    els.total_migration_stall_s += static_cast<double>(last - start) * 1e-9;
  }
  els.stall_window_start_ns.store(0, std::memory_order_relaxed);
  els.last_install_ns.store(0, std::memory_order_relaxed);
}

// Delivers one frame directly (no rings; mutator only). A pull request both
// extracts at the owner and installs at the requester in one step.
void DeliverInline(ElasticState& els, TaskState* to,
                   const HandoffFrame& frame) {
  if (frame.kind == kStateFrame) {
    to->bolt->InstallKeyState(frame.key, frame.value);
    ResolveInstalledKey(els, frame.key);
    return;
  }
  uint64_t value = 0;
  to->bolt->ExtractKeyState(frame.key, &value);
  els.handoff_frames.fetch_add(1, std::memory_order_relaxed);
  TaskState* requester = els.workers[frame.from_worker];
  requester->bolt->InstallKeyState(frame.key, value);
  ResolveInstalledKey(els, frame.key);
}

// Forces the previous window's migration to completion so the next event
// never straddles an unfinished one: pumps stashes and rings to a fixpoint
// (a pull request spawns a state frame), finishes any scale-in drain inline,
// and clears the directory. Lazy entries whose keys were never touched keep
// their state where it is — exactly the lazy protocol.
void SettleHandoffs(ElasticState& els) {
  bool moved = true;
  while (moved) {
    moved = false;
    for (TaskState* t : els.bolt_tasks) {
      for (auto& [to, frame] : t->handoff_stash) {
        DeliverInline(els, to, frame);
        moved = true;
      }
      t->handoff_stash.clear();
      HandoffFrame frame;
      for (SpscRing<HandoffFrame>* ring : t->handoff_in) {
        while (ring->TryPop(&frame)) {
          DeliverInline(els, t, frame);
          moved = true;
        }
      }
    }
  }
  const uint32_t n_live = static_cast<uint32_t>(els.workers.size());
  for (TaskState* t : els.draining) {
    if (t->retired) continue;
    while (t->drain_cursor < t->drain_keys.size()) {
      const uint64_t key = t->drain_keys[t->drain_cursor++];
      uint64_t value = 0;
      t->bolt->ExtractKeyState(key, &value);
      els.handoff_frames.fetch_add(1, std::memory_order_relaxed);
      const uint32_t dest =
          HashToRange(SeededHash64(key, els.edge_hash_seed), n_live);
      els.workers[dest]->bolt->InstallKeyState(key, value);
      ResolveInstalledKey(els, key);
    }
    t->draining = false;
    t->retired = true;
    els.draining_tasks.fetch_sub(1, std::memory_order_relaxed);
  }
  els.draining.clear();
  SLB_CHECK(els.draining_tasks.load(std::memory_order_relaxed) == 0);
  {
    std::lock_guard<std::mutex> lock(els.dir_mu);
    for (const auto& [key, entry] : els.directory) {
      (void)key;
      SLB_CHECK(entry.frames_pending == 0)
          << "unsettled handoff frame at barrier";
    }
    els.directory.clear();
    els.dir_active.store(0, std::memory_order_relaxed);
  }
  SLB_CHECK(els.inflight_keys.load(std::memory_order_relaxed) == 0);
}

void EnsureHandoffRing(Runtime& rt, TaskState* from, TaskState* to) {
  if (from == to || FindHandoffRing(*from, to) != nullptr) return;
  rt.handoff_rings.push_back(
      std::make_unique<SpscRing<HandoffFrame>>(kHandoffRingCapacity));
  SpscRing<HandoffFrame>* ring = rt.handoff_rings.back().get();
  from->handoff_out.emplace_back(to, ring);
  to->handoff_in.push_back(ring);
}

// Scale-in: the top (old_n - new_n) workers leave the routing range and
// enter drain mode — after resume they stream their sorted key state to
// HashToRange-chosen survivors and then retire. The directory pins every
// affected key until its state lands (tuples arriving earlier count as
// measured stalls).
void ScaleIn(Runtime& rt, ElasticState& els, uint32_t new_n) {
  const uint32_t old_n = static_cast<uint32_t>(els.workers.size());
  std::lock_guard<std::mutex> dir_lock(els.dir_mu);
  for (uint32_t w = new_n; w < old_n; ++w) {
    TaskState* t = els.workers[w];
    t->drain_keys.clear();
    t->bolt->AppendStateKeys(&t->drain_keys);
    std::sort(t->drain_keys.begin(), t->drain_keys.end());
    t->drain_cursor = 0;
    t->draining = true;
    els.draining.push_back(t);
    els.draining_tasks.fetch_add(1, std::memory_order_relaxed);
    for (uint64_t key : t->drain_keys) {
      const uint32_t dest =
          HashToRange(SeededHash64(key, els.edge_hash_seed), new_n);
      auto [it, inserted] =
          els.directory.try_emplace(key, ElasticState::DirEntry{{dest}, 0});
      if (inserted) {
        els.dir_active.fetch_add(1, std::memory_order_relaxed);
        els.inflight_keys.fetch_add(1, std::memory_order_relaxed);
      }
      ++it->second.frames_pending;
    }
    for (uint32_t d = 0; d < new_n; ++d) {
      EnsureHandoffRing(rt, t, els.workers[d]);
    }
  }
  els.workers.resize(new_n);
}

// Scale-out: spawns fresh bolt tasks for worker indices [old_n, new_n),
// wires new data rings from every spout (replacing the drained rings of any
// previously retired worker at a reused index), builds the lazy owner
// directory over every live key, extends the handoff mesh to all live
// pairs, and starts ONE new executor thread owning the new tasks.
void ScaleOut(Runtime& rt, ElasticState& els, uint32_t new_n) {
  const uint32_t old_n = static_cast<uint32_t>(els.workers.size());
  {
    std::lock_guard<std::mutex> lock(els.dir_mu);
    for (uint32_t w = 0; w < old_n; ++w) {
      std::vector<uint64_t> keys;
      els.workers[w]->bolt->AppendStateKeys(&keys);
      for (uint64_t key : keys) {
        auto [it, inserted] =
            els.directory.try_emplace(key, ElasticState::DirEntry{});
        if (inserted) els.dir_active.fetch_add(1, std::memory_order_relaxed);
        it->second.owners.push_back(w);
      }
    }
  }

  ThreadCtx* ctx = nullptr;
  {
    std::lock_guard<std::mutex> lock(rt.spawn_mu);
    rt.contexts.push_back(std::make_unique<ThreadCtx>(
        els.thread_seed_base ^
        (0x9e3779b97f4a7c15ULL * (rt.contexts.size() + 1))));
    ctx = rt.contexts.back().get();
    ctx->thread_index = static_cast<uint32_t>(rt.contexts.size() - 1);
  }
  for (uint32_t w = old_n; w < new_n; ++w) {
    auto task = std::make_unique<TaskState>();
    task->task_id = static_cast<uint32_t>(rt.tasks.size());
    task->component = els.bolt_component;
    task->index = w;
    task->elastic = true;
    task->bolt = els.bolt_factory(w);
    SLB_CHECK(task->bolt != nullptr) << "bolt factory returned null";
    task->bolt->Prepare(w, new_n);
    SLB_CHECK(task->bolt->SupportsStateHandoff());
    TaskState* raw = task.get();
    for (TaskState* spout : els.spouts) {
      rt.rings.push_back(
          std::make_unique<SpscRing<RtTuple>>(rt.queue_capacity));
      SpscRing<RtTuple>* ring = rt.rings.back().get();
      OutEdge& out = spout->out[0];
      if (w < out.rings.size()) {
        // A retired worker owned this index before; its ring is drained and
        // orphaned — swap in a fresh one.
        SLB_CHECK(out.rings[w]->EmptyApprox());
        SLB_CHECK(out.buffers[w].empty());
        out.rings[w] = ring;
        out.dest_tasks[w] = raw;
        out.flushed[w] = 0;
      } else {
        SLB_CHECK(out.rings.size() == w);
        out.rings.push_back(ring);
        out.dest_tasks.push_back(raw);
        out.buffers.emplace_back();
        out.flushed.push_back(0);
      }
      raw->inputs.push_back(ring);
    }
    rt.tasks.push_back(std::move(task));
    els.workers.push_back(raw);
    els.bolt_tasks.push_back(raw);
    ctx->tasks.push_back(raw);
    raw->host = ctx;
  }
  // Lazy pulls flow between any live pair once the window opens.
  for (TaskState* a : els.workers) {
    for (TaskState* b : els.workers) EnsureHandoffRing(rt, a, b);
  }
  ++els.active_threads;  // caller (the mutator) holds barrier_mu
  {
    std::lock_guard<std::mutex> lock(rt.spawn_mu);
    rt.threads.emplace_back(ThreadMain, std::ref(rt), std::ref(*ctx));
  }
}

// Runs with barrier_mu held and every other live executor parked: settles
// the previous migration window, audits the quiesce invariants, fires the
// next event (rescaling every sender's partitioner in lockstep, exactly like
// the simulator's event loop), reprograms triggers, and opens the next
// measured stall window.
void MutateAtBarrier(Runtime& rt) {
  ElasticState& els = *rt.elastic;
  const int64_t quiesce_start =
      els.quiesce_start_ns.load(std::memory_order_relaxed);
  const int64_t drain_done = els.drain_done_ns.load(std::memory_order_relaxed);

  SettleHandoffs(els);
  CloseStallWindow(els);

  // Credit-backpressure audit (the regression pin): a quiesced topology has
  // no live root trees, no unreturned spout credit, and empty transport.
  SLB_CHECK(rt.active_roots.load(std::memory_order_acquire) == 0)
      << "root trees alive across quiesce";
  for (TaskState* spout : els.spouts) {
    SLB_CHECK(spout->in_flight.load(std::memory_order_acquire) == 0)
        << "spout credit not returned across quiesce";
    SLB_CHECK(AllFlushed(*spout)) << "spout emit buffer non-empty at barrier";
    SLB_CHECK(spout->paused && spout->processed == spout->next_trigger)
        << "spout not at its trigger at barrier";
  }
  for (const auto& ring : rt.rings) {
    SLB_CHECK(ring->EmptyApprox()) << "data ring non-empty at barrier";
  }

  SLB_CHECK(els.next_event < els.pending.size());
  const ElasticState::PendingEvent event = els.pending[els.next_event++];
  const uint32_t old_n = static_cast<uint32_t>(els.workers.size());
  if (event.num_workers != old_n) {
    els.fired.push_back(
        RescaleFiredEvent{event.at_message, old_n, event.num_workers});
    for (TaskState* spout : els.spouts) {
      Status status = spout->partitioners[0]->Rescale(event.num_workers);
      if (!status.ok()) {
        rt.Fail(std::move(status));
        return;
      }
    }
    if (event.num_workers < old_n) {
      ScaleIn(rt, els, event.num_workers);
    } else {
      ScaleOut(rt, els, event.num_workers);
    }
  }

  // Next trigger may equal the current position (stacked events): the spout
  // then re-pauses before emitting anything and the next barrier fires it.
  for (TaskState* spout : els.spouts) {
    spout->next_trigger =
        els.next_event < els.pending.size()
            ? PreCount(els.pending[els.next_event].at_message, spout->index,
                       els.num_spouts)
            : kNoTrigger;
    spout->paused = false;
  }
  els.spouts_quiesced.store(0, std::memory_order_relaxed);

  const int64_t resume = NowNs();
  if (quiesce_start != 0) {
    els.total_credit_drain_s +=
        static_cast<double>(drain_done - quiesce_start) * 1e-9;
    els.total_quiesce_s +=
        static_cast<double>(resume - quiesce_start) * 1e-9;
  }
  els.quiesce_start_ns.store(0, std::memory_order_relaxed);
  els.drain_done_ns.store(0, std::memory_order_relaxed);
  els.stall_window_start_ns.store(resume, std::memory_order_relaxed);
  els.last_install_ns.store(0, std::memory_order_relaxed);
}

// Generation barrier every executor parks on while phase == 1. The last
// arrival (counting threads that already exited) becomes the mutator; a
// waiter that becomes last after a peer exits takes over. wait_for keeps the
// barrier live across Fail() from any thread.
void ParkAtBarrier(Runtime& rt) {
  ElasticState& els = *rt.elastic;
  std::unique_lock<std::mutex> lock(els.barrier_mu);
  if (els.phase.load(std::memory_order_acquire) != 1) {
    return;  // stale observation (e.g. a freshly spawned thread)
  }
  const uint64_t gen = els.barrier_gen;
  ++els.barrier_waiting;
  auto mutate_and_release = [&]() {
    try {
      MutateAtBarrier(rt);
    } catch (const std::exception& e) {
      rt.Fail(Status::Internal(std::string("rescale mutation threw: ") +
                               e.what()));
    } catch (...) {
      rt.Fail(Status::Internal("rescale mutation threw a non-std exception"));
    }
    --els.barrier_waiting;
    ++els.barrier_gen;
    els.phase.store(0, std::memory_order_release);
    els.barrier_cv.notify_all();
  };
  if (els.barrier_waiting == els.active_threads) {
    mutate_and_release();
    return;
  }
  while (els.barrier_gen == gen) {
    if (rt.stop.load(std::memory_order_acquire)) break;
    els.barrier_cv.wait_for(lock, std::chrono::milliseconds(1));
    if (els.barrier_gen == gen && !rt.stop.load(std::memory_order_acquire) &&
        els.barrier_waiting == els.active_threads) {
      mutate_and_release();
      return;
    }
  }
  --els.barrier_waiting;
}

// One cpu-relax hint (the "pause" rung of the idle ladder): tells the core
// we're in a spin-wait without giving up the timeslice.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// CPUs this process may run on (affinity-mask aware on Linux); falls back to
// hardware_concurrency elsewhere. Used to size the idle ladder's spin rung.
uint32_t AvailableCpuCount() {
#if defined(__linux__)
  cpu_set_t available;
  CPU_ZERO(&available);
  if (sched_getaffinity(0, sizeof(available), &available) == 0) {
    const int count = CPU_COUNT(&available);
    if (count > 0) return static_cast<uint32_t>(count);
  }
#endif
  const uint32_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Pins the calling thread to one CPU, chosen round-robin over the CPUs in
// the process's affinity mask. Returns false (no-op) where unsupported or on
// any syscall failure — pinning is an optimization, never a requirement.
bool PinCurrentThreadToCpu(uint32_t thread_index) {
#if defined(__linux__)
  cpu_set_t available;
  CPU_ZERO(&available);
  if (sched_getaffinity(0, sizeof(available), &available) != 0) return false;
  const int count = CPU_COUNT(&available);
  if (count <= 0) return false;
  int target = static_cast<int>(thread_index % static_cast<uint32_t>(count));
  cpu_set_t chosen;
  CPU_ZERO(&chosen);
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &available)) continue;
    if (target-- == 0) {
      CPU_SET(cpu, &chosen);
      return pthread_setaffinity_np(pthread_self(), sizeof(chosen), &chosen) ==
             0;
    }
  }
  return false;
#else
  (void)thread_index;
  return false;
#endif
}

// Conservative "could any of my tasks make progress?" poll, used as the
// final check before parking. May return true spuriously (the pass will just
// find nothing); must never return false while work for this thread exists
// that no future signal would announce.
bool MaybeRunnable(Runtime& rt, ThreadCtx& ctx) {
  ElasticState* els = rt.elastic.get();
  if (els != nullptr) {
    if (els->phase.load(std::memory_order_acquire) != 0) return true;
    if (els->spouts_quiesced.load(std::memory_order_acquire) ==
            els->num_spouts &&
        !els->cancelled.load(std::memory_order_acquire) &&
        rt.active_roots.load(std::memory_order_acquire) == 0) {
      return true;  // quiesce complete: someone must flip the phase
    }
  }
  for (TaskState* task : ctx.tasks) {
    if (task->retired) continue;
    if (task->draining || !task->handoff_stash.empty()) return true;
    for (SpscRing<HandoffFrame>* ring : task->handoff_in) {
      if (!ring->EmptyApprox()) return true;
    }
    if (task->spout != nullptr) {
      if (task->paused) {
        if (els != nullptr && els->cancelled.load(std::memory_order_acquire)) {
          return true;  // must release itself from the cancelled trigger
        }
      } else if (!task->exhausted &&
                 task->in_flight.load(std::memory_order_relaxed) <
                     rt.max_pending) {
        return true;
      }
    }
    // A task with unflushed emit buffers must keep retrying: consumers do
    // not signal "space freed" edges, only "tuples published" ones, so a
    // backpressured producer stays in the spin/yield rungs until the ring
    // drains (the consumer is by definition runnable while its ring holds
    // tuples, so the stall is bounded by downstream progress).
    if (!AllFlushed(*task)) return true;
    for (SpscRing<RtTuple>* ring : task->inputs) {
      if (!ring->EmptyApprox()) return true;
    }
  }
  return false;
}

// The parked rung: announce in the gate, re-poll once (the Dekker pairing
// with WakeGate), then sleep on the cv until the epoch moves. The 1 ms
// timed wait is a safety net, not the wake path — any missed-wakeup bug
// degrades to polling instead of deadlock (and the stress tests would still
// catch it through the parks/idle accounting).
void ParkIdle(Runtime& rt, ThreadCtx& ctx) {
  IdleGate& gate = ctx.gate;
  const uint64_t epoch = gate.epoch.load(std::memory_order_relaxed);
  gate.parked.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (rt.stop.load(std::memory_order_acquire) || MaybeRunnable(rt, ctx)) {
    gate.parked.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  ElasticState* els = rt.elastic.get();
  const auto park_start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(gate.mu);
    gate.cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return gate.epoch.load(std::memory_order_relaxed) != epoch ||
             rt.stop.load(std::memory_order_relaxed) ||
             (els != nullptr &&
              els->phase.load(std::memory_order_relaxed) != 0);
    });
  }
  gate.parked.fetch_sub(1, std::memory_order_relaxed);
  const double parked_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    park_start)
          .count();
  ctx.idle_s += parked_s;
  ctx.park_s += parked_s;
  ++ctx.parks;
}

void ThreadMain(Runtime& rt, ThreadCtx& ctx) {
  if (rt.pin_threads && PinCurrentThreadToCpu(ctx.thread_index)) {
    rt.threads_pinned.fetch_add(1, std::memory_order_relaxed);
  }
  ElasticState* els = rt.elastic.get();
  const bool adaptive = rt.wait_strategy == WaitStrategy::kAdaptive;
  uint32_t idle_streak = 0;
  while (!rt.stop.load(std::memory_order_acquire)) {
    if (els != nullptr) {
      if (els->phase.load(std::memory_order_acquire) == 1) {
        ParkAtBarrier(rt);
        continue;
      }
      if (els->spouts_quiesced.load(std::memory_order_acquire) ==
              els->num_spouts &&
          !els->cancelled.load(std::memory_order_acquire) &&
          rt.active_roots.load(std::memory_order_acquire) == 0) {
        // Every spout sits at its trigger and every in-flight tree has
        // acked: the topology is quiescent. First observer opens the
        // barrier; drain_done stamps the credit-drain endpoint.
        uint32_t expected = 0;
        if (els->phase.compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel)) {
          els->drain_done_ns.store(NowNs(), std::memory_order_relaxed);
          rt.WakeAll();  // parked peers must join the barrier
        }
        continue;
      }
    }
    bool did_work = false;
    try {
      for (TaskState* task : ctx.tasks) {
        if (task->retired) continue;
        if (task->draining) {
          did_work |= DrainQuantum(rt, *els, *task);
        } else if (task->spout != nullptr) {
          did_work |= SpoutQuantum(rt, ctx, *task);
        } else {
          did_work |= BoltQuantum(rt, ctx, *task);
        }
      }
    } catch (const std::exception& e) {
      rt.Fail(Status::Internal(std::string("topology task threw: ") + e.what()));
      return;
    } catch (...) {
      rt.Fail(Status::Internal("topology task threw a non-std exception"));
      return;
    }
    // Coalesced acking: apply the pass's deferred reference drops before
    // anything can decide the pass was idle (and before any barrier or
    // termination check can depend on the credit they return).
    did_work |= FlushAcks(rt, ctx);
    if (ctx.processed_delta > 0) {
      const uint64_t total = rt.total_processed.fetch_add(
                                 ctx.processed_delta,
                                 std::memory_order_relaxed) +
                             ctx.processed_delta;
      ctx.processed_delta = 0;
      if (rt.max_tuples != 0 && total > rt.max_tuples) {
        rt.Fail(Status::FailedPrecondition(
            "tuple budget exceeded; emission loop in topology?"));
        return;
      }
    }
    if (els != nullptr && !ctx.tasks.empty()) {
      bool all_retired = true;
      for (const TaskState* task : ctx.tasks) all_retired &= task->retired;
      if (all_retired) {
        // Every task this thread owned drained away in a scale-in: retire
        // the thread. The decrement may make a parked peer the mutator.
        {
          std::lock_guard<std::mutex> lock(els->barrier_mu);
          --els->active_threads;
          els->barrier_cv.notify_all();
        }
        rt.WakeAll();
        return;
      }
    }
    if (did_work) {
      // Peers were woken in-line by the producer-side targeted wakes (ring
      // publishes, credit returns, handoff frames) — no broadcast here.
      idle_streak = 0;
      continue;
    }
    if (rt.active_spouts.load(std::memory_order_acquire) == 0 &&
        rt.active_roots.load(std::memory_order_acquire) == 0 &&
        (els == nullptr ||
         (els->draining_tasks.load(std::memory_order_acquire) == 0 &&
          els->inflight_keys.load(std::memory_order_acquire) == 0))) {
      rt.stop.store(true, std::memory_order_release);
      rt.WakeAll();  // parked peers must observe the stop
      return;
    }
    if (!adaptive) {
      std::this_thread::yield();  // WaitStrategy::kSpin — legacy behavior
      continue;
    }
    // Idle ladder: relax -> timed yield -> park. Each rung still re-polls
    // every task at the top of the next pass.
    ++idle_streak;
    if (idle_streak <= rt.spin_iterations) {
      CpuRelax();
    } else if (idle_streak <= rt.spin_iterations + rt.yield_iterations) {
      const auto yield_start = std::chrono::steady_clock::now();
      std::this_thread::yield();
      ctx.idle_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        yield_start)
              .count();
    } else {
      ParkIdle(rt, ctx);
    }
  }
}

}  // namespace

Result<TopologyStats> ExecuteTopologyThreaded(
    const TopologyBuilder::Topology& topology, const TopologyOptions& options,
    const TopologyRuntimeOptions& runtime_options) {
  if (options.max_pending_per_spout < 1) {
    return Status::InvalidArgument("max_pending_per_spout must be >= 1");
  }
  if (runtime_options.queue_capacity < 2) {
    return Status::InvalidArgument("queue_capacity must be >= 2");
  }
  if (runtime_options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  const bool elastic = !runtime_options.rescale.empty();
  if (elastic) {
    if (Status status =
            ValidateRescaleSchedule(runtime_options.rescale.schedule);
        !status.ok()) {
      return status;
    }
    if (runtime_options.rescale.total_messages == 0) {
      return Status::InvalidArgument("rescale.total_messages must be > 0");
    }
  }

  auto planned = PlanTopology(topology);
  if (!planned.ok()) return planned.status();
  const TopologyPlan& plan = planned.value();
  const std::vector<PlannedComponent>& components = plan.components;

  ElasticTargetPlan target;
  if (elastic) {
    auto resolved =
        ResolveElasticTarget(plan, runtime_options.rescale.component);
    if (!resolved.ok()) return resolved.status();
    target = resolved.value();
  }

  Runtime rt;
  rt.batch_size = runtime_options.batch_size;
  rt.max_pending = options.max_pending_per_spout;
  rt.queue_capacity = runtime_options.queue_capacity;
  rt.max_tuples = options.max_tuples;
  rt.wait_strategy = runtime_options.wait_strategy;
  rt.spin_iterations = runtime_options.spin_iterations;
  rt.yield_iterations = runtime_options.yield_iterations;
  rt.pin_threads = runtime_options.pin_threads;
  if (AvailableCpuCount() <= 1) {
    // Spinning waits for another core to produce; with a single available
    // CPU nothing can be produced until this thread yields, so the spin
    // rung only steals the producer's timeslice. Go straight to yielding.
    rt.spin_iterations = 0;
  }

  // --- Instantiate tasks and their sender-local partitioners. --------------
  rt.tasks.reserve(plan.num_tasks);
  for (uint32_t c = 0; c < components.size(); ++c) {
    for (uint32_t i = 0; i < components[c].parallelism; ++i) {
      auto task = std::make_unique<TaskState>();
      task->task_id = static_cast<uint32_t>(rt.tasks.size());
      task->component = c;
      task->index = i;
      if (components[c].is_spout) {
        task->spout = topology.spouts[components[c].decl_index].factory(i);
        if (task->spout == nullptr) {
          return Status::InvalidArgument("spout factory returned null");
        }
        task->num_slots = options.max_pending_per_spout;
        task->slots = std::make_unique<RootSlot[]>(task->num_slots);
      } else {
        const auto& decl = topology.bolts[components[c].decl_index];
        task->bolt = decl.factory(i);
        if (task->bolt == nullptr) {
          return Status::InvalidArgument("bolt factory returned null");
        }
        task->bolt->Prepare(i, components[c].parallelism);
      }
      auto partitioners = MakeEdgePartitioners(plan, c, options.hash_seed);
      if (!partitioners.ok()) return partitioners.status();
      task->partitioners = std::move(partitioners.value());
      rt.tasks.push_back(std::move(task));
    }
  }

  // --- Transport fabric: one SPSC ring per (producer, consumer) task pair
  // of every edge, registered on both endpoints in deterministic order. ----
  for (uint32_t c = 0; c < components.size(); ++c) {
    const PlannedComponent& comp = components[c];
    for (const PlannedEdge& edge : comp.outputs) {
      const PlannedComponent& to = components[edge.to_component];
      for (uint32_t p = 0; p < comp.parallelism; ++p) {
        TaskState& producer = *rt.tasks[comp.first_task + p];
        OutEdge out;
        out.to_component = edge.to_component;
        out.rings.reserve(to.parallelism);
        out.dest_tasks.reserve(to.parallelism);
        out.buffers.resize(to.parallelism);
        out.flushed.assign(to.parallelism, 0);
        for (uint32_t q = 0; q < to.parallelism; ++q) {
          rt.rings.push_back(std::make_unique<SpscRing<RtTuple>>(
              runtime_options.queue_capacity));
          SpscRing<RtTuple>* ring = rt.rings.back().get();
          out.rings.push_back(ring);
          out.dest_tasks.push_back(rt.tasks[to.first_task + q].get());
          rt.tasks[to.first_task + q]->inputs.push_back(ring);
        }
        producer.out.push_back(std::move(out));
      }
    }
  }

  // --- Elastic rescale wiring. ---------------------------------------------
  if (elastic) {
    rt.elastic = std::make_unique<ElasticState>();
    ElasticState& els = *rt.elastic;
    els.runtime = &rt;
    els.spout_component = target.spout_component;
    els.bolt_component = target.bolt_component;
    els.num_spouts = components[target.spout_component].parallelism;
    els.edge_hash_seed =
        EdgeHashSeed(options.hash_seed, target.spout_component, 0);
    els.cost = runtime_options.rescale.schedule.cost;
    els.bolt_factory =
        topology.bolts[components[target.bolt_component].decl_index].factory;
    els.thread_seed_base = options.seed ^ 0x7f4a7c15ULL;
    const double m =
        static_cast<double>(runtime_options.rescale.total_messages);
    for (const RescaleEvent& event : runtime_options.rescale.schedule.events) {
      els.pending.push_back(ElasticState::PendingEvent{
          static_cast<uint64_t>(event.at_fraction * m), event.num_workers});
    }
    const PlannedComponent& spout_comp = components[target.spout_component];
    for (uint32_t i = 0; i < spout_comp.parallelism; ++i) {
      TaskState* t = rt.tasks[spout_comp.first_task + i].get();
      if (!t->partitioners[0]->SupportsRescale()) {
        return Status::InvalidArgument(t->partitioners[0]->name() +
                                       " does not support rescaling");
      }
      t->log_routing = true;
      t->next_trigger =
          PreCount(els.pending.front().at_message, i, els.num_spouts);
      els.spouts.push_back(t);
    }
    const PlannedComponent& bolt_comp = components[target.bolt_component];
    for (uint32_t i = 0; i < bolt_comp.parallelism; ++i) {
      TaskState* t = rt.tasks[bolt_comp.first_task + i].get();
      if (!t->bolt->SupportsStateHandoff()) {
        return Status::InvalidArgument(
            "bolt '" + bolt_comp.name +
            "' does not support state handoff (required for live rescale)");
      }
      t->elastic = true;
      els.workers.push_back(t);
      els.bolt_tasks.push_back(t);
    }
  }

  // --- Executor threads: tasks assigned round-robin. -----------------------
  uint32_t num_threads = runtime_options.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads = std::min<uint32_t>(num_threads, plan.num_tasks);

  uint32_t num_spout_tasks = 0;
  for (uint32_t c = 0; c < plan.num_spout_components; ++c) {
    num_spout_tasks += components[c].parallelism;
  }
  rt.active_spouts.store(num_spout_tasks, std::memory_order_relaxed);
  rt.num_spout_tasks = num_spout_tasks;

  for (uint32_t t = 0; t < num_threads; ++t) {
    rt.contexts.push_back(std::make_unique<ThreadCtx>(options.seed ^ (t + 1)));
    rt.contexts.back()->thread_index = t;
  }
  for (uint32_t t = 0; t < plan.num_tasks; ++t) {
    rt.contexts[t % num_threads]->tasks.push_back(rt.tasks[t].get());
    rt.tasks[t]->host = rt.contexts[t % num_threads].get();
  }
  if (rt.elastic != nullptr) rt.elastic->active_threads = num_threads;

  rt.start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(rt.spawn_mu);
    for (uint32_t t = 0; t < num_threads; ++t) {
      rt.threads.emplace_back(ThreadMain, std::ref(rt),
                              std::ref(*rt.contexts[t]));
    }
  }
  // Join in arrival order; a scale-out barrier may append threads while we
  // wait, so re-check the deque after every join (deque references stay
  // valid across growth). When the joined prefix covers the whole deque no
  // live thread remains, so no further spawn can happen.
  size_t joined = 0;
  while (true) {
    std::thread* next = nullptr;
    {
      std::lock_guard<std::mutex> lock(rt.spawn_mu);
      if (joined < rt.threads.size()) next = &rt.threads[joined];
    }
    if (next == nullptr) break;
    next->join();
    ++joined;
  }

  {
    std::lock_guard<std::mutex> lock(rt.error_mu);
    if (!rt.first_error.ok()) return rt.first_error;
  }

  // --- Collect statistics (all threads joined; plain reads are safe). ------
  TopologyStats stats;
  Histogram latency_ms(1 << 18, options.seed ^ 0xabcdULL);
  double last_ack_s = 0.0;
  for (const auto& ctx : rt.contexts) {
    latency_ms.Merge(ctx->latency_ms);
    stats.roots_acked += ctx->roots_acked;
    last_ack_s = std::max(last_ack_s, ctx->last_ack_s);
    stats.idle_s += ctx->idle_s;
    stats.park_s += ctx->park_s;
    stats.parks += ctx->parks;
  }
  stats.threads_pinned = rt.threads_pinned.load(std::memory_order_relaxed);
  // Routing-log audit, measured before the elastic replay below moves the
  // logs out: zero on non-rescale runs pins that the hot path never touched
  // (or allocated for) per-tuple capture.
  for (const auto& task : rt.tasks) {
    stats.routing_log_capacity_bytes +=
        task->routing_log.keys.capacity() * sizeof(uint64_t) +
        task->routing_log.workers.capacity() * sizeof(uint32_t);
  }
  stats.tuples_processed = rt.total_processed.load(std::memory_order_relaxed);
  stats.makespan_s = last_ack_s;
  stats.throughput_per_s =
      last_ack_s > 0 ? static_cast<double>(stats.roots_acked) / last_ack_s : 0.0;
  stats.latency_avg_ms = latency_ms.mean();
  stats.latency_p50_ms = latency_ms.p50();
  stats.latency_p95_ms = latency_ms.p95();
  stats.latency_p99_ms = latency_ms.p99();
  stats.latency_max_ms = latency_ms.max();

  ElasticState* els = rt.elastic.get();
  for (uint32_t c = 0; c < components.size(); ++c) {
    const PlannedComponent& comp = components[c];
    ComponentStats cs;
    cs.name = comp.name;
    if (els != nullptr && c == els->bolt_component) {
      // Tuples processed spans every task that ever existed (including
      // retired ones); loads and state describe the FINAL worker set.
      for (const TaskState* t : els->bolt_tasks) {
        cs.tuples_processed += t->processed;
      }
      const uint32_t n = static_cast<uint32_t>(els->workers.size());
      uint64_t final_total = 0;
      for (const TaskState* t : els->workers) final_total += t->processed;
      cs.task_loads.resize(n, 0.0);
      double max_load = 0.0;
      for (uint32_t i = 0; i < n; ++i) {
        const TaskState& task = *els->workers[i];
        cs.task_loads[i] = final_total > 0
                               ? static_cast<double>(task.processed) /
                                     static_cast<double>(final_total)
                               : 0.0;
        max_load = std::max(max_load, cs.task_loads[i]);
        cs.state_entries += task.bolt->StateEntries();
      }
      cs.imbalance =
          final_total > 0 ? max_load - 1.0 / static_cast<double>(n) : 0.0;
      stats.components.push_back(std::move(cs));
      continue;
    }
    uint64_t total = 0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      total += rt.tasks[comp.first_task + i]->processed;
    }
    cs.tuples_processed = total;
    cs.task_loads.resize(comp.parallelism, 0.0);
    double max_load = 0.0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      const TaskState& task = *rt.tasks[comp.first_task + i];
      cs.task_loads[i] = total > 0 ? static_cast<double>(task.processed) /
                                         static_cast<double>(total)
                                   : 0.0;
      max_load = std::max(max_load, cs.task_loads[i]);
      if (task.bolt != nullptr) cs.state_entries += task.bolt->StateEntries();
    }
    cs.imbalance =
        total > 0 ? max_load - 1.0 / static_cast<double>(comp.parallelism) : 0.0;
    stats.components.push_back(std::move(cs));
  }

  if (els != nullptr) {
    CloseStallWindow(*els);
    TopologyRescaleStats& rs = stats.rescale;
    rs.rescale_events = static_cast<uint32_t>(els->fired.size());
    rs.final_parallelism = static_cast<uint32_t>(els->workers.size());
    rs.handoff_frames = els->handoff_frames.load(std::memory_order_relaxed);
    rs.measured_stalled_messages =
        els->measured_stalls.load(std::memory_order_relaxed);
    rs.total_quiesce_s = els->total_quiesce_s;
    rs.total_credit_drain_s = els->total_credit_drain_s;
    rs.total_migration_stall_s = els->total_migration_stall_s;
    // Modeled columns: replay the recorded routing logs through the same
    // migration protocol the simulator runs — deterministic at any thread
    // count and byte-identical to RunPartitionSimulation on these streams.
    std::vector<SenderRoutingLog> logs;
    logs.reserve(els->spouts.size());
    for (TaskState* t : els->spouts) logs.push_back(std::move(t->routing_log));
    MigrationTracker tracker =
        ReplayRoundRobinMigration(els->cost, els->fired, logs);
    rs.keys_migrated = tracker.keys_migrated();
    rs.state_bytes_migrated = tracker.state_bytes_migrated();
    rs.stalled_messages = tracker.stalled_messages();
    rs.moved_key_fraction = tracker.moved_key_fraction();
    rs.migrated_keys = tracker.migrated_keys();
  }
  return stats;
}

}  // namespace slb
