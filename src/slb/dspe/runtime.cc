#include "slb/dspe/runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "slb/common/histogram.h"
#include "slb/common/logging.h"
#include "slb/dspe/plan.h"
#include "slb/dspe/spsc_queue.h"

namespace slb {
namespace {

// A tuple in transit. The (spout_task, root_slot) pair names the root tree
// this tuple belongs to for ack accounting.
struct RtTuple {
  uint64_t key = 0;
  uint64_t value = 0;
  uint32_t spout_task = 0;
  uint32_t root_slot = 0;
};

// One in-flight root tuple tree of a spout task. `pending` counts the
// unprocessed tuples of the tree plus, while the spout is still routing the
// root, an anchor of 1 (the anchor guarantees pending cannot transiently hit
// zero before all copies are queued). emit_time_s is written by the spout
// strictly before the release-store that makes pending non-zero, and read by
// completers strictly before the final decrement, so slot reuse never races.
struct RootSlot {
  std::atomic<uint32_t> pending{0};
  double emit_time_s = 0.0;
};

class ReusableCollector final : public OutputCollector {
 public:
  void Emit(const TopologyTuple& tuple) override { emitted.push_back(tuple); }
  std::vector<TopologyTuple> emitted;
};

// Per-destination emit buffer of one outgoing edge: tuples routed but not
// yet published to the destination ring (the batch plus, under backpressure,
// the stash of rejected pushes).
struct OutEdge {
  uint32_t to_component = 0;
  std::vector<SpscRing<RtTuple>*> rings;      // one per destination task
  std::vector<std::vector<RtTuple>> buffers;  // parallel to rings
  std::vector<size_t> flushed;                // prefix of buffer already sent
};

struct TaskState {
  uint32_t task_id = 0;
  uint32_t component = 0;
  uint32_t index = 0;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  std::vector<std::unique_ptr<StreamPartitioner>> partitioners;
  std::vector<OutEdge> out;
  // Bolt: input rings, one per upstream producer task (MPSC as polled SPSC).
  std::vector<SpscRing<RtTuple>*> inputs;
  size_t input_cursor = 0;
  ReusableCollector collector;
  uint64_t processed = 0;
  // Spout: root-slot table (size = credit window) and live-root count.
  std::unique_ptr<RootSlot[]> slots;
  uint32_t num_slots = 0;
  std::atomic<uint32_t> in_flight{0};
  uint32_t slot_cursor = 0;
  bool exhausted = false;
};

struct Runtime {
  std::vector<std::unique_ptr<TaskState>> tasks;
  std::vector<std::unique_ptr<SpscRing<RtTuple>>> rings;
  uint32_t batch_size = 64;
  uint32_t max_pending = 1;
  uint64_t max_tuples = 0;

  std::chrono::steady_clock::time_point start;
  std::atomic<uint32_t> active_spouts{0};
  std::atomic<uint64_t> active_roots{0};
  std::atomic<uint64_t> total_processed{0};
  std::atomic<bool> stop{false};

  std::mutex error_mu;
  Status first_error;  // guarded by error_mu

  double NowSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }

  void Fail(Status status) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = std::move(status);
    }
    stop.store(true, std::memory_order_release);
  }
};

// Per-executor-thread accumulators, merged after join. Histogram is
// non-movable (internal mutex), so contexts live behind unique_ptr.
struct ThreadCtx {
  explicit ThreadCtx(uint64_t seed) : latency_ms(1 << 16, seed) {}
  std::vector<TaskState*> tasks;
  Histogram latency_ms;
  uint64_t roots_acked = 0;
  double last_ack_s = 0.0;
  uint64_t processed_delta = 0;
};

// Attempts to publish every buffered tuple; returns true if any tuple moved.
bool FlushTask(TaskState& task) {
  bool moved = false;
  for (OutEdge& edge : task.out) {
    for (size_t d = 0; d < edge.rings.size(); ++d) {
      std::vector<RtTuple>& buf = edge.buffers[d];
      size_t& sent = edge.flushed[d];
      if (sent == buf.size()) continue;
      const size_t pushed =
          edge.rings[d]->TryPushBatch(buf.data() + sent, buf.size() - sent);
      sent += pushed;
      moved |= pushed > 0;
      if (sent == buf.size()) {
        buf.clear();
        sent = 0;
      }
    }
  }
  return moved;
}

bool AllFlushed(const TaskState& task) {
  for (const OutEdge& edge : task.out) {
    for (const auto& buf : edge.buffers) {
      if (!buf.empty()) return false;
    }
  }
  return true;
}

// Routes `tuple` along every outgoing edge of `task`, charging each copy to
// the root's pending count BEFORE the copy becomes visible downstream.
void RouteDownstream(Runtime& rt, TaskState& task, const TopologyTuple& tuple,
                     uint32_t spout_task, uint32_t root_slot) {
  RootSlot& root = rt.tasks[spout_task]->slots[root_slot];
  for (size_t e = 0; e < task.out.size(); ++e) {
    OutEdge& edge = task.out[e];
    const uint32_t dest = task.partitioners[e]->Route(tuple.key);
    root.pending.fetch_add(1, std::memory_order_relaxed);
    edge.buffers[dest].push_back(
        RtTuple{tuple.key, tuple.value, spout_task, root_slot});
  }
}

// Drops one reference on a root tree; the final decrement acks the root:
// records latency, returns the spout's credit, and retires the live root.
void CompleteOne(Runtime& rt, ThreadCtx& ctx, uint32_t spout_task,
                 uint32_t root_slot) {
  TaskState& spout = *rt.tasks[spout_task];
  RootSlot& root = spout.slots[root_slot];
  const double emit_s = root.emit_time_s;  // must precede the decrement
  if (root.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const double now_s = rt.NowSeconds();
    ctx.latency_ms.Add((now_s - emit_s) * 1e3);
    ctx.last_ack_s = std::max(ctx.last_ack_s, now_s);
    ++ctx.roots_acked;
    spout.in_flight.fetch_sub(1, std::memory_order_relaxed);
    rt.active_roots.fetch_sub(1, std::memory_order_relaxed);
  }
}

// Finds a root slot with pending == 0. Guaranteed to exist because the
// caller checked in_flight < num_slots and every live root holds exactly one
// slot at pending > 0.
uint32_t ClaimRootSlot(TaskState& task) {
  for (uint32_t i = 0; i < task.num_slots; ++i) {
    const uint32_t s = (task.slot_cursor + i) % task.num_slots;
    // acquire: pairs with the final acq_rel decrement in CompleteOne so the
    // spout's upcoming emit_time_s write cannot race the completer's read.
    if (task.slots[s].pending.load(std::memory_order_acquire) == 0) {
      task.slot_cursor = (s + 1) % task.num_slots;
      return s;
    }
  }
  SLB_CHECK(false) << "no free root slot despite available credit";
  return 0;
}

bool SpoutQuantum(Runtime& rt, ThreadCtx& ctx, TaskState& task) {
  bool did_work = FlushTask(task);
  // Emitting while a stash is pending would reorder tuples per destination;
  // hold off until backpressure clears.
  if (!AllFlushed(task) || task.exhausted) return did_work;

  for (uint32_t n = 0; n < rt.batch_size; ++n) {
    if (task.in_flight.load(std::memory_order_relaxed) >= rt.max_pending) {
      break;  // credit window exhausted: wait for acks (backpressure)
    }
    TopologyTuple tuple;
    if (!task.spout->NextTuple(&tuple)) {
      task.exhausted = true;
      rt.active_spouts.fetch_sub(1, std::memory_order_relaxed);
      break;
    }
    ++task.processed;
    ++ctx.processed_delta;
    const uint32_t slot = ClaimRootSlot(task);
    RootSlot& root = task.slots[slot];
    task.in_flight.fetch_add(1, std::memory_order_relaxed);
    rt.active_roots.fetch_add(1, std::memory_order_relaxed);
    root.emit_time_s = rt.NowSeconds();
    // Anchor reference: holds the tree open until all copies are queued.
    root.pending.store(1, std::memory_order_release);
    RouteDownstream(rt, task, tuple, task.task_id, slot);
    CompleteOne(rt, ctx, task.task_id, slot);  // drop the anchor
    did_work = true;
  }
  did_work |= FlushTask(task);
  return did_work;
}

bool BoltQuantum(Runtime& rt, ThreadCtx& ctx, TaskState& task) {
  bool did_work = FlushTask(task);
  if (!AllFlushed(task)) return did_work;  // backpressure: do not consume

  uint32_t budget = rt.batch_size;
  RtTuple chunk[32];
  while (budget > 0) {
    // MPSC fan-in: poll the per-producer SPSC rings round-robin.
    size_t popped = 0;
    for (size_t i = 0; i < task.inputs.size(); ++i) {
      const size_t r = (task.input_cursor + i) % task.inputs.size();
      const size_t want =
          std::min<size_t>(budget, sizeof(chunk) / sizeof(chunk[0]));
      popped = task.inputs[r]->TryPopBatch(chunk, want);
      if (popped > 0) {
        task.input_cursor = (r + 1) % task.inputs.size();
        break;
      }
    }
    if (popped == 0) break;

    for (size_t i = 0; i < popped; ++i) {
      const RtTuple& in = chunk[i];
      task.collector.emitted.clear();
      task.bolt->Execute(TopologyTuple{in.key, in.value}, &task.collector);
      ++task.processed;
      ++ctx.processed_delta;
      for (const TopologyTuple& out : task.collector.emitted) {
        RouteDownstream(rt, task, out, in.spout_task, in.root_slot);
      }
      CompleteOne(rt, ctx, in.spout_task, in.root_slot);
    }
    budget -= static_cast<uint32_t>(popped);
    did_work = true;
  }
  did_work |= FlushTask(task);
  return did_work;
}

void ThreadMain(Runtime& rt, ThreadCtx& ctx) {
  while (!rt.stop.load(std::memory_order_acquire)) {
    bool did_work = false;
    try {
      for (TaskState* task : ctx.tasks) {
        did_work |= task->spout != nullptr ? SpoutQuantum(rt, ctx, *task)
                                           : BoltQuantum(rt, ctx, *task);
      }
    } catch (const std::exception& e) {
      rt.Fail(Status::Internal(std::string("topology task threw: ") + e.what()));
      return;
    } catch (...) {
      rt.Fail(Status::Internal("topology task threw a non-std exception"));
      return;
    }
    if (ctx.processed_delta > 0) {
      const uint64_t total = rt.total_processed.fetch_add(
                                 ctx.processed_delta,
                                 std::memory_order_relaxed) +
                             ctx.processed_delta;
      ctx.processed_delta = 0;
      if (rt.max_tuples != 0 && total > rt.max_tuples) {
        rt.Fail(Status::FailedPrecondition(
            "tuple budget exceeded; emission loop in topology?"));
        return;
      }
    }
    if (!did_work) {
      if (rt.active_spouts.load(std::memory_order_acquire) == 0 &&
          rt.active_roots.load(std::memory_order_acquire) == 0) {
        rt.stop.store(true, std::memory_order_release);
        return;
      }
      std::this_thread::yield();
    }
  }
}

}  // namespace

Result<TopologyStats> ExecuteTopologyThreaded(
    const TopologyBuilder::Topology& topology, const TopologyOptions& options,
    const TopologyRuntimeOptions& runtime_options) {
  if (options.max_pending_per_spout < 1) {
    return Status::InvalidArgument("max_pending_per_spout must be >= 1");
  }
  if (runtime_options.queue_capacity < 2) {
    return Status::InvalidArgument("queue_capacity must be >= 2");
  }
  if (runtime_options.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }

  auto planned = PlanTopology(topology);
  if (!planned.ok()) return planned.status();
  const TopologyPlan& plan = planned.value();
  const std::vector<PlannedComponent>& components = plan.components;

  Runtime rt;
  rt.batch_size = runtime_options.batch_size;
  rt.max_pending = options.max_pending_per_spout;
  rt.max_tuples = options.max_tuples;

  // --- Instantiate tasks and their sender-local partitioners. --------------
  rt.tasks.reserve(plan.num_tasks);
  for (uint32_t c = 0; c < components.size(); ++c) {
    for (uint32_t i = 0; i < components[c].parallelism; ++i) {
      auto task = std::make_unique<TaskState>();
      task->task_id = static_cast<uint32_t>(rt.tasks.size());
      task->component = c;
      task->index = i;
      if (components[c].is_spout) {
        task->spout = topology.spouts[components[c].decl_index].factory(i);
        if (task->spout == nullptr) {
          return Status::InvalidArgument("spout factory returned null");
        }
        task->num_slots = options.max_pending_per_spout;
        task->slots = std::make_unique<RootSlot[]>(task->num_slots);
      } else {
        const auto& decl = topology.bolts[components[c].decl_index];
        task->bolt = decl.factory(i);
        if (task->bolt == nullptr) {
          return Status::InvalidArgument("bolt factory returned null");
        }
        task->bolt->Prepare(i, components[c].parallelism);
      }
      auto partitioners = MakeEdgePartitioners(plan, c, options.hash_seed);
      if (!partitioners.ok()) return partitioners.status();
      task->partitioners = std::move(partitioners.value());
      rt.tasks.push_back(std::move(task));
    }
  }

  // --- Transport fabric: one SPSC ring per (producer, consumer) task pair
  // of every edge, registered on both endpoints in deterministic order. ----
  for (uint32_t c = 0; c < components.size(); ++c) {
    const PlannedComponent& comp = components[c];
    for (const PlannedEdge& edge : comp.outputs) {
      const PlannedComponent& to = components[edge.to_component];
      for (uint32_t p = 0; p < comp.parallelism; ++p) {
        TaskState& producer = *rt.tasks[comp.first_task + p];
        OutEdge out;
        out.to_component = edge.to_component;
        out.rings.reserve(to.parallelism);
        out.buffers.resize(to.parallelism);
        out.flushed.assign(to.parallelism, 0);
        for (uint32_t q = 0; q < to.parallelism; ++q) {
          rt.rings.push_back(std::make_unique<SpscRing<RtTuple>>(
              runtime_options.queue_capacity));
          SpscRing<RtTuple>* ring = rt.rings.back().get();
          out.rings.push_back(ring);
          rt.tasks[to.first_task + q]->inputs.push_back(ring);
        }
        producer.out.push_back(std::move(out));
      }
    }
  }

  // --- Executor threads: tasks assigned round-robin. -----------------------
  uint32_t num_threads = runtime_options.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads = std::min<uint32_t>(num_threads, plan.num_tasks);

  uint32_t num_spout_tasks = 0;
  for (uint32_t c = 0; c < plan.num_spout_components; ++c) {
    num_spout_tasks += components[c].parallelism;
  }
  rt.active_spouts.store(num_spout_tasks, std::memory_order_relaxed);

  std::vector<std::unique_ptr<ThreadCtx>> contexts;
  contexts.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    contexts.push_back(std::make_unique<ThreadCtx>(options.seed ^ (t + 1)));
  }
  for (uint32_t t = 0; t < plan.num_tasks; ++t) {
    contexts[t % num_threads]->tasks.push_back(rt.tasks[t].get());
  }

  rt.start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    threads.emplace_back(ThreadMain, std::ref(rt), std::ref(*contexts[t]));
  }
  for (auto& thread : threads) thread.join();

  {
    std::lock_guard<std::mutex> lock(rt.error_mu);
    if (!rt.first_error.ok()) return rt.first_error;
  }

  // --- Collect statistics (all threads joined; plain reads are safe). ------
  TopologyStats stats;
  Histogram latency_ms(1 << 18, options.seed ^ 0xabcdULL);
  double last_ack_s = 0.0;
  for (const auto& ctx : contexts) {
    latency_ms.Merge(ctx->latency_ms);
    stats.roots_acked += ctx->roots_acked;
    last_ack_s = std::max(last_ack_s, ctx->last_ack_s);
  }
  stats.tuples_processed = rt.total_processed.load(std::memory_order_relaxed);
  stats.makespan_s = last_ack_s;
  stats.throughput_per_s =
      last_ack_s > 0 ? static_cast<double>(stats.roots_acked) / last_ack_s : 0.0;
  stats.latency_avg_ms = latency_ms.mean();
  stats.latency_p50_ms = latency_ms.p50();
  stats.latency_p95_ms = latency_ms.p95();
  stats.latency_p99_ms = latency_ms.p99();
  stats.latency_max_ms = latency_ms.max();

  for (const PlannedComponent& comp : components) {
    ComponentStats cs;
    cs.name = comp.name;
    uint64_t total = 0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      total += rt.tasks[comp.first_task + i]->processed;
    }
    cs.tuples_processed = total;
    cs.task_loads.resize(comp.parallelism, 0.0);
    double max_load = 0.0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      const TaskState& task = *rt.tasks[comp.first_task + i];
      cs.task_loads[i] = total > 0 ? static_cast<double>(task.processed) /
                                         static_cast<double>(total)
                                   : 0.0;
      max_load = std::max(max_load, cs.task_loads[i]);
      if (task.bolt != nullptr) cs.state_entries += task.bolt->StateEntries();
    }
    cs.imbalance =
        total > 0 ? max_load - 1.0 / static_cast<double>(comp.parallelism) : 0.0;
    stats.components.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace slb
