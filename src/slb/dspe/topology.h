// A Storm-like topology programming model (the paper's deployment target).
//
// The paper evaluates its groupings inside Apache Storm: spouts emit keyed
// tuples, bolts process them, and every spout->bolt / bolt->bolt edge is
// partitioned by a grouping scheme. This module reproduces that programming
// model on top of the library's discrete-event engine, so applications can
// be written once and executed deterministically:
//
//   TopologyBuilder builder;
//   builder.AddSpout("words", spout_factory, /*parallelism=*/4);
//   builder.AddBolt("count", bolt_factory, /*parallelism=*/20)
//          .Input("words", Grouping::DChoices());
//   Result<TopologyStats> stats = ExecuteTopology(builder.Build(), options);
//
// Execution semantics (mirroring Storm with max-spout-pending acking):
//   * every task (spout or bolt instance) is a FIFO queue with a
//     deterministic per-tuple service time;
//   * a spout may have at most `max_pending` tuple *trees* in flight; the
//     tree is acked when the root tuple and every descendant emitted while
//     processing it have been fully processed;
//   * each upstream task owns a sender-local partitioner per outgoing edge
//     (the paper's Sec. III: local load estimates, shared hash functions).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/histogram.h"
#include "slb/common/status.h"
#include "slb/core/partitioner.h"

namespace slb {

/// A keyed message flowing through the topology.
struct TopologyTuple {
  uint64_t key = 0;
  uint64_t value = 0;
};

/// Emits tuples produced by a bolt while executing an input tuple.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;
  virtual void Emit(const TopologyTuple& tuple) = 0;
};

/// A data source instance (Storm spout). One instance exists per task.
class Spout {
 public:
  virtual ~Spout() = default;
  /// Produces the next tuple; returns false when the source is exhausted.
  virtual bool NextTuple(TopologyTuple* out) = 0;
};

/// A processing operator instance (Storm bolt). One instance per task.
class Bolt {
 public:
  virtual ~Bolt() = default;
  /// Called once before execution with this instance's task index.
  virtual void Prepare(uint32_t task_index, uint32_t parallelism) {
    (void)task_index;
    (void)parallelism;
  }
  /// Processes one tuple; may Emit() downstream tuples.
  virtual void Execute(const TopologyTuple& tuple, OutputCollector* out) = 0;
  /// Entries of operator state held by this instance (memory accounting).
  virtual size_t StateEntries() const { return 0; }

  // --- Elastic key-state handoff (live rescale on the threaded engine). ----
  // A bolt on a component named by TopologyRuntimeOptions::rescale must
  // return true from SupportsStateHandoff and implement the three methods
  // below. State is modeled as one uint64 per key — enough for counter-style
  // operators; richer operators can treat the value as a handle into
  // external storage. All four are called only from the thread driving the
  // instance (or from the rescale mutator while every executor is parked),
  // so implementations need no locking.

  /// True when this bolt can extract and install per-key state.
  virtual bool SupportsStateHandoff() const { return false; }
  /// Appends every key this instance currently holds state for.
  virtual void AppendStateKeys(std::vector<uint64_t>* keys) const {
    (void)keys;
  }
  /// Removes `key`'s state from this instance, writing it to `*value`.
  /// Returns false (and writes 0) when the key has no state here.
  virtual bool ExtractKeyState(uint64_t key, uint64_t* value) {
    (void)key;
    *value = 0;
    return false;
  }
  /// Merges state for `key` handed off from another instance.
  virtual void InstallKeyState(uint64_t key, uint64_t value) {
    (void)key;
    (void)value;
  }
};

using SpoutFactory = std::function<std::unique_ptr<Spout>(uint32_t task_index)>;
using BoltFactory = std::function<std::unique_ptr<Bolt>(uint32_t task_index)>;

/// Grouping configuration of one edge.
struct Grouping {
  AlgorithmKind algorithm = AlgorithmKind::kShuffleGrouping;
  /// theta_ratio/epsilon/sketch knobs for head-aware schemes; num_workers
  /// and hash_seed are filled in by the engine.
  PartitionerOptions options;

  static Grouping Key() { return {AlgorithmKind::kKeyGrouping, {}}; }
  static Grouping Shuffle() { return {AlgorithmKind::kShuffleGrouping, {}}; }
  static Grouping Pkg() { return {AlgorithmKind::kPkg, {}}; }
  static Grouping DChoices() { return {AlgorithmKind::kDChoices, {}}; }
  static Grouping WChoices() { return {AlgorithmKind::kWChoices, {}}; }
};

/// Declarative topology description.
class TopologyBuilder {
 public:
  TopologyBuilder& AddSpout(const std::string& name, SpoutFactory factory,
                            uint32_t parallelism);

  /// Adds a bolt; connect inputs with Input() on the returned reference.
  TopologyBuilder& AddBolt(const std::string& name, BoltFactory factory,
                           uint32_t parallelism);

  /// Connects the most recently added bolt to an upstream component.
  TopologyBuilder& Input(const std::string& upstream, Grouping grouping);

  struct SpoutDecl {
    std::string name;
    SpoutFactory factory;
    uint32_t parallelism;
  };
  struct BoltDecl {
    std::string name;
    BoltFactory factory;
    uint32_t parallelism;
    std::vector<std::pair<std::string, Grouping>> inputs;
  };
  struct Topology {
    std::vector<SpoutDecl> spouts;
    std::vector<BoltDecl> bolts;
  };

  Topology Build() const { return topology_; }

 private:
  Topology topology_;
};

/// Engine knobs (the cluster model; defaults match sim/dspe_simulator).
struct TopologyOptions {
  double spout_service_ms = 0.3;  // per-tuple emission cost at the spout
  double bolt_service_ms = 1.0;   // per-tuple processing cost at every bolt
  uint32_t max_pending_per_spout = 70;
  uint64_t hash_seed = 42;
  uint64_t seed = 42;
  /// Safety valve: abort after this many processed tuples (0 = unlimited).
  uint64_t max_tuples = 0;
};

/// Per-component execution statistics.
struct ComponentStats {
  std::string name;
  uint64_t tuples_processed = 0;
  /// Normalized per-task load and the resulting imbalance (Sec. II-B).
  std::vector<double> task_loads;
  double imbalance = 0.0;
  /// Total state entries across this component's tasks (bolts only).
  size_t state_entries = 0;
};

/// Outcome of a live elastic rescale (ExecuteTopologyThreaded with a
/// non-empty TopologyRuntimeOptions::rescale; all-zero otherwise). The
/// migration accounting splits into two families:
///
///  * MODELED — keys_migrated / state_bytes_migrated / stalled_messages /
///    moved_key_fraction / migrated_keys come from replaying the spouts'
///    recorded routing logs through a MigrationTracker in the canonical
///    round-robin order (ReplayRoundRobinMigration), so they are
///    byte-identical to RunPartitionSimulation on the same per-sender
///    streams and deterministic at any thread count.
///
///  * MEASURED — handoff_frames / measured_stalled_messages and the wall-
///    clock phase costs describe what the live protocol actually did:
///    frames through the handoff rings, tuples that arrived before their
///    key's state, and how long quiesce / credit drain / post-resume
///    migration took.
struct TopologyRescaleStats {
  uint32_t rescale_events = 0;     // worker-set changes that fired
  uint32_t final_parallelism = 0;  // rescaled component's final task count
  // Modeled (replay) accounting.
  uint64_t keys_migrated = 0;
  uint64_t state_bytes_migrated = 0;
  uint64_t stalled_messages = 0;
  double moved_key_fraction = 0.0;
  std::vector<uint64_t> migrated_keys;  // handoff-enqueue order
  // Measured (live protocol) accounting.
  uint64_t handoff_frames = 0;            // state + pull frames on the rings
  uint64_t measured_stalled_messages = 0; // tuples processed before state
  double total_credit_drain_s = 0.0;  // spout pause -> in-flight trees acked
  double total_quiesce_s = 0.0;       // spout pause -> topology resumed
  double total_migration_stall_s = 0.0;  // resume -> last handoff installed
};

struct TopologyStats {
  double makespan_s = 0.0;
  double throughput_per_s = 0.0;  // spout-root tuples acked per second
  uint64_t roots_acked = 0;
  uint64_t tuples_processed = 0;  // including bolt-emitted descendants
  /// Root-tree completion latency (emission -> full tree acked), ms.
  double latency_avg_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Threaded-engine executor accounting (all zero under the simulator).
  /// idle_s is wall-clock the executors spent in the idle ladder (yield +
  /// park stages); park_s is the subset spent parked on the idle gate's
  /// condition variable; parks counts park episodes. Under
  /// WaitStrategy::kSpin these stay zero (the legacy untimed yield loop).
  double idle_s = 0.0;
  double park_s = 0.0;
  uint64_t parks = 0;
  /// Executor threads successfully pinned to a CPU (0 unless
  /// TopologyRuntimeOptions::pin_threads, or where unsupported).
  uint32_t threads_pinned = 0;
  /// Bytes ever reserved by per-tuple routing-log capture across all tasks.
  /// The hot-path audit: must be exactly zero on runs with no rescale
  /// schedule (capture is compiled out of the non-logging route path).
  uint64_t routing_log_capacity_bytes = 0;
  std::vector<ComponentStats> components;
  /// Live elastic-rescale outcome (threaded engine only).
  TopologyRescaleStats rescale;
};

/// Runs the topology to spout exhaustion; deterministic for a fixed seed.
Result<TopologyStats> ExecuteTopology(const TopologyBuilder::Topology& topology,
                                      const TopologyOptions& options);

}  // namespace slb
