#include "slb/dspe/topology.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>

#include "slb/common/logging.h"

namespace slb {

TopologyBuilder& TopologyBuilder::AddSpout(const std::string& name,
                                           SpoutFactory factory,
                                           uint32_t parallelism) {
  topology_.spouts.push_back(SpoutDecl{name, std::move(factory), parallelism});
  return *this;
}

TopologyBuilder& TopologyBuilder::AddBolt(const std::string& name,
                                          BoltFactory factory,
                                          uint32_t parallelism) {
  topology_.bolts.push_back(BoltDecl{name, std::move(factory), parallelism, {}});
  return *this;
}

TopologyBuilder& TopologyBuilder::Input(const std::string& upstream,
                                        Grouping grouping) {
  SLB_CHECK(!topology_.bolts.empty()) << "Input() requires a bolt; call AddBolt";
  topology_.bolts.back().inputs.emplace_back(upstream, grouping);
  return *this;
}

namespace {

// ---------------------------------------------------------------------------
// Flattened runtime structures.

struct Edge {
  uint32_t to_component;  // index into components
  Grouping grouping;
};

struct Component {
  std::string name;
  bool is_spout = false;
  uint32_t parallelism = 0;
  uint32_t first_task = 0;  // global task id of instance 0
  std::vector<Edge> outputs;
};

struct InFlight {
  TopologyTuple tuple;
  uint64_t root = 0;  // index into root bookkeeping
};

struct Task {
  uint32_t component = 0;
  uint32_t index = 0;  // instance index within the component
  bool busy = false;
  std::deque<InFlight> queue;
  // One sender-local partitioner per outgoing edge of the component.
  std::vector<std::unique_ptr<StreamPartitioner>> partitioners;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  uint64_t processed = 0;
  // Spout-only:
  uint32_t credits = 0;
  bool exhausted = false;
};

struct Root {
  double emit_time_s = 0.0;
  uint64_t pending = 0;
  uint32_t spout_task = 0;
};

enum class EventType : uint8_t { kSpoutEmit, kTaskDone };

struct Event {
  double time_s;
  EventType type;
  uint32_t task;
  bool operator>(const Event& other) const { return time_s > other.time_s; }
};

class Collector final : public OutputCollector {
 public:
  void Emit(const TopologyTuple& tuple) override { emitted.push_back(tuple); }
  std::vector<TopologyTuple> emitted;
};

}  // namespace

Result<TopologyStats> ExecuteTopology(const TopologyBuilder::Topology& topology,
                                      const TopologyOptions& options) {
  if (topology.spouts.empty()) {
    return Status::InvalidArgument("topology needs at least one spout");
  }
  if (options.spout_service_ms <= 0 || options.bolt_service_ms <= 0) {
    return Status::InvalidArgument("service times must be positive");
  }
  if (options.max_pending_per_spout < 1) {
    return Status::InvalidArgument("max_pending_per_spout must be >= 1");
  }

  // --- Flatten components and validate the DAG. ---------------------------
  std::vector<Component> components;
  std::unordered_map<std::string, uint32_t> by_name;
  for (const auto& spout : topology.spouts) {
    if (spout.parallelism < 1) {
      return Status::InvalidArgument("spout '" + spout.name +
                                     "' needs parallelism >= 1");
    }
    if (!by_name.emplace(spout.name, components.size()).second) {
      return Status::InvalidArgument("duplicate component name: " + spout.name);
    }
    components.push_back(Component{spout.name, true, spout.parallelism, 0, {}});
  }
  for (const auto& bolt : topology.bolts) {
    if (bolt.parallelism < 1) {
      return Status::InvalidArgument("bolt '" + bolt.name +
                                     "' needs parallelism >= 1");
    }
    if (!by_name.emplace(bolt.name, components.size()).second) {
      return Status::InvalidArgument("duplicate component name: " + bolt.name);
    }
    if (bolt.inputs.empty()) {
      return Status::InvalidArgument("bolt '" + bolt.name + "' has no inputs");
    }
    components.push_back(Component{bolt.name, false, bolt.parallelism, 0, {}});
  }
  for (const auto& bolt : topology.bolts) {
    const uint32_t to = by_name.at(bolt.name);
    for (const auto& [upstream, grouping] : bolt.inputs) {
      auto it = by_name.find(upstream);
      if (it == by_name.end()) {
        return Status::InvalidArgument("bolt '" + bolt.name +
                                       "' consumes unknown component '" +
                                       upstream + "'");
      }
      if (it->second == to) {
        return Status::InvalidArgument("bolt '" + bolt.name +
                                       "' cannot consume itself");
      }
      components[it->second].outputs.push_back(Edge{to, grouping});
    }
  }
  // Cycle check: DFS over the component graph.
  {
    enum class Mark : uint8_t { kWhite, kGray, kBlack };
    std::vector<Mark> marks(components.size(), Mark::kWhite);
    std::function<bool(uint32_t)> has_cycle = [&](uint32_t c) {
      marks[c] = Mark::kGray;
      for (const Edge& e : components[c].outputs) {
        if (marks[e.to_component] == Mark::kGray) return true;
        if (marks[e.to_component] == Mark::kWhite && has_cycle(e.to_component)) {
          return true;
        }
      }
      marks[c] = Mark::kBlack;
      return false;
    };
    for (uint32_t c = 0; c < components.size(); ++c) {
      if (marks[c] == Mark::kWhite && has_cycle(c)) {
        return Status::InvalidArgument("topology contains a cycle");
      }
    }
  }

  // --- Instantiate tasks. --------------------------------------------------
  std::vector<Task> tasks;
  for (uint32_t c = 0; c < components.size(); ++c) {
    components[c].first_task = static_cast<uint32_t>(tasks.size());
    for (uint32_t i = 0; i < components[c].parallelism; ++i) {
      Task task;
      task.component = c;
      task.index = i;
      if (components[c].is_spout) {
        task.spout = topology.spouts[c].factory(i);
        task.credits = options.max_pending_per_spout;
        if (task.spout == nullptr) {
          return Status::InvalidArgument("spout factory returned null");
        }
      } else {
        const auto& decl = topology.bolts[c - topology.spouts.size()];
        task.bolt = decl.factory(i);
        if (task.bolt == nullptr) {
          return Status::InvalidArgument("bolt factory returned null");
        }
        task.bolt->Prepare(i, components[c].parallelism);
      }
      tasks.push_back(std::move(task));
    }
  }
  // Partitioners: one per (task, outgoing edge); hash seed shared per edge so
  // all senders agree on candidate sets (Sec. III).
  for (Task& task : tasks) {
    const Component& comp = components[task.component];
    for (size_t e = 0; e < comp.outputs.size(); ++e) {
      const Edge& edge = comp.outputs[e];
      PartitionerOptions popt = edge.grouping.options;
      popt.num_workers = components[edge.to_component].parallelism;
      popt.hash_seed =
          options.hash_seed ^ (0x9e3779b97f4a7c15ULL * (task.component + 1)) ^
          (0x517cc1b727220a95ULL * (e + 1));
      auto partitioner = CreatePartitioner(edge.grouping.algorithm, popt);
      if (!partitioner.ok()) return partitioner.status();
      task.partitioners.push_back(std::move(partitioner.value()));
    }
  }

  // --- Event loop. ----------------------------------------------------------
  const double spout_service_s = options.spout_service_ms / 1e3;
  const double bolt_service_s = options.bolt_service_ms / 1e3;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<Root> roots;
  Histogram latency_ms(1 << 18, options.seed ^ 0xabcdULL);
  TopologyStats stats;
  double now_s = 0.0;
  double last_ack_s = 0.0;

  // Routes `tuple` along every outgoing edge of `task`; returns copies made.
  auto route_downstream = [&](Task& task, const TopologyTuple& tuple,
                              uint64_t root) {
    const Component& comp = components[task.component];
    uint64_t copies = 0;
    for (size_t e = 0; e < comp.outputs.size(); ++e) {
      const Edge& edge = comp.outputs[e];
      const uint32_t idx = task.partitioners[e]->Route(tuple.key);
      const uint32_t target = components[edge.to_component].first_task + idx;
      tasks[target].queue.push_back(InFlight{tuple, root});
      ++copies;
      if (!tasks[target].busy) {
        tasks[target].busy = true;
        events.push(Event{now_s + bolt_service_s, EventType::kTaskDone, target});
      }
    }
    return copies;
  };

  auto maybe_schedule_spout = [&](uint32_t task_id) {
    Task& task = tasks[task_id];
    if (task.busy || task.exhausted || task.credits == 0) return;
    task.busy = true;
    events.push(Event{now_s + spout_service_s, EventType::kSpoutEmit, task_id});
  };

  auto ack_root = [&](uint64_t root_id) {
    Root& root = roots[root_id];
    latency_ms.Add((now_s - root.emit_time_s) * 1e3);
    ++stats.roots_acked;
    last_ack_s = now_s;
    Task& spout_task = tasks[root.spout_task];
    ++spout_task.credits;
    maybe_schedule_spout(root.spout_task);
  };

  for (uint32_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].spout != nullptr) maybe_schedule_spout(t);
  }

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now_s = ev.time_s;
    Task& task = tasks[ev.task];

    if (ev.type == EventType::kSpoutEmit) {
      task.busy = false;
      TopologyTuple tuple;
      if (!task.spout->NextTuple(&tuple)) {
        task.exhausted = true;
        continue;
      }
      ++task.processed;
      ++stats.tuples_processed;
      --task.credits;
      roots.push_back(Root{now_s, 0, ev.task});
      const uint64_t root_id = roots.size() - 1;
      const uint64_t copies = route_downstream(task, tuple, root_id);
      roots[root_id].pending = copies;
      if (copies == 0) ack_root(root_id);  // spout with no consumers
      maybe_schedule_spout(ev.task);
      continue;
    }

    // kTaskDone: the head-of-queue tuple finishes processing at this bolt.
    SLB_CHECK(!task.queue.empty());
    const InFlight in_flight = task.queue.front();
    task.queue.pop_front();
    ++task.processed;
    ++stats.tuples_processed;
    if (options.max_tuples != 0 && stats.tuples_processed > options.max_tuples) {
      return Status::FailedPrecondition(
          "tuple budget exceeded; emission loop in topology?");
    }

    Collector collector;
    task.bolt->Execute(in_flight.tuple, &collector);
    Root& root = roots[in_flight.root];
    for (const TopologyTuple& out : collector.emitted) {
      root.pending += route_downstream(task, out, in_flight.root);
    }
    SLB_CHECK(root.pending > 0);
    if (--root.pending == 0) ack_root(in_flight.root);

    if (!task.queue.empty()) {
      events.push(Event{now_s + bolt_service_s, EventType::kTaskDone, ev.task});
    } else {
      task.busy = false;
    }
  }

  // --- Collect statistics. --------------------------------------------------
  stats.makespan_s = last_ack_s;
  stats.throughput_per_s =
      last_ack_s > 0 ? static_cast<double>(stats.roots_acked) / last_ack_s : 0.0;
  stats.latency_avg_ms = latency_ms.mean();
  stats.latency_p50_ms = latency_ms.p50();
  stats.latency_p95_ms = latency_ms.p95();
  stats.latency_p99_ms = latency_ms.p99();

  for (const Component& comp : components) {
    ComponentStats cs;
    cs.name = comp.name;
    uint64_t total = 0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      total += tasks[comp.first_task + i].processed;
    }
    cs.tuples_processed = total;
    cs.task_loads.resize(comp.parallelism, 0.0);
    double max_load = 0.0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      const Task& task = tasks[comp.first_task + i];
      cs.task_loads[i] = total > 0 ? static_cast<double>(task.processed) /
                                         static_cast<double>(total)
                                   : 0.0;
      max_load = std::max(max_load, cs.task_loads[i]);
      if (task.bolt != nullptr) cs.state_entries += task.bolt->StateEntries();
    }
    cs.imbalance =
        total > 0 ? max_load - 1.0 / static_cast<double>(comp.parallelism) : 0.0;
    stats.components.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace slb
