#include "slb/dspe/topology.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>

#include "slb/common/logging.h"
#include "slb/dspe/plan.h"

namespace slb {

TopologyBuilder& TopologyBuilder::AddSpout(const std::string& name,
                                           SpoutFactory factory,
                                           uint32_t parallelism) {
  topology_.spouts.push_back(SpoutDecl{name, std::move(factory), parallelism});
  return *this;
}

TopologyBuilder& TopologyBuilder::AddBolt(const std::string& name,
                                          BoltFactory factory,
                                          uint32_t parallelism) {
  topology_.bolts.push_back(BoltDecl{name, std::move(factory), parallelism, {}});
  return *this;
}

TopologyBuilder& TopologyBuilder::Input(const std::string& upstream,
                                        Grouping grouping) {
  SLB_CHECK(!topology_.bolts.empty()) << "Input() requires a bolt; call AddBolt";
  topology_.bolts.back().inputs.emplace_back(upstream, grouping);
  return *this;
}

namespace {

// ---------------------------------------------------------------------------
// Flattened runtime structures (the plan supplies components and task ids).

struct InFlight {
  TopologyTuple tuple;
  uint64_t root = 0;  // index into root bookkeeping
};

struct Task {
  uint32_t component = 0;
  uint32_t index = 0;  // instance index within the component
  bool busy = false;
  std::deque<InFlight> queue;
  // One sender-local partitioner per outgoing edge of the component.
  std::vector<std::unique_ptr<StreamPartitioner>> partitioners;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  uint64_t processed = 0;
  // Spout-only:
  uint32_t credits = 0;
  bool exhausted = false;
};

struct Root {
  double emit_time_s = 0.0;
  uint64_t pending = 0;
  uint32_t spout_task = 0;
};

enum class EventType : uint8_t { kSpoutEmit, kTaskDone };

struct Event {
  double time_s;
  EventType type;
  uint32_t task;
  bool operator>(const Event& other) const { return time_s > other.time_s; }
};

class Collector final : public OutputCollector {
 public:
  void Emit(const TopologyTuple& tuple) override { emitted.push_back(tuple); }
  std::vector<TopologyTuple> emitted;
};

}  // namespace

Result<TopologyStats> ExecuteTopology(const TopologyBuilder::Topology& topology,
                                      const TopologyOptions& options) {
  if (options.spout_service_ms <= 0 || options.bolt_service_ms <= 0) {
    return Status::InvalidArgument("service times must be positive");
  }
  if (options.max_pending_per_spout < 1) {
    return Status::InvalidArgument("max_pending_per_spout must be >= 1");
  }

  auto planned = PlanTopology(topology);
  if (!planned.ok()) return planned.status();
  const TopologyPlan& plan = planned.value();
  const std::vector<PlannedComponent>& components = plan.components;

  // --- Instantiate tasks. --------------------------------------------------
  std::vector<Task> tasks;
  tasks.reserve(plan.num_tasks);
  for (uint32_t c = 0; c < components.size(); ++c) {
    for (uint32_t i = 0; i < components[c].parallelism; ++i) {
      Task task;
      task.component = c;
      task.index = i;
      if (components[c].is_spout) {
        task.spout = topology.spouts[components[c].decl_index].factory(i);
        task.credits = options.max_pending_per_spout;
        if (task.spout == nullptr) {
          return Status::InvalidArgument("spout factory returned null");
        }
      } else {
        const auto& decl = topology.bolts[components[c].decl_index];
        task.bolt = decl.factory(i);
        if (task.bolt == nullptr) {
          return Status::InvalidArgument("bolt factory returned null");
        }
        task.bolt->Prepare(i, components[c].parallelism);
      }
      tasks.push_back(std::move(task));
    }
  }
  // Partitioners: one per (task, outgoing edge); hash seed shared per edge so
  // all senders agree on candidate sets (Sec. III).
  for (Task& task : tasks) {
    auto partitioners =
        MakeEdgePartitioners(plan, task.component, options.hash_seed);
    if (!partitioners.ok()) return partitioners.status();
    task.partitioners = std::move(partitioners.value());
  }

  // --- Event loop. ----------------------------------------------------------
  const double spout_service_s = options.spout_service_ms / 1e3;
  const double bolt_service_s = options.bolt_service_ms / 1e3;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<Root> roots;
  Histogram latency_ms(1 << 18, options.seed ^ 0xabcdULL);
  TopologyStats stats;
  double now_s = 0.0;
  double last_ack_s = 0.0;

  // Routes `tuple` along every outgoing edge of `task`; returns copies made.
  auto route_downstream = [&](Task& task, const TopologyTuple& tuple,
                              uint64_t root) {
    const PlannedComponent& comp = components[task.component];
    uint64_t copies = 0;
    for (size_t e = 0; e < comp.outputs.size(); ++e) {
      const PlannedEdge& edge = comp.outputs[e];
      const uint32_t idx = task.partitioners[e]->Route(tuple.key);
      const uint32_t target = components[edge.to_component].first_task + idx;
      tasks[target].queue.push_back(InFlight{tuple, root});
      ++copies;
      if (!tasks[target].busy) {
        tasks[target].busy = true;
        events.push(Event{now_s + bolt_service_s, EventType::kTaskDone, target});
      }
    }
    return copies;
  };

  auto maybe_schedule_spout = [&](uint32_t task_id) {
    Task& task = tasks[task_id];
    if (task.busy || task.exhausted || task.credits == 0) return;
    task.busy = true;
    events.push(Event{now_s + spout_service_s, EventType::kSpoutEmit, task_id});
  };

  auto ack_root = [&](uint64_t root_id) {
    Root& root = roots[root_id];
    latency_ms.Add((now_s - root.emit_time_s) * 1e3);
    ++stats.roots_acked;
    last_ack_s = now_s;
    Task& spout_task = tasks[root.spout_task];
    ++spout_task.credits;
    maybe_schedule_spout(root.spout_task);
  };

  for (uint32_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].spout != nullptr) maybe_schedule_spout(t);
  }

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now_s = ev.time_s;
    Task& task = tasks[ev.task];

    if (ev.type == EventType::kSpoutEmit) {
      task.busy = false;
      TopologyTuple tuple;
      if (!task.spout->NextTuple(&tuple)) {
        task.exhausted = true;
        continue;
      }
      ++task.processed;
      ++stats.tuples_processed;
      --task.credits;
      roots.push_back(Root{now_s, 0, ev.task});
      const uint64_t root_id = roots.size() - 1;
      const uint64_t copies = route_downstream(task, tuple, root_id);
      roots[root_id].pending = copies;
      if (copies == 0) ack_root(root_id);  // spout with no consumers
      maybe_schedule_spout(ev.task);
      continue;
    }

    // kTaskDone: the head-of-queue tuple finishes processing at this bolt.
    SLB_CHECK(!task.queue.empty());
    const InFlight in_flight = task.queue.front();
    task.queue.pop_front();
    ++task.processed;
    ++stats.tuples_processed;
    if (options.max_tuples != 0 && stats.tuples_processed > options.max_tuples) {
      return Status::FailedPrecondition(
          "tuple budget exceeded; emission loop in topology?");
    }

    Collector collector;
    task.bolt->Execute(in_flight.tuple, &collector);
    Root& root = roots[in_flight.root];
    for (const TopologyTuple& out : collector.emitted) {
      root.pending += route_downstream(task, out, in_flight.root);
    }
    SLB_CHECK(root.pending > 0);
    if (--root.pending == 0) ack_root(in_flight.root);

    if (!task.queue.empty()) {
      events.push(Event{now_s + bolt_service_s, EventType::kTaskDone, ev.task});
    } else {
      task.busy = false;
    }
  }

  // --- Collect statistics. --------------------------------------------------
  stats.makespan_s = last_ack_s;
  stats.throughput_per_s =
      last_ack_s > 0 ? static_cast<double>(stats.roots_acked) / last_ack_s : 0.0;
  stats.latency_avg_ms = latency_ms.mean();
  stats.latency_p50_ms = latency_ms.p50();
  stats.latency_p95_ms = latency_ms.p95();
  stats.latency_p99_ms = latency_ms.p99();
  stats.latency_max_ms = latency_ms.max();

  for (const PlannedComponent& comp : components) {
    ComponentStats cs;
    cs.name = comp.name;
    uint64_t total = 0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      total += tasks[comp.first_task + i].processed;
    }
    cs.tuples_processed = total;
    cs.task_loads.resize(comp.parallelism, 0.0);
    double max_load = 0.0;
    for (uint32_t i = 0; i < comp.parallelism; ++i) {
      const Task& task = tasks[comp.first_task + i];
      cs.task_loads[i] = total > 0 ? static_cast<double>(task.processed) /
                                         static_cast<double>(total)
                                   : 0.0;
      max_load = std::max(max_load, cs.task_loads[i]);
      if (task.bolt != nullptr) cs.state_entries += task.bolt->StateEntries();
    }
    cs.imbalance =
        total > 0 ? max_load - 1.0 / static_cast<double>(comp.parallelism) : 0.0;
    stats.components.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace slb
