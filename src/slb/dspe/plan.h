// Topology validation and flattening, shared by both execution engines.
//
// ExecuteTopology (the discrete-event engine in topology.cc) and
// ExecuteTopologyThreaded (the real multi-threaded runtime in runtime.cc)
// must agree exactly on component order, task numbering, and per-edge hash
// seeds — the determinism cross-check in tests/dspe/runtime_test.cc compares
// their per-task load vectors, which only works when both engines derive
// routing state from the same plan.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/status.h"
#include "slb/core/partitioner.h"
#include "slb/dspe/topology.h"

namespace slb {

struct PlannedEdge {
  uint32_t to_component = 0;  // index into TopologyPlan::components
  Grouping grouping;
};

struct PlannedComponent {
  std::string name;
  bool is_spout = false;
  uint32_t parallelism = 0;
  uint32_t first_task = 0;   // global task id of instance 0
  uint32_t decl_index = 0;   // index into topology.spouts or topology.bolts
  std::vector<PlannedEdge> outputs;
};

/// The flattened component DAG: spouts first (in declaration order), then
/// bolts, with contiguous global task ids.
struct TopologyPlan {
  std::vector<PlannedComponent> components;
  uint32_t num_tasks = 0;
  uint32_t num_spout_components = 0;

  const PlannedComponent& task_component(uint32_t task) const;
};

/// Validates the declarative topology (names, parallelism, inputs, acyclic)
/// and flattens it. Engine-specific knobs (service times, queue sizes) are
/// validated by the engines themselves.
Result<TopologyPlan> PlanTopology(const TopologyBuilder::Topology& topology);

/// The per-edge hash seed every sender of one edge shares (Sec. III: all
/// senders must agree on a key's candidate worker set).
uint64_t EdgeHashSeed(uint64_t base_seed, uint32_t component, size_t edge_index);

/// Builds the sender-local partitioners for one task of `component`: one per
/// outgoing edge, each seeded with EdgeHashSeed and sized to the destination
/// component's parallelism.
Result<std::vector<std::unique_ptr<StreamPartitioner>>> MakeEdgePartitioners(
    const TopologyPlan& plan, uint32_t component, uint64_t base_hash_seed);

/// The spout/bolt pair a live rescale schedule operates on.
struct ElasticTargetPlan {
  uint32_t spout_component = 0;
  uint32_t bolt_component = 0;
};

/// Resolves the component a ThreadedRescaleSchedule targets. Live rescale is
/// supported on exactly the paper's simulation DAG: one spout component
/// feeding one sink bolt component over a single partitioned edge (the shape
/// RunPartitionSimulation models, which keeps the replayed migration
/// accounting byte-comparable to the simulator). `component` may be empty
/// (meaning "the one bolt") or must name that bolt.
Result<ElasticTargetPlan> ResolveElasticTarget(const TopologyPlan& plan,
                                               const std::string& component);

}  // namespace slb
