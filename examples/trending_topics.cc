// Trending topics: a realistic stateful-aggregation topology.
//
// The intro of the paper motivates load balancing with aggregation-style
// applications (statistics, frequent patterns). This example builds one:
// sources emit words from a skewed vocabulary, workers keep per-word
// counters, and a final reconciliation step merges the d partial states of
// each word — exactly the "aggregation cost proportional to d" the paper's
// Sec. IV-B discusses.
//
//   $ ./examples/trending_topics [--algo dc|pkg|kg|wc] [--workers 20]
//
// What it shows:
//   1. splitting a hot key across d workers keeps every worker's queue
//      (here: message count) bounded;
//   2. partial counts merge back to exact global counts (correctness);
//   3. per-worker state size = the memory overhead the paper models.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/flags.h"
#include "slb/core/partitioner.h"
#include "slb/workload/datasets.h"

namespace {

// A tiny vocabulary generator: rank -> "word<rank>".
std::string WordForKey(uint64_t key) { return "word" + std::to_string(key); }

}  // namespace

int main(int argc, char** argv) {
  std::string algo_name = "dc";
  int64_t workers = 20;
  int64_t messages = 400000;
  int64_t sources = 4;
  double skew = 1.5;
  slb::FlagSet flags("trending topics with partial aggregation");
  flags.AddString("algo", &algo_name, "kg | pkg | dc | wc | rr | sg");
  flags.AddInt64("workers", &workers, "worker (counter shard) count");
  flags.AddInt64("messages", &messages, "number of word occurrences");
  flags.AddInt64("sources", &sources, "source count");
  flags.AddDouble("skew", &skew, "vocabulary Zipf exponent");
  if (slb::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  auto kind = slb::ParseAlgorithmKind(algo_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
    return 2;
  }

  slb::PartitionerOptions options;
  options.num_workers = static_cast<uint32_t>(workers);
  options.hash_seed = 99;
  std::vector<std::unique_ptr<slb::StreamPartitioner>> senders;
  for (int64_t i = 0; i < sources; ++i) {
    auto sender = slb::CreatePartitioner(kind.value(), options);
    if (!sender.ok()) {
      std::fprintf(stderr, "error: %s\n", sender.status().ToString().c_str());
      return 1;
    }
    senders.push_back(std::move(sender.value()));
  }

  // Worker state: per-worker word -> partial count (the operator state whose
  // replication the paper's memory analysis is about).
  std::vector<std::map<uint64_t, uint64_t>> worker_state(
      static_cast<size_t>(workers));
  std::vector<uint64_t> worker_messages(static_cast<size_t>(workers), 0);

  const slb::DatasetSpec spec = slb::MakeZipfSpec(
      skew, 50000, static_cast<uint64_t>(messages), /*seed=*/3);
  auto stream = slb::MakeGenerator(spec);
  std::map<uint64_t, uint64_t> truth;  // oracle for the correctness check

  for (int64_t i = 0; i < messages; ++i) {
    const uint64_t word = stream->NextKey();
    const uint32_t worker = senders[i % sources]->Route(word);
    ++worker_state[worker][word];
    ++worker_messages[worker];
    ++truth[word];
  }

  // Reconciliation: merge the partial counters (the aggregation phase every
  // scheme, including PKG, needs — Sec. IV-B).
  std::map<uint64_t, uint64_t> merged;
  std::map<uint64_t, int> shards_per_word;
  size_t total_state_entries = 0;
  for (const auto& state : worker_state) {
    total_state_entries += state.size();
    for (const auto& [word, count] : state) {
      merged[word] += count;
      shards_per_word[word] += 1;
    }
  }

  // Correctness: merged counts must equal the oracle exactly.
  if (merged != truth) {
    std::fprintf(stderr, "BUG: merged counts diverge from ground truth!\n");
    return 1;
  }

  // Report: top words, queue pressure, and state replication.
  std::vector<std::pair<uint64_t, uint64_t>> top(merged.begin(), merged.end());
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::printf("algorithm        : %s\n", senders[0]->name().c_str());
  std::printf("messages         : %lld across %lld workers\n",
              static_cast<long long>(messages), static_cast<long long>(workers));
  const uint64_t max_q =
      *std::max_element(worker_messages.begin(), worker_messages.end());
  std::printf("hottest worker   : %.2f%% of the stream (ideal %.2f%%)\n",
              100.0 * static_cast<double>(max_q) / static_cast<double>(messages),
              100.0 / static_cast<double>(workers));
  std::printf("state entries    : %zu total (vs %zu distinct words; the\n"
              "                   difference is the replication the paper's\n"
              "                   memory model charges)\n",
              total_state_entries, merged.size());
  std::printf("top-5 trending   :\n");
  for (int i = 0; i < 5 && i < static_cast<int>(top.size()); ++i) {
    std::printf("  %-10s count=%-8llu shards=%d\n",
                WordForKey(top[i].first).c_str(),
                static_cast<unsigned long long>(top[i].second),
                shards_per_word[top[i].first]);
  }
  std::printf("\nAll partial states merged to exact totals — splitting hot\n"
              "words across workers trades a d-way merge for a flat load.\n");
  return 0;
}
