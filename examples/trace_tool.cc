// Trace tool: record, inspect, and replay workload traces.
//
//   $ ./examples/trace_tool record --dataset wp --scale 0.01 --out wp.slbt
//   $ ./examples/trace_tool stats wp.slbt
//   $ ./examples/trace_tool replay wp.slbt --algo dc --workers 50
//
// Recording freezes a synthetic dataset into a file so experiments are
// byte-identical across machines and so real traces (converted to the text
// format, one key per line) can drive every simulator in this library.

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "slb/common/flags.h"
#include "slb/common/string_util.h"
#include "slb/sim/partition_simulator.h"
#include "slb/workload/datasets.h"
#include "slb/workload/trace.h"

namespace {

int Fail(const slb::Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int RecordCommand(const std::string& dataset, double scale, double skew,
                  int64_t keys, int64_t messages, const std::string& out) {
  slb::DatasetSpec spec;
  if (dataset == "wp") {
    spec = slb::MakeWikipediaSpec(scale);
  } else if (dataset == "tw") {
    spec = slb::MakeTwitterSpec(scale);
  } else if (dataset == "ct") {
    spec = slb::MakeCashtagsSpec(scale);
  } else if (dataset == "zf") {
    spec = slb::MakeZipfSpec(skew, static_cast<uint64_t>(keys),
                             static_cast<uint64_t>(messages));
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (wp|tw|ct|zf)\n", dataset.c_str());
    return 2;
  }
  auto gen = slb::MakeGenerator(spec);
  const slb::Trace trace = slb::RecordTrace(gen.get());
  if (slb::Status st = slb::WriteTrace(out, trace); !st.ok()) return Fail(st);
  std::printf("recorded %s: %zu messages, key space %llu -> %s\n",
              spec.name.c_str(), trace.keys.size(),
              static_cast<unsigned long long>(trace.num_keys), out.c_str());
  return 0;
}

int StatsCommand(const std::string& path) {
  auto trace = slb::ReadTrace(path);
  if (!trace.ok()) return Fail(trace.status());
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t key : trace->keys) ++counts[key];
  std::vector<uint64_t> freq;
  freq.reserve(counts.size());
  for (const auto& [key, f] : counts) freq.push_back(f);
  std::sort(freq.rbegin(), freq.rend());
  const double m = static_cast<double>(trace->keys.size());
  std::printf("messages        : %s\n", slb::HumanCount(trace->keys.size()).c_str());
  std::printf("distinct keys   : %s\n", slb::HumanCount(counts.size()).c_str());
  for (size_t r = 0; r < std::min<size_t>(5, freq.size()); ++r) {
    std::printf("p%zu              : %.4f%%\n", r + 1, 100.0 * freq[r] / m);
  }
  double head_mass = 0;
  for (size_t r = 0; r < std::min<size_t>(100, freq.size()); ++r) {
    head_mass += static_cast<double>(freq[r]);
  }
  std::printf("top-100 mass    : %.2f%%\n", 100.0 * head_mass / m);
  return 0;
}

int ReplayCommand(const std::string& path, const std::string& algo_name,
                  int64_t workers, int64_t sources) {
  auto trace = slb::ReadTrace(path);
  if (!trace.ok()) return Fail(trace.status());
  auto kind = slb::ParseAlgorithmKind(algo_name);
  if (!kind.ok()) return Fail(kind.status());

  auto gen = slb::MakeTraceGenerator("replay", std::move(trace.value()));
  slb::PartitionSimConfig config;
  config.algorithm = kind.value();
  config.partitioner.num_workers = static_cast<uint32_t>(workers);
  config.partitioner.hash_seed = 42;
  config.num_sources = static_cast<uint32_t>(sources);
  config.track_memory = true;
  auto result = slb::RunPartitionSimulation(config, gen.get());
  if (!result.ok()) return Fail(result.status());
  std::printf("algorithm       : %s\n", slb::AlgorithmKindName(kind.value()).c_str());
  std::printf("imbalance I(m)  : %.3e\n", result->final_imbalance);
  std::printf("head messages   : %.2f%%\n",
              100.0 * static_cast<double>(result->head_messages) /
                  static_cast<double>(result->total_messages));
  std::printf("memory entries  : %llu distinct (key,worker) pairs\n",
              static_cast<unsigned long long>(result->memory_entries));
  std::printf("head choices d  : %u\n", result->final_head_choices);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "zf";
  std::string out = "stream.slbt";
  std::string algo = "dc";
  double scale = 0.01;
  double skew = 1.4;
  int64_t keys = 10000;
  int64_t messages = 1000000;
  int64_t workers = 50;
  int64_t sources = 5;
  slb::FlagSet flags(
      "trace tool: record | stats <file> | replay <file>\n"
      "subcommand is the first positional argument");
  flags.AddString("dataset", &dataset, "record: wp | tw | ct | zf");
  flags.AddString("out", &out, "record: output path");
  flags.AddDouble("scale", &scale, "record: dataset scale factor");
  flags.AddDouble("skew", &skew, "record (zf): Zipf exponent");
  flags.AddInt64("keys", &keys, "record (zf): key cardinality");
  flags.AddInt64("messages", &messages, "record (zf): stream length");
  flags.AddString("algo", &algo, "replay: grouping algorithm");
  flags.AddInt64("workers", &workers, "replay: worker count");
  flags.AddInt64("sources", &sources, "replay: source count");
  if (slb::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;
  const auto& pos = flags.positional();
  if (pos.empty()) {
    std::fputs(flags.Usage().c_str(), stderr);
    return 2;
  }
  if (pos[0] == "record") {
    return RecordCommand(dataset, scale, skew, keys, messages, out);
  }
  if (pos[0] == "stats" && pos.size() >= 2) return StatsCommand(pos[1]);
  if (pos[0] == "replay" && pos.size() >= 2) {
    return ReplayCommand(pos[1], algo, workers, sources);
  }
  std::fputs(flags.Usage().c_str(), stderr);
  return 2;
}
