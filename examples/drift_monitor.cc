// Drift monitor: heavy-hitter tracking and balance under concept drift.
//
// Replays a cashtag-like stream (the paper's CT workload: the identity of
// the hot keys changes over time) through D-Choices, and each "hour":
//   * merges the per-source SpaceSaving sketches into a global view
//     (distributed heavy hitters, Berinde et al. [12]);
//   * prints the current top cashtags and the cumulative imbalance.
//
//   $ ./examples/drift_monitor [--hours 24] [--workers 20]
//
// What it shows: the sketch follows the drifting head, and the balance
// stays tight even as yesterday's hot key goes cold.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "slb/common/flags.h"
#include "slb/core/d_choices.h"
#include "slb/sim/load_tracker.h"
#include "slb/sketch/space_saving.h"
#include "slb/workload/datasets.h"

namespace {

std::string Cashtag(uint64_t key) {
  // Map key ids to fake ticker symbols: $AAAA, $AAAB, ...
  std::string tag = "$";
  for (int i = 0; i < 4; ++i) {
    tag += static_cast<char>('A' + (key >> (i * 4)) % 26);
  }
  return tag;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t hours = 24;
  int64_t workers = 20;
  int64_t sources = 4;
  slb::FlagSet flags("heavy-hitter drift monitor on a CT-like stream");
  flags.AddInt64("hours", &hours, "stream epochs to replay");
  flags.AddInt64("workers", &workers, "worker count");
  flags.AddInt64("sources", &sources, "source count");
  if (slb::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  slb::DatasetSpec ct = slb::MakeCashtagsSpec(1.0);
  ct.num_epochs = static_cast<uint64_t>(hours);
  auto stream = slb::MakeGenerator(ct);

  slb::PartitionerOptions options;
  options.num_workers = static_cast<uint32_t>(workers);
  options.hash_seed = 7;
  std::vector<std::unique_ptr<slb::DChoices>> senders;
  for (int64_t i = 0; i < sources; ++i) {
    senders.push_back(std::make_unique<slb::DChoices>(options));
  }

  slb::LoadTracker tracker(static_cast<uint32_t>(workers));
  const uint64_t per_hour = ct.num_messages / static_cast<uint64_t>(hours);

  std::printf("%5s %28s %14s %6s\n", "hour", "top cashtags (global sketch)",
              "imbalance", "d");
  for (int64_t hour = 0; hour < hours; ++hour) {
    for (uint64_t i = 0; i < per_hour; ++i) {
      const uint64_t key = stream->NextKey();
      slb::DChoices& sender = *senders[i % senders.size()];
      const uint32_t worker = sender.Route(key);
      tracker.Record(worker, key, sender.last_was_head());
    }

    // Distributed heavy hitters: merge every sender's local sketch into one
    // global summary, then read the current head. The downcast is safe
    // because options.sketch defaults to kSpaceSaving (checked below).
    slb::SpaceSaving global(1024);
    for (const auto& sender : senders) {
      const slb::FrequencyEstimator& sketch = sender->sketch();
      if (sketch.name() != "spacesaving") {
        std::fprintf(stderr, "unexpected sketch type: %s\n",
                     sketch.name().c_str());
        return 1;
      }
      global.Merge(static_cast<const slb::SpaceSaving&>(sketch));
    }
    const auto top = global.HeavyHitters(options.theta());
    std::string tags;
    for (size_t i = 0; i < top.size() && i < 3; ++i) {
      if (i > 0) tags += " ";
      tags += Cashtag(top[i].key);
    }
    std::printf("%5lld %28s %14.2e %6u\n", static_cast<long long>(hour), tags.c_str(),
                tracker.Imbalance(), senders[0]->head_choices());
  }
  std::printf("\nThe sketch merge gives every hour's true hot set despite the\n"
              "identity churn, and the cumulative imbalance stays bounded.\n");
  return 0;
}
