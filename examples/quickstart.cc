// Quickstart: route a skewed stream with D-Choices and compare its load
// balance against PKG — the library's 60-second tour.
//
//   $ ./examples/quickstart [--workers 50] [--skew 1.6] [--messages 500k]
//
// What it shows:
//   1. create sender-local partitioners (one per source, shared hash seed);
//   2. route messages and let the LoadTracker measure ground truth;
//   3. read the imbalance and the number of choices D-Choices settled on.

#include <cstdio>
#include <memory>
#include <vector>

#include "slb/common/flags.h"
#include "slb/core/partitioner.h"
#include "slb/sim/load_tracker.h"
#include "slb/workload/datasets.h"

int main(int argc, char** argv) {
  int64_t workers = 50;
  int64_t messages = 500000;
  int64_t sources = 5;
  double skew = 1.6;
  slb::FlagSet flags("slb quickstart: D-Choices vs PKG on a Zipf stream");
  flags.AddInt64("workers", &workers, "number of downstream workers (n)");
  flags.AddInt64("messages", &messages, "stream length");
  flags.AddInt64("sources", &sources, "number of upstream sources (s)");
  flags.AddDouble("skew", &skew, "Zipf exponent of the key distribution");
  if (slb::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  // A synthetic workload: Zipf(skew) over 10k keys. Real applications would
  // replace this with their own keyed stream.
  const slb::DatasetSpec spec = slb::MakeZipfSpec(
      skew, 10000, static_cast<uint64_t>(messages), /*seed=*/7);
  std::printf("workload: Zipf z=%.2f, |K|=%llu, m=%lld (p1 = %.1f%% of the "
              "stream)\n",
              skew, static_cast<unsigned long long>(spec.num_keys),
              static_cast<long long>(messages),
              100 * spec.target_p1);

  for (const slb::AlgorithmKind algo :
       {slb::AlgorithmKind::kPkg, slb::AlgorithmKind::kDChoices}) {
    // One partitioner per source. All share the hash seed, so a key's
    // candidate workers agree across sources; load estimates stay local.
    slb::PartitionerOptions options;
    options.num_workers = static_cast<uint32_t>(workers);
    options.hash_seed = 42;
    std::vector<std::unique_ptr<slb::StreamPartitioner>> senders;
    for (int64_t i = 0; i < sources; ++i) {
      auto sender = slb::CreatePartitioner(algo, options);
      if (!sender.ok()) {
        std::fprintf(stderr, "error: %s\n", sender.status().ToString().c_str());
        return 1;
      }
      senders.push_back(std::move(sender.value()));
    }

    auto stream = slb::MakeGenerator(spec);
    slb::LoadTracker tracker(static_cast<uint32_t>(workers));
    for (int64_t i = 0; i < messages; ++i) {
      const uint64_t key = stream->NextKey();
      slb::StreamPartitioner& sender = *senders[i % sources];
      const uint32_t worker = sender.Route(key);
      tracker.Record(worker, key, sender.last_was_head());
    }

    std::printf("%-4s imbalance I(m) = %.2e   head choices d = %u\n",
                senders[0]->name().c_str(), tracker.Imbalance(),
                senders[0]->head_choices());
  }
  std::printf("\nD-Choices detects the hot keys online (SpaceSaving) and gives\n"
              "them just enough choices to flatten the load; everything else\n"
              "keeps PKG's two-choice locality.\n");
  return 0;
}
