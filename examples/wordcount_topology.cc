// Streaming word count on the Storm-like topology API — the paper's Q4
// experiment as an application you can modify.
//
//   sentences (spout, s tasks)
//        |  shuffle
//   splitter (bolt): sentence -> words
//        |  <grouping under test>
//   counter (bolt, n tasks): word -> running count
//
//   $ ./examples/wordcount_topology [--grouping dc] [--counters 20] [--skew 1.6]
//
// What it shows: the grouping on the splitter->counter edge is the ONLY
// thing that changes, and it alone decides throughput, tail latency, and
// state replication — the paper's Figs. 13-14 in miniature.

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "slb/common/flags.h"
#include "slb/common/rng.h"
#include "slb/dspe/topology.h"
#include "slb/workload/zipf.h"

namespace {

// Emits "sentences": a sentence id whose words are drawn downstream.
class SentenceSpout final : public slb::Spout {
 public:
  SentenceSpout(uint64_t count, uint64_t seed) : remaining_(count), rng_(seed) {}

  bool NextTuple(slb::TopologyTuple* out) override {
    if (remaining_ == 0) return false;
    --remaining_;
    out->key = rng_.Next();  // opaque sentence id
    out->value = 4;          // words per sentence
    return true;
  }

 private:
  uint64_t remaining_;
  slb::Rng rng_;
};

// Splits a sentence into `value` words drawn from a Zipf vocabulary.
class SplitterBolt final : public slb::Bolt {
 public:
  SplitterBolt(double z, uint64_t vocabulary, uint64_t seed)
      : zipf_(z, vocabulary), rng_(seed) {}

  void Execute(const slb::TopologyTuple& tuple,
               slb::OutputCollector* out) override {
    for (uint64_t w = 0; w < tuple.value; ++w) {
      out->Emit(slb::TopologyTuple{zipf_.Sample(&rng_), 1});
    }
  }

 private:
  slb::ZipfDistribution zipf_;
  slb::Rng rng_;
};

// Keeps per-word counts (the stateful operator the groupings balance).
class CounterBolt final : public slb::Bolt {
 public:
  void Execute(const slb::TopologyTuple& tuple, slb::OutputCollector*) override {
    counts_[tuple.key] += tuple.value;
  }
  size_t StateEntries() const override { return counts_.size(); }

 private:
  std::map<uint64_t, uint64_t> counts_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string grouping_name = "dc";
  int64_t counters = 20;
  int64_t splitters = 4;
  int64_t spouts = 2;
  int64_t sentences = 20000;
  double skew = 1.6;
  slb::FlagSet flags("word count topology (paper Q4 in miniature)");
  flags.AddString("grouping", &grouping_name,
                  "splitter->counter grouping: kg|sg|pkg|dc|wc|rr");
  flags.AddInt64("counters", &counters, "counter bolt parallelism");
  flags.AddInt64("splitters", &splitters, "splitter bolt parallelism");
  flags.AddInt64("spouts", &spouts, "spout parallelism");
  flags.AddInt64("sentences", &sentences, "sentences to stream");
  flags.AddDouble("skew", &skew, "vocabulary Zipf exponent");
  if (slb::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  auto kind = slb::ParseAlgorithmKind(grouping_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
    return 2;
  }
  slb::Grouping grouping;
  grouping.algorithm = kind.value();

  const uint64_t per_spout =
      static_cast<uint64_t>(sentences) / static_cast<uint64_t>(spouts);
  slb::TopologyBuilder builder;
  builder.AddSpout("sentences", [&](uint32_t i) {
    return std::make_unique<SentenceSpout>(per_spout, 100 + i);
  }, static_cast<uint32_t>(spouts));
  builder.AddBolt("split", [&](uint32_t i) {
    return std::make_unique<SplitterBolt>(skew, 50000, 200 + i);
  }, static_cast<uint32_t>(splitters)).Input("sentences", slb::Grouping::Shuffle());
  builder.AddBolt("count", [&](uint32_t) {
    return std::make_unique<CounterBolt>();
  }, static_cast<uint32_t>(counters)).Input("split", grouping);

  slb::TopologyOptions options;
  options.spout_service_ms = 0.05;
  options.bolt_service_ms = 1.0;  // the paper's 1 ms/tuple CPU cost
  options.max_pending_per_spout = 70;

  auto stats = slb::ExecuteTopology(builder.Build(), options);
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("grouping on split->count : %s\n", grouping_name.c_str());
  std::printf("sentences acked          : %llu (%.0f trees/s)\n",
              static_cast<unsigned long long>(stats->roots_acked),
              stats->throughput_per_s);
  std::printf("tree latency p50/p99     : %.1f / %.1f ms\n",
              stats->latency_p50_ms, stats->latency_p99_ms);
  for (const slb::ComponentStats& comp : stats->components) {
    std::printf("component %-10s load imbalance %.2e", comp.name.c_str(),
                comp.imbalance);
    if (comp.state_entries > 0) {
      std::printf("  state entries %zu", comp.state_entries);
    }
    std::printf("\n");
  }
  std::printf("\nSwap --grouping between kg, pkg and dc to watch the counter\n"
              "imbalance, tail latency and state replication trade off.\n");
  return 0;
}
