// Capacity planner: size a deployment before launching it.
//
// Given a workload profile (Zipf exponent or a recorded trace) and a target
// deployment size, this tool answers the questions an operator asks before
// enabling D-Choices (from Sec. III-IV of the paper):
//   * how many keys fall in the head at theta = 1/(5n)?
//   * how many choices d will D-Choices grant them?
//   * what memory overhead vs PKG / savings vs SG does that imply?
// It then *validates* the analytic plan by simulating PKG, D-Choices, and
// W-Choices on the workload for every requested size via the scenario-sweep
// engine, reporting the measured final imbalance I(m) next to the plan.
//
//   $ ./examples/capacity_planner --skew 1.4 --workers 5,10,50,100
//   $ ./examples/capacity_planner --trace mystream.slbt --workers 80

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "slb/analysis/choices.h"
#include "slb/analysis/memory_model.h"
#include "slb/common/flags.h"
#include "slb/common/string_util.h"
#include "slb/sim/sweep.h"
#include "slb/workload/trace.h"
#include "slb/workload/zipf.h"

namespace {

// Head probabilities + frequency table from a recorded trace.
struct TraceProfile {
  std::vector<double> sorted_probs;  // descending
  slb::FrequencyTable counts;
  uint64_t messages = 0;
};

TraceProfile ProfileFromTrace(const slb::Trace& trace) {
  TraceProfile profile;
  profile.counts.assign(trace.num_keys, 0);
  for (uint64_t key : trace.keys) ++profile.counts[key];
  profile.messages = trace.keys.size();
  profile.sorted_probs.reserve(trace.num_keys);
  for (uint64_t f : profile.counts) {
    if (f > 0) {
      profile.sorted_probs.push_back(static_cast<double>(f) /
                                     static_cast<double>(profile.messages));
    }
  }
  std::sort(profile.sorted_probs.begin(), profile.sorted_probs.end(),
            std::greater<double>());
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  double skew = 1.4;
  int64_t keys = 10000;
  int64_t messages = 1000000;
  int64_t sim_messages = 200000;
  int64_t seed = 42;
  int64_t runs = 1;
  int64_t threads = 0;
  double epsilon = 1e-4;
  std::string workers_csv = "5,10,50,100";
  std::string trace_path;
  slb::FlagSet flags("D-Choices capacity planner");
  flags.AddDouble("skew", &skew, "Zipf exponent (ignored with --trace)");
  flags.AddInt64("keys", &keys, "key cardinality (ignored with --trace)");
  flags.AddInt64("messages", &messages, "messages for the memory estimate");
  flags.AddInt64("sim_messages", &sim_messages,
                 "messages per validation simulation; trace mode replays at "
                 "most this many trace messages (0 = skip simulation)");
  flags.AddInt64("seed", &seed, "RNG seed for the validation sweep");
  flags.AddInt64("runs", &runs, "validation runs averaged (seeds seed..)");
  flags.AddInt64("threads", &threads, "sweep parallelism (0 = hardware)");
  flags.AddDouble("epsilon", &epsilon, "imbalance tolerance");
  flags.AddString("workers", &workers_csv, "comma-separated deployment sizes");
  flags.AddString("trace", &trace_path, "recorded .slbt trace to profile");
  if (slb::Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) return 0;

  std::vector<uint32_t> worker_counts;
  for (const std::string& token : slb::SplitString(workers_csv, ',')) {
    int64_t n64 = 0;
    if (!slb::ParseInt64(token, &n64) || n64 < 1) {
      std::fprintf(stderr, "bad worker count: %s\n", token.c_str());
      return 2;
    }
    worker_counts.push_back(static_cast<uint32_t>(n64));
  }

  // Workload profile: either a recorded trace or an analytic Zipf. The same
  // workload feeds the validation sweep as a scenario.
  TraceProfile profile;
  std::string workload_desc;
  slb::SweepScenario scenario;
  if (!trace_path.empty()) {
    auto trace = slb::ReadTrace(trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "error: %s\n", trace.status().ToString().c_str());
      return 1;
    }
    profile = ProfileFromTrace(*trace);
    workload_desc = "trace " + trace_path + " (" +
                    slb::HumanCount(profile.messages) + " msgs)";
    // The profile uses the full trace; the validation sweep replays at most
    // --sim_messages of it so big traces stay cheap to validate.
    if (sim_messages > 0 &&
        trace->keys.size() > static_cast<uint64_t>(sim_messages)) {
      trace->keys.resize(static_cast<size_t>(sim_messages));
    }
    scenario = slb::ScenarioFromTrace("plan", std::move(trace.value()));
  } else {
    const slb::ZipfDistribution zipf(skew, static_cast<uint64_t>(keys));
    profile.sorted_probs = zipf.TopProbabilities(static_cast<uint64_t>(keys));
    profile.counts.assign(static_cast<size_t>(keys), 0);
    for (int64_t r = 0; r < keys; ++r) {
      profile.counts[static_cast<size_t>(r)] = static_cast<uint64_t>(
          zipf.Probability(static_cast<uint64_t>(r)) *
          static_cast<double>(messages));
    }
    profile.messages = static_cast<uint64_t>(messages);
    workload_desc = "Zipf z=" + slb::FormatDouble(skew) + ", |K|=" +
                    slb::HumanCount(static_cast<uint64_t>(keys));
    scenario = slb::ScenarioFromDataset(slb::MakeZipfSpec(
        skew, static_cast<uint64_t>(keys),
        static_cast<uint64_t>(std::max<int64_t>(sim_messages, 1)),
        static_cast<uint64_t>(seed)));
    scenario.label = "plan";
  }

  // Validation sweep: one cell per (algorithm, deployment size).
  slb::SweepResultTable table;
  if (sim_messages > 0) {
    slb::SweepGrid grid;
    grid.scenarios = {scenario};
    grid.algorithms = {slb::AlgorithmKind::kPkg, slb::AlgorithmKind::kDChoices,
                       slb::AlgorithmKind::kWChoices};
    grid.worker_counts = worker_counts;
    grid.seed = static_cast<uint64_t>(seed);
    grid.runs = static_cast<uint32_t>(runs < 1 ? 1 : runs);
    table = slb::RunSweep(grid, static_cast<size_t>(threads));
  }
  auto measured = [&](slb::AlgorithmKind kind, uint32_t n) -> std::string {
    const slb::SweepCellResult* cell = table.Find("plan", "", kind, n);
    if (cell == nullptr) return "-";
    if (!cell->status.ok()) return "error";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", cell->mean_final_imbalance);
    return buf;
  };

  std::printf("workload: %s, p1 = %.2f%%, eps = %s\n", workload_desc.c_str(),
              100 * profile.sorted_probs.front(),
              slb::FormatDouble(epsilon).c_str());
  std::printf("%8s %8s %6s %10s %14s %14s %14s %10s %10s %10s\n", "workers",
              "|head|", "d", "policy", "mem vs PKG", "mem vs SG", "sketch ctrs",
              "I(m) PKG", "I(m) D-C", "I(m) W-C");

  for (const uint32_t n : worker_counts) {
    const double theta = 1.0 / (5.0 * n);

    // Head = keys above theta; profile probs are sorted descending.
    std::vector<double> head_probs;
    for (double p : profile.sorted_probs) {
      if (p < theta) break;
      head_probs.push_back(p);
    }
    const auto head = slb::HeadProfile::FromProbabilities(head_probs);
    const uint32_t d = slb::FindOptimalChoices(head, n, epsilon);
    const bool switch_to_wc = d >= n;

    std::unordered_set<uint64_t> head_keys;
    const double head_threshold =
        theta * static_cast<double>(profile.messages);
    for (uint64_t k = 0; k < profile.counts.size(); ++k) {
      if (static_cast<double>(profile.counts[k]) >= head_threshold) {
        head_keys.insert(k);
      }
    }
    const uint64_t mem_pkg = slb::MemoryPkg(profile.counts);
    const uint64_t mem_sg = slb::MemorySg(profile.counts, n);
    const uint64_t mem_dc = slb::MemoryDc(profile.counts, head_keys, d);
    // Sender sketch sizing (Sec. IV-B: O(1) per counter, 2/theta counters).
    const uint64_t sketch = static_cast<uint64_t>(2.0 / theta);

    std::printf("%8u %8zu %6u %10s %+13.1f%% %+13.1f%% %14llu %10s %10s %10s\n",
                n, head_probs.size(), d,
                switch_to_wc ? "W-Choices" : "D-Choices",
                slb::OverheadPercent(mem_dc, mem_pkg),
                slb::OverheadPercent(mem_dc, mem_sg),
                static_cast<unsigned long long>(sketch),
                measured(slb::AlgorithmKind::kPkg, n).c_str(),
                measured(slb::AlgorithmKind::kDChoices, n).c_str(),
                measured(slb::AlgorithmKind::kWChoices, n).c_str());
  }
  std::printf("\n'policy' is what the optimizer recommends: when no d < n\n"
              "meets the imbalance target, switch to W-Choices (d = n).\n");
  if (sim_messages > 0) {
    std::printf("I(m) columns: final imbalance measured by %s %lld\n"
                "messages through the sweep engine (--sim_messages 0 skips).\n",
                trace_path.empty() ? "simulating" : "replaying at most",
                static_cast<long long>(sim_messages));
    if (table.num_errors() > 0) {
      std::fprintf(stderr, "error: %zu validation cell(s) failed\n",
                   table.num_errors());
      return 1;
    }
  }
  return 0;
}
