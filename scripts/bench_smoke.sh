#!/usr/bin/env bash
# Smoke-runs every bench binary with a tiny message budget and fails on a
# non-zero exit or an empty result table. TSVs land in $OUT_DIR (default
# bench-smoke/) so CI can upload them as artifacts.
#
# Usage: scripts/bench_smoke.sh [build_dir] [out_dir]
#
# The bench_micro_* binaries are excluded: they are Google-Benchmark micros
# with their own reporting, not sweep-table experiments (and are absent when
# libbenchmark is not installed).

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-smoke}"
MESSAGES="${BENCH_SMOKE_MESSAGES:-20000}"
THREADS="${BENCH_SMOKE_THREADS:-2}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found (build first)" >&2
  exit 2
fi

mkdir -p "$OUT_DIR"
failures=0
count=0

for bin in "$BUILD_DIR"/bench/bench_*; do
  name="$(basename "$bin")"
  case "$name" in
    bench_micro_*) continue ;;
  esac
  [ -x "$bin" ] || continue
  count=$((count + 1))
  out="$OUT_DIR/$name.tsv"

  if ! "$bin" --messages "$MESSAGES" --threads "$THREADS" > "$out" 2> "$OUT_DIR/$name.err"; then
    echo "FAIL  $name: non-zero exit" >&2
    sed 's/^/      /' "$OUT_DIR/$name.err" >&2 || true
    failures=$((failures + 1))
    continue
  fi

  # A healthy run prints at least one non-comment, non-blank result row.
  # (grep -c reads the whole stream — no -q/SIGPIPE race under pipefail.)
  rows="$(grep -v '^#' "$out" | grep -c '[^[:space:]]' || true)"
  if [ "${rows:-0}" -eq 0 ]; then
    echo "FAIL  $name: empty result table" >&2
    failures=$((failures + 1))
    continue
  fi

  echo "OK    $name (${rows} rows)"
done

if [ "$count" -eq 0 ]; then
  echo "error: no bench binaries found under $BUILD_DIR/bench" >&2
  exit 2
fi

# The adversarial-headroom bench must cover the full calibrated scenario
# list even at the tiny smoke budget: its derived headroom table (the lines
# after the "# headroom:" marker) needs one row per (scenario, algorithm)
# for at least 6 scenarios, including the four PR-4 catalog additions.
HEADROOM_TSV="$OUT_DIR/bench_adversarial_headroom.tsv"
headroom_failures=0
if [ -f "$HEADROOM_TSV" ]; then
  headroom_rows="$(sed -n '/^# headroom:/,$p' "$HEADROOM_TSV" \
                    | grep -v '^#' | grep -c '[^[:space:]]' || true)"
  headroom_scenarios="$(sed -n '/^# headroom:/,$p' "$HEADROOM_TSV" \
                    | grep -v '^#' | cut -f1 | sort -u | grep -c '[^[:space:]]' || true)"
  if [ "${headroom_scenarios:-0}" -lt 6 ]; then
    echo "FAIL  bench_adversarial_headroom: headroom table covers only" \
         "${headroom_scenarios:-0} scenarios (want >= 6)" >&2
    headroom_failures=$((headroom_failures + 1))
  fi
  for scenario in correlated-burst diurnal key-space-growth replay-with-noise; do
    if ! sed -n '/^# headroom:/,$p' "$HEADROOM_TSV" | grep -q "^$scenario	"; then
      echo "FAIL  bench_adversarial_headroom: scenario '$scenario' missing" \
           "from the headroom table" >&2
      headroom_failures=$((headroom_failures + 1))
    fi
  done
  if [ "$headroom_failures" -eq 0 ]; then
    echo "OK    bench_adversarial_headroom headroom table" \
         "(${headroom_rows:-0} rows, ${headroom_scenarios:-0} scenarios)"
  fi
else
  # The coverage assertion must not vanish with the binary it asserts on.
  echo "FAIL  bench_adversarial_headroom: no result table at $HEADROOM_TSV" \
       "(binary missing from the build?)" >&2
  headroom_failures=1
fi

# Perf guard for the threaded DSPE runtime: bench_fig13_throughput must also
# work with --engine threaded (real threads, measured wall-clock) and report
# a strictly positive measured throughput in every cell. Catches runtime
# wiring rot (deadlock -> empty table, broken ack path -> throughput 0) that
# the sim-engine loop above cannot see.
THREADED_TSV="$OUT_DIR/bench_fig13_throughput.threaded.tsv"
threaded_failures=0
fig13_bin="$BUILD_DIR/bench/bench_fig13_throughput"
if [ -x "$fig13_bin" ]; then
  if ! "$fig13_bin" --engine threaded --messages "$MESSAGES" --runs 1 \
       > "$THREADED_TSV" 2> "$OUT_DIR/bench_fig13_throughput.threaded.err"; then
    echo "FAIL  bench_fig13_throughput --engine threaded: non-zero exit" >&2
    sed 's/^/      /' "$OUT_DIR/bench_fig13_throughput.threaded.err" >&2 || true
    threaded_failures=$((threaded_failures + 1))
  else
    threaded_rows="$(grep -v '^#' "$THREADED_TSV" | grep -c '[^[:space:]]' || true)"
    if [ "${threaded_rows:-0}" -eq 0 ]; then
      echo "FAIL  bench_fig13_throughput --engine threaded: empty result table" >&2
      threaded_failures=$((threaded_failures + 1))
    else
      # The column header is the '#scenario ...' comment line; resolve the
      # throughput_per_s column by name so payload reordering can't silently
      # blind the guard, then require every row to be measured and positive.
      # The executor idle accounting (idle_s / park_s metric columns, ISSUE
      # 10) must be present and non-negative on every threaded row — a
      # missing column means the stats plumbing rotted, a negative value a
      # broken clock delta.
      bad_rows="$(awk -F'\t' '
        /^#scenario\t/ {
          for (i = 1; i <= NF; i++) {
            if ($i == "throughput_per_s") col = i
            if ($i == "idle_s") idle = i
            if ($i == "park_s") park = i
          }
          next
        }
        /^#/ || /^[[:space:]]*$/ { next }
        {
          if (!col) { print "no-throughput-column"; exit }
          if (!idle || !park) { print "no-idle-metric-columns"; exit }
          if ($col + 0 <= 0) print $1 "/" $3 "=" $col
          if ($idle + 0 < 0) print $1 "/" $3 ": idle_s=" $idle
          if ($park + 0 < 0 || $park + 0 > $idle + 0) \
            print $1 "/" $3 ": park_s=" $park
        }' "$THREADED_TSV")"
      if [ -n "$bad_rows" ]; then
        echo "FAIL  bench_fig13_throughput --engine threaded: non-positive" \
             "throughput or malformed idle metrics in: $bad_rows" >&2
        threaded_failures=$((threaded_failures + 1))
      else
        echo "OK    bench_fig13_throughput --engine threaded" \
             "(${threaded_rows} rows, throughput > 0, idle metrics sane)"
      fi
    fi
  fi

  # Affinity pinning must run cleanly wherever CI lands (containers with
  # restricted affinity masks included): a tiny --pin-threads run only has
  # to exit 0 and produce rows — threads_pinned lands in the table for
  # eyeballing, but its value is host-dependent and not asserted.
  PIN_TSV="$OUT_DIR/bench_fig13_throughput.pinned.tsv"
  if ! "$fig13_bin" --engine threaded --pin-threads --messages 5000 --runs 1 \
       > "$PIN_TSV" 2> "$OUT_DIR/bench_fig13_throughput.pinned.err"; then
    echo "FAIL  bench_fig13_throughput --engine threaded --pin-threads:" \
         "non-zero exit" >&2
    sed 's/^/      /' "$OUT_DIR/bench_fig13_throughput.pinned.err" >&2 || true
    threaded_failures=$((threaded_failures + 1))
  else
    pin_rows="$(grep -v '^#' "$PIN_TSV" | grep -c '[^[:space:]]' || true)"
    if [ "${pin_rows:-0}" -eq 0 ]; then
      echo "FAIL  bench_fig13_throughput --pin-threads: empty result table" >&2
      threaded_failures=$((threaded_failures + 1))
    else
      echo "OK    bench_fig13_throughput --engine threaded --pin-threads" \
           "(${pin_rows} rows)"
    fi
  fi
else
  echo "FAIL  bench_fig13_throughput missing from the build; threaded-engine" \
       "guard cannot run" >&2
  threaded_failures=1
fi

# Perf-trajectory soft guard (scripts/bench_compare.py + BENCH_runtime.json):
# ratio-checks the threaded fig13 table against the recorded baseline. At
# the smoke budget the absolute numbers are far from the recorded ones, so
# >10% deltas only WARN; the guard fails the build solely on structural rot
# (empty table, missing cells, throughput <= 0).
compare_failures=0
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
if command -v python3 > /dev/null 2>&1; then
  if [ -f "$THREADED_TSV" ] && [ -f "$REPO_ROOT/BENCH_runtime.json" ]; then
    if ! python3 "$REPO_ROOT/scripts/bench_compare.py" compare \
         --baseline "$REPO_ROOT/BENCH_runtime.json" --tsv "$THREADED_TSV"; then
      echo "FAIL  bench_compare: structural failure (see above)" >&2
      compare_failures=1
    fi
  else
    echo "FAIL  bench_compare: missing $THREADED_TSV or BENCH_runtime.json" >&2
    compare_failures=1
  fi
else
  echo "SKIP  bench_compare (python3 not available)"
fi

# The runtime micro-benches (ack coalescing, park/wake latency) are Google
# Benchmark binaries, excluded from the sweep loop above; when the library
# was available at configure time, they must still start and report.
micro_runtime_failures=0
micro_bin="$BUILD_DIR/bench/bench_micro_runtime"
if [ -x "$micro_bin" ]; then
  if ! "$micro_bin" --benchmark_min_time=0.01 \
       > "$OUT_DIR/bench_micro_runtime.txt" 2>&1; then
    echo "FAIL  bench_micro_runtime: non-zero exit" >&2
    sed 's/^/      /' "$OUT_DIR/bench_micro_runtime.txt" >&2 || true
    micro_runtime_failures=1
  elif ! grep -q "BM_AckFanout" "$OUT_DIR/bench_micro_runtime.txt" || \
       ! grep -q "BM_IdleWake" "$OUT_DIR/bench_micro_runtime.txt"; then
    echo "FAIL  bench_micro_runtime: expected BM_AckFanout / BM_IdleWake" \
         "rows missing" >&2
    micro_runtime_failures=1
  else
    echo "OK    bench_micro_runtime (ack + idle-wake micros reported)"
  fi
else
  echo "SKIP  bench_micro_runtime (Google Benchmark not installed)"
fi

# Elastic-rescale guard: bench_elastic_rescale's derived "# rescale:" table
# must be non-empty, and every scale-out row (the out+8 schedule) must report
# a strictly positive keys_migrated count. Catches migration-accounting rot
# (tracker never wired -> zeros everywhere) that the generic empty-table
# check above cannot see. Columns are resolved by name from the table header
# so reordering can't silently blind the guard.
RESCALE_TSV="$OUT_DIR/bench_elastic_rescale.tsv"
rescale_failures=0
if [ -f "$RESCALE_TSV" ]; then
  rescale_rows="$(sed -n '/^# rescale:/,$p' "$RESCALE_TSV" \
                    | grep -v '^#' | grep -c '[^[:space:]]' || true)"
  if [ "${rescale_rows:-0}" -eq 0 ]; then
    echo "FAIL  bench_elastic_rescale: empty rescale table" >&2
    rescale_failures=$((rescale_failures + 1))
  else
    bad_rescale="$(sed -n '/^# rescale:/,$p' "$RESCALE_TSV" | awk -F'\t' '
      /^# scenario\t/ {
        for (i = 1; i <= NF; i++) {
          if ($i == "schedule") sched = i
          if ($i == "keys_migrated") col = i
        }
        next
      }
      /^#/ || /^[[:space:]]*$/ { next }
      {
        if (!col || !sched) { print "no-keys_migrated-column"; exit }
        if ($sched ~ /^out/ && $col + 0 <= 0) print $1 "/" $sched "/" $3 "=" $col
      }')"
    if [ -n "$bad_rescale" ]; then
      echo "FAIL  bench_elastic_rescale: zero migrated keys in scale-out" \
           "cells: $bad_rescale" >&2
      rescale_failures=$((rescale_failures + 1))
    else
      echo "OK    bench_elastic_rescale rescale table" \
           "(${rescale_rows} rows, scale-out cells all migrate keys)"
    fi
  fi
else
  echo "FAIL  bench_elastic_rescale: no result table at $RESCALE_TSV" \
       "(binary missing from the build?)" >&2
  rescale_failures=1
fi

# Live-rescale guard: bench_elastic_rescale must also work with
# --engine threaded (worker set mutated on the running topology, key state
# through real handoff rings). Beyond the sim-engine checks above, the
# threaded run must MEASURE the protocol: scale-out cells need a strictly
# positive migration-stall time (resume -> last state install) on top of
# nonzero migrated keys, and every rescaling row needs a positive quiesce
# time. Zeros there mean the live protocol silently did nothing — the rot
# this guard exists to catch.
THREADED_RESCALE_TSV="$OUT_DIR/bench_elastic_rescale.threaded.tsv"
threaded_rescale_failures=0
rescale_bin="$BUILD_DIR/bench/bench_elastic_rescale"
if [ -x "$rescale_bin" ]; then
  if ! "$rescale_bin" --engine threaded --messages "$MESSAGES" --runs 1 \
       > "$THREADED_RESCALE_TSV" 2> "$OUT_DIR/bench_elastic_rescale.threaded.err"; then
    echo "FAIL  bench_elastic_rescale --engine threaded: non-zero exit" >&2
    sed 's/^/      /' "$OUT_DIR/bench_elastic_rescale.threaded.err" >&2 || true
    threaded_rescale_failures=$((threaded_rescale_failures + 1))
  else
    tr_rows="$(sed -n '/^# rescale:/,$p' "$THREADED_RESCALE_TSV" \
                 | grep -v '^#' | grep -c '[^[:space:]]' || true)"
    if [ "${tr_rows:-0}" -eq 0 ]; then
      echo "FAIL  bench_elastic_rescale --engine threaded: empty rescale table" >&2
      threaded_rescale_failures=$((threaded_rescale_failures + 1))
    else
      bad_threaded_rescale="$(sed -n '/^# rescale:/,$p' "$THREADED_RESCALE_TSV" | awk -F'\t' '
        /^# scenario\t/ {
          for (i = 1; i <= NF; i++) {
            if ($i == "schedule") sched = i
            if ($i == "keys_migrated") keys = i
            if ($i == "quiesce_s") quiesce = i
            if ($i == "stall_s") stall = i
          }
          next
        }
        /^#/ || /^[[:space:]]*$/ { next }
        {
          if (!keys || !sched || !quiesce || !stall) { print "missing-columns"; exit }
          if ($sched == "static") next
          if ($quiesce + 0 <= 0) print $1 "/" $sched "/" $3 ": quiesce_s=" $quiesce
          if ($sched ~ /^out/) {
            if ($keys + 0 <= 0) print $1 "/" $sched "/" $3 ": keys_migrated=" $keys
            if ($stall + 0 <= 0) print $1 "/" $sched "/" $3 ": stall_s=" $stall
          }
        }')"
      if [ -n "$bad_threaded_rescale" ]; then
        echo "FAIL  bench_elastic_rescale --engine threaded: live protocol" \
             "not measured in: $bad_threaded_rescale" >&2
        threaded_rescale_failures=$((threaded_rescale_failures + 1))
      else
        echo "OK    bench_elastic_rescale --engine threaded" \
             "(${tr_rows} rows, measured quiesce/stall all positive)"
      fi
    fi
  fi
else
  echo "FAIL  bench_elastic_rescale missing from the build; live-rescale" \
       "guard cannot run" >&2
  threaded_rescale_failures=1
fi

# Cost-routing guard: bench_cost_routing's derived "# cost:" mis-rank table
# must be non-empty, and every anti-correlated row must report a strictly
# positive cost imbalance under the count signal — that hidden imbalance is
# the effect the bench exists to measure, so a zero there means the cost
# layer silently priced nothing (model never wired, tracker not enabled).
# Columns are resolved by name from the table header so reordering can't
# silently blind the guard.
COST_TSV="$OUT_DIR/bench_cost_routing.tsv"
cost_failures=0
if [ -f "$COST_TSV" ]; then
  cost_rows="$(sed -n '/^# cost:/,$p' "$COST_TSV" \
                 | grep -v '^#' | grep -c '[^[:space:]]' || true)"
  if [ "${cost_rows:-0}" -eq 0 ]; then
    echo "FAIL  bench_cost_routing: empty cost table" >&2
    cost_failures=$((cost_failures + 1))
  else
    bad_cost="$(sed -n '/^# cost:/,$p' "$COST_TSV" | awk -F'\t' '
      /^# model\t/ {
        for (i = 1; i <= NF; i++) if ($i == "cost_I_count") col = i
        next
      }
      /^#/ || /^[[:space:]]*$/ { next }
      {
        if (!col) { print "no-cost_I_count-column"; exit }
        if ($1 == "anti-correlated" && $col + 0 <= 0)
          print $1 "/" $2 ": cost_I_count=" $col
      }')"
    if [ -n "$bad_cost" ]; then
      echo "FAIL  bench_cost_routing: anti-correlated cells show no cost" \
           "imbalance under the count signal: $bad_cost" >&2
      cost_failures=$((cost_failures + 1))
    else
      echo "OK    bench_cost_routing cost table" \
           "(${cost_rows} rows, anti-correlated cost imbalance positive)"
    fi
  fi
else
  echo "FAIL  bench_cost_routing: no result table at $COST_TSV" \
       "(binary missing from the build?)" >&2
  cost_failures=1
fi

echo "---"
echo "$((count - failures))/$count bench binaries passed"
if [ "$headroom_failures" -gt 0 ]; then
  echo "headroom coverage check FAILED ($headroom_failures problems)" >&2
fi
if [ "$threaded_failures" -gt 0 ]; then
  echo "threaded-engine perf guard FAILED ($threaded_failures problems)" >&2
fi
if [ "$rescale_failures" -gt 0 ]; then
  echo "elastic-rescale migration guard FAILED ($rescale_failures problems)" >&2
fi
if [ "$threaded_rescale_failures" -gt 0 ]; then
  echo "live-rescale (threaded) guard FAILED ($threaded_rescale_failures problems)" >&2
fi
if [ "$cost_failures" -gt 0 ]; then
  echo "cost-routing guard FAILED ($cost_failures problems)" >&2
fi
if [ "$compare_failures" -gt 0 ]; then
  echo "perf-trajectory compare guard FAILED ($compare_failures problems)" >&2
fi
if [ "$micro_runtime_failures" -gt 0 ]; then
  echo "runtime micro-bench guard FAILED ($micro_runtime_failures problems)" >&2
fi
exit "$(((failures + headroom_failures + threaded_failures + rescale_failures + threaded_rescale_failures + cost_failures + compare_failures + micro_runtime_failures) > 0 ? 1 : 0))"
