#!/usr/bin/env bash
# Smoke-runs every bench binary with a tiny message budget and fails on a
# non-zero exit or an empty result table. TSVs land in $OUT_DIR (default
# bench-smoke/) so CI can upload them as artifacts.
#
# Usage: scripts/bench_smoke.sh [build_dir] [out_dir]
#
# The bench_micro_* binaries are excluded: they are Google-Benchmark micros
# with their own reporting, not sweep-table experiments (and are absent when
# libbenchmark is not installed).

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-smoke}"
MESSAGES="${BENCH_SMOKE_MESSAGES:-20000}"
THREADS="${BENCH_SMOKE_THREADS:-2}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found (build first)" >&2
  exit 2
fi

mkdir -p "$OUT_DIR"
failures=0
count=0

for bin in "$BUILD_DIR"/bench/bench_*; do
  name="$(basename "$bin")"
  case "$name" in
    bench_micro_*) continue ;;
  esac
  [ -x "$bin" ] || continue
  count=$((count + 1))
  out="$OUT_DIR/$name.tsv"

  if ! "$bin" --messages "$MESSAGES" --threads "$THREADS" > "$out" 2> "$OUT_DIR/$name.err"; then
    echo "FAIL  $name: non-zero exit" >&2
    sed 's/^/      /' "$OUT_DIR/$name.err" >&2 || true
    failures=$((failures + 1))
    continue
  fi

  # A healthy run prints at least one non-comment, non-blank result row.
  # (grep -c reads the whole stream — no -q/SIGPIPE race under pipefail.)
  rows="$(grep -v '^#' "$out" | grep -c '[^[:space:]]' || true)"
  if [ "${rows:-0}" -eq 0 ]; then
    echo "FAIL  $name: empty result table" >&2
    failures=$((failures + 1))
    continue
  fi

  echo "OK    $name (${rows} rows)"
done

if [ "$count" -eq 0 ]; then
  echo "error: no bench binaries found under $BUILD_DIR/bench" >&2
  exit 2
fi

echo "---"
echo "$((count - failures))/$count bench binaries passed"
exit "$((failures > 0 ? 1 : 0))"
