#!/usr/bin/env python3
"""Perf-trajectory guard for the threaded DSPE runtime (ISSUE 10).

Two modes, both driven by BENCH_runtime.json:

  compare      Soft CI guard: compare a freshly produced bench TSV against
               the recorded per-cell throughputs. Regressions beyond
               --warn-pct print WARN lines but exit 0 (CI hosts are noisy;
               a hard ratio gate would flake). Exit 1 is reserved for
               structural rot the noise argument cannot excuse: an empty
               table, a missing throughput column, a cell at <= 0, or a
               recorded cell missing from the TSV entirely.

  improvement  The acceptance check: pre_pr_baseline vs current inside the
               JSON, per-cell ratios plus a per-scenario geomean. With
               --min-gain-pct N, exits 1 when any scenario's geomean gain
               is below N percent.

TSV parsing resolves columns by name from the '#scenario\t...' header line
(the bench tables' column-name contract), so payload reordering cannot
silently blind the guard. Cells are keyed (scenario, algo); `scenario` is
column 1, `algo` is resolved by header name.
"""

import argparse
import json
import math
import sys


def read_tsv_cells(path):
    """Returns {(scenario, algo): throughput} from a bench result TSV."""
    cells = {}
    col_throughput = None
    col_algo = None
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if line.startswith("#scenario\t"):
                header = line.lstrip("#").split("\t")
                for i, name in enumerate(header):
                    if name == "throughput_per_s":
                        col_throughput = i
                    if name == "algo":
                        col_algo = i
                continue
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if col_throughput is None or col_algo is None:
                continue  # rows before any header: not a bench table
            if len(fields) <= max(col_throughput, col_algo):
                continue
            try:
                value = float(fields[col_throughput])
            except ValueError:
                continue
            cells[(fields[0], fields[col_algo])] = value
    if col_throughput is None:
        raise SystemExit(
            f"FAIL  {path}: no '#scenario\\t...' header with a "
            "throughput_per_s column (table format changed?)")
    return cells


def recorded_cells(section):
    """Flattens {scenario: {algo: value}} into {(scenario, algo): value}."""
    return {(scenario, algo): value
            for scenario, algos in section.items()
            for algo, value in algos.items()}


def cmd_compare(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    recorded = recorded_cells(baseline[args.section]["current"])
    measured = read_tsv_cells(args.tsv)

    failures = []
    warnings = []
    for key, base in sorted(recorded.items()):
        scenario, algo = key
        if key not in measured:
            failures.append(f"{scenario}/{algo}: missing from {args.tsv}")
            continue
        value = measured[key]
        if value <= 0:
            failures.append(f"{scenario}/{algo}: throughput {value} <= 0")
            continue
        ratio = value / base
        if ratio < 1.0 - args.warn_pct / 100.0:
            warnings.append(
                f"{scenario}/{algo}: {value:.4g} vs recorded {base:.4g} "
                f"({(ratio - 1) * 100:+.1f}%)")
    if not measured:
        failures.append(f"{args.tsv}: empty result table")

    for w in warnings:
        print(f"WARN  {w}  (>{args.warn_pct}% below the recorded baseline; "
              "noisy host or real regression — compare locally)",
              file=sys.stderr)
    for fail in failures:
        print(f"FAIL  {fail}", file=sys.stderr)
    if failures:
        return 1
    ok = len(recorded) - len(warnings)
    print(f"OK    bench_compare: {ok}/{len(recorded)} cells within "
          f"{args.warn_pct}% of the recorded baseline"
          + (f", {len(warnings)} warnings" if warnings else ""))
    return 0


def cmd_improvement(args):
    with open(args.baseline) as f:
        baseline = json.load(f)
    section = baseline[args.section]
    pre = recorded_cells(section["pre_pr_baseline"])
    cur = recorded_cells(section["current"])

    by_scenario = {}
    for key in sorted(pre):
        if key not in cur:
            continue
        scenario, algo = key
        ratio = cur[key] / pre[key]
        by_scenario.setdefault(scenario, []).append(ratio)
        print(f"{scenario}\t{algo}\t{pre[key]:.4g}\t{cur[key]:.4g}\t"
              f"{(ratio - 1) * 100:+.1f}%")

    status = 0
    for scenario, ratios in sorted(by_scenario.items()):
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        gain = (geomean - 1) * 100
        verdict = ""
        if args.min_gain_pct is not None and gain < args.min_gain_pct:
            verdict = f"  FAIL (< {args.min_gain_pct}%)"
            status = 1
        print(f"{scenario}\tgeomean\t-\t-\t{gain:+.1f}%{verdict}")
    return status


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    compare = sub.add_parser("compare", help="TSV vs recorded (soft CI guard)")
    compare.add_argument("--baseline", default="BENCH_runtime.json")
    compare.add_argument("--tsv", required=True)
    compare.add_argument("--section", default="fig13_threaded")
    compare.add_argument("--warn-pct", type=float, default=10.0)

    improvement = sub.add_parser(
        "improvement", help="pre-PR vs current inside the JSON")
    improvement.add_argument("--baseline", default="BENCH_runtime.json")
    improvement.add_argument("--section", default="fig13_threaded")
    improvement.add_argument("--min-gain-pct", type=float, default=None)

    args = parser.parse_args()
    if args.mode == "compare":
        return cmd_compare(args)
    return cmd_improvement(args)


if __name__ == "__main__":
    sys.exit(main())
