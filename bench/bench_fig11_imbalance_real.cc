// Figure 11 — imbalance on the real-world-like datasets WP, TW, and CT for
// PKG, D-C, and W-C as a function of the number of workers.
//
// Expected shape: all algorithms are fine at n in {5, 10}; at n in
// {20, 50, 100} PKG generates clearly higher imbalance, W-C the lowest,
// D-C in between but within its s*eps budget. CT (concept drift) is the
// hardest dataset for every method.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 11: imbalance on WP/TW/CT vs workers");
  const double wp_scale = env.paper ? 1.0 : 0.02;
  const double tw_scale = env.paper ? 0.05 : 0.002;
  const double ct_scale = 1.0;

  PrintBanner("bench_fig11_imbalance_real", "Figure 11",
              "scales: WP=" + std::to_string(wp_scale) +
                  " TW=" + std::to_string(tw_scale) + " CT=" +
                  std::to_string(ct_scale));

  SweepGrid grid;
  grid.scenarios = {ScenarioFromDataset(MakeWikipediaSpec(wp_scale)),
                    ScenarioFromDataset(MakeTwitterSpec(tw_scale)),
                    ScenarioFromDataset(MakeCashtagsSpec(ct_scale))};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                     AlgorithmKind::kWChoices};
  grid.worker_counts = {5, 10, 20, 50, 100};
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
