// Figure 11 — imbalance on the real-world-like datasets WP, TW, and CT for
// PKG, D-C, and W-C as a function of the number of workers.
//
// Expected shape: all algorithms are fine at n in {5, 10}; at n in
// {20, 50, 100} PKG generates clearly higher imbalance, W-C the lowest,
// D-C in between but within its s*eps budget. CT (concept drift) is the
// hardest dataset for every method.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  const char* dataset;
  DatasetSpec spec;
  uint32_t n;
  double imbalance[3] = {0, 0, 0};  // PKG, D-C, W-C
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 11: imbalance on WP/TW/CT vs workers");
  const double wp_scale = env.paper ? 1.0 : 0.02;
  const double tw_scale = env.paper ? 0.05 : 0.002;
  const double ct_scale = 1.0;

  PrintBanner("bench_fig11_imbalance_real", "Figure 11",
              "scales: WP=" + std::to_string(wp_scale) +
                  " TW=" + std::to_string(tw_scale) + " CT=" +
                  std::to_string(ct_scale));

  const AlgorithmKind algos[3] = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                                  AlgorithmKind::kWChoices};
  std::vector<Point> points;
  const DatasetSpec specs[3] = {MakeWikipediaSpec(wp_scale),
                                MakeTwitterSpec(tw_scale),
                                MakeCashtagsSpec(ct_scale)};
  const char* names[3] = {"WP", "TW", "CT"};
  for (int ds = 0; ds < 3; ++ds) {
    for (uint32_t n : {5u, 10u, 20u, 50u, 100u}) {
      points.push_back(Point{names[ds], specs[ds], n, {}});
    }
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    for (int a = 0; a < 3; ++a) {
      PartitionSimConfig config;
      config.algorithm = algos[a];
      config.partitioner.num_workers = p.n;
      config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
      config.num_sources = static_cast<uint32_t>(env.sources);
      p.imbalance[a] = RunAveraged(config, p.spec, env.runs,
                                   static_cast<uint64_t>(env.seed))
                           .mean_final_imbalance;
    }
  }, static_cast<size_t>(env.threads));

  std::printf("#%-8s %8s %12s %12s %12s\n", "dataset", "workers", "PKG", "D-C",
              "W-C");
  for (const Point& p : points) {
    std::printf("%-9s %8u %12s %12s %12s\n", p.dataset, p.n,
                Sci(p.imbalance[0]).c_str(), Sci(p.imbalance[1]).c_str(),
                Sci(p.imbalance[2]).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
