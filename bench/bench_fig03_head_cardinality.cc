// Figure 3 — number of keys in the head of the distribution as a function of
// skew, for the two extreme thresholds theta = 1/(5n) and theta = 2/n, at
// n in {50, 100}. Computed analytically from the Zipf pmf (|K| = 1e4); the
// head_keys metric column carries the count, with the threshold on the
// variant axis. No stream is simulated.
//
// Expected shape: the head is largest at moderate skew (more keys pass the
// threshold) and shrinks again at extreme skew where a handful of keys
// dominate; always a small number (tens) of keys.

#include "common/bench_util.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 3: head cardinality vs skew");
  const uint64_t keys = 10000;

  PrintBanner("bench_fig03_head_cardinality", "Figure 3",
              "|K|=1e4, theta in {1/(5n), 2/n}, n in {50, 100}");

  SweepGrid grid;
  grid.scenarios = SkewScenarios(env.paper, keys, /*num_messages=*/1,
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kDChoices};  // placeholder coordinate
  grid.worker_counts = {50, 100};
  SweepVariant loose;
  loose.label = "theta=1/(5n)";
  loose.options.theta_ratio = 0.2;
  SweepVariant tight;
  tight.label = "theta=2/n";
  tight.options.theta_ratio = 2.0;
  grid.variants = {loose, tight};
  grid.runner = [keys](const SweepCellContext& ctx) -> Result<CellPayload> {
    const ZipfDistribution zipf(ctx.scenario->param, keys);
    const double theta = ctx.MakeSimConfig().partitioner.theta();
    CellPayload payload;
    payload.AddCount("head_keys", zipf.CountAboveThreshold(theta));
    payload.AddMetric("theta", theta);
    return payload;
  };
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
