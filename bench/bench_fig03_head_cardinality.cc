// Figure 3 — number of keys in the head of the distribution as a function of
// skew, for the two extreme thresholds theta = 1/(5n) and theta = 2/n, at
// n in {50, 100}. Computed analytically from the Zipf pmf (|K| = 1e4).
//
// Expected shape: the head is largest at moderate skew (more keys pass the
// threshold) and shrinks again at extreme skew where a handful of keys
// dominate; always a small number (tens) of keys.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 3: head cardinality vs skew");
  const uint64_t keys = 10000;

  PrintBanner("bench_fig03_head_cardinality", "Figure 3",
              "|K|=1e4, theta in {1/(5n), 2/n}, n in {50, 100}");
  std::printf("#%-6s %14s %14s %14s %14s\n", "skew", "n50:1/(5n)", "n50:2/n",
              "n100:1/(5n)", "n100:2/n");
  for (double z : SkewGrid(env.paper)) {
    const ZipfDistribution zipf(z, keys);
    uint64_t head[4];
    int i = 0;
    for (uint32_t n : {50u, 100u}) {
      head[i++] = zipf.CountAboveThreshold(1.0 / (5.0 * n));
      head[i++] = zipf.CountAboveThreshold(2.0 / n);
    }
    std::printf("%-7.1f %14llu %14llu %14llu %14llu\n", z,
                static_cast<unsigned long long>(head[0]),
                static_cast<unsigned long long>(head[1]),
                static_cast<unsigned long long>(head[2]),
                static_cast<unsigned long long>(head[3]));
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
