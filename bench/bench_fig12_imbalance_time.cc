// Figure 12 — load imbalance over time (per "hour" of the stream) for the
// real-world-like datasets TW, WP, and CT, comparing PKG, D-C, and W-C at
// several deployment sizes.
//
// Expected shape: imbalance stays stable over time for TW/WP; the drifting
// CT dataset is noisier for every algorithm; larger n is harder for PKG
// while D-C/W-C remain low throughout.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Series {
  const char* dataset;
  DatasetSpec spec;
  uint32_t n;
  AlgorithmKind algo;
  std::vector<double> imbalance;  // one point per epoch/"hour"
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 12: imbalance over time on TW/WP/CT");
  const double wp_scale = env.paper ? 1.0 : 0.02;
  const double tw_scale = env.paper ? 0.05 : 0.002;

  PrintBanner("bench_fig12_imbalance_time", "Figure 12",
              "one sample per dataset 'hour'; workers in {5,20,100}");

  const DatasetSpec specs[3] = {MakeTwitterSpec(tw_scale),
                                MakeWikipediaSpec(wp_scale),
                                MakeCashtagsSpec(1.0)};
  const char* names[3] = {"TW", "WP", "CT"};
  const AlgorithmKind algos[3] = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                                  AlgorithmKind::kWChoices};

  std::vector<Series> series;
  for (int ds = 0; ds < 3; ++ds) {
    for (uint32_t n : {5u, 20u, 100u}) {
      for (AlgorithmKind algo : algos) {
        series.push_back(Series{names[ds], specs[ds], n, algo, {}});
      }
    }
  }

  ParallelFor(series.size(), [&](size_t i) {
    Series& s = series[i];
    PartitionSimConfig config;
    config.algorithm = s.algo;
    config.partitioner.num_workers = s.n;
    config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
    config.num_sources = static_cast<uint32_t>(env.sources);
    config.num_samples = static_cast<uint32_t>(s.spec.num_epochs);
    DatasetSpec spec = s.spec;
    spec.seed = static_cast<uint64_t>(env.seed);
    auto gen = MakeGenerator(spec);
    auto result = RunPartitionSimulation(config, gen.get());
    if (result.ok()) s.imbalance = result->imbalance_series;
  }, static_cast<size_t>(env.threads));

  std::printf("#%-8s %8s %6s %6s %12s\n", "dataset", "workers", "algo", "hour",
              "imbalance");
  for (const Series& s : series) {
    for (size_t hour = 0; hour < s.imbalance.size(); ++hour) {
      std::printf("%-9s %8u %6s %6zu %12s\n", s.dataset, s.n,
                  AlgorithmKindName(s.algo).c_str(), hour + 1,
                  Sci(s.imbalance[hour]).c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
