// Figure 12 — load imbalance over time (per "hour" of the stream) for the
// real-world-like datasets TW, WP, and CT, comparing PKG, D-C, and W-C at
// several deployment sizes.
//
// Expected shape: imbalance stays stable over time for TW/WP; the drifting
// CT dataset is noisier for every algorithm; larger n is harder for PKG
// while D-C/W-C remain low throughout.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

// The imbalance series is sampled once per dataset "hour" (epoch).
SweepScenario HourlySampled(const DatasetSpec& spec) {
  SweepScenario scenario = ScenarioFromDataset(spec);
  scenario.num_samples = static_cast<uint32_t>(spec.num_epochs);
  return scenario;
}

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 12: imbalance over time on TW/WP/CT");
  const double wp_scale = env.paper ? 1.0 : 0.02;
  const double tw_scale = env.paper ? 0.05 : 0.002;

  PrintBanner("bench_fig12_imbalance_time", "Figure 12",
              "one sample per dataset 'hour'; workers in {5,20,100}");

  SweepGrid grid;
  grid.scenarios = {HourlySampled(MakeTwitterSpec(tw_scale)),
                    HourlySampled(MakeWikipediaSpec(wp_scale)),
                    HourlySampled(MakeCashtagsSpec(1.0))};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                     AlgorithmKind::kWChoices};
  grid.worker_counts = {5, 20, 100};
  return RunGridAndReport(env, std::move(grid), ReportMode::kSeries);
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
