// Ablation: which heavy-hitter sketch should D-Choices run on?
//
// The paper uses SpaceSaving [11]; this study swaps in Misra-Gries, Lossy
// Counting, and Count-Min (all tuned to the same theta/2 error target) and
// also sweeps SpaceSaving's capacity below/above the 2/theta auto-sizing
// (the variant axis), measuring the resulting D-Choices imbalance across
// the skew scenarios.
//
// Expected outcome: any sketch with error <= theta/2 yields equivalent
// balance (head detection is binary); undersized sketches miss head keys
// and degrade towards PKG behaviour at high skew.

#include <string>

#include "common/bench_util.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: sketch choice inside D-Choices");
  const uint32_t n = 50;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_sketch", "design ablation (not a paper figure)",
              "n=50, |K|=1e4, m=" + std::to_string(messages) +
                  ", auto capacity = 2/theta = 500");

  struct Variant {
    const char* label;
    SketchKind sketch;
    size_t capacity;
  };
  const Variant variants[] = {
      {"ss-auto", SketchKind::kSpaceSaving, 0},
      {"ss-50", SketchKind::kSpaceSaving, 50},
      {"ss-10", SketchKind::kSpaceSaving, 10},
      {"mg-auto", SketchKind::kMisraGries, 0},
      {"lossy", SketchKind::kLossyCounting, 0},
      {"cms", SketchKind::kCountMin, 0},
      {"ss-decay", SketchKind::kDecayingSpaceSaving, 0},
  };

  SweepGrid grid;
  grid.scenarios = ZipfScenarios({1.0, 1.4, 1.8, 2.0}, keys, messages,
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kDChoices};
  grid.worker_counts = {n};
  for (const Variant& v : variants) {
    SweepVariant variant;
    variant.label = v.label;
    variant.options.sketch = v.sketch;
    variant.options.sketch_capacity = v.capacity;
    grid.variants.push_back(variant);
  }
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
