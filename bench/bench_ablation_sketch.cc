// Ablation: which heavy-hitter sketch should D-Choices run on?
//
// The paper uses SpaceSaving [11]; this study swaps in Misra-Gries, Lossy
// Counting, and Count-Min (all tuned to the same theta/2 error target) and
// also sweeps SpaceSaving's capacity below/above the 2/theta auto-sizing,
// measuring the resulting D-Choices imbalance.
//
// Expected outcome: any sketch with error <= theta/2 yields equivalent
// balance (head detection is binary); undersized sketches miss head keys
// and degrade towards PKG behaviour at high skew.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  const char* label;
  SketchKind sketch;
  size_t capacity;  // 0 = auto
  double z;
  double imbalance = 0;
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: sketch choice inside D-Choices");
  const uint32_t n = 50;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_sketch", "design ablation (not a paper figure)",
              "n=50, |K|=1e4, m=" + std::to_string(messages) +
                  ", auto capacity = 2/theta = 500");

  struct Variant {
    const char* label;
    SketchKind sketch;
    size_t capacity;
  };
  const Variant variants[] = {
      {"ss-auto", SketchKind::kSpaceSaving, 0},
      {"ss-50", SketchKind::kSpaceSaving, 50},
      {"ss-10", SketchKind::kSpaceSaving, 10},
      {"mg-auto", SketchKind::kMisraGries, 0},
      {"lossy", SketchKind::kLossyCounting, 0},
      {"cms", SketchKind::kCountMin, 0},
      {"ss-decay", SketchKind::kDecayingSpaceSaving, 0},
  };

  std::vector<Point> points;
  for (double z : {1.0, 1.4, 1.8, 2.0}) {
    for (const Variant& v : variants) {
      points.push_back(Point{v.label, v.sketch, v.capacity, z, 0});
    }
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    PartitionSimConfig config;
    config.algorithm = AlgorithmKind::kDChoices;
    config.partitioner.num_workers = n;
    config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
    config.partitioner.sketch = p.sketch;
    config.partitioner.sketch_capacity = p.capacity;
    config.num_sources = static_cast<uint32_t>(env.sources);
    const DatasetSpec spec =
        MakeZipfSpec(p.z, keys, messages, static_cast<uint64_t>(env.seed));
    p.imbalance = RunAveraged(config, spec, env.runs,
                              static_cast<uint64_t>(env.seed))
                      .mean_final_imbalance;
  }, static_cast<size_t>(env.threads));

  std::printf("#%-5s %10s %14s\n", "skew", "sketch", "imbalance");
  for (const Point& p : points) {
    std::printf("%-6.1f %10s %14s\n", p.z, p.label, Sci(p.imbalance).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
