// Micro-benchmarks isolating the threaded runtime's two hot-path overhauls
// (not a paper figure):
//
//   * BM_AckFanout{PerTuple,Coalesced} — the tuple-tree ack accounting, as
//     the pre-overhaul runtime did it (one shared-atomic RMW per routed copy
//     at emit, three per ack) versus the coalesced protocol (one release
//     store seeds the tree, acks buffered per executor and flushed once per
//     scheduling quantum with adjacent-run merging). The arg is the tree
//     fanout; the counter is acks/s.
//
//   * BM_IdleWake — round-trip latency of the adaptive wait ladder's park /
//     wake edge (IdleGate in runtime.cc, replicated here structurally): the
//     producer bumps the epoch, fences, and notifies; the parked consumer
//     must observe the epoch and respond. This is the latency a parked
//     executor adds to the first tuple after an idle period — the price
//     kAdaptive pays over kSpin for not burning the core.
//
// Both benches replicate the runtime's structures rather than linking its
// internals (RootSlot and IdleGate are runtime.cc-private by design); the
// layout/ordering discipline — alignas(kCacheLineBytes), acq_rel on the
// closing decrement, seq_cst fences around the park flag — is kept
// identical so the numbers track the real thing.

#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "slb/dspe/spsc_queue.h"

namespace slb {
namespace {

struct alignas(kCacheLineBytes) BenchRootSlot {
  std::atomic<uint32_t> pending{0};
};

constexpr size_t kSlots = 64;       // a realistic credit window
constexpr size_t kQuantum = 64;     // acks buffered per flush (batch_size)

// The pre-overhaul protocol: every routed copy is a fetch_add at emit;
// every completed tuple pays an acq_rel fetch_sub on the shared slot plus
// relaxed decrements of the spout's in-flight credit and the global
// active-roots count.
void BM_AckFanoutPerTuple(benchmark::State& state) {
  const uint32_t fanout = static_cast<uint32_t>(state.range(0));
  std::vector<BenchRootSlot> slots(kSlots);
  std::atomic<uint32_t> in_flight{0};
  std::atomic<uint64_t> active_roots{0};

  uint64_t acks = 0;
  for (auto _ : state) {
    const size_t slot = acks % kSlots;
    BenchRootSlot& root = slots[slot];
    // Emit: anchor ref, then one fetch_add per routed copy.
    root.pending.store(1, std::memory_order_relaxed);
    in_flight.fetch_add(1, std::memory_order_relaxed);
    active_roots.fetch_add(1, std::memory_order_relaxed);
    for (uint32_t c = 0; c < fanout; ++c) {
      root.pending.fetch_add(1, std::memory_order_relaxed);
    }
    root.pending.fetch_sub(1, std::memory_order_acq_rel);  // drop the anchor
    // Ack: every copy completes with three shared RMWs.
    for (uint32_t c = 0; c < fanout; ++c) {
      if (root.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        in_flight.fetch_sub(1, std::memory_order_relaxed);
        active_roots.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    ++acks;
  }
  state.SetItemsProcessed(static_cast<int64_t>(acks) * fanout);
}
BENCHMARK(BM_AckFanoutPerTuple)->Arg(1)->Arg(4);

// The coalesced protocol: one release store seeds the whole tree, final
// acks land in a thread-local buffer (adjacent-run merge) and flush once
// per quantum — one fetch_sub per distinct root plus two batched counter
// updates per flush, instead of three RMWs per tuple.
void BM_AckFanoutCoalesced(benchmark::State& state) {
  const uint32_t fanout = static_cast<uint32_t>(state.range(0));
  std::vector<BenchRootSlot> slots(kSlots);
  std::atomic<uint32_t> in_flight{0};
  std::atomic<uint64_t> active_roots{0};

  struct PendingAck {
    size_t slot;
    uint32_t count;
  };
  std::vector<PendingAck> acks_buffer;
  acks_buffer.reserve(kQuantum);

  uint64_t acks = 0;
  uint64_t emitted = 0;
  for (auto _ : state) {
    const size_t slot = acks % kSlots;
    BenchRootSlot& root = slots[slot];
    // Emit: one release store covers all copies; credit charged in batch.
    root.pending.store(fanout, std::memory_order_release);
    ++emitted;
    // Ack: defer with adjacent-run merging; the fanout-1 intermediate
    // completions are net-zero (the tree stays open) and cost nothing.
    for (uint32_t c = 1; c < fanout; ++c) {
      benchmark::DoNotOptimize(root.pending.load(std::memory_order_relaxed));
    }
    if (!acks_buffer.empty() && acks_buffer.back().slot == slot) {
      ++acks_buffer.back().count;
    } else {
      acks_buffer.push_back({slot, 1});
    }
    ++acks;
    if (acks_buffer.size() == kQuantum || (acks % kQuantum) == 0) {
      in_flight.fetch_add(static_cast<uint32_t>(emitted),
                          std::memory_order_relaxed);
      active_roots.fetch_add(emitted, std::memory_order_relaxed);
      uint64_t completed = 0;
      for (const PendingAck& ack : acks_buffer) {
        slots[ack.slot].pending.fetch_sub(ack.count,
                                          std::memory_order_acq_rel);
        completed += ack.count;
      }
      acks_buffer.clear();
      in_flight.fetch_sub(static_cast<uint32_t>(completed),
                          std::memory_order_relaxed);
      active_roots.fetch_sub(completed, std::memory_order_release);
      emitted = 0;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(acks) * fanout);
}
BENCHMARK(BM_AckFanoutCoalesced)->Arg(1)->Arg(4);

// Structural replica of runtime.cc's IdleGate and its WakeGate/ParkIdle
// fence pairing.
struct BenchIdleGate {
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint32_t> parked{0};
  std::mutex mu;
  std::condition_variable cv;
};

// One park/wake round trip per iteration: the consumer parks until the
// epoch moves, the producer (benchmark thread) bumps + notifies and waits
// for the consumer's acknowledgment. Measures the full wake latency a
// parked executor adds to the first tuple after idleness.
void BM_IdleWake(benchmark::State& state) {
  BenchIdleGate gate;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};

  std::thread consumer([&] {
    uint64_t seen = 0;
    while (!stop.load(std::memory_order_acquire)) {
      gate.parked.fetch_add(1, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> lock(gate.mu);
        gate.cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
          return gate.epoch.load(std::memory_order_relaxed) != seen ||
                 stop.load(std::memory_order_acquire);
        });
      }
      gate.parked.fetch_sub(1, std::memory_order_seq_cst);
      seen = gate.epoch.load(std::memory_order_relaxed);
      acked.store(seen, std::memory_order_release);
    }
  });

  uint64_t epoch = 0;
  for (auto _ : state) {
    ++epoch;
    // WakeGate: bump, fence, notify only if someone is parked.
    gate.epoch.store(epoch, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (gate.parked.load(std::memory_order_relaxed) > 0) {
      { std::lock_guard<std::mutex> lock(gate.mu); }
      gate.cv.notify_all();
    }
    while (acked.load(std::memory_order_acquire) < epoch) {
      std::this_thread::yield();
    }
  }

  stop.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(gate.mu);
  }
  gate.cv.notify_all();
  consumer.join();
  state.SetItemsProcessed(static_cast<int64_t>(epoch));
}
BENCHMARK(BM_IdleWake)->UseRealTime();

}  // namespace
}  // namespace slb

BENCHMARK_MAIN();
