// Figure 4 — fraction of workers (d/n) used by D-Choices for the head as a
// function of skew, for n in {5, 10, 50, 100}. d is computed analytically
// via FINDOPTIMALCHOICES from the true Zipf pmf (|K| = 1e4, eps = 1e-4,
// theta = 1/(5n)), exactly as Sec. IV-B does.
//
// Expected shape: d/n rises with skew and is clearly below 1 at n = 50 and
// n = 100 (D-C cheaper than W-C), while small deployments saturate at d = n.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/analysis/choices.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("Fig. 4: d/n used by D-Choices vs skew");
  double epsilon = 1e-4;
  flags.AddDouble("epsilon", &epsilon, "imbalance tolerance (Table III)");
  const BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  const uint64_t keys = 10000;

  PrintBanner("bench_fig04_dchoices_fraction", "Figure 4",
              "|K|=1e4, eps=" + FormatDouble(epsilon) + ", theta=1/(5n)");
  std::printf("#%-6s %10s %10s %10s %10s   (d values in parentheses)\n", "skew",
              "n=5", "n=10", "n=50", "n=100");
  for (double z : SkewGrid(env.paper)) {
    const ZipfDistribution zipf(z, keys);
    std::printf("%-7.1f", z);
    for (uint32_t n : {5u, 10u, 50u, 100u}) {
      const double theta = 1.0 / (5.0 * n);
      const uint64_t head_size = zipf.CountAboveThreshold(theta);
      const auto head =
          HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
      const uint32_t d = FindOptimalChoices(head, n, epsilon);
      std::printf(" %6.3f(%2u)", static_cast<double>(d) / n, d);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
