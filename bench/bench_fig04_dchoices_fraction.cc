// Figure 4 — fraction of workers (d/n) used by D-Choices for the head as a
// function of skew, for n in {5, 10, 50, 100}. d is computed analytically
// via FINDOPTIMALCHOICES from the true Zipf pmf (|K| = 1e4, eps = 1e-4,
// theta = 1/(5n)), exactly as Sec. IV-B does; the d / d_over_n metric
// columns carry the figure. No stream is simulated.
//
// Expected shape: d/n rises with skew and is clearly below 1 at n = 50 and
// n = 100 (D-C cheaper than W-C), while small deployments saturate at d = n.

#include "common/bench_util.h"
#include "slb/analysis/choices.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("Fig. 4: d/n used by D-Choices vs skew");
  double epsilon = 1e-4;
  flags.AddDouble("epsilon", &epsilon, "imbalance tolerance (Table III)");
  const BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  const uint64_t keys = 10000;

  PrintBanner("bench_fig04_dchoices_fraction", "Figure 4",
              "|K|=1e4, eps=" + FormatDouble(epsilon) + ", theta=1/(5n)");

  SweepGrid grid;
  grid.scenarios = SkewScenarios(env.paper, keys, /*num_messages=*/1,
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kDChoices};
  grid.worker_counts = {5, 10, 50, 100};
  grid.runner = [keys, epsilon](const SweepCellContext& ctx) -> Result<CellPayload> {
    const uint32_t n = ctx.num_workers;
    const ZipfDistribution zipf(ctx.scenario->param, keys);
    const double theta = 1.0 / (5.0 * n);
    const uint64_t head_size = zipf.CountAboveThreshold(theta);
    const auto head =
        HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    const uint32_t d = FindOptimalChoices(head, n, epsilon);
    CellPayload payload;
    payload.AddCount("d", d);
    payload.AddMetric("d_over_n", static_cast<double>(d) / n);
    payload.AddCount("head_keys", head_size);
    return payload;
  };
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
