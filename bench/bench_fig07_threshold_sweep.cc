// Figure 7 — load imbalance as a function of skew for different head
// thresholds theta in {2/n, 1/n, 1/(2n), 1/(4n), 1/(8n)}, for W-Choices and
// Round-Robin, at n in {5, 10, 50, 100} (|K| = 1e4).
//
// Expected shape: lowering theta (larger head) lowers imbalance for both
// algorithms; W-C reaches near-ideal balance for any theta <= 1/n, while RR
// keeps a visible gradient and degrades at scale — the evidence behind the
// paper's choice of a load-sensitive head policy (Q1).

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  AlgorithmKind algo;
  double z;
  uint32_t n;
  double theta_ratio;
  double imbalance;
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 7: imbalance vs skew per threshold");
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(200000, 10000000);
  const double ratios[] = {2.0, 1.0, 0.5, 0.25, 0.125};

  PrintBanner("bench_fig07_threshold_sweep", "Figure 7",
              "|K|=1e4, m=" + std::to_string(messages) +
                  ", theta = ratio/n for ratio in {2,1,1/2,1/4,1/8}");

  std::vector<Point> points;
  for (AlgorithmKind algo :
       {AlgorithmKind::kWChoices, AlgorithmKind::kRoundRobinHead}) {
    for (uint32_t n : {5u, 10u, 50u, 100u}) {
      for (double ratio : ratios) {
        for (double z : SkewGrid(env.paper)) {
          points.push_back(Point{algo, z, n, ratio, 0.0});
        }
      }
    }
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    PartitionSimConfig config;
    config.algorithm = p.algo;
    config.partitioner.num_workers = p.n;
    config.partitioner.theta_ratio = p.theta_ratio;
    config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
    config.num_sources = static_cast<uint32_t>(env.sources);
    const DatasetSpec spec =
        MakeZipfSpec(p.z, keys, messages, static_cast<uint64_t>(env.seed));
    p.imbalance = RunAveraged(config, spec, env.runs,
                              static_cast<uint64_t>(env.seed))
                      .mean_final_imbalance;
  }, static_cast<size_t>(env.threads));

  std::printf("#%-5s %8s %8s %12s %14s\n", "algo", "workers", "skew",
              "theta*n", "imbalance");
  for (const Point& p : points) {
    std::printf("%-6s %8u %8.1f %12.3f %14s\n",
                AlgorithmKindName(p.algo).c_str(), p.n, p.z, p.theta_ratio,
                Sci(p.imbalance).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
