// Figure 7 — load imbalance as a function of skew for different head
// thresholds theta in {2/n, 1/n, 1/(2n), 1/(4n), 1/(8n)}, for W-Choices and
// Round-Robin, at n in {5, 10, 50, 100} (|K| = 1e4).
//
// Expected shape: lowering theta (larger head) lowers imbalance for both
// algorithms; W-C reaches near-ideal balance for any theta <= 1/n, while RR
// keeps a visible gradient and degrades at scale — the evidence behind the
// paper's choice of a load-sensitive head policy (Q1).

#include <cstdio>

#include "common/bench_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 7: imbalance vs skew per threshold");
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(200000, 10000000);

  PrintBanner("bench_fig07_threshold_sweep", "Figure 7",
              "|K|=1e4, m=" + std::to_string(messages) +
                  ", theta = ratio/n for ratio in {2,1,1/2,1/4,1/8}");

  SweepGrid grid;
  for (double z : SkewGrid(env.paper)) {
    // The spec seed is irrelevant: ScenarioFromDataset reseeds per cell run.
    grid.scenarios.push_back(
        ScenarioFromDataset(MakeZipfSpec(z, keys, messages)));
    grid.scenarios.back().label = "ZF-z" + FormatDouble(z);
  }
  for (double ratio : {2.0, 1.0, 0.5, 0.25, 0.125}) {
    SweepVariant variant;
    variant.label = "theta*n=" + FormatDouble(ratio);
    variant.options.theta_ratio = ratio;
    grid.variants.push_back(variant);
  }
  grid.algorithms = {AlgorithmKind::kWChoices, AlgorithmKind::kRoundRobinHead};
  grid.worker_counts = {5, 10, 50, 100};
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
