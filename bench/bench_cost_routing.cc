// Cost-aware routing on heterogeneous work (ROADMAP item 2).
//
// The paper prices every message at unit cost, so the load a partitioner
// balances (message counts) and the load that matters (service time) are the
// same signal. This bench breaks that tie with the cost-model catalog
// (slb/workload/cost_model.h): each cell routes one calibrated Zipf stream
// under a per-key cost model x a balance signal:
//
//   models    unit / pareto / correlated / anti-correlated
//   signals   count      — the paper's algorithms, verbatim
//             cost       — greedy choices weighted by cumulative cost
//             in-flight  — choices weighted by outstanding work under the
//                          deterministic completion model
//
// The headline is the anti-correlated column: expensive keys are the RARE
// ones, so a count-based balancer looks balanced by its own signal while the
// true cost imbalance is far worse — and the frequency threshold that
// D-C/W-C use to split head from tail mis-ranks the keys that actually
// carry the load (the misrank_rate column). Switching the greedy signal to
// cost or in-flight recovers most of that gap without touching the
// algorithms themselves.
//
// Output: the standard summary table (CostCounters columns appear since
// every cell has a service model), then a derived "# cost:" mis-rank table,
// one row per (model, algorithm): cost imbalance under each signal, the
// count imbalance the count-signal run *thinks* it has, the mis-rank rate,
// and gap_recovered = (I_cost(count) - I_cost(inflight)) /
// (I_cost(count) - I_count(count)), clamped to 0 when the gap is ~0.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.h"
#include "slb/workload/cost_model.h"

namespace slb::bench {
namespace {

constexpr const char* kSignalNames[] = {"count", "cost", "inflight"};

BalanceSignal SignalFromName(const std::string& name) {
  if (name == "cost") return BalanceSignal::kCost;
  if (name == "inflight") return BalanceSignal::kInFlight;
  return BalanceSignal::kCount;
}

std::string VariantLabel(const std::string& model, const char* signal) {
  std::string label = model;
  label += '/';
  label += signal;
  return label;
}

/// Completion rate for `model`: mean arrival work per stream message is
/// MeanCost (frequency-weighted means differ, but the per-key mean is the
/// deterministic choice both quick and paper scales share), spread over n
/// workers, at 90% utilization so backlog differences are visible but
/// queues stay stable.
double ServiceRateFor(const CostModel& model, uint32_t workers) {
  return model.MeanCost() / (0.9 * static_cast<double>(workers));
}

/// Derived table: per (model, algorithm), the cost imbalance under each
/// balance signal next to the count imbalance the count-signal run reports
/// about itself, plus the sketch mis-rank rate. TSV with '#' headers.
void PrintCostTable(const SweepResultTable& table,
                    const std::vector<std::string>& models,
                    const std::vector<AlgorithmKind>& algorithms,
                    uint32_t workers) {
  std::printf(
      "# cost: imbalance over true service cost by balance signal "
      "(gap_recovered ~1 = in-flight signal closes the count-signal gap)\n");
  std::printf(
      "# model\talgo\tworkers\tcost_I_count\tcost_I_cost\tcost_I_inflight\t"
      "count_I_count\tmisrank_rate\tgap_recovered\n");
  for (const std::string& model : models) {
    for (AlgorithmKind algorithm : algorithms) {
      const SweepCellResult* count = table.Find(
          "zipf", VariantLabel(model, "count"), algorithm, workers);
      const SweepCellResult* cost = table.Find(
          "zipf", VariantLabel(model, "cost"), algorithm, workers);
      const SweepCellResult* inflight = table.Find(
          "zipf", VariantLabel(model, "inflight"), algorithm, workers);
      if (count == nullptr || cost == nullptr || inflight == nullptr ||
          !count->status.ok() || !cost->status.ok() ||
          !inflight->status.ok() || !count->payload.cost.has_value() ||
          !cost->payload.cost.has_value() ||
          !inflight->payload.cost.has_value()) {
        continue;  // failed cells already surfaced in the summary table
      }
      const CostCounters& on_count = *count->payload.cost;
      const CostCounters& on_cost = *cost->payload.cost;
      const CostCounters& on_inflight = *inflight->payload.cost;
      const double gap = on_count.cost_imbalance - on_count.count_imbalance;
      const double recovered =
          gap > 1e-12
              ? (on_count.cost_imbalance - on_inflight.cost_imbalance) / gap
              : 0.0;
      std::printf("%s\t%s\t%u\t%s\t%s\t%s\t%s\t%s\t%s\n", model.c_str(),
                  AlgorithmKindName(algorithm).c_str(), workers,
                  Sci(on_count.cost_imbalance).c_str(),
                  Sci(on_cost.cost_imbalance).c_str(),
                  Sci(on_inflight.cost_imbalance).c_str(),
                  Sci(on_count.count_imbalance).c_str(),
                  Sci(on_count.misrank_rate).c_str(), Sci(recovered).c_str());
    }
  }
}

int Main(int argc, char** argv) {
  FlagSet flags("Cost-aware routing: cost models x balance signals");
  int64_t workers = 50;
  double zipf = 1.0;
  flags.AddInt64("workers", &workers, "deployment size n");
  flags.AddDouble("zipf", &zipf, "Zipf exponent of the input stream");
  const BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  if (!CheckReportFormat(env, ReportMode::kTable)) return 2;
  const uint64_t messages = env.MessagesOr(500000, 5000000);
  constexpr uint64_t kNumKeys = 10000;

  const std::vector<std::string> models = CostModelNames();
  PrintBanner("bench_cost_routing",
              "no paper figure — heterogeneous-cost extension (ROADMAP "
              "item 2)",
              "n=" + std::to_string(workers) + ", |K|=1e4, m=" +
                  std::to_string(messages) + ", z=" + Sci(zipf) +
                  ", models: " + JoinStrings(models, "/") +
                  ", signals: count/cost/inflight");

  ScenarioOptions stream_options;
  stream_options.num_keys = kNumKeys;
  stream_options.num_messages = messages;
  stream_options.zipf_exponent = zipf;

  const std::vector<AlgorithmKind> algorithms = {AlgorithmKind::kPkg,
                                                 AlgorithmKind::kDChoices,
                                                 AlgorithmKind::kWChoices};
  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("zipf", stream_options)};
  grid.algorithms = algorithms;
  grid.worker_counts = {static_cast<uint32_t>(workers)};
  for (const std::string& model : models) {
    // The sweep only carries the model NAME; the completion rate needs the
    // model's mean cost, so instantiate it once here at the stream's key
    // count (the simulator rebuilds it identically per cell).
    CostModelOptions model_options;
    model_options.num_keys = kNumKeys;
    auto instance = MakeCostModel(model, model_options);
    if (!instance.ok()) {
      std::fprintf(stderr, "cost model %s: %s\n", model.c_str(),
                   instance.status().message().c_str());
      return 1;
    }
    const double rate =
        ServiceRateFor(*instance.value(), static_cast<uint32_t>(workers));
    for (const char* signal : kSignalNames) {
      SweepVariant variant;
      variant.label = VariantLabel(model, signal);
      variant.options.balance_on = SignalFromName(signal);
      variant.service.cost_model = model;
      variant.service.options = model_options;
      variant.service.rate = rate;
      grid.variants.push_back(std::move(variant));
    }
  }

  const SweepResultTable table = RunGridForEnv(env, std::move(grid));
  const int exit_code = ReportTable(env, table, ReportMode::kTable);
  std::printf("\n");
  PrintCostTable(table, models, algorithms, static_cast<uint32_t>(workers));
  return exit_code;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
