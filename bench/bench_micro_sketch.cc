// Micro-benchmarks: per-message update cost of the heavy-hitter sketches
// (SpaceSaving is on every sender's hot path).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "slb/common/rng.h"
#include "slb/sketch/count_min.h"
#include "slb/sketch/lossy_counting.h"
#include "slb/sketch/misra_gries.h"
#include "slb/sketch/space_saving.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

std::vector<uint64_t> MakeKeys(double z, size_t count) {
  ZipfDistribution zipf(z, 100000);
  Rng rng(7);
  std::vector<uint64_t> keys(count);
  for (auto& k : keys) k = zipf.Sample(&rng);
  return keys;
}

template <typename Sketch>
void RunUpdates(benchmark::State& state, Sketch& sketch) {
  const auto keys = MakeKeys(state.range(0) / 10.0, 1 << 16);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.UpdateAndEstimate(keys[i++ & 0xffff]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SpaceSavingUpdate(benchmark::State& state) {
  SpaceSaving sketch(1000);
  RunUpdates(state, sketch);
}
BENCHMARK(BM_SpaceSavingUpdate)->Arg(5)->Arg(10)->Arg(20);  // z = 0.5, 1, 2

void BM_MisraGriesUpdate(benchmark::State& state) {
  MisraGries sketch(1000);
  RunUpdates(state, sketch);
}
BENCHMARK(BM_MisraGriesUpdate)->Arg(5)->Arg(10)->Arg(20);

void BM_LossyCountingUpdate(benchmark::State& state) {
  LossyCounting sketch(0.001);
  RunUpdates(state, sketch);
}
BENCHMARK(BM_LossyCountingUpdate)->Arg(5)->Arg(10)->Arg(20);

void BM_CountMinUpdate(benchmark::State& state) {
  CountMin sketch(2048, 4, 1000);
  RunUpdates(state, sketch);
}
BENCHMARK(BM_CountMinUpdate)->Arg(5)->Arg(10)->Arg(20);

void BM_SpaceSavingHeavyHitters(benchmark::State& state) {
  SpaceSaving sketch(1000);
  const auto keys = MakeKeys(1.5, 1 << 16);
  for (uint64_t k : keys) sketch.UpdateAndEstimate(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.HeavyHitters(0.001));
  }
}
BENCHMARK(BM_SpaceSavingHeavyHitters);

}  // namespace
}  // namespace slb

BENCHMARK_MAIN();
