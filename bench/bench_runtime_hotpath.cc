// Threaded-runtime hot-path bench — multi-stage (spout -> bolt -> bolt)
// measured throughput (ROADMAP item 4; not a paper figure).
//
// The fig13/fig14 threaded cells run the paper's single-layer DAG, so every
// tuple tree has exactly one descendant per routed copy and the ack path is
// barely exercised. This bench drives the runtime's actual hot machinery at
// depth: a fanout bolt emits `--fanout` child tuples per input, so each root
// tree carries 1 + fanout acks through the coalesced per-executor ack
// buffers, two partitioned edges stress the emit batching and ring wakeups,
// and the sink stage holds real per-key state. Throughput here is root
// trees fully acked per second — the number the coalesced-ack and adaptive
// wait work exists to raise.
//
// Topology: `sources` spouts -> `fanout` bolts (swept grouping, the paper's
// schemes) -> `sinks` CountingBolt (shuffle; children are stateless fan-out
// work, the routing under test is the first edge).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/dspe_cell.h"
#include "slb/common/rng.h"
#include "slb/dspe/runtime.h"
#include "slb/dspe/standard_bolts.h"
#include "slb/dspe/topology.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

// The scenario stream split round-robin among spout tasks (spout s emits
// positions s, s+S, ...), same sender interleave as the fig13 cells.
class HotpathSpout final : public Spout {
 public:
  HotpathSpout(std::shared_ptr<const std::vector<uint64_t>> keys,
               uint64_t offset, uint64_t stride)
      : keys_(std::move(keys)), pos_(offset), stride_(stride) {}

  bool NextTuple(TopologyTuple* out) override {
    if (pos_ >= keys_->size()) return false;
    out->key = (*keys_)[pos_];
    out->value = 1;
    pos_ += stride_;
    return true;
  }

 private:
  std::shared_ptr<const std::vector<uint64_t>> keys_;
  uint64_t pos_;
  uint64_t stride_;
};

// Emits `fanout` children per input tuple, keys decorrelated from the parent
// so the second edge routes a spread stream rather than replaying the first
// edge's skew.
class FanoutBolt final : public Bolt {
 public:
  explicit FanoutBolt(uint32_t fanout) : fanout_(fanout) {}

  void Execute(const TopologyTuple& tuple, OutputCollector* out) override {
    for (uint32_t i = 0; i < fanout_; ++i) {
      out->Emit(TopologyTuple{tuple.key * 1000003u + i, tuple.value});
    }
  }

 private:
  uint32_t fanout_;
};

struct RunAverages {
  double throughput = 0.0;
  double makespan = 0.0;
  double latency_p99 = 0.0;
  double idle_s = 0.0;
  double park_s = 0.0;
  double parks = 0.0;
  uint64_t roots = 0;
  uint64_t tuples = 0;
  uint32_t pinned = 0;
};

int Main(int argc, char** argv) {
  BenchEnv defaults;
  defaults.sources = 8;

  std::string wait_name = "adaptive";
  int64_t engine_threads = 8;
  int64_t queue_capacity = 1024;
  int64_t batch_size = 64;
  int64_t fanout = 4;
  int64_t stage_workers = 16;
  bool pin_threads = false;
  FlagSet extra;
  extra.AddInt64("engine-threads", &engine_threads,
                 "executor threads (0 = hardware)");
  extra.AddInt64("queue-capacity", &queue_capacity,
                 "per-edge ring capacity in tuples");
  extra.AddInt64("batch-size", &batch_size,
                 "emit batch / task quantum in tuples");
  extra.AddInt64("fanout", &fanout,
                 "children emitted per tuple by the middle bolt stage");
  extra.AddInt64("stage-workers", &stage_workers,
                 "parallelism of each bolt stage");
  extra.AddString("wait-strategy", &wait_name,
                  "idle executor policy (adaptive or spin)");
  extra.AddBool("pin-threads", &pin_threads,
                "pin executors round-robin over CPUs");

  BenchEnv env = ParseBenchArgs(
      argc, argv, "Threaded runtime hot path: spout -> fanout -> sink", &extra,
      defaults);
  const auto wait_strategy = ParseWaitStrategy(wait_name);
  if (!wait_strategy.ok()) {
    std::fprintf(stderr, "%s\n", wait_strategy.status().ToString().c_str());
    return 1;
  }
  // This bench saturates the host with its own executor threads; the
  // --threads sweep axis does not apply (kept for smoke-script uniformity).
  const uint64_t messages = env.MessagesOr(100000, 1000000);
  const uint64_t num_keys = 10000;

  PrintBanner("bench_runtime_hotpath", "ROADMAP item 4",
              "spout->fanout->sink, threads=" + std::to_string(engine_threads) +
                  ", fanout=" + std::to_string(fanout) + ", stage_workers=" +
                  std::to_string(stage_workers) + ", m=" +
                  std::to_string(messages) + ", wait=" + wait_name +
                  (pin_threads ? ", pinned" : ""));
  std::printf(
      "#scenario\tzipf\talgo\tthreads\tfanout\tthroughput_per_s\t"
      "makespan_s\troots_acked\ttuples_processed\tlat_p99_ms\t"
      "idle_s\tpark_s\tparks\tthreads_pinned\n");

  const std::vector<double> exponents = {1.4, 2.0};
  const std::vector<AlgorithmKind> algorithms = {
      AlgorithmKind::kPkg, AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
      AlgorithmKind::kShuffleGrouping};

  for (double z : exponents) {
    // One materialized stream per scenario, shared read-only by every run.
    auto keys = std::make_shared<std::vector<uint64_t>>();
    keys->reserve(messages);
    ZipfDistribution zipf(z, num_keys);
    Rng rng(static_cast<uint64_t>(env.seed));
    for (uint64_t i = 0; i < messages; ++i) keys->push_back(zipf.Sample(&rng));
    std::shared_ptr<const std::vector<uint64_t>> shared_keys = keys;

    for (AlgorithmKind algorithm : algorithms) {
      RunAverages avg;
      for (int64_t run = 0; run < env.runs; ++run) {
        const uint32_t num_sources = static_cast<uint32_t>(env.sources);
        const uint32_t fanout_copies = static_cast<uint32_t>(fanout);
        TopologyBuilder builder;
        builder.AddSpout(
            "sources",
            [shared_keys, num_sources](uint32_t task) {
              return std::make_unique<HotpathSpout>(shared_keys, task,
                                                    num_sources);
            },
            num_sources);
        Grouping stage1;
        stage1.algorithm = algorithm;
        builder
            .AddBolt("fanout",
                     [fanout_copies](uint32_t) {
                       return std::make_unique<FanoutBolt>(fanout_copies);
                     },
                     static_cast<uint32_t>(stage_workers))
            .Input("sources", stage1);
        builder
            .AddBolt("sinks",
                     [](uint32_t) { return std::make_unique<CountingBolt>(); },
                     static_cast<uint32_t>(stage_workers))
            .Input("fanout", Grouping::Shuffle());

        TopologyOptions options;
        options.hash_seed = static_cast<uint64_t>(env.seed);
        options.seed = static_cast<uint64_t>(env.seed) + static_cast<uint64_t>(run);
        TopologyRuntimeOptions runtime;
        runtime.num_threads = static_cast<uint32_t>(engine_threads);
        runtime.queue_capacity = static_cast<uint32_t>(queue_capacity);
        runtime.batch_size = static_cast<uint32_t>(batch_size);
        runtime.wait_strategy = wait_strategy.value();
        runtime.pin_threads = pin_threads;

        auto result = ExecuteTopologyThreaded(builder.Build(), options, runtime);
        if (!result.ok()) {
          std::fprintf(stderr, "run failed (z=%g, %s): %s\n", z,
                       AlgorithmKindName(algorithm).c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        const TopologyStats& stats = result.value();
        avg.throughput += stats.throughput_per_s;
        avg.makespan += stats.makespan_s;
        avg.latency_p99 += stats.latency_p99_ms;
        avg.idle_s += stats.idle_s;
        avg.park_s += stats.park_s;
        avg.parks += static_cast<double>(stats.parks);
        avg.roots = stats.roots_acked;
        avg.tuples = stats.tuples_processed;
        avg.pinned = stats.threads_pinned;
      }
      const double n = static_cast<double>(env.runs);
      std::printf("zipf-%.1f\t%.1f\t%s\t%lld\t%lld\t%s\t%s\t%llu\t%llu\t%s\t%s\t%s\t%.0f\t%u\n",
                  z, z, AlgorithmKindName(algorithm).c_str(),
                  static_cast<long long>(engine_threads),
                  static_cast<long long>(fanout), Sci(avg.throughput / n).c_str(),
                  Sci(avg.makespan / n).c_str(),
                  static_cast<unsigned long long>(avg.roots),
                  static_cast<unsigned long long>(avg.tuples),
                  Sci(avg.latency_p99 / n).c_str(), Sci(avg.idle_s / n).c_str(),
                  Sci(avg.park_s / n).c_str(), avg.parks / n, avg.pinned);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
