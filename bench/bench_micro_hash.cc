// Micro-benchmarks: throughput of the hash primitives used on the routing
// hot path (not a paper figure; engineering due diligence).

#include <benchmark/benchmark.h>

#include <string>

#include "slb/hash/hash.h"
#include "slb/hash/hash_family.h"

namespace slb {
namespace {

void BM_Fmix64(benchmark::State& state) {
  uint64_t key = 0x12345;
  for (auto _ : state) {
    key = Murmur3Fmix64(key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_Fmix64);

void BM_SeededHash64(benchmark::State& state) {
  uint64_t key = 0x12345;
  for (auto _ : state) {
    key = SeededHash64(key, 7);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_SeededHash64);

void BM_Murmur3Buffer(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Murmur3_x64_64(data.data(), data.size(), 1));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Murmur3Buffer)->Arg(8)->Arg(64)->Arg(1024);

void BM_XxHash64Buffer(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(XxHash64(data.data(), data.size(), 1));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XxHash64Buffer)->Arg(8)->Arg(64)->Arg(1024);

void BM_TabulationHash(benchmark::State& state) {
  const TabulationHash hash(3);
  uint64_t key = 1;
  for (auto _ : state) {
    key += hash.Hash(key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_TabulationHash);

void BM_HashFamilyCandidates(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  HashFamily family(d, 100, 5);
  uint32_t out[32];
  uint64_t key = 0;
  for (auto _ : state) {
    family.Candidates(++key, d, out);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_HashFamilyCandidates)->Arg(2)->Arg(5)->Arg(20);

}  // namespace
}  // namespace slb

BENCHMARK_MAIN();
