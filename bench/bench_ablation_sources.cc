// Ablation: how does the number of independent sources affect balance?
//
// Every source routes with only its LOCAL load estimate and its LOCAL
// sketch (Sec. III-B). The paper bounds the worst case at s * eps
// (Fig. 10-11 reference line). This study sweeps s — as the variant axis,
// via SweepVariant::num_sources — and verifies the degradation is graceful:
// the argument for why sender-local state (no coordination on the hot path)
// is acceptable. The s_eps_bound metric column carries the bound.

#include <string>

#include "common/bench_util.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: sender-local state vs source count");
  const uint32_t n = 50;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_sources", "design ablation (not a paper figure)",
              "n=50, |K|=1e4, m=" + std::to_string(messages) +
                  ", worst-case bound s*eps");

  SweepGrid grid;
  grid.scenarios = ZipfScenarios({1.4, 2.0}, keys, messages,
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
                     AlgorithmKind::kPkg};
  grid.worker_counts = {n};
  for (uint32_t s : {1u, 2u, 5u, 10u, 20u, 48u}) {
    SweepVariant variant;
    variant.label = "s=" + std::to_string(s);
    variant.num_sources = s;
    grid.variants.push_back(variant);
  }
  grid.runner = [](const SweepCellContext& ctx) -> Result<CellPayload> {
    auto payload = ctx.RunDefault();
    if (!payload.ok()) return payload;
    const uint32_t s = ctx.variant->num_sources;
    payload->AddMetric("s_eps_bound", s * ctx.variant->options.epsilon);
    return payload;
  };
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
