// Ablation: how does the number of independent sources affect balance?
//
// Every source routes with only its LOCAL load estimate and its LOCAL
// sketch (Sec. III-B). The paper bounds the worst case at s * eps
// (Fig. 10-11 reference line). This study sweeps s and verifies the
// degradation is graceful — the argument for why sender-local state
// (no coordination on the hot path) is acceptable.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  AlgorithmKind algo;
  double z;
  uint32_t sources;
  double imbalance = 0;
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: sender-local state vs source count");
  const uint32_t n = 50;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_sources", "design ablation (not a paper figure)",
              "n=50, |K|=1e4, m=" + std::to_string(messages) +
                  ", worst-case bound s*eps");

  std::vector<Point> points;
  for (AlgorithmKind algo : {AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
                             AlgorithmKind::kPkg}) {
    for (double z : {1.4, 2.0}) {
      for (uint32_t s : {1u, 2u, 5u, 10u, 20u, 48u}) {
        points.push_back(Point{algo, z, s, 0});
      }
    }
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    PartitionSimConfig config;
    config.algorithm = p.algo;
    config.partitioner.num_workers = n;
    config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
    config.num_sources = p.sources;
    const DatasetSpec spec =
        MakeZipfSpec(p.z, keys, messages, static_cast<uint64_t>(env.seed));
    p.imbalance = RunAveraged(config, spec, env.runs,
                              static_cast<uint64_t>(env.seed))
                      .mean_final_imbalance;
  }, static_cast<size_t>(env.threads));

  std::printf("#%-5s %6s %8s %14s %14s\n", "algo", "skew", "sources",
              "imbalance", "s*eps");
  for (const Point& p : points) {
    std::printf("%-6s %6.1f %8u %14s %14s\n", AlgorithmKindName(p.algo).c_str(),
                p.z, p.sources, Sci(p.imbalance).c_str(),
                Sci(p.sources * 1e-4).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
