// Figure 14 — end-to-end latency on the simulated DSPE cluster for KG, PKG,
// D-C, W-C, and SG on ZF streams with z in {1.4, 1.7, 2.0} (n = 80,
// 48 sources). The lat_* payload columns are the tuple-level latency
// snapshot; the worker_avg_* metric columns report, as the paper does, the
// maximum of the per-worker average latencies plus the 50th/95th/99th
// percentiles across workers.
//
// Expected shape: KG's hot-worker queue inflates its max latency by multiples
// of SG's; PKG sits in between; D-C and W-C track SG closely. Paper headline:
// D-C/W-C cut PKG's p99 by ~60% and KG's by >75% at high skew.

#include <string>

#include "common/bench_util.h"
#include "common/dspe_cell.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  BenchEnv defaults;
  defaults.sources = 48;  // the paper's 48 spouts, overridable via --sources
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 14: cluster latency",
                                      nullptr, defaults);
  const uint64_t messages = env.MessagesOr(200000, 2000000);

  PrintBanner("bench_fig14_latency", "Figure 14",
              "n=80, sources=" + std::to_string(env.sources) +
                  ", |K|=1e4, m=" + std::to_string(messages) +
                  "; tuple-level lat_* + across-worker worker_avg_* (ms)");

  DspeCellOptions cell;
  cell.throughput = false;  // Fig. 13 reports throughput; this figure latency
  cell.worker_latency = true;

  SweepGrid grid;
  grid.scenarios = ZipfScenarios({1.4, 1.7, 2.0}, 10000, messages,
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kKeyGrouping, AlgorithmKind::kPkg,
                     AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
                     AlgorithmKind::kShuffleGrouping};
  grid.worker_counts = {80};
  grid.runner = MakeDspeCellRunner(cell);
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
