// Figure 14 — end-to-end latency on the simulated DSPE cluster for KG, PKG,
// D-C, W-C, and SG on ZF streams with z in {1.4, 1.7, 2.0} (n = 80,
// 48 sources). Reports, as the paper does, the maximum of the per-worker
// average latencies plus the 50th/95th/99th percentiles across workers, and
// additionally the tuple-level percentiles.
//
// Expected shape: KG's hot-worker queue inflates its max latency by multiples
// of SG's; PKG sits in between; D-C and W-C track SG closely. Paper headline:
// D-C/W-C cut PKG's p99 by ~60% and KG's by >75% at high skew.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/sim/dspe_simulator.h"

namespace slb::bench {
namespace {

struct Point {
  double z;
  AlgorithmKind algo;
  DspeResult result;
};

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 14: cluster latency");
  const uint64_t messages = env.MessagesOr(200000, 2000000);

  PrintBanner("bench_fig14_latency", "Figure 14",
              "n=80, sources=48, |K|=1e4, m=" + std::to_string(messages) +
                  "; per-worker avg latency max/p50/p95/p99 (ms)");

  const AlgorithmKind algos[5] = {
      AlgorithmKind::kKeyGrouping, AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
      AlgorithmKind::kWChoices, AlgorithmKind::kShuffleGrouping};

  std::vector<Point> points;
  for (double z : {1.4, 1.7, 2.0}) {
    for (AlgorithmKind algo : algos) points.push_back(Point{z, algo, {}});
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    DspeConfig config;
    config.algorithm = p.algo;
    config.partitioner.num_workers = 80;
    config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
    config.num_sources = 48;
    config.num_messages = messages;
    config.zipf_exponent = p.z;
    config.num_keys = 10000;
    config.seed = static_cast<uint64_t>(env.seed);
    auto result = RunDspeSimulation(config);
    if (result.ok()) p.result = result.value();
  }, static_cast<size_t>(env.threads));

  std::printf("#%-5s %6s %10s %10s %10s %10s | %10s %10s %10s\n", "skew",
              "algo", "max-avg", "w-p50", "w-p95", "w-p99", "tuple-p50",
              "tuple-p95", "tuple-p99");
  for (const Point& p : points) {
    std::printf("%-6.1f %6s %10.1f %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n",
                p.z, AlgorithmKindName(p.algo).c_str(),
                p.result.max_worker_avg_latency_ms,
                p.result.p50_worker_avg_latency_ms,
                p.result.p95_worker_avg_latency_ms,
                p.result.p99_worker_avg_latency_ms, p.result.latency_p50_ms,
                p.result.latency_p95_ms, p.result.latency_p99_ms);
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
