// Figure 6 — memory overhead of D-Choices and W-Choices relative to shuffle
// grouping, for n in {50, 100}. Estimated exactly as Fig. 5 (Sec. IV-B
// formulas over the stream's frequency table): memSG = sum_k min(f_k, n).
// The mem_measured_overhead_pct column reports the simulated runs' actual
// distinct (key,worker) assignments.
//
// One row per (skew, n, algorithm) with the MemoryModelTable payload columns
// (mem_baseline = sg) plus the analytic d as a metric column.
//
// Expected shape: both algorithms use 70-95% LESS memory than SG across the
// skew range (strongly negative overhead) — the paper's second desideratum.

#include <string>

#include "common/bench_util.h"
#include "common/memory_overhead.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 6: memory overhead w.r.t. SG");
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(500000, 10000000);

  PrintBanner("bench_fig06_memory_vs_sg", "Figure 6",
              "|K|=1e4, m=" + std::to_string(messages) +
                  ", eps=1e-4, theta=1/(5n), n in {50,100}");

  SweepGrid grid;
  grid.scenarios =
      SkewScenarios(env.paper, keys, messages, static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kDChoices, AlgorithmKind::kWChoices};
  grid.worker_counts = {50, 100};
  grid.track_memory = true;
  grid.runner = MakeMemoryOverheadRunner(MemoryBaseline::kSg);
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
