// Micro-benchmarks: per-message routing cost of every grouping scheme —
// the overhead a DSPE pays on its emit path (not a paper figure).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "slb/common/rng.h"
#include "slb/core/partitioner.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

void RunRoute(benchmark::State& state, AlgorithmKind kind) {
  PartitionerOptions options;
  options.num_workers = static_cast<uint32_t>(state.range(0));
  options.hash_seed = 3;
  auto partitioner = CreatePartitioner(kind, options);
  if (!partitioner.ok()) {
    state.SkipWithError("partitioner creation failed");
    return;
  }
  ZipfDistribution zipf(1.4, 100000);
  Rng rng(11);
  std::vector<uint64_t> keys(1 << 16);
  for (auto& k : keys) k = zipf.Sample(&rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.value()->Route(keys[i++ & 0xffff]));
  }
  state.SetItemsProcessed(state.iterations());
}

// Batched routing — the emit path a real DSPE drives: one virtual dispatch
// per batch of 64 keys instead of per message (RouteBatch hot path).
void RunRouteBatch(benchmark::State& state, AlgorithmKind kind) {
  PartitionerOptions options;
  options.num_workers = static_cast<uint32_t>(state.range(0));
  options.hash_seed = 3;
  auto partitioner = CreatePartitioner(kind, options);
  if (!partitioner.ok()) {
    state.SkipWithError("partitioner creation failed");
    return;
  }
  ZipfDistribution zipf(1.4, 100000);
  Rng rng(11);
  std::vector<uint64_t> keys(1 << 16);
  for (auto& k : keys) k = zipf.Sample(&rng);
  constexpr size_t kBatch = 64;
  uint32_t out[kBatch];
  size_t i = 0;
  for (auto _ : state) {
    // i stays a multiple of kBatch, so the masked start + kBatch never
    // overruns the 2^16-key buffer.
    partitioner.value()->RouteBatch(&keys[i & 0xffff], kBatch, out);
    benchmark::DoNotOptimize(out);
    i += kBatch;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_RouteKG(benchmark::State& state) {
  RunRoute(state, AlgorithmKind::kKeyGrouping);
}
void BM_RouteSG(benchmark::State& state) {
  RunRoute(state, AlgorithmKind::kShuffleGrouping);
}
void BM_RoutePKG(benchmark::State& state) {
  RunRoute(state, AlgorithmKind::kPkg);
}
void BM_RouteDC(benchmark::State& state) {
  RunRoute(state, AlgorithmKind::kDChoices);
}
void BM_RouteWC(benchmark::State& state) {
  RunRoute(state, AlgorithmKind::kWChoices);
}
void BM_RouteRR(benchmark::State& state) {
  RunRoute(state, AlgorithmKind::kRoundRobinHead);
}
void BM_RouteBatchPKG(benchmark::State& state) {
  RunRouteBatch(state, AlgorithmKind::kPkg);
}
void BM_RouteBatchDC(benchmark::State& state) {
  RunRouteBatch(state, AlgorithmKind::kDChoices);
}
void BM_RouteBatchWC(benchmark::State& state) {
  RunRouteBatch(state, AlgorithmKind::kWChoices);
}

BENCHMARK(BM_RouteKG)->Arg(10)->Arg(100);
BENCHMARK(BM_RouteSG)->Arg(10)->Arg(100);
BENCHMARK(BM_RoutePKG)->Arg(10)->Arg(100);
BENCHMARK(BM_RouteDC)->Arg(10)->Arg(100);
BENCHMARK(BM_RouteWC)->Arg(10)->Arg(100);
BENCHMARK(BM_RouteRR)->Arg(10)->Arg(100);
BENCHMARK(BM_RouteBatchPKG)->Arg(10)->Arg(100);
BENCHMARK(BM_RouteBatchDC)->Arg(10)->Arg(100);
BENCHMARK(BM_RouteBatchWC)->Arg(10)->Arg(100);

}  // namespace
}  // namespace slb

BENCHMARK_MAIN();
