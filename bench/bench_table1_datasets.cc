// Table I — summary of the datasets used in the experiments: number of
// messages, number of (distinct) keys, and probability of the most frequent
// key p1. Our datasets are calibrated synthetic stand-ins (see DESIGN.md);
// each sweep cell measures one generated stream and reports the paper's
// targets next to the measured statistics as metric columns (paper_msgs /
// paper_keys / paper_p1_pct vs msgs / distinct_keys / p1_pct, plus the
// calibrated zipf_z). No routing is simulated; the algorithm/workers
// coordinates are placeholders.

#include <cstdio>
#include <map>
#include <string>

#include "common/bench_util.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

struct PaperTargets {
  double messages;
  double keys;
  double p1;
};

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(
      argc, argv, "Table I: dataset statistics (paper targets vs measured)");
  const double wp_scale = env.paper ? 1.0 : 0.02;
  const double tw_scale = env.paper ? 0.05 : 0.002;  // full TW is 1.2G msgs
  const double ct_scale = 1.0;

  PrintBanner("bench_table1_datasets", "Table I",
              env.paper ? "paper scales (TW capped at 5%)" : "quick scales");

  SweepGrid grid;
  std::map<std::string, PaperTargets> targets;
  auto add = [&](DatasetSpec spec, const PaperTargets& paper) {
    if (env.messages > 0) {
      spec.num_messages = static_cast<uint64_t>(env.messages);
    }
    targets[spec.name] = paper;
    grid.scenarios.push_back(ScenarioFromDataset(spec));
  };
  add(MakeWikipediaSpec(wp_scale), {22e6, 2.9e6, 0.0932});
  add(MakeTwitterSpec(tw_scale), {1.2e9, 31e6, 0.0267});
  add(MakeCashtagsSpec(ct_scale), {690e3, 2.9e3, 0.0329});
  // The ZF family: measured p1 for a representative exponent per |K|.
  for (uint64_t keys : {10000ULL, 100000ULL, 1000000ULL}) {
    DatasetSpec zf = MakeZipfSpec(1.0, keys, env.MessagesOr(500000, 10000000),
                                  static_cast<uint64_t>(env.seed));
    zf.name = "ZF-" + HumanCount(keys);
    add(zf, {static_cast<double>(zf.num_messages), static_cast<double>(keys),
             ZipfTopProbability(1.0, keys)});
  }

  grid.algorithms = {AlgorithmKind::kPkg};  // placeholder coordinate
  grid.worker_counts = {1};
  grid.runner = [targets](const SweepCellContext& ctx) -> Result<CellPayload> {
    auto gen = ctx.MakeStream();
    if (!gen.ok()) return gen.status();
    const DatasetStats stats = MeasureDataset(gen->get());
    const PaperTargets& paper = targets.at(ctx.scenario->label);

    CellPayload payload;
    payload.sim.total_messages = stats.messages;
    payload.AddCount("paper_msgs", static_cast<uint64_t>(paper.messages));
    payload.AddCount("paper_keys", static_cast<uint64_t>(paper.keys));
    payload.AddMetric("paper_p1_pct", paper.p1 * 100);
    payload.AddCount("msgs", stats.messages);
    payload.AddCount("distinct_keys", stats.distinct_keys);
    payload.AddMetric("p1_pct", stats.measured_p1 * 100);
    payload.AddMetric("zipf_z", ctx.scenario->param);
    return payload;
  };
  const int rc = RunGridAndReport(env, std::move(grid));
  std::printf("# note: CT's measured whole-stream p1 is below target by design"
              " (concept drift spreads the rank-1 mass across identities).\n");
  return rc;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
