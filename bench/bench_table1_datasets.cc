// Table I — summary of the datasets used in the experiments: number of
// messages, number of (distinct) keys, and probability of the most frequent
// key p1. Our datasets are calibrated synthetic stand-ins (see DESIGN.md);
// this harness prints both the paper's targets and the measured statistics
// of the generated streams.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/common/string_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

void Row(const DatasetSpec& spec, double paper_msgs, double paper_keys,
         double paper_p1) {
  auto gen = MakeGenerator(spec);
  const DatasetStats stats = MeasureDataset(gen.get());
  std::printf("%-8s %12s %12s %8.2f%% | %12s %12s %8.2f%% %8.3f\n",
              spec.name.c_str(), HumanCount(static_cast<uint64_t>(paper_msgs)).c_str(),
              HumanCount(static_cast<uint64_t>(paper_keys)).c_str(), paper_p1 * 100,
              HumanCount(stats.messages).c_str(),
              HumanCount(stats.distinct_keys).c_str(), stats.measured_p1 * 100,
              spec.zipf_exponent);
}

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(
      argc, argv, "Table I: dataset statistics (paper targets vs measured)");
  const double wp_scale = env.paper ? 1.0 : 0.02;
  const double tw_scale = env.paper ? 0.05 : 0.002;  // full TW is 1.2G msgs
  const double ct_scale = 1.0;

  PrintBanner("bench_table1_datasets", "Table I",
              env.paper ? "paper scales (TW capped at 5%)" : "quick scales");
  std::printf("#%-7s %12s %12s %9s | %12s %12s %9s %8s\n", "name",
              "paper-msgs", "paper-keys", "paper-p1", "msgs", "keys", "p1",
              "zipf-z");
  Row(MakeWikipediaSpec(wp_scale), 22e6, 2.9e6, 0.0932);
  Row(MakeTwitterSpec(tw_scale), 1.2e9, 31e6, 0.0267);
  Row(MakeCashtagsSpec(ct_scale), 690e3, 2.9e3, 0.0329);
  // The ZF family: measured p1 for a representative exponent per |K|.
  for (uint64_t keys : {10000ULL, 100000ULL, 1000000ULL}) {
    DatasetSpec zf =
        MakeZipfSpec(1.0, keys, env.MessagesOr(500000, 10000000),
                     static_cast<uint64_t>(env.seed));
    zf.name = "ZF-" + HumanCount(keys);
    Row(zf, static_cast<double>(zf.num_messages), static_cast<double>(keys),
        ZipfTopProbability(1.0, keys));
  }
  std::printf("# note: CT's measured whole-stream p1 is below target by design"
              " (concept drift spreads the rank-1 mass across identities).\n");
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
