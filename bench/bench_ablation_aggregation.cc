// Ablation: reconciliation traffic per window across schemes.
//
// Sec. IV-B notes that splitting a key into d partial states adds an
// aggregation cost proportional to d, and argues it tracks the memory cost.
// This study quantifies it: for windowed aggregation over a skewed stream,
// how many partial tuples does the merge stage receive per window under
// KG / PKG / D-C / W-C / SG? One sweep row per (skew, scheme); the
// window_partials metric column carries the model output (no routing is
// simulated — the cost model is evaluated on one representative window).
//
// Expected outcome: D-C and W-C pay a bounded premium over PKG (only the
// handful of head keys fan out) while SG's cost scales with n — mirroring
// Figs. 5-6 on the aggregation axis.

#include <string>
#include <unordered_set>

#include "common/bench_util.h"
#include "slb/analysis/aggregation_model.h"
#include "slb/analysis/choices.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("Ablation: per-window aggregation traffic");
  int64_t window = 10000;
  flags.AddInt64("window", &window, "window size in tuples");
  const BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  const uint32_t n = 50;
  const uint64_t keys = 10000;

  PrintBanner("bench_ablation_aggregation", "Sec. IV-B aggregation-cost model",
              "n=50, |K|=1e4, window=" + std::to_string(window));

  SweepGrid grid;
  grid.scenarios = SkewScenarios(env.paper, keys, static_cast<uint64_t>(window),
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kKeyGrouping, AlgorithmKind::kPkg,
                     AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
                     AlgorithmKind::kShuffleGrouping};
  grid.worker_counts = {n};
  grid.runner = [keys](const SweepCellContext& ctx) -> Result<CellPayload> {
    const PartitionSimConfig config = ctx.MakeSimConfig();
    const uint32_t workers = ctx.num_workers;

    // One representative window of the stream.
    auto gen = ctx.MakeStream();
    if (!gen.ok()) return gen.status();
    FrequencyTable counts(keys, 0);
    const uint64_t window_size = (*gen)->num_messages();
    for (uint64_t m = 0; m < window_size; ++m) ++counts[(*gen)->NextKey()];

    const ZipfDistribution zipf(ctx.scenario->param, keys);
    const uint64_t head_size =
        zipf.CountAboveThreshold(config.partitioner.theta());
    const auto head =
        HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    const uint32_t d =
        FindOptimalChoices(head, workers, config.partitioner.epsilon);
    std::unordered_set<uint64_t> head_keys;
    for (uint64_t r = 0; r < head_size; ++r) head_keys.insert(r);

    uint64_t partials = 0;
    switch (ctx.algorithm) {
      case AlgorithmKind::kKeyGrouping:
        partials = UniformChoicesAggregation(counts, 1).partials;
        break;
      case AlgorithmKind::kPkg:
        partials = UniformChoicesAggregation(counts, 2).partials;
        break;
      case AlgorithmKind::kDChoices:
        partials = HeadTailAggregation(counts, head_keys, d).partials;
        break;
      case AlgorithmKind::kWChoices:
        partials = HeadTailAggregation(counts, head_keys, workers).partials;
        break;
      case AlgorithmKind::kShuffleGrouping:
        partials = UniformChoicesAggregation(counts, workers).partials;
        break;
      default:
        return Status::InvalidArgument("unsupported scheme in this ablation");
    }

    CellPayload payload;
    payload.sim.total_messages = window_size;
    payload.AddCount("window_partials", partials);
    payload.AddCount("d", d);
    return payload;
  };
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
