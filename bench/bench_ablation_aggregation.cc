// Ablation: reconciliation traffic per window across schemes.
//
// Sec. IV-B notes that splitting a key into d partial states adds an
// aggregation cost proportional to d, and argues it tracks the memory cost.
// This study quantifies it: for windowed aggregation over a skewed stream,
// how many partial tuples does the merge stage receive per window under
// KG / PKG / D-C / W-C / SG?
//
// Expected outcome: D-C and W-C pay a bounded premium over PKG (only the
// handful of head keys fan out) while SG's cost scales with n — mirroring
// Figs. 5-6 on the aggregation axis.

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/bench_util.h"
#include "slb/analysis/aggregation_model.h"
#include "slb/analysis/choices.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  double z;
  uint64_t kg = 0, pkg = 0, dc = 0, wc = 0, sg = 0;
  uint32_t d = 0;
};

int Main(int argc, char** argv) {
  FlagSet flags("Ablation: per-window aggregation traffic");
  int64_t window = 10000;
  flags.AddInt64("window", &window, "window size in tuples");
  const BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  const uint32_t n = 50;
  const uint64_t keys = 10000;

  PrintBanner("bench_ablation_aggregation", "Sec. IV-B aggregation-cost model",
              "n=50, |K|=1e4, window=" + std::to_string(window));

  const auto grid = SkewGrid(env.paper);
  std::vector<Point> points;
  for (double z : grid) points.push_back(Point{z});

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    // One representative window of the stream.
    const DatasetSpec spec = MakeZipfSpec(p.z, keys, static_cast<uint64_t>(window),
                                          static_cast<uint64_t>(env.seed));
    FrequencyTable counts(keys, 0);
    auto gen = MakeGenerator(spec);
    for (int64_t m = 0; m < window; ++m) ++counts[gen->NextKey()];

    const ZipfDistribution zipf(p.z, keys);
    const double theta = 1.0 / (5.0 * n);
    const uint64_t head_size = zipf.CountAboveThreshold(theta);
    const auto head =
        HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    p.d = FindOptimalChoices(head, n, 1e-4);
    std::unordered_set<uint64_t> head_keys;
    for (uint64_t r = 0; r < head_size; ++r) head_keys.insert(r);

    p.kg = UniformChoicesAggregation(counts, 1).partials;
    p.pkg = UniformChoicesAggregation(counts, 2).partials;
    p.dc = HeadTailAggregation(counts, head_keys, p.d).partials;
    p.wc = HeadTailAggregation(counts, head_keys, n).partials;
    p.sg = UniformChoicesAggregation(counts, n).partials;
  }, static_cast<size_t>(env.threads));

  std::printf("#%-6s %4s %10s %10s %10s %10s %10s\n", "skew", "d", "KG", "PKG",
              "D-C", "W-C", "SG");
  for (const Point& p : points) {
    std::printf("%-7.1f %4u %10llu %10llu %10llu %10llu %10llu\n", p.z, p.d,
                static_cast<unsigned long long>(p.kg),
                static_cast<unsigned long long>(p.pkg),
                static_cast<unsigned long long>(p.dc),
                static_cast<unsigned long long>(p.wc),
                static_cast<unsigned long long>(p.sg));
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
