// Figure 10 — average load imbalance on the ZF datasets for PKG, D-C, W-C,
// and RR as a function of skew, for every combination of workers
// n in {5, 10, 50, 100} and unique keys |K| in {1e4, 1e5, 1e6}.
//
// Expected shape: the problem hardens as both z and n grow; W-C stays
// uniformly low, D-C and RR track it closely (D-C at a fraction of RR's
// cost), and PKG degrades by orders of magnitude at n >= 50 and z >= 1.
// The s*eps worst-case reference line is printed in the banner.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 10: imbalance on ZF");
  const uint64_t messages = env.MessagesOr(200000, 10000000);

  PrintBanner("bench_fig10_imbalance_zipf", "Figure 10",
              "m=" + std::to_string(messages) + ", s*eps=" +
                  Sci(static_cast<double>(env.sources) * 1e-4));

  SweepGrid grid;
  for (uint64_t keys : {10000ULL, 100000ULL, 1000000ULL}) {
    for (double z : SkewGrid(env.paper)) {
      // The spec seed is irrelevant: ScenarioFromDataset reseeds per cell run.
      grid.scenarios.push_back(
          ScenarioFromDataset(MakeZipfSpec(z, keys, messages)));
      grid.scenarios.back().label =
          "ZF-k" + std::to_string(keys) + "-z" + FormatDouble(z);
    }
  }
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                     AlgorithmKind::kWChoices, AlgorithmKind::kRoundRobinHead};
  grid.worker_counts = {5, 10, 50, 100};
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
