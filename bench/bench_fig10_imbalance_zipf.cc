// Figure 10 — average load imbalance on the ZF datasets for PKG, D-C, W-C,
// and RR as a function of skew, for every combination of workers
// n in {5, 10, 50, 100} and unique keys |K| in {1e4, 1e5, 1e6}.
//
// Expected shape: the problem hardens as both z and n grow; W-C stays
// uniformly low, D-C and RR track it closely (D-C at a fraction of RR's
// cost), and PKG degrades by orders of magnitude at n >= 50 and z >= 1.
// The s*eps worst-case reference line is printed in the banner.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  double z;
  uint32_t n;
  uint64_t keys;
  double imbalance[4] = {0, 0, 0, 0};  // PKG, D-C, W-C, RR
};

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 10: imbalance on ZF");
  const uint64_t messages = env.MessagesOr(200000, 10000000);

  PrintBanner("bench_fig10_imbalance_zipf", "Figure 10",
              "m=" + std::to_string(messages) + ", s*eps=" +
                  Sci(static_cast<double>(env.sources) * 1e-4));

  const AlgorithmKind algos[4] = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                                  AlgorithmKind::kWChoices,
                                  AlgorithmKind::kRoundRobinHead};

  std::vector<Point> points;
  for (uint64_t keys : {10000ULL, 100000ULL, 1000000ULL}) {
    for (uint32_t n : {5u, 10u, 50u, 100u}) {
      for (double z : SkewGrid(env.paper)) {
        points.push_back(Point{z, n, keys, {}});
      }
    }
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    const DatasetSpec spec =
        MakeZipfSpec(p.z, p.keys, messages, static_cast<uint64_t>(env.seed));
    for (int a = 0; a < 4; ++a) {
      PartitionSimConfig config;
      config.algorithm = algos[a];
      config.partitioner.num_workers = p.n;
      config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
      config.num_sources = static_cast<uint32_t>(env.sources);
      p.imbalance[a] = RunAveraged(config, spec, env.runs,
                                   static_cast<uint64_t>(env.seed))
                           .mean_final_imbalance;
    }
  }, static_cast<size_t>(env.threads));

  std::printf("#%-9s %8s %6s %12s %12s %12s %12s\n", "keys", "workers", "skew",
              "PKG", "D-C", "W-C", "RR");
  for (const Point& p : points) {
    std::printf("%-10llu %8u %6.1f %12s %12s %12s %12s\n",
                static_cast<unsigned long long>(p.keys), p.n, p.z,
                Sci(p.imbalance[0]).c_str(), Sci(p.imbalance[1]).c_str(),
                Sci(p.imbalance[2]).c_str(), Sci(p.imbalance[3]).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
