// Ablation: how often must FINDOPTIMALCHOICES run?
//
// Algorithm 1 nominally recomputes d on every message; our implementation
// caches it and refreshes on a doubling warm-up schedule followed by a
// fixed cadence (PartitionerOptions::reoptimize_interval). This study
// sweeps the cadence (the variant axis) on both a static and a drifting
// stream (the scenario axis) and reports imbalance plus the optimizer
// invocation count per sender (the reopt_per_sender metric column, read
// off PartitionSimResult::reoptimizations).
//
// Expected outcome: on static streams anything from 256 to 64k messages is
// equivalent (the head barely changes); under concept drift, very long
// cadences lag the head and cost balance — the reason the default stays in
// the low thousands.

#include <string>

#include "common/bench_util.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: FINDOPTIMALCHOICES cadence");
  const uint32_t n = 50;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_reopt", "design ablation (not a paper figure)",
              "n=50, m=" + std::to_string(messages) +
                  ", static: ZF z=1.8 | drifting: CT-like");

  DatasetSpec static_spec =
      MakeZipfSpec(1.8, 10000, messages, static_cast<uint64_t>(env.seed));
  static_spec.name = "static";
  DatasetSpec drifting_spec = MakeCashtagsSpec(1.0);
  drifting_spec.num_messages = messages;
  drifting_spec.name = "drifting";

  SweepGrid grid;
  grid.scenarios = {ScenarioFromDataset(static_spec),
                    ScenarioFromDataset(drifting_spec)};
  grid.algorithms = {AlgorithmKind::kDChoices};
  grid.worker_counts = {n};
  for (uint32_t interval : {256u, 1024u, 2048u, 8192u, 65536u}) {
    SweepVariant variant;
    variant.label = "every-" + std::to_string(interval);
    variant.options.reoptimize_interval = interval;
    grid.variants.push_back(variant);
  }
  grid.runner = [](const SweepCellContext& ctx) -> Result<CellPayload> {
    auto payload = ctx.RunDefault();
    if (!payload.ok()) return payload;
    payload->AddCount("reopt_per_sender", payload->sim.reoptimizations);
    return payload;
  };
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
