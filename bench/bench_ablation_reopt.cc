// Ablation: how often must FINDOPTIMALCHOICES run?
//
// Algorithm 1 nominally recomputes d on every message; our implementation
// caches it and refreshes on a doubling warm-up schedule followed by a
// fixed cadence (PartitionerOptions::reoptimize_interval). This study
// sweeps the cadence on both a static and a drifting stream and reports
// imbalance plus the optimizer invocation count per sender.
//
// Expected outcome: on static streams anything from 256 to 64k messages is
// equivalent (the head barely changes); under concept drift, very long
// cadences lag the head and cost balance — the reason the default stays in
// the low thousands.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/core/d_choices.h"
#include "slb/sim/load_tracker.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  bool drifting;
  uint32_t interval;
  double imbalance = 0;
  uint64_t reoptimizations = 0;
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: FINDOPTIMALCHOICES cadence");
  const uint32_t n = 50;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_reopt", "design ablation (not a paper figure)",
              "n=50, m=" + std::to_string(messages) +
                  ", static: ZF z=1.8 | drifting: CT-like");

  std::vector<Point> points;
  for (bool drifting : {false, true}) {
    for (uint32_t interval : {256u, 1024u, 2048u, 8192u, 65536u}) {
      points.push_back(Point{drifting, interval, 0, 0});
    }
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    DatasetSpec spec;
    if (p.drifting) {
      spec = MakeCashtagsSpec(1.0);
      spec.num_messages = messages;
    } else {
      spec = MakeZipfSpec(1.8, 10000, messages, static_cast<uint64_t>(env.seed));
    }
    spec.seed = static_cast<uint64_t>(env.seed);

    // Run manually (instead of RunPartitionSimulation) to read the
    // optimizer invocation count off the concrete DChoices type.
    PartitionerOptions options;
    options.num_workers = n;
    options.hash_seed = static_cast<uint64_t>(env.seed);
    options.reoptimize_interval = p.interval;
    const uint32_t s = static_cast<uint32_t>(env.sources);
    std::vector<std::unique_ptr<DChoices>> senders;
    for (uint32_t j = 0; j < s; ++j) {
      senders.push_back(std::make_unique<DChoices>(options));
    }
    auto gen = MakeGenerator(spec);
    LoadTracker tracker(n);
    for (uint64_t m = 0; m < spec.num_messages; ++m) {
      const uint64_t key = gen->NextKey();
      DChoices& sender = *senders[m % s];
      tracker.Record(sender.Route(key), key, sender.last_was_head());
    }
    p.imbalance = tracker.Imbalance();
    p.reoptimizations = senders[0]->reoptimize_count();
  }, static_cast<size_t>(env.threads));

  std::printf("#%-9s %10s %14s %18s\n", "stream", "interval", "imbalance",
              "reopt/sender");
  for (const Point& p : points) {
    std::printf("%-10s %10u %14s %18llu\n", p.drifting ? "drifting" : "static",
                p.interval, Sci(p.imbalance).c_str(),
                static_cast<unsigned long long>(p.reoptimizations));
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
