// Ablation: why not just give EVERY key d choices?
//
// The paper's core design decision is to treat the head specially instead
// of raising d uniformly (Sec. I: "while the long tail of low-frequency
// keys can be easily managed with two choices, the few elements in the head
// needs additional choices"). This ablation runs the plain Greedy-d process
// (uniform d for all keys, the variant axis) next to D-Choices and measures
// both imbalance and memory. Two sweep grids — the adaptive algorithm and
// the fixed-d family — concatenated into one table; the variant column
// distinguishes greedy-d settings, and memory_entries carries the cost.
//
// Expected outcome: uniform d only balances once d/n exceeds p1 — for
// z = 2.0 at n = 50 that means d >= ~31 for EVERY key, which multiplies
// memory by ~d/2 versus PKG; D-Choices reaches the same imbalance paying
// the large d only for a handful of head keys.

#include <string>
#include <vector>

#include "common/bench_util.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: uniform Greedy-d vs D-Choices");
  const uint32_t n = 50;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_power_of_d", "design ablation (not a paper figure)",
              "n=50, |K|=1e4, m=" + std::to_string(messages));

  const auto scenarios = ZipfScenarios({1.0, 1.4, 2.0}, keys, messages,
                                       static_cast<uint64_t>(env.seed));

  // Grid 1: the adaptive algorithm (one default variant).
  SweepGrid adaptive;
  adaptive.scenarios = scenarios;
  adaptive.algorithms = {AlgorithmKind::kDChoices};
  adaptive.worker_counts = {n};
  adaptive.track_memory = true;

  // Grid 2: the uniform Greedy-d family, one variant per fixed d.
  SweepGrid uniform;
  uniform.scenarios = scenarios;
  uniform.algorithms = {AlgorithmKind::kGreedyD};
  uniform.worker_counts = {n};
  uniform.track_memory = true;
  for (uint32_t d : {1u, 2u, 3u, 4u, 8u, 16u, 32u}) {
    SweepVariant variant;
    variant.label = "greedy-" + std::to_string(d);
    variant.options.fixed_d = d;
    uniform.variants.push_back(variant);
  }

  std::vector<SweepGrid> grids;
  grids.push_back(std::move(adaptive));
  grids.push_back(std::move(uniform));
  return RunGridsAndReport(env, std::move(grids));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
