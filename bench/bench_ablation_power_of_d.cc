// Ablation: why not just give EVERY key d choices?
//
// The paper's core design decision is to treat the head specially instead
// of raising d uniformly (Sec. I: "while the long tail of low-frequency
// keys can be easily managed with two choices, the few elements in the head
// needs additional choices"). This ablation runs the plain Greedy-d process
// (uniform d for all keys) next to D-Choices and measures both imbalance
// and memory.
//
// Expected outcome: uniform d only balances once d/n exceeds p1 — for
// z = 2.0 at n = 50 that means d >= ~31 for EVERY key, which multiplies
// memory by ~d/2 versus PKG; D-Choices reaches the same imbalance paying
// the large d only for a handful of head keys.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  double z;
  uint32_t d;  // 0 = D-Choices
  double imbalance = 0;
  uint64_t memory = 0;
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Ablation: uniform Greedy-d vs D-Choices");
  const uint32_t n = 50;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(300000, 5000000);

  PrintBanner("bench_ablation_power_of_d", "design ablation (not a paper figure)",
              "n=50, |K|=1e4, m=" + std::to_string(messages));

  const uint32_t ds[] = {1, 2, 3, 4, 8, 16, 32, 0};  // 0 = D-Choices
  std::vector<Point> points;
  for (double z : {1.0, 1.4, 2.0}) {
    for (uint32_t d : ds) points.push_back(Point{z, d, 0, 0});
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    PartitionSimConfig config;
    if (p.d == 0) {
      config.algorithm = AlgorithmKind::kDChoices;
    } else {
      config.algorithm = AlgorithmKind::kGreedyD;
      config.partitioner.fixed_d = p.d;
    }
    config.partitioner.num_workers = n;
    config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
    config.num_sources = static_cast<uint32_t>(env.sources);
    config.track_memory = true;
    const DatasetSpec spec =
        MakeZipfSpec(p.z, keys, messages, static_cast<uint64_t>(env.seed));
    auto gen = MakeGenerator(spec);
    auto result = RunPartitionSimulation(config, gen.get());
    if (!result.ok()) return;
    p.imbalance = result->final_imbalance;
    p.memory = result->memory_entries;
  }, static_cast<size_t>(env.threads));

  std::printf("#%-5s %10s %14s %16s\n", "skew", "scheme", "imbalance",
              "mem entries");
  for (const Point& p : points) {
    char scheme[24];
    if (p.d == 0) {
      std::snprintf(scheme, sizeof(scheme), "D-C");
    } else {
      std::snprintf(scheme, sizeof(scheme), "greedy-%u", p.d);
    }
    std::printf("%-6.1f %10s %14s %16llu\n", p.z, scheme,
                Sci(p.imbalance).c_str(),
                static_cast<unsigned long long>(p.memory));
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
