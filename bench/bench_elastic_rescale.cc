// Elastic rescaling: imbalance AND migration cost across worker-set changes.
//
// The paper's evaluation holds the worker set fixed; ROADMAP item 1 asks
// what each scheme costs when it changes. Two costs compete:
//
//  * IMBALANCE — how well the scheme balances load before, across, and after
//    the event. The paper's head-aware schemes (D-C/W-C) win here.
//  * MIGRATION — how much per-key state must follow the keys when the
//    routing function re-targets. Mod-range hashing (KG/PKG/D-C/W-C tails)
//    re-homes nearly EVERY key on rescale; a consistent-hash ring moves only
//    ~|delta|/n of the key space (the minimal-movement property the churn
//    bugfix in src/slb/core/consistent_hash.cc restores).
//
// The bench sweeps PKG / D-Choices / W-Choices / CH over the two elastic
// catalog scenarios (scale-out-under-flash-crowd pairs sustained load growth
// with a worker-add event; scale-in-during-drift pairs a contracting key
// space with a worker-remove event) across a schedule axis: static (no
// event), a single scale-out, a single scale-in, and a staged out-then-in
// sequence. Migration costs come from the simulator's MigrationTracker
// (eager handoff on scale-in, lazy state pulls on scale-out, FIFO handoff
// channel for stalls) and surface as the migration payload columns of the
// summary table (docs/SWEEP_FORMATS.md).
//
// Output: the standard summary table (with migration-cost columns) plus a
// derived "# rescale:" table putting final imbalance next to keys migrated,
// stalled messages, and the moved-key fraction per (scenario, schedule,
// algorithm) — the imbalance-vs-migration trade-off at a glance.
//
// --engine threaded runs every cell on ExecuteTopologyThreaded instead of
// the partition simulator: the worker set changes live (threads retired or
// started mid-run, key state moving through real handoff rings) and the
// rescale table gains measured columns — quiesce / credit-drain /
// migration-stall wall-clock plus handoff-frame and live-stall counts —
// next to the modeled replay accounting (which stays engine-independent).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.h"
#include "common/dspe_cell.h"
#include "slb/common/flags.h"

namespace slb::bench {
namespace {

constexpr uint32_t kBaseWorkers = 32;
constexpr uint32_t kDelta = 8;

/// The elastic scenarios, calibrated so the dynamics motivate the schedule:
/// the flash crowd ignites at 40% (just before the scale-out event) and the
/// drifting key space has contracted visibly by the scale-in event.
SweepScenario CalibratedScenario(const std::string& name, uint64_t messages) {
  ScenarioOptions options;
  options.num_keys = 10000;
  options.num_messages = messages;
  if (name == "scale-out-under-flash-crowd") {
    options.burst_fraction = 0.5;
    options.burst_begin = 0.4;
    options.burst_group_size = 32;
  } else if (name == "scale-in-during-drift") {
    options.num_epochs = 10;
    options.shrink_final_fraction = 0.3;
    options.drift_swap_fraction = 0.1;
  }
  return ScenarioFromCatalog(name, options);
}

struct Schedule {
  const char* label;
  RescaleSchedule schedule;
};

/// The schedule axis, expressed as sweep variants. Every schedule starts at
/// kBaseWorkers; "static" never rescales (the no-event baseline the others
/// are judged against).
std::vector<Schedule> Schedules() {
  std::vector<Schedule> schedules;
  schedules.push_back({"static", {}});

  RescaleSchedule out;
  out.events = {{0.45, kBaseWorkers + kDelta}};
  schedules.push_back({"out+8@45%", out});

  RescaleSchedule in;
  in.events = {{0.6, kBaseWorkers - kDelta}};
  schedules.push_back({"in-8@60%", in});

  RescaleSchedule staged;
  staged.events = {{0.35, kBaseWorkers + kDelta}, {0.7, kBaseWorkers - kDelta}};
  schedules.push_back({"staged", staged});
  return schedules;
}

/// Derived table: final imbalance next to migration cost per cell, the
/// trade-off the bench exists to show. TSV with '#' headers, like every
/// emitter in slb/sim/report.
/// Reads a named payload metric (the threaded engine's measured columns);
/// 0 for sim cells, which do not attach them.
double MetricOr0(const CellPayload& payload, const std::string& name) {
  const PayloadMetric* metric = payload.FindMetric(name);
  return metric != nullptr ? metric->value : 0.0;
}

void PrintRescaleTable(const SweepResultTable& table,
                       const std::vector<std::string>& scenarios,
                       const std::vector<Schedule>& schedules,
                       const std::vector<AlgorithmKind>& algorithms) {
  std::printf(
      "# rescale: imbalance vs migration cost per schedule (moved_frac ~ "
      "|delta|/n for CH, ~1 for mod-range hashing; quiesce_s/drain_s/"
      "stall_s/handoff_frames/live_stalls are measured, threaded engine "
      "only)\n");
  std::printf(
      "# scenario\tschedule\talgo\tfinal_workers\tfinal_I\tkeys_migrated\t"
      "state_bytes\tstalled\tmoved_frac\tquiesce_s\tdrain_s\tstall_s\t"
      "handoff_frames\tlive_stalls\n");
  for (const std::string& scenario : scenarios) {
    for (const Schedule& schedule : schedules) {
      for (AlgorithmKind algorithm : algorithms) {
        const SweepCellResult* cell =
            table.Find(scenario, schedule.label, algorithm, kBaseWorkers);
        if (cell == nullptr || !cell->status.ok()) continue;
        const MigrationCounters mig =
            cell->payload.migration.value_or(MigrationCounters{});
        const uint32_t final_workers = mig.final_num_workers > 0
                                           ? mig.final_num_workers
                                           : cell->num_workers;
        std::printf(
            "%s\t%s\t%s\t%u\t%s\t%llu\t%llu\t%llu\t%s\t%s\t%s\t%s\t%llu\t"
            "%llu\n",
            scenario.c_str(), schedule.label,
            AlgorithmKindName(algorithm).c_str(), final_workers,
            Sci(cell->mean_final_imbalance).c_str(),
            static_cast<unsigned long long>(mig.keys_migrated),
            static_cast<unsigned long long>(mig.state_bytes_migrated),
            static_cast<unsigned long long>(mig.stalled_messages),
            Sci(mig.moved_key_fraction).c_str(),
            Sci(MetricOr0(cell->payload, "quiesce_s")).c_str(),
            Sci(MetricOr0(cell->payload, "credit_drain_s")).c_str(),
            Sci(MetricOr0(cell->payload, "migration_stall_s")).c_str(),
            static_cast<unsigned long long>(
                MetricOr0(cell->payload, "handoff_frames")),
            static_cast<unsigned long long>(
                MetricOr0(cell->payload, "measured_stalls")));
      }
    }
  }
}

int Main(int argc, char** argv) {
  std::string engine_name = "sim";
  int64_t engine_threads = 0;
  int64_t queue_capacity = 1024;
  int64_t batch_size = 64;
  FlagSet flags("Elastic rescale: imbalance vs key-state migration cost");
  flags.AddString("engine", &engine_name,
                  "execution engine: sim (modeled) or threaded (live rescale, "
                  "measured quiesce/stall costs)");
  flags.AddInt64("engine-threads", &engine_threads,
                 "threaded engine: executor threads (0 = hardware)");
  flags.AddInt64("queue-capacity", &queue_capacity,
                 "threaded engine: per-edge ring capacity in tuples");
  flags.AddInt64("batch-size", &batch_size,
                 "threaded engine: emit batch / task quantum in tuples");
  BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  if (!CheckReportFormat(env, ReportMode::kTableAndSeries)) return 2;
  const auto engine = ParseDspeEngine(engine_name);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  // The threaded engine saturates the host by itself; serialize the cells so
  // each one's wall-clock phase measurements stay clean.
  if (engine.value() == DspeEngine::kThreaded && env.threads == 0) {
    env.threads = 1;
  }
  const uint64_t messages = env.MessagesOr(500000, 5000000);

  const std::vector<std::string> names = {"scale-out-under-flash-crowd",
                                          "scale-in-during-drift"};
  const std::vector<Schedule> schedules = Schedules();
  const std::vector<AlgorithmKind> algorithms = {
      AlgorithmKind::kPkg, AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
      AlgorithmKind::kConsistentHash};

  PrintBanner("bench_elastic_rescale",
              "no paper figure — elastic-scaling extension (ROADMAP item 1)",
              "n=" + std::to_string(kBaseWorkers) + "±" +
                  std::to_string(kDelta) + ", |K|=1e4, m=" +
                  std::to_string(messages) + ", engine=" + engine_name +
                  ", scenarios: " + JoinStrings(names, "/") +
                  ", schedules: static / out+8@45% / in-8@60% / staged");

  SweepGrid grid;
  for (const std::string& name : names) {
    grid.scenarios.push_back(CalibratedScenario(name, messages));
  }
  grid.algorithms = algorithms;
  grid.worker_counts = {kBaseWorkers};
  for (const Schedule& schedule : schedules) {
    SweepVariant variant;
    variant.label = schedule.label;
    variant.rescale = schedule.schedule;
    grid.variants.push_back(variant);
  }
  // Fine-grained sampling so the rescale edges resolve in the series.
  grid.num_samples = 120;
  if (engine.value() == DspeEngine::kThreaded) {
    DspeCellOptions cell;
    cell.engine = DspeEngine::kThreaded;
    cell.runtime.num_threads = static_cast<uint32_t>(engine_threads);
    cell.runtime.queue_capacity = static_cast<uint32_t>(queue_capacity);
    cell.runtime.batch_size = static_cast<uint32_t>(batch_size);
    grid.runner = MakeDspeCellRunner(cell);
  }

  const SweepResultTable table = RunGridForEnv(env, std::move(grid));
  const int exit_code = ReportTable(env, table, ReportMode::kTableAndSeries);
  std::printf("\n");
  PrintRescaleTable(table, names, schedules, algorithms);
  return exit_code;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
