// Figure 13 — throughput (events/second) of the simulated DSPE cluster for
// KG, PKG, D-C, W-C, and SG on ZF streams with z in {1.4, 1.7, 2.0}
// (n = 80 workers, 48 sources, |K| = 1e4, m = 2e6 at paper scale).
//
// The cluster model is the queueing network described in
// slb/sim/dspe_simulator.h (the Apache Storm stand-in; see DESIGN.md). Each
// sweep cell is one RunDspeSimulation; the throughput_per_s / makespan_s /
// completed payload columns carry the figure.
//
// Expected shape: KG lowest and degrading with skew; PKG in between, also
// degrading; D-C and W-C matching SG's (transport-bound) plateau. Paper
// headline: D-C/W-C up to ~1.5x PKG and ~2.3x KG at high skew.

#include <cstdio>
#include <string>

#include "common/bench_util.h"
#include "common/dspe_cell.h"
#include "slb/common/flags.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  BenchEnv defaults;
  defaults.sources = 48;  // the paper's 48 spouts, overridable via --sources

  std::string engine_name = "sim";
  std::string wait_name = "adaptive";
  int64_t engine_threads = 0;
  int64_t queue_capacity = 1024;
  int64_t batch_size = 64;
  bool pin_threads = false;
  FlagSet extra;
  extra.AddString("engine", &engine_name,
                  "execution engine: sim (modeled) or threaded (measured)");
  extra.AddInt64("engine-threads", &engine_threads,
                 "threaded engine: executor threads (0 = hardware)");
  extra.AddInt64("queue-capacity", &queue_capacity,
                 "threaded engine: per-edge ring capacity in tuples");
  extra.AddInt64("batch-size", &batch_size,
                 "threaded engine: emit batch / task quantum in tuples");
  extra.AddString("wait-strategy", &wait_name,
                  "threaded engine: idle executor policy (adaptive or spin)");
  extra.AddBool("pin-threads", &pin_threads,
                "threaded engine: pin executors round-robin over CPUs");

  BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 13: cluster throughput",
                                &extra, defaults);
  const auto engine = ParseDspeEngine(engine_name);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const auto wait_strategy = ParseWaitStrategy(wait_name);
  if (!wait_strategy.ok()) {
    std::fprintf(stderr, "%s\n", wait_strategy.status().ToString().c_str());
    return 1;
  }
  // The threaded engine saturates the host by itself; running sweep cells
  // concurrently on top would just make every cell's measurement noisy.
  if (engine.value() == DspeEngine::kThreaded && env.threads == 0) {
    env.threads = 1;
  }
  const uint64_t messages = env.MessagesOr(200000, 2000000);

  PrintBanner("bench_fig13_throughput", "Figure 13",
              "n=80, sources=" + std::to_string(env.sources) + ", |K|=1e4, m=" +
                  std::to_string(messages) + ", engine=" + engine_name +
                  (engine.value() == DspeEngine::kThreaded
                       ? " (measured msgs/s + queue-delay percentiles)"
                       : ", 1.5ms/tuple worker, 3300/s transport, "
                         "70 pending/source"));

  DspeCellOptions cell;
  cell.engine = engine.value();
  cell.runtime.num_threads = static_cast<uint32_t>(engine_threads);
  cell.runtime.queue_capacity = static_cast<uint32_t>(queue_capacity);
  cell.runtime.batch_size = static_cast<uint32_t>(batch_size);
  cell.runtime.wait_strategy = wait_strategy.value();
  cell.runtime.pin_threads = pin_threads;
  // Threaded cells report measured queue delay in the lat_* columns; the
  // sim reports latency via Fig. 14 only.
  cell.latency = engine.value() == DspeEngine::kThreaded;

  SweepGrid grid;
  grid.scenarios = ZipfScenarios({1.4, 1.7, 2.0}, 10000, messages,
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kKeyGrouping, AlgorithmKind::kPkg,
                     AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
                     AlgorithmKind::kShuffleGrouping};
  grid.worker_counts = {80};
  grid.runner = MakeDspeCellRunner(cell);
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
