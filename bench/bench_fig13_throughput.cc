// Figure 13 — throughput (events/second) of the simulated DSPE cluster for
// KG, PKG, D-C, W-C, and SG on ZF streams with z in {1.4, 1.7, 2.0}
// (n = 80 workers, 48 sources, |K| = 1e4, m = 2e6 at paper scale).
//
// The cluster model is the queueing network described in
// slb/sim/dspe_simulator.h (the Apache Storm stand-in; see DESIGN.md).
//
// Expected shape: KG lowest and degrading with skew; PKG in between, also
// degrading; D-C and W-C matching SG's (transport-bound) plateau. Paper
// headline: D-C/W-C up to ~1.5x PKG and ~2.3x KG at high skew.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/common/parallel.h"
#include "slb/sim/dspe_simulator.h"

namespace slb::bench {
namespace {

struct Point {
  double z;
  AlgorithmKind algo;
  DspeResult result;
};

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 13: cluster throughput");
  const uint64_t messages = env.MessagesOr(200000, 2000000);

  PrintBanner("bench_fig13_throughput", "Figure 13",
              "n=80, sources=48, |K|=1e4, m=" + std::to_string(messages) +
                  ", 1.5ms/tuple worker, 3300/s transport, 70 pending/source");

  const AlgorithmKind algos[5] = {
      AlgorithmKind::kKeyGrouping, AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
      AlgorithmKind::kWChoices, AlgorithmKind::kShuffleGrouping};

  std::vector<Point> points;
  for (double z : {1.4, 1.7, 2.0}) {
    for (AlgorithmKind algo : algos) points.push_back(Point{z, algo, {}});
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    DspeConfig config;
    config.algorithm = p.algo;
    config.partitioner.num_workers = 80;
    config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
    config.num_sources = 48;
    config.num_messages = messages;
    config.zipf_exponent = p.z;
    config.num_keys = 10000;
    config.seed = static_cast<uint64_t>(env.seed);
    auto result = RunDspeSimulation(config);
    if (result.ok()) p.result = result.value();
  }, static_cast<size_t>(env.threads));

  std::printf("#%-5s %6s %16s %12s\n", "skew", "algo", "throughput(ev/s)",
              "makespan(s)");
  for (const Point& p : points) {
    std::printf("%-6.1f %6s %16.0f %12.1f\n", p.z,
                AlgorithmKindName(p.algo).c_str(), p.result.throughput_per_s,
                p.result.makespan_s);
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
