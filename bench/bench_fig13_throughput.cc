// Figure 13 — throughput (events/second) of the simulated DSPE cluster for
// KG, PKG, D-C, W-C, and SG on ZF streams with z in {1.4, 1.7, 2.0}
// (n = 80 workers, 48 sources, |K| = 1e4, m = 2e6 at paper scale).
//
// The cluster model is the queueing network described in
// slb/sim/dspe_simulator.h (the Apache Storm stand-in; see DESIGN.md). Each
// sweep cell is one RunDspeSimulation; the throughput_per_s / makespan_s /
// completed payload columns carry the figure.
//
// Expected shape: KG lowest and degrading with skew; PKG in between, also
// degrading; D-C and W-C matching SG's (transport-bound) plateau. Paper
// headline: D-C/W-C up to ~1.5x PKG and ~2.3x KG at high skew.

#include <string>

#include "common/bench_util.h"
#include "common/dspe_cell.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  BenchEnv defaults;
  defaults.sources = 48;  // the paper's 48 spouts, overridable via --sources
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 13: cluster throughput",
                                      nullptr, defaults);
  const uint64_t messages = env.MessagesOr(200000, 2000000);

  PrintBanner("bench_fig13_throughput", "Figure 13",
              "n=80, sources=" + std::to_string(env.sources) +
                  ", |K|=1e4, m=" + std::to_string(messages) +
                  ", 1.5ms/tuple worker, 3300/s transport, 70 pending/source");

  DspeCellOptions cell;
  cell.latency = false;  // Fig. 14 reports latency; this figure throughput

  SweepGrid grid;
  grid.scenarios = ZipfScenarios({1.4, 1.7, 2.0}, 10000, messages,
                                 static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kKeyGrouping, AlgorithmKind::kPkg,
                     AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
                     AlgorithmKind::kShuffleGrouping};
  grid.worker_counts = {80};
  grid.runner = MakeDspeCellRunner(cell);
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
