// Figure 5 — memory overhead of D-Choices and W-Choices relative to PKG as a
// function of skew, for n in {50, 100} (|K| = 1e4, eps = 1e-4).
//
// As in Sec. IV-B, all schemes are *estimated* from the stream's frequency
// table: memPKG = sum_k min(f_k, 2), memDC = sum_{H} min(f_k, d) +
// sum_{tail} min(f_k, 2) with H and d from the analysis (theta = 1/(5n)),
// memWC likewise with n. The mem_measured_overhead_pct column reports the
// distinct (key,worker) assignments the simulated runs actually produced
// (always <= the estimate, since Greedy-d only splits keys under pressure).
//
// One row per (skew, n, algorithm) with the MemoryModelTable payload columns
// (mem_baseline = pkg) plus the analytic d as a metric column.
//
// Expected shape: estimated overhead at most ~30%, with a bump at moderate
// skew where the head is largest (Fig. 3), and D-C cheaper than W-C
// throughout the mid-skew range.

#include <string>

#include "common/bench_util.h"
#include "common/memory_overhead.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 5: memory overhead w.r.t. PKG");
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(500000, 10000000);

  PrintBanner("bench_fig05_memory_vs_pkg", "Figure 5",
              "|K|=1e4, m=" + std::to_string(messages) +
                  ", eps=1e-4, theta=1/(5n), n in {50,100}");

  SweepGrid grid;
  grid.scenarios =
      SkewScenarios(env.paper, keys, messages, static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kDChoices, AlgorithmKind::kWChoices};
  grid.worker_counts = {50, 100};
  grid.track_memory = true;
  grid.runner = MakeMemoryOverheadRunner(MemoryBaseline::kPkg);
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
