// Figure 5 — memory overhead of D-Choices and W-Choices relative to PKG as a
// function of skew, for n in {50, 100} (|K| = 1e4, eps = 1e-4).
//
// As in Sec. IV-B, all schemes are *estimated* from the stream's frequency
// table: memPKG = sum_k min(f_k, 2), memDC = sum_{H} min(f_k, d) +
// sum_{tail} min(f_k, 2) with H and d from the analysis (theta = 1/(5n)),
// memWC likewise with n. The additional "measured" columns report the
// distinct (key,worker) assignments the simulated runs actually produced
// (always <= the estimate, since Greedy-d only splits keys under pressure).
//
// Expected shape: estimated overhead at most ~30%, with a bump at moderate
// skew where the head is largest (Fig. 3), and D-C cheaper than W-C
// throughout the mid-skew range.

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/bench_util.h"
#include "slb/analysis/choices.h"
#include "slb/analysis/memory_model.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  double z;
  uint32_t n;
  uint32_t d = 0;
  double dc_est_pct = 0;
  double wc_est_pct = 0;
  double dc_measured_pct = 0;
  double wc_measured_pct = 0;
};

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 5: memory overhead w.r.t. PKG");
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(500000, 10000000);
  const double epsilon = 1e-4;

  PrintBanner("bench_fig05_memory_vs_pkg", "Figure 5",
              "|K|=1e4, m=" + std::to_string(messages) +
                  ", eps=1e-4, theta=1/(5n), n in {50,100}");

  const auto grid = SkewGrid(env.paper);
  std::vector<Point> points;
  for (uint32_t n : {50u, 100u}) {
    for (double z : grid) points.push_back(Point{z, n, 0, 0, 0, 0, 0});
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    const DatasetSpec spec =
        MakeZipfSpec(p.z, keys, messages, static_cast<uint64_t>(env.seed));

    // Frequency table of this concrete stream.
    FrequencyTable counts(keys, 0);
    {
      auto gen = MakeGenerator(spec);
      for (uint64_t m = 0; m < messages; ++m) ++counts[gen->NextKey()];
    }

    // Analytic head and d (Sec. IV).
    const ZipfDistribution zipf(p.z, keys);
    const double theta = 1.0 / (5.0 * p.n);
    const uint64_t head_size = zipf.CountAboveThreshold(theta);
    const auto head =
        HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    p.d = FindOptimalChoices(head, p.n, epsilon);
    std::unordered_set<uint64_t> head_keys;
    for (uint64_t r = 0; r < head_size; ++r) head_keys.insert(r);

    const uint64_t mem_pkg = MemoryPkg(counts);
    p.dc_est_pct = OverheadPercent(MemoryDc(counts, head_keys, p.d), mem_pkg);
    p.wc_est_pct = OverheadPercent(MemoryWc(counts, head_keys, p.n), mem_pkg);

    // Measured footprint from the actual simulated runs.
    for (AlgorithmKind kind :
         {AlgorithmKind::kDChoices, AlgorithmKind::kWChoices}) {
      PartitionSimConfig config;
      config.algorithm = kind;
      config.partitioner.num_workers = p.n;
      config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
      config.num_sources = static_cast<uint32_t>(env.sources);
      config.track_memory = true;
      auto gen = MakeGenerator(spec);
      auto result = RunPartitionSimulation(config, gen.get());
      if (!result.ok()) continue;
      const double pct = OverheadPercent(result->memory_entries, mem_pkg);
      (kind == AlgorithmKind::kDChoices ? p.dc_measured_pct
                                        : p.wc_measured_pct) = pct;
    }
  }, static_cast<size_t>(env.threads));

  std::printf("#%-6s %8s %4s %14s %14s %16s %16s\n", "skew", "workers", "d",
              "D-C est(%)", "W-C est(%)", "D-C measured(%)", "W-C measured(%)");
  for (const Point& p : points) {
    std::printf("%-7.1f %8u %4u %14.2f %14.2f %16.2f %16.2f\n", p.z, p.n, p.d,
                p.dc_est_pct, p.wc_est_pct, p.dc_measured_pct,
                p.wc_measured_pct);
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
