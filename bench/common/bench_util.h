// Shared harness utilities for the figure/table reproduction binaries.
//
// Every bench binary accepts:
//   --paper           paper-scale parameters (slower, closer to the paper)
//   --messages N      override the stream length (0 = per-bench default)
//   --sources S       number of sources (Table III default: 5)
//   --seed S          master seed
//   --runs R          independent runs to average (seeds seed, seed+1, ...)
//   --threads T       sweep parallelism (0 = hardware)
// and prints gnuplot-ready, tab-separated series to stdout with '#' headers.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "slb/common/flags.h"
#include "slb/common/string_util.h"
#include "slb/core/partitioner.h"
#include "slb/sim/partition_simulator.h"
#include "slb/sim/sweep.h"
#include "slb/workload/datasets.h"

namespace slb::bench {

struct BenchEnv {
  bool paper = false;
  int64_t messages = 0;  // 0 = per-bench default
  int64_t sources = 5;
  int64_t seed = 42;
  int64_t runs = 1;
  int64_t threads = 0;

  /// Picks the stream length: explicit --messages wins, then paper/quick.
  uint64_t MessagesOr(uint64_t quick_default, uint64_t paper_default) const {
    if (messages > 0) return static_cast<uint64_t>(messages);
    return paper ? paper_default : quick_default;
  }
};

/// Parses common flags (plus any extra flags already registered on `extra`).
/// Exits the process on bad flags or --help.
BenchEnv ParseBenchArgs(int argc, char** argv, const std::string& description,
                        FlagSet* extra = nullptr);

/// Prints the standard experiment banner: which figure/table of the paper
/// this binary regenerates and with which parameters.
void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& parameters);

/// The skew grid of the paper's ZF experiments: 0.1..2.0 step 0.1 in paper
/// mode, 0.2..2.0 step 0.2 in quick mode.
std::vector<double> SkewGrid(bool paper);

/// Runs one partition simulation, averaging final imbalance over `runs`
/// seeds. Also returns the last run's full result for series/loads.
struct AveragedRun {
  double mean_final_imbalance = 0.0;
  double mean_avg_imbalance = 0.0;
  PartitionSimResult last;
};
AveragedRun RunAveraged(const PartitionSimConfig& config, const DatasetSpec& spec,
                        int64_t runs, uint64_t seed);

/// Formats a double for TSV output (scientific, 4 significant digits).
std::string Sci(double value);

/// Applies the common sweep knobs (--sources/--seed/--runs) to `grid`, runs
/// it with --threads parallelism, and prints the result table to stdout
/// (the per-epoch series table when `series` is set). Returns the process
/// exit code: 1 when any cell failed.
int RunGridAndReport(const BenchEnv& env, SweepGrid grid, bool series = false);

}  // namespace slb::bench
