// Shared harness utilities for the figure/table reproduction binaries.
//
// Every bench binary accepts the same flag vocabulary:
//   --paper           paper-scale parameters (slower, closer to the paper)
//   --messages N      override the stream length (0 = per-bench default)
//   --sources S       number of sources (Table III default: 5)
//   --seed S          master seed
//   --runs R          independent runs to average (seeds seed, seed+1, ...)
//   --threads T       sweep parallelism (0 = hardware)
//   --format F        summary-table format: tsv (default) / csv / json
// and prints gnuplot-ready tables to stdout with '#' headers (TSV), or the
// CSV/JSON renderings of the same sweep table. Per-bench extras are
// registered on a FlagSet passed to ParseBenchArgs so `--help` lists one
// merged vocabulary. docs/SWEEP_FORMATS.md documents the output schemas.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "slb/common/flags.h"
#include "slb/common/string_util.h"
#include "slb/core/partitioner.h"
#include "slb/sim/partition_simulator.h"
#include "slb/sim/sweep.h"
#include "slb/workload/datasets.h"

namespace slb::bench {

struct BenchEnv {
  bool paper = false;
  int64_t messages = 0;  // 0 = per-bench default
  int64_t sources = 5;
  int64_t seed = 42;
  int64_t runs = 1;
  int64_t threads = 0;
  std::string format = "tsv";  // summary table format: tsv / csv / json

  /// Picks the stream length: explicit --messages wins, then paper/quick.
  uint64_t MessagesOr(uint64_t quick_default, uint64_t paper_default) const {
    if (messages > 0) return static_cast<uint64_t>(messages);
    return paper ? paper_default : quick_default;
  }
};

/// Parses common flags (plus any extra flags already registered on `extra`).
/// `defaults` seeds the pre-parse values (e.g. the DSPE benches default to
/// the paper's 48 sources). Exits the process on bad flags or --help.
BenchEnv ParseBenchArgs(int argc, char** argv, const std::string& description,
                        FlagSet* extra = nullptr, BenchEnv defaults = BenchEnv{});

/// Prints the standard experiment banner: which figure/table of the paper
/// this binary regenerates and with which parameters.
void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& parameters);

/// The skew grid of the paper's ZF experiments: 0.1..2.0 step 0.1 in paper
/// mode, 0.2..2.0 step 0.2 in quick mode.
std::vector<double> SkewGrid(bool paper);

/// Scenarios for the skew grid: one ZF dataset per exponent, labelled
/// "z=<exponent>", with SweepScenario::param = z for custom runners.
std::vector<SweepScenario> SkewScenarios(bool paper, uint64_t num_keys,
                                         uint64_t num_messages, uint64_t seed);

/// Same labelling/seeding for an explicit exponent list (the benches that
/// sweep a few representative z values instead of the full grid).
std::vector<SweepScenario> ZipfScenarios(const std::vector<double>& exponents,
                                         uint64_t num_keys,
                                         uint64_t num_messages, uint64_t seed);

/// Formats a double for TSV output (scientific, 4 significant digits).
std::string Sci(double value);

/// Which sweep emitters RunGridAndReport prints (all to stdout).
enum class ReportMode {
  kTable,           // SweepToTsv/Csv/Json per --format
  kSeries,          // per-sample long format (SweepSeriesToTsv)
  kTableAndSeries,  // summary table, blank line, then the series table
  kWorkerLoads,     // per-worker head/tail breakdown (SweepWorkerLoadsToTsv)
};

/// Applies the common sweep knobs (--sources/--seed/--runs) to `grid`, runs
/// it with --threads parallelism, and prints the result per `mode`. Returns
/// the process exit code: 1 when any cell failed.
int RunGridAndReport(const BenchEnv& env, SweepGrid grid,
                     ReportMode mode = ReportMode::kTable);

/// Same, but concatenates the tables of several grids (stable order: grids
/// in call order, cells in grid order) into ONE report. For experiments
/// whose axes do not form a single cartesian product, e.g. comparing an
/// adaptive algorithm against a fixed-parameter family.
int RunGridsAndReport(const BenchEnv& env, std::vector<SweepGrid> grids,
                      ReportMode mode = ReportMode::kTable);

/// The sweep half of RunGridAndReport without the report: applies the
/// common knobs (--sources/--seed/--runs) to `grid` and runs it with
/// --threads parallelism. For benches that post-process the table (e.g. the
/// adversarial-headroom bench derives a per-scenario variant-gap table)
/// before printing it with ReportTable.
SweepResultTable RunGridForEnv(const BenchEnv& env, SweepGrid grid);

/// The report half: prints `table` per `mode` (honoring --format) and
/// returns the process exit code — 1 when any cell failed, 2 when the
/// mode/format combination is unsupported.
int ReportTable(const BenchEnv& env, const SweepResultTable& table,
                ReportMode mode);

/// True when `mode` can be rendered under --format; prints the rejection to
/// stderr otherwise (the long-format emitters are TSV-only). Benches that
/// sweep with RunGridForEnv and report later must call this BEFORE the
/// sweep so a bad flag fails fast instead of after minutes of simulation.
bool CheckReportFormat(const BenchEnv& env, ReportMode mode);

}  // namespace slb::bench
