#include "memory_overhead.h"

#include <unordered_set>
#include <utility>

#include "slb/analysis/choices.h"
#include "slb/analysis/memory_model.h"
#include "slb/workload/zipf.h"

namespace slb::bench {

SweepCellRunner MakeMemoryOverheadRunner(MemoryBaseline baseline) {
  return [baseline](const SweepCellContext& ctx) -> Result<CellPayload> {
    const PartitionSimConfig config = ctx.MakeSimConfig();
    const uint32_t n = ctx.num_workers;

    // Frequency table of this cell's concrete stream (keys equal ranks).
    // Recomputed per cell even though it only depends on the scenario:
    // cells must be pure functions of their context (no cross-cell state),
    // and counting is cheap next to the simulation below.
    auto gen = ctx.MakeStream();
    if (!gen.ok()) return gen.status();
    const uint64_t keys = (*gen)->num_keys();
    const uint64_t messages = (*gen)->num_messages();
    FrequencyTable counts(keys, 0);
    for (uint64_t m = 0; m < messages; ++m) ++counts[(*gen)->NextKey()];

    // Analytic head and d (Sec. IV) from the true pmf at this cell's theta.
    const ZipfDistribution zipf(ctx.scenario->param, keys);
    const uint64_t head_size =
        zipf.CountAboveThreshold(config.partitioner.theta());
    const auto head =
        HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    const uint32_t d = FindOptimalChoices(head, n, config.partitioner.epsilon);
    std::unordered_set<uint64_t> head_keys;
    for (uint64_t r = 0; r < head_size; ++r) head_keys.insert(r);

    MemoryModelTable memory;
    if (baseline == MemoryBaseline::kPkg) {
      memory.baseline = "pkg";
      memory.baseline_entries = MemoryPkg(counts);
    } else {
      memory.baseline = "sg";
      memory.baseline_entries = MemorySg(counts, n);
    }
    switch (ctx.algorithm) {
      case AlgorithmKind::kDChoices:
        memory.estimated_entries = MemoryDc(counts, head_keys, d);
        break;
      case AlgorithmKind::kWChoices:
        memory.estimated_entries = MemoryWc(counts, head_keys, n);
        break;
      default:
        return Status::InvalidArgument(
            "memory-overhead runner supports only D-Choices / W-Choices");
    }
    memory.estimated_overhead_pct =
        OverheadPercent(memory.estimated_entries, memory.baseline_entries);

    // Measured footprint from the simulated run (same stream, Reset by the
    // simulator; requires grid.track_memory).
    auto sim = RunPartitionSimulation(config, gen->get());
    if (!sim.ok()) return sim.status();

    CellPayload payload;
    payload.sim = std::move(sim.value());
    memory.measured_entries = payload.sim.memory_entries;
    memory.measured_overhead_pct =
        OverheadPercent(memory.measured_entries, memory.baseline_entries);
    payload.memory = std::move(memory);
    payload.AddCount("d", d);
    return payload;
  };
}

}  // namespace slb::bench
