// Sweep cell runner for the Sec. IV-B memory-overhead experiments
// (Figs. 5-6): estimates memDC / memWC from the concrete stream's frequency
// table, runs the simulation with (key,worker) accounting, and attaches a
// MemoryModelTable payload comparing both against a baseline scheme.

#pragma once

#include <cstdint>

#include "slb/sim/sweep.h"

namespace slb::bench {

/// Which scheme the overhead percentages are measured against.
enum class MemoryBaseline {
  kPkg,  // memPKG = sum_k min(f_k, 2)      (Fig. 5)
  kSg,   // memSG  = sum_k min(f_k, n)      (Fig. 6)
};

/// Cell runner for grids whose scenarios are ZF streams (SweepScenario::param
/// = the Zipf exponent, keys = ranks) and whose algorithm axis is D-Choices /
/// W-Choices. The head and d are the *analytic* ones (theta and epsilon come
/// from the cell's partitioner options, i.e. theta = 1/(5n) by default),
/// exactly as Sec. IV-B computes the estimates. Set grid.track_memory = true
/// so the measured footprint is recorded.
SweepCellRunner MakeMemoryOverheadRunner(MemoryBaseline baseline);

}  // namespace slb::bench
