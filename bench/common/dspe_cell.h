// Sweep cell runner for the cluster-level experiments (Figs. 13-14). Each
// cell runs one of two engines:
//
//   * kSim       — RunDspeSimulation, the queueing-network Storm stand-in
//                  (modeled service times; deterministic, fast);
//   * kThreaded  — ExecuteTopologyThreaded, the real multi-threaded runtime
//                  (SPSC rings, credit backpressure): throughput and latency
//                  are *measured* on the host, not modeled.
//
// Either way the cell reports throughput counters and latency snapshots in
// the cell payload (the partition-sim fields stay zero — these experiments
// measure the cluster, not routing imbalance).

#pragma once

#include <string>

#include "slb/dspe/runtime.h"
#include "slb/sim/dspe_simulator.h"
#include "slb/sim/sweep.h"

namespace slb::bench {

enum class DspeEngine {
  kSim,       // discrete-event queueing model
  kThreaded,  // real threads, measured wall-clock
};

/// Parses "sim" / "threaded" (case-insensitive).
Result<DspeEngine> ParseDspeEngine(const std::string& text);

/// Parses "adaptive" / "spin" (case-insensitive) into the threaded engine's
/// idle-executor policy.
Result<WaitStrategy> ParseWaitStrategy(const std::string& text);

struct DspeCellOptions {
  /// Template config for the cluster's service parameters. Everything
  /// workload- or cell-shaped is overwritten per cell: algorithm,
  /// partitioner options, worker count, source count, seed, the Zipf
  /// exponent (SweepScenario::param), and the message/key counts (read
  /// from the scenario's generator, the single source of truth).
  DspeConfig base;
  DspeEngine engine = DspeEngine::kSim;
  /// kThreaded only: executor threads / ring sizes / emit batch.
  TopologyRuntimeOptions runtime;
  /// Which payload components the cells attach.
  bool throughput = true;       // Fig. 13 columns
  bool latency = true;          // tuple-level latency snapshot
  bool worker_latency = false;  // Fig. 14's per-worker average percentiles
                                // (kSim only; the threaded runtime reports
                                // tuple-level percentiles)
};

SweepCellRunner MakeDspeCellRunner(DspeCellOptions options);

}  // namespace slb::bench
