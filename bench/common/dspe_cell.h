// Sweep cell runner for the cluster-level experiments (Figs. 13-14): each
// cell is one RunDspeSimulation of the queueing-network Storm stand-in,
// reported as throughput counters and latency snapshots in the cell payload
// (the partition-sim fields stay zero — the DSPE simulator measures the
// cluster, not routing imbalance).

#pragma once

#include "slb/sim/dspe_simulator.h"
#include "slb/sim/sweep.h"

namespace slb::bench {

struct DspeCellOptions {
  /// Template config for the cluster's service parameters. Everything
  /// workload- or cell-shaped is overwritten per cell: algorithm,
  /// partitioner options, worker count, source count, seed, the Zipf
  /// exponent (SweepScenario::param), and the message/key counts (read
  /// from the scenario's generator, the single source of truth).
  DspeConfig base;
  /// Which payload components the cells attach.
  bool throughput = true;       // Fig. 13 columns
  bool latency = true;          // tuple-level latency snapshot
  bool worker_latency = false;  // Fig. 14's per-worker average percentiles
};

SweepCellRunner MakeDspeCellRunner(DspeCellOptions options);

}  // namespace slb::bench
