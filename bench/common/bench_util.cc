#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "slb/sim/report.h"
#include "slb/workload/datasets.h"

namespace slb::bench {

BenchEnv ParseBenchArgs(int argc, char** argv, const std::string& description,
                        FlagSet* extra) {
  static BenchEnv env;  // targets must outlive Parse
  FlagSet own(description);
  FlagSet& flags = extra != nullptr ? *extra : own;
  flags.AddBool("paper", &env.paper, "use paper-scale parameters (slow)");
  flags.AddInt64("messages", &env.messages,
                 "stream length override (0 = per-bench default)");
  flags.AddInt64("sources", &env.sources, "number of sources (paper: 5)");
  flags.AddInt64("seed", &env.seed, "master RNG seed");
  flags.AddInt64("runs", &env.runs, "independent runs to average");
  flags.AddInt64("threads", &env.threads, "sweep parallelism (0 = hardware)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    std::exit(2);
  }
  if (flags.help_requested()) std::exit(0);
  return env;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& parameters) {
  std::printf("# %s\n", experiment.c_str());
  std::printf("# Reproduces: %s of \"When Two Choices Are not Enough\" "
              "(Nasir et al., ICDE 2016)\n",
              paper_ref.c_str());
  std::printf("# Parameters: %s\n", parameters.c_str());
}

std::vector<double> SkewGrid(bool paper) {
  std::vector<double> grid;
  const double step = paper ? 0.1 : 0.2;
  for (double z = step >= 0.2 ? 0.2 : 0.1; z <= 2.0 + 1e-9; z += step) {
    grid.push_back(z);
  }
  return grid;
}

AveragedRun RunAveraged(const PartitionSimConfig& config, const DatasetSpec& spec,
                        int64_t runs, uint64_t seed) {
  AveragedRun out;
  if (runs < 1) runs = 1;
  for (int64_t r = 0; r < runs; ++r) {
    DatasetSpec run_spec = spec;
    run_spec.seed = seed + static_cast<uint64_t>(r);
    auto gen = MakeGenerator(run_spec);
    auto result = RunPartitionSimulation(config, gen.get());
    if (!result.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    out.mean_final_imbalance += result->final_imbalance;
    out.mean_avg_imbalance += result->avg_imbalance;
    if (r == runs - 1) out.last = std::move(result.value());
  }
  out.mean_final_imbalance /= static_cast<double>(runs);
  out.mean_avg_imbalance /= static_cast<double>(runs);
  return out;
}

std::string Sci(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4e", value);
  return buf;
}

int RunGridAndReport(const BenchEnv& env, SweepGrid grid, bool series) {
  grid.num_sources = static_cast<uint32_t>(env.sources);
  grid.seed = static_cast<uint64_t>(env.seed);
  grid.runs = static_cast<uint32_t>(env.runs < 1 ? 1 : env.runs);
  const SweepResultTable table =
      RunSweep(grid, static_cast<size_t>(env.threads));
  std::fputs((series ? SweepSeriesToTsv(table) : SweepToTsv(table)).c_str(),
             stdout);
  return table.num_errors() == 0 ? 0 : 1;
}

}  // namespace slb::bench
