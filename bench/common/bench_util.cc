#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "slb/sim/report.h"
#include "slb/workload/datasets.h"

namespace slb::bench {

BenchEnv ParseBenchArgs(int argc, char** argv, const std::string& description,
                        FlagSet* extra, BenchEnv defaults) {
  static BenchEnv env;  // targets must outlive Parse
  env = std::move(defaults);
  FlagSet own(description);
  FlagSet& flags = extra != nullptr ? *extra : own;
  flags.AddBool("paper", &env.paper, "use paper-scale parameters (slow)");
  flags.AddInt64("messages", &env.messages,
                 "stream length override (0 = per-bench default)");
  flags.AddInt64("sources", &env.sources, "number of sources (paper: 5)");
  flags.AddInt64("seed", &env.seed, "master RNG seed");
  flags.AddInt64("runs", &env.runs, "independent runs to average");
  flags.AddInt64("threads", &env.threads, "sweep parallelism (0 = hardware)");
  flags.AddString("format", &env.format, "summary table format: tsv/csv/json");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Usage().c_str());
    std::exit(2);
  }
  if (flags.help_requested()) std::exit(0);
  if (env.format != "tsv" && env.format != "csv" && env.format != "json") {
    std::fprintf(stderr, "bad --format '%s' (want tsv, csv, or json)\n",
                 env.format.c_str());
    std::exit(2);
  }
  return env;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& parameters) {
  std::printf("# %s\n", experiment.c_str());
  std::printf("# Reproduces: %s of \"When Two Choices Are not Enough\" "
              "(Nasir et al., ICDE 2016)\n",
              paper_ref.c_str());
  std::printf("# Parameters: %s\n", parameters.c_str());
}

std::vector<double> SkewGrid(bool paper) {
  std::vector<double> grid;
  const double step = paper ? 0.1 : 0.2;
  for (double z = step >= 0.2 ? 0.2 : 0.1; z <= 2.0 + 1e-9; z += step) {
    grid.push_back(z);
  }
  return grid;
}

std::vector<SweepScenario> SkewScenarios(bool paper, uint64_t num_keys,
                                         uint64_t num_messages, uint64_t seed) {
  return ZipfScenarios(SkewGrid(paper), num_keys, num_messages, seed);
}

std::vector<SweepScenario> ZipfScenarios(const std::vector<double>& exponents,
                                         uint64_t num_keys,
                                         uint64_t num_messages, uint64_t seed) {
  std::vector<SweepScenario> scenarios;
  for (double z : exponents) {
    DatasetSpec spec = MakeZipfSpec(z, num_keys, num_messages, seed);
    char label[16];
    std::snprintf(label, sizeof(label), "z=%.1f", z);
    spec.name = label;
    scenarios.push_back(ScenarioFromDataset(spec));
  }
  return scenarios;
}

std::string Sci(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4e", value);
  return buf;
}

namespace {

std::string RenderTable(const SweepResultTable& table,
                        const std::string& format) {
  if (format == "csv") return SweepToCsv(table);
  if (format == "json") return SweepToJson(table);
  return SweepToTsv(table);
}

int Report(const BenchEnv& env, const SweepResultTable& table,
           ReportMode mode) {
  switch (mode) {
    case ReportMode::kTable:
      std::fputs(RenderTable(table, env.format).c_str(), stdout);
      break;
    case ReportMode::kSeries:
      std::fputs(SweepSeriesToTsv(table).c_str(), stdout);
      break;
    case ReportMode::kTableAndSeries:
      std::fputs(RenderTable(table, env.format).c_str(), stdout);
      std::fputs("\n", stdout);
      std::fputs(SweepSeriesToTsv(table).c_str(), stdout);
      break;
    case ReportMode::kWorkerLoads:
      std::fputs(SweepWorkerLoadsToTsv(table).c_str(), stdout);
      break;
  }
  return table.num_errors() == 0 ? 0 : 1;
}

}  // namespace

int RunGridAndReport(const BenchEnv& env, SweepGrid grid, ReportMode mode) {
  std::vector<SweepGrid> grids;
  grids.push_back(std::move(grid));
  return RunGridsAndReport(env, std::move(grids), mode);
}

SweepResultTable RunGridForEnv(const BenchEnv& env, SweepGrid grid) {
  grid.num_sources = static_cast<uint32_t>(env.sources);
  grid.seed = static_cast<uint64_t>(env.seed);
  grid.runs = static_cast<uint32_t>(env.runs < 1 ? 1 : env.runs);
  return RunSweep(grid, static_cast<size_t>(env.threads));
}

bool CheckReportFormat(const BenchEnv& env, ReportMode mode) {
  // The long-format emitters (series / worker-loads) are TSV-only; honor
  // the flag contract instead of silently ignoring --format.
  if (mode != ReportMode::kTable && env.format != "tsv") {
    std::fprintf(stderr,
                 "--format %s is not supported here: this bench emits a "
                 "long-format TSV table (only --format tsv)\n",
                 env.format.c_str());
    return false;
  }
  return true;
}

int ReportTable(const BenchEnv& env, const SweepResultTable& table,
                ReportMode mode) {
  if (!CheckReportFormat(env, mode)) return 2;
  return Report(env, table, mode);
}

int RunGridsAndReport(const BenchEnv& env, std::vector<SweepGrid> grids,
                      ReportMode mode) {
  // Reject the mode/format combination BEFORE sweeping.
  if (!CheckReportFormat(env, mode)) return 2;
  SweepResultTable table;
  for (SweepGrid& grid : grids) {
    SweepResultTable part = RunGridForEnv(env, std::move(grid));
    for (SweepCellResult& cell : part.cells) {
      table.cells.push_back(std::move(cell));
    }
  }
  return Report(env, table, mode);
}

}  // namespace slb::bench
