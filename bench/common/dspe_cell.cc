#include "dspe_cell.h"

#include <cctype>
#include <memory>
#include <utility>
#include <vector>

#include "slb/dspe/standard_bolts.h"
#include "slb/dspe/topology.h"

namespace slb::bench {
namespace {

// Spout used by the threaded engine: the scenario's global stream split
// round-robin among the spout tasks (spout s emits keys s, s+S, s+2S, ...).
// This is the same sender interleave the partition simulator models, so a
// threaded run and a sim run over the same generator route the same keys
// from the same senders — the property the elastic-rescale replay and the
// sim-vs-threaded equivalence test depend on. All spouts share one
// materialized key vector (read-only after construction, so thread-safe).
class CellVectorSpout final : public Spout {
 public:
  CellVectorSpout(std::shared_ptr<const std::vector<uint64_t>> keys,
                  uint64_t offset, uint64_t stride)
      : keys_(std::move(keys)), pos_(offset), stride_(stride) {}

  bool NextTuple(TopologyTuple* out) override {
    if (pos_ >= keys_->size()) return false;
    out->key = (*keys_)[pos_];
    out->value = 1;
    pos_ += stride_;
    return true;
  }

 private:
  std::shared_ptr<const std::vector<uint64_t>> keys_;
  uint64_t pos_;
  uint64_t stride_;
};

Result<CellPayload> RunSimCell(const DspeCellOptions& options,
                               const DspeConfig& config) {
  auto result = RunDspeSimulation(config);
  if (!result.ok()) return result.status();

  CellPayload payload;
  payload.sim.total_messages = result->completed;
  if (options.throughput) {
    ThroughputCounters counters;
    counters.throughput_per_s = result->throughput_per_s;
    counters.makespan_s = result->makespan_s;
    counters.completed = result->completed;
    payload.throughput = counters;
  }
  if (options.latency) {
    LatencySnapshot snapshot;
    snapshot.count = static_cast<int64_t>(result->completed);
    snapshot.avg_ms = result->latency_avg_ms;
    snapshot.p50_ms = result->latency_p50_ms;
    snapshot.p95_ms = result->latency_p95_ms;
    snapshot.p99_ms = result->latency_p99_ms;
    snapshot.max_ms = result->latency_max_ms;
    payload.latency = snapshot;
  }
  if (options.worker_latency) {
    payload.AddMetric("worker_avg_max_ms", result->max_worker_avg_latency_ms);
    payload.AddMetric("worker_avg_p50_ms", result->p50_worker_avg_latency_ms);
    payload.AddMetric("worker_avg_p95_ms", result->p95_worker_avg_latency_ms);
    payload.AddMetric("worker_avg_p99_ms", result->p99_worker_avg_latency_ms);
  }
  return payload;
}

Result<CellPayload> RunThreadedCell(const DspeCellOptions& options,
                                    const DspeConfig& config,
                                    const SweepCellContext& ctx) {
  // The same spout->worker shape the simulator models: num_sources spout
  // tasks splitting the scenario's stream round-robin, `n` worker-bolt
  // tasks, the cell's grouping scheme on the single edge. Worker state is a
  // real per-key sum, so processing cost is genuine work rather than an
  // injected delay.
  auto gen = ctx.MakeStream();
  if (!gen.ok()) return gen.status();
  auto stream = std::make_shared<std::vector<uint64_t>>();
  stream->reserve(config.num_messages);
  for (uint64_t i = 0; i < config.num_messages; ++i) {
    stream->push_back((*gen)->NextKey());
  }
  std::shared_ptr<const std::vector<uint64_t>> shared_stream = stream;
  const uint32_t num_sources = config.num_sources;

  TopologyBuilder builder;
  builder.AddSpout(
      "sources",
      [shared_stream, num_sources](uint32_t task) {
        return std::make_unique<CellVectorSpout>(shared_stream, task,
                                                 num_sources);
      },
      config.num_sources);
  Grouping grouping;
  grouping.algorithm = ctx.algorithm;
  // theta/epsilon/sketch knobs carry over; num_workers and hash_seed are
  // filled in by the engine from the destination parallelism and edge seed.
  grouping.options = ctx.variant->options;
  builder
      .AddBolt("workers",
               [](uint32_t) { return std::make_unique<CountingBolt>(); },
               config.partitioner.num_workers)
      .Input("sources", grouping);

  TopologyOptions topology_options;
  topology_options.hash_seed = config.partitioner.hash_seed;
  topology_options.seed = config.seed;
  topology_options.max_pending_per_spout = config.max_pending_per_source;

  // Live elastic rescale: the variant's schedule (the sweep axis in
  // bench_elastic_rescale) wins over the grid default, mirroring how the
  // simulator's RunDefault() resolves it.
  TopologyRuntimeOptions runtime = options.runtime;
  const RescaleSchedule& schedule = !ctx.variant->rescale.empty()
                                        ? ctx.variant->rescale
                                        : ctx.grid->rescale;
  if (!schedule.empty()) {
    runtime.rescale.schedule = schedule;
    runtime.rescale.total_messages = config.num_messages;
  }

  auto result =
      ExecuteTopologyThreaded(builder.Build(), topology_options, runtime);
  if (!result.ok()) return result.status();
  const TopologyStats& stats = result.value();

  CellPayload payload;
  payload.sim.total_messages = stats.roots_acked;
  if (options.throughput) {
    ThroughputCounters counters;
    counters.throughput_per_s = stats.throughput_per_s;
    counters.makespan_s = stats.makespan_s;
    counters.completed = stats.roots_acked;
    payload.throughput = counters;
  }
  if (options.latency) {
    LatencySnapshot snapshot;
    snapshot.count = static_cast<int64_t>(stats.roots_acked);
    snapshot.avg_ms = stats.latency_avg_ms;
    snapshot.p50_ms = stats.latency_p50_ms;
    snapshot.p95_ms = stats.latency_p95_ms;
    snapshot.p99_ms = stats.latency_p99_ms;
    snapshot.max_ms = stats.latency_max_ms;
    payload.latency = snapshot;
  }
  // Executor idle accounting (the kAdaptive wait ladder; all zero under
  // kSpin). Always attached so the smoke guard can assert the columns exist
  // and are non-negative on every threaded run.
  payload.AddMetric("idle_s", stats.idle_s);
  payload.AddMetric("park_s", stats.park_s);
  payload.AddCount("parks", stats.parks);
  payload.AddCount("threads_pinned", stats.threads_pinned);
  if (!schedule.empty()) {
    // Modeled replay counters go where the simulator puts them (so the
    // rescale summary tables render both engines uniformly); the live
    // protocol's measured costs ride as named metric columns.
    const TopologyRescaleStats& rs = stats.rescale;
    MigrationCounters mig;
    mig.final_num_workers = rs.final_parallelism;
    mig.rescale_events = rs.rescale_events;
    mig.keys_migrated = rs.keys_migrated;
    mig.state_bytes_migrated = rs.state_bytes_migrated;
    mig.stalled_messages = rs.stalled_messages;
    mig.moved_key_fraction = rs.moved_key_fraction;
    payload.migration = mig;
    payload.AddMetric("quiesce_s", rs.total_quiesce_s);
    payload.AddMetric("credit_drain_s", rs.total_credit_drain_s);
    payload.AddMetric("migration_stall_s", rs.total_migration_stall_s);
    payload.AddCount("handoff_frames", rs.handoff_frames);
    payload.AddCount("measured_stalls", rs.measured_stalled_messages);
    for (const ComponentStats& comp : stats.components) {
      if (comp.name == "workers") {
        payload.sim.final_imbalance = comp.imbalance;
        payload.sim.worker_loads = comp.task_loads;
        payload.sim.final_num_workers = rs.final_parallelism;
      }
    }
  }
  return payload;
}

}  // namespace

Result<DspeEngine> ParseDspeEngine(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "sim") return DspeEngine::kSim;
  if (lower == "threaded") return DspeEngine::kThreaded;
  return Status::InvalidArgument("unknown engine '" + text +
                                 "' (expected sim or threaded)");
}

Result<WaitStrategy> ParseWaitStrategy(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "adaptive") return WaitStrategy::kAdaptive;
  if (lower == "spin") return WaitStrategy::kSpin;
  return Status::InvalidArgument("unknown wait strategy '" + text +
                                 "' (expected adaptive or spin)");
}

SweepCellRunner MakeDspeCellRunner(DspeCellOptions options) {
  return [options](const SweepCellContext& ctx) -> Result<CellPayload> {
    DspeConfig config = options.base;
    config.algorithm = ctx.algorithm;
    config.partitioner = ctx.variant->options;
    config.partitioner.num_workers = ctx.num_workers;
    config.partitioner.hash_seed = ctx.grid->seed;
    config.num_sources = ctx.variant->num_sources > 0
                             ? ctx.variant->num_sources
                             : ctx.grid->num_sources;
    config.zipf_exponent = ctx.scenario->param;
    config.seed = ctx.run_seed;
    // Single source of truth for the workload size: the scenario's own
    // generator (both engines draw their streams internally, so only the
    // counts and the exponent cross over).
    auto gen = ctx.MakeStream();
    if (!gen.ok()) return gen.status();
    config.num_messages = (*gen)->num_messages();
    config.num_keys = (*gen)->num_keys();

    return options.engine == DspeEngine::kThreaded
               ? RunThreadedCell(options, config, ctx)
               : RunSimCell(options, config);
  };
}

}  // namespace slb::bench
