#include "dspe_cell.h"

#include <cctype>
#include <memory>
#include <utility>

#include "slb/common/rng.h"
#include "slb/dspe/standard_bolts.h"
#include "slb/dspe/topology.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

// Spout used by the threaded engine: one Zipf stream per source task, same
// workload shape the simulator draws internally.
class CellZipfSpout final : public Spout {
 public:
  CellZipfSpout(double z, uint64_t keys, uint64_t count, uint64_t seed)
      : zipf_(z, keys), remaining_(count), rng_(seed) {}

  bool NextTuple(TopologyTuple* out) override {
    if (remaining_ == 0) return false;
    --remaining_;
    out->key = zipf_.Sample(&rng_);
    out->value = 1;
    return true;
  }

 private:
  ZipfDistribution zipf_;
  uint64_t remaining_;
  Rng rng_;
};

Result<CellPayload> RunSimCell(const DspeCellOptions& options,
                               const DspeConfig& config) {
  auto result = RunDspeSimulation(config);
  if (!result.ok()) return result.status();

  CellPayload payload;
  payload.sim.total_messages = result->completed;
  if (options.throughput) {
    ThroughputCounters counters;
    counters.throughput_per_s = result->throughput_per_s;
    counters.makespan_s = result->makespan_s;
    counters.completed = result->completed;
    payload.throughput = counters;
  }
  if (options.latency) {
    LatencySnapshot snapshot;
    snapshot.count = static_cast<int64_t>(result->completed);
    snapshot.avg_ms = result->latency_avg_ms;
    snapshot.p50_ms = result->latency_p50_ms;
    snapshot.p95_ms = result->latency_p95_ms;
    snapshot.p99_ms = result->latency_p99_ms;
    snapshot.max_ms = result->latency_max_ms;
    payload.latency = snapshot;
  }
  if (options.worker_latency) {
    payload.AddMetric("worker_avg_max_ms", result->max_worker_avg_latency_ms);
    payload.AddMetric("worker_avg_p50_ms", result->p50_worker_avg_latency_ms);
    payload.AddMetric("worker_avg_p95_ms", result->p95_worker_avg_latency_ms);
    payload.AddMetric("worker_avg_p99_ms", result->p99_worker_avg_latency_ms);
  }
  return payload;
}

Result<CellPayload> RunThreadedCell(const DspeCellOptions& options,
                                    const DspeConfig& config,
                                    const SweepCellContext& ctx) {
  // The same spout->worker shape the simulator models: num_sources spout
  // tasks splitting the stream evenly, `n` worker-bolt tasks, the cell's
  // grouping scheme on the single edge. Worker state is a real per-key sum,
  // so processing cost is genuine work rather than an injected delay.
  const uint64_t per_source = config.num_messages / config.num_sources;
  const uint64_t remainder = config.num_messages % config.num_sources;
  const double z = config.zipf_exponent;
  const uint64_t keys = config.num_keys;
  const uint64_t seed = config.seed;

  TopologyBuilder builder;
  builder.AddSpout(
      "sources",
      [=](uint32_t task) {
        const uint64_t count = per_source + (task < remainder ? 1 : 0);
        return std::make_unique<CellZipfSpout>(
            z, keys, count, seed ^ (0x5851f42d4c957f2dULL * (task + 1)));
      },
      config.num_sources);
  Grouping grouping;
  grouping.algorithm = ctx.algorithm;
  // theta/epsilon/sketch knobs carry over; num_workers and hash_seed are
  // filled in by the engine from the destination parallelism and edge seed.
  grouping.options = ctx.variant->options;
  builder
      .AddBolt("workers",
               [](uint32_t) { return std::make_unique<CountingBolt>(); },
               config.partitioner.num_workers)
      .Input("sources", grouping);

  TopologyOptions topology_options;
  topology_options.hash_seed = config.partitioner.hash_seed;
  topology_options.seed = config.seed;
  topology_options.max_pending_per_spout = config.max_pending_per_source;

  auto result = ExecuteTopologyThreaded(builder.Build(), topology_options,
                                        options.runtime);
  if (!result.ok()) return result.status();
  const TopologyStats& stats = result.value();

  CellPayload payload;
  payload.sim.total_messages = stats.roots_acked;
  if (options.throughput) {
    ThroughputCounters counters;
    counters.throughput_per_s = stats.throughput_per_s;
    counters.makespan_s = stats.makespan_s;
    counters.completed = stats.roots_acked;
    payload.throughput = counters;
  }
  if (options.latency) {
    LatencySnapshot snapshot;
    snapshot.count = static_cast<int64_t>(stats.roots_acked);
    snapshot.avg_ms = stats.latency_avg_ms;
    snapshot.p50_ms = stats.latency_p50_ms;
    snapshot.p95_ms = stats.latency_p95_ms;
    snapshot.p99_ms = stats.latency_p99_ms;
    snapshot.max_ms = stats.latency_max_ms;
    payload.latency = snapshot;
  }
  return payload;
}

}  // namespace

Result<DspeEngine> ParseDspeEngine(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "sim") return DspeEngine::kSim;
  if (lower == "threaded") return DspeEngine::kThreaded;
  return Status::InvalidArgument("unknown engine '" + text +
                                 "' (expected sim or threaded)");
}

SweepCellRunner MakeDspeCellRunner(DspeCellOptions options) {
  return [options](const SweepCellContext& ctx) -> Result<CellPayload> {
    DspeConfig config = options.base;
    config.algorithm = ctx.algorithm;
    config.partitioner = ctx.variant->options;
    config.partitioner.num_workers = ctx.num_workers;
    config.partitioner.hash_seed = ctx.grid->seed;
    config.num_sources = ctx.variant->num_sources > 0
                             ? ctx.variant->num_sources
                             : ctx.grid->num_sources;
    config.zipf_exponent = ctx.scenario->param;
    config.seed = ctx.run_seed;
    // Single source of truth for the workload size: the scenario's own
    // generator (both engines draw their streams internally, so only the
    // counts and the exponent cross over).
    auto gen = ctx.MakeStream();
    if (!gen.ok()) return gen.status();
    config.num_messages = (*gen)->num_messages();
    config.num_keys = (*gen)->num_keys();

    return options.engine == DspeEngine::kThreaded
               ? RunThreadedCell(options, config, ctx)
               : RunSimCell(options, config);
  };
}

}  // namespace slb::bench
