#include "dspe_cell.h"

#include <utility>

namespace slb::bench {

SweepCellRunner MakeDspeCellRunner(DspeCellOptions options) {
  return [options](const SweepCellContext& ctx) -> Result<CellPayload> {
    DspeConfig config = options.base;
    config.algorithm = ctx.algorithm;
    config.partitioner = ctx.variant->options;
    config.partitioner.num_workers = ctx.num_workers;
    config.partitioner.hash_seed = ctx.grid->seed;
    config.num_sources = ctx.variant->num_sources > 0
                             ? ctx.variant->num_sources
                             : ctx.grid->num_sources;
    config.zipf_exponent = ctx.scenario->param;
    config.seed = ctx.run_seed;
    // Single source of truth for the workload size: the scenario's own
    // generator (the DSPE simulator draws its stream internally, so only
    // the counts and the exponent cross over).
    auto gen = ctx.MakeStream();
    if (!gen.ok()) return gen.status();
    config.num_messages = (*gen)->num_messages();
    config.num_keys = (*gen)->num_keys();

    auto result = RunDspeSimulation(config);
    if (!result.ok()) return result.status();

    CellPayload payload;
    payload.sim.total_messages = result->completed;
    if (options.throughput) {
      ThroughputCounters counters;
      counters.throughput_per_s = result->throughput_per_s;
      counters.makespan_s = result->makespan_s;
      counters.completed = result->completed;
      payload.throughput = counters;
    }
    if (options.latency) {
      LatencySnapshot snapshot;
      snapshot.count = static_cast<int64_t>(result->completed);
      snapshot.avg_ms = result->latency_avg_ms;
      snapshot.p50_ms = result->latency_p50_ms;
      snapshot.p95_ms = result->latency_p95_ms;
      snapshot.p99_ms = result->latency_p99_ms;
      snapshot.max_ms = result->latency_max_ms;
      payload.latency = snapshot;
    }
    if (options.worker_latency) {
      payload.AddMetric("worker_avg_max_ms", result->max_worker_avg_latency_ms);
      payload.AddMetric("worker_avg_p50_ms", result->p50_worker_avg_latency_ms);
      payload.AddMetric("worker_avg_p95_ms", result->p95_worker_avg_latency_ms);
      payload.AddMetric("worker_avg_p99_ms", result->p99_worker_avg_latency_ms);
    }
    return payload;
  };
}

}  // namespace slb::bench
