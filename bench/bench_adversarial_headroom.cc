// Adversarial headroom: where does the paper's static-head assumption break?
//
// D-Choices and W-Choices assume the head of the distribution is *stable*:
// SpaceSaving converges on the heavy hitters and FINDOPTIMALCHOICES sizes d
// for them. The adversarial catalog (slb/workload/scenario.h) generates the
// dynamics that violate that assumption — a cold key igniting (flash-crowd),
// a whole GROUP igniting at once (correlated-burst), the hot set rotating
// wholesale (hot-set-churn), tenant bands waxing and waning on a cycle
// (diurnal), fresh keys arriving forever (key-space-growth), a key crossing
// the head threshold silently (single-key-ramp), and a noisy replay of any
// of them (replay-with-noise). AutoFlow (arXiv:2103.08888) argues these
// hotspot dynamics, not static skew, are where balancers actually break.
//
// The bench runs D-C and W-C over the catalog's dynamic scenarios at n = 50
// across a three-way sketch axis: plain SpaceSaving (ss), decaying
// SpaceSaving with the theta-derived fixed half-life (ss-decay), and the
// auto-tuned half-life (ss-decay-auto, see DecayingSpaceSaving::AutoTune).
// Knobs are calibrated PAST the quick-scale defaults — faster hot-set
// rotation, sharper bursts, longer streams — so the sketch gap is
// quantitative rather than within noise.
//
// Output: the standard summary table, the per-sample series (the failure is
// visible over time: with the plain sketch the imbalance spikes when the
// head moves and recovers slowly), and a derived per-scenario HEADROOM
// table — mean avg-imbalance of ss minus each decaying variant, positive
// when decay wins — which is what the acceptance bar of ROADMAP's
// calibration follow-up reads.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"

namespace slb::bench {
namespace {

/// Scenario knobs calibrated for a decisive dynamic head at |K| = 1e4.
/// `messages` stretches windows/periods with the stream so --paper and
/// --messages overrides keep the same dynamics per message.
SweepScenario CalibratedScenario(const std::string& name, uint64_t messages) {
  ScenarioOptions options;
  options.num_keys = 10000;
  options.num_messages = messages;
  if (name == "flash-crowd") {
    options.burst_fraction = 0.5;
    options.burst_begin = 0.45;
    options.burst_end = 0.6;
  } else if (name == "hot-set-churn") {
    // PR-3 ran 10 epochs of 8 keys at 0.6; a rotation every 2.5% of the
    // stream with a tighter, hotter set is where the plain sketch's stale
    // head actually costs (the ROADMAP "faster hot-set rotation" item).
    options.num_epochs = 40;
    options.hot_set_size = 4;
    options.hot_fraction = 0.7;
  } else if (name == "single-key-ramp") {
    options.ramp_final_fraction = 0.6;
  } else if (name == "correlated-burst") {
    options.burst_group_size = 32;
    options.burst_fraction = 0.5;
    options.burst_begin = 0.4;
    options.burst_end = 0.6;
  } else if (name == "diurnal") {
    options.diurnal_period = messages / 8;
    options.diurnal_num_bands = 4;
    options.diurnal_amplitude = 0.9;
  } else if (name == "key-space-growth") {
    // Rate sized so the key space saturates ~60% through the stream; the
    // head rides the frontier the whole way.
    options.growth_initial_fraction = 0.05;
    options.growth_rate =
        std::min(0.5, 0.95 * 10000.0 / (0.6 * static_cast<double>(messages)));
  } else if (name == "replay-with-noise") {
    // Noisy replay of the calibrated churn scenario: same rotation plus 10%
    // uniform key noise through a 64-message reorder window.
    options.num_epochs = 40;
    options.hot_set_size = 4;
    options.hot_fraction = 0.7;
    options.replay_base = "hot-set-churn";
    options.noise_rate = 0.1;
    options.noise_window = 64;
  }
  return ScenarioFromCatalog(name, options);
}

std::vector<std::string> DefaultScenarioList() {
  return {"flash-crowd",      "hot-set-churn", "single-key-ramp",
          "correlated-burst", "diurnal",       "key-space-growth",
          "replay-with-noise"};
}

/// Derived table: per (scenario, algorithm), the mean avg-imbalance of the
/// plain sketch against each decaying variant and the headroom (ss minus
/// the variant; positive = decay wins). TSV with '#' headers, like every
/// emitter in slb/sim/report.
void PrintHeadroomTable(const SweepResultTable& table,
                        const std::vector<std::string>& scenarios,
                        const std::vector<AlgorithmKind>& algorithms,
                        uint32_t workers) {
  std::printf(
      "# headroom: mean avg-imbalance by sketch variant (positive headroom "
      "= decaying sketch wins)\n");
  std::printf(
      "# scenario\talgo\tworkers\tavg_I_ss\tavg_I_decay\tavg_I_auto\t"
      "headroom_decay\theadroom_auto\n");
  for (const std::string& scenario : scenarios) {
    for (AlgorithmKind algorithm : algorithms) {
      const SweepCellResult* ss =
          table.Find(scenario, "ss", algorithm, workers);
      const SweepCellResult* decay =
          table.Find(scenario, "ss-decay", algorithm, workers);
      const SweepCellResult* auto_tuned =
          table.Find(scenario, "ss-decay-auto", algorithm, workers);
      if (ss == nullptr || decay == nullptr || auto_tuned == nullptr ||
          !ss->status.ok() || !decay->status.ok() ||
          !auto_tuned->status.ok()) {
        continue;  // failed cells already surfaced in the summary table
      }
      std::printf("%s\t%s\t%u\t%s\t%s\t%s\t%s\t%s\n", scenario.c_str(),
                  AlgorithmKindName(algorithm).c_str(), workers,
                  Sci(ss->mean_avg_imbalance).c_str(),
                  Sci(decay->mean_avg_imbalance).c_str(),
                  Sci(auto_tuned->mean_avg_imbalance).c_str(),
                  Sci(ss->mean_avg_imbalance - decay->mean_avg_imbalance)
                      .c_str(),
                  Sci(ss->mean_avg_imbalance - auto_tuned->mean_avg_imbalance)
                      .c_str());
    }
  }
}

int Main(int argc, char** argv) {
  FlagSet flags("Adversarial headroom: D-C/W-C vs decaying SpaceSaving");
  int64_t workers = 50;
  std::string scenarios_csv;
  flags.AddInt64("workers", &workers, "deployment size n");
  flags.AddString("scenarios", &scenarios_csv,
                  "comma-separated catalog scenario list (default: the full "
                  "calibrated adversarial list)");
  const BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  // Reject an unsupported --format before the sweep, not after minutes of
  // simulation (this bench emits the TSV-only series table).
  if (!CheckReportFormat(env, ReportMode::kTableAndSeries)) return 2;
  // Longer streams than the PR-3 defaults: the dynamic scenarios need room
  // for the slow sketch to be visibly slow (ROADMAP calibration follow-up).
  const uint64_t messages = env.MessagesOr(1000000, 10000000);

  std::vector<std::string> names;
  if (scenarios_csv.empty()) {
    names = DefaultScenarioList();
  } else {
    for (const std::string& token : SplitString(scenarios_csv, ',')) {
      names.emplace_back(TrimWhitespace(token));
    }
  }

  PrintBanner("bench_adversarial_headroom",
              "no paper figure — adversarial extension (PR-2 catalog, PR-4 "
              "calibration)",
              "n=" + std::to_string(workers) + ", |K|=1e4, m=" +
                  std::to_string(messages) + ", scenarios: " +
                  JoinStrings(names, "/") +
                  ", sketch: ss / ss-decay / ss-decay-auto");

  const std::vector<AlgorithmKind> algorithms = {AlgorithmKind::kDChoices,
                                                 AlgorithmKind::kWChoices};
  SweepGrid grid;
  for (const std::string& name : names) {
    grid.scenarios.push_back(CalibratedScenario(name, messages));
  }
  grid.algorithms = algorithms;
  grid.worker_counts = {static_cast<uint32_t>(workers)};
  SweepVariant plain;
  plain.label = "ss";
  plain.options.sketch = SketchKind::kSpaceSaving;
  SweepVariant decaying;
  decaying.label = "ss-decay";
  decaying.options.sketch = SketchKind::kDecayingSpaceSaving;
  SweepVariant auto_tuned;
  auto_tuned.label = "ss-decay-auto";
  auto_tuned.options.sketch = SketchKind::kDecayingSpaceSaving;
  auto_tuned.options.decay_auto_tune = true;
  grid.variants = {plain, decaying, auto_tuned};
  // Fine-grained sampling so the burst windows / epoch boundaries resolve.
  grid.num_samples = 120;

  const SweepResultTable table = RunGridForEnv(env, std::move(grid));
  const int exit_code = ReportTable(env, table, ReportMode::kTableAndSeries);
  std::printf("\n");
  PrintHeadroomTable(table, names, algorithms, static_cast<uint32_t>(workers));
  return exit_code;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
