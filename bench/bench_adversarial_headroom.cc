// Adversarial headroom: where does the paper's static-head assumption break?
//
// D-Choices and W-Choices assume the head of the distribution is *stable*:
// SpaceSaving converges on the heavy hitters and FINDOPTIMALCHOICES sizes d
// for them. The adversarial catalog (slb/workload/scenario.h) generates the
// dynamics that violate that assumption — a cold key igniting (flash-crowd),
// the whole hot set rotating (hot-set-churn), and a key crossing the head
// threshold silently (single-key-ramp). AutoFlow (arXiv:2103.08888) argues
// these hotspot dynamics, not static skew, are where balancers actually
// break.
//
// This bench runs D-C and W-C head-to-head with their decaying-SpaceSaving
// variant (recency-weighted counters, variant axis: sketch=ss vs ss-decay)
// across all three scenarios at n = 50. Output is the summary table plus
// the per-sample series table, so the failure is visible *over time*: with
// the plain sketch the imbalance spikes when the hot set moves and recovers
// slowly (stale head, wrong d); the decaying sketch re-converges within an
// epoch.

#include <string>

#include "common/bench_util.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags("Adversarial headroom: D-C/W-C vs decaying SpaceSaving");
  int64_t workers = 50;
  flags.AddInt64("workers", &workers, "deployment size n");
  const BenchEnv env = ParseBenchArgs(argc, argv, "", &flags);
  const uint64_t messages = env.MessagesOr(500000, 5000000);

  PrintBanner("bench_adversarial_headroom",
              "no paper figure — adversarial extension (PR-2 catalog)",
              "n=" + std::to_string(workers) + ", |K|=1e4, m=" +
                  std::to_string(messages) +
                  ", scenarios: flash-crowd / hot-set-churn / single-key-ramp");

  ScenarioOptions options;
  options.num_keys = 10000;
  options.num_messages = messages;

  SweepGrid grid;
  grid.scenarios = {ScenarioFromCatalog("flash-crowd", options),
                    ScenarioFromCatalog("hot-set-churn", options),
                    ScenarioFromCatalog("single-key-ramp", options)};
  grid.algorithms = {AlgorithmKind::kDChoices, AlgorithmKind::kWChoices};
  grid.worker_counts = {static_cast<uint32_t>(workers)};
  SweepVariant plain;
  plain.label = "ss";
  plain.options.sketch = SketchKind::kSpaceSaving;
  SweepVariant decaying;
  decaying.label = "ss-decay";
  decaying.options.sketch = SketchKind::kDecayingSpaceSaving;
  grid.variants = {plain, decaying};
  // Fine-grained sampling so the burst window / epoch boundaries resolve.
  grid.num_samples = 120;
  return RunGridAndReport(env, std::move(grid), ReportMode::kTableAndSeries);
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
