// Figure 1 — load imbalance I(m) as a function of the number of workers on
// the Wikipedia (WP) dataset, for PKG, D-Choices, and W-Choices.
//
// Expected shape (paper): PKG achieves low imbalance only at small scales
// (5-10 workers) and degrades towards ~10% at 50-100 workers, while D-C and
// W-C stay below s*eps everywhere.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 1: imbalance vs workers on WP");
  const double scale = env.paper ? 1.0 : 0.02;
  DatasetSpec wp = MakeWikipediaSpec(scale);
  if (env.messages > 0) wp.num_messages = static_cast<uint64_t>(env.messages);

  PrintBanner("bench_fig01_imbalance_wp", "Figure 1",
              "WP scale=" + std::to_string(scale) +
                  ", m=" + std::to_string(wp.num_messages) +
                  ", s=" + std::to_string(env.sources));

  SweepGrid grid;
  grid.scenarios = {ScenarioFromDataset(wp)};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                     AlgorithmKind::kWChoices};
  grid.worker_counts = {5, 10, 20, 50, 100};
  return RunGridAndReport(env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
