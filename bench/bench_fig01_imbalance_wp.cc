// Figure 1 — load imbalance I(m) as a function of the number of workers on
// the Wikipedia (WP) dataset, for PKG, D-Choices, and W-Choices.
//
// Expected shape (paper): PKG achieves low imbalance only at small scales
// (5-10 workers) and degrades towards ~10% at 50-100 workers, while D-C and
// W-C stay below s*eps everywhere.

#include <cstdio>

#include "common/bench_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env =
      ParseBenchArgs(argc, argv, "Fig. 1: imbalance vs workers on WP");
  const double scale = env.paper ? 1.0 : 0.02;
  DatasetSpec wp = MakeWikipediaSpec(scale);
  if (env.messages > 0) wp.num_messages = static_cast<uint64_t>(env.messages);

  PrintBanner("bench_fig01_imbalance_wp", "Figure 1",
              "WP scale=" + std::to_string(scale) +
                  ", m=" + std::to_string(wp.num_messages) +
                  ", s=" + std::to_string(env.sources));
  std::printf("#%-8s %10s %12s %12s %12s\n", "dataset", "workers", "PKG", "D-C",
              "W-C");

  const uint32_t workers[] = {5, 10, 20, 50, 100};
  const AlgorithmKind algos[] = {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                                 AlgorithmKind::kWChoices};
  for (uint32_t n : workers) {
    double imbalance[3] = {0, 0, 0};
    for (int a = 0; a < 3; ++a) {
      PartitionSimConfig config;
      config.algorithm = algos[a];
      config.partitioner.num_workers = n;
      config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
      config.num_sources = static_cast<uint32_t>(env.sources);
      imbalance[a] = RunAveraged(config, wp, env.runs,
                                 static_cast<uint64_t>(env.seed))
                         .mean_final_imbalance;
    }
    std::printf("%-9s %10u %12s %12s %12s\n", "WP", n, Sci(imbalance[0]).c_str(),
                Sci(imbalance[1]).c_str(), Sci(imbalance[2]).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
