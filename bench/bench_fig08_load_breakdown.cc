// Figure 8 — per-worker load split into head and tail contributions for PKG,
// W-Choices, and Round-Robin (n = 5, Zipf z = 2.0, theta = 1/(8n),
// |K| = 1e4). The horizontal "ideal" reference is 1/n = 20%.
//
// As in the paper, head membership here is the *oracle* classification from
// the true distribution (p_k >= theta), applied to all three algorithms —
// PKG itself is head-oblivious. Keys equal ranks in the non-drifting ZF
// stream, so the oracle test is rank < |H|, installed via
// SweepGrid::oracle_head_size; the per-worker table comes from the sweep
// engine's worker-loads emitter (one row per cell x worker).
//
// Expected shape: PKG overloads the two workers holding the hottest key;
// W-C mixes head and tail to a flat 20% everywhere; RR splits the head
// evenly but the tail cannot fully compensate, leaving visible imbalance.

#include <string>

#include "common/bench_util.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 8: head/tail load breakdown");
  // At n = 5 the two PKG candidates of the hottest key collide with
  // probability 1/5, which pins 60% of the stream on ONE worker instead of
  // the paper's canonical 30/30 split. The default seed is chosen so the
  // candidates are distinct (the paper's depiction); pass --seed 42 to see
  // the collision case (the b < d effect modeled by Eqn. 10).
  if (env.seed == 42) env.seed = 1;
  const uint32_t n = 5;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(500000, 10000000);
  const double z = 2.0;
  const double theta = 1.0 / (8.0 * n);

  // Oracle head: ranks whose true probability clears theta.
  const ZipfDistribution zipf(z, keys);
  const uint64_t head_size = zipf.CountAboveThreshold(theta);

  PrintBanner("bench_fig08_load_breakdown", "Figure 8",
              "n=5, z=2.0, theta=1/(8n), |H|=" + std::to_string(head_size) +
                  ", m=" + std::to_string(messages) + ", ideal=20%");

  DatasetSpec spec =
      MakeZipfSpec(z, keys, messages, static_cast<uint64_t>(env.seed));
  spec.name = "z=2.0";

  SweepVariant variant;
  variant.options.theta_ratio = 0.125;  // 1/(8n)

  SweepGrid grid;
  grid.scenarios = {ScenarioFromDataset(spec)};
  grid.algorithms = {AlgorithmKind::kPkg, AlgorithmKind::kWChoices,
                     AlgorithmKind::kRoundRobinHead};
  grid.worker_counts = {n};
  grid.variants = {variant};
  grid.oracle_head_size = head_size;
  return RunGridAndReport(env, std::move(grid), ReportMode::kWorkerLoads);
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
