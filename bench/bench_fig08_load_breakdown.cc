// Figure 8 — per-worker load split into head and tail contributions for PKG,
// W-Choices, and Round-Robin (n = 5, Zipf z = 2.0, theta = 1/(8n),
// |K| = 1e4). The horizontal "ideal" reference is 1/n = 20%.
//
// As in the paper, head membership here is the *oracle* classification from
// the true distribution (p_k >= theta), applied to all three algorithms —
// PKG itself is head-oblivious. Keys equal ranks in the non-drifting ZF
// stream, so the oracle test is rank < |H|.
//
// Expected shape: PKG overloads the two workers holding the hottest key;
// W-C mixes head and tail to a flat 20% everywhere; RR splits the head
// evenly but the tail cannot fully compensate, leaving visible imbalance.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

int Main(int argc, char** argv) {
  BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 8: head/tail load breakdown");
  // At n = 5 the two PKG candidates of the hottest key collide with
  // probability 1/5, which pins 60% of the stream on ONE worker instead of
  // the paper's canonical 30/30 split. The default seed is chosen so the
  // candidates are distinct (the paper's depiction); pass --seed 42 to see
  // the collision case (the b < d effect modeled by Eqn. 10).
  if (env.seed == 42) env.seed = 1;
  const uint32_t n = 5;
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(500000, 10000000);
  const double z = 2.0;
  const double theta = 1.0 / (8.0 * n);
  const DatasetSpec spec =
      MakeZipfSpec(z, keys, messages, static_cast<uint64_t>(env.seed));

  // Oracle head: ranks whose true probability clears theta.
  const ZipfDistribution zipf(z, keys);
  const uint64_t head_size = zipf.CountAboveThreshold(theta);

  PrintBanner("bench_fig08_load_breakdown", "Figure 8",
              "n=5, z=2.0, theta=1/(8n), |H|=" + std::to_string(head_size) +
                  ", m=" + std::to_string(messages) + ", ideal=20%");
  std::printf("#%-5s %8s %10s %10s %10s\n", "algo", "worker", "head(%)",
              "tail(%)", "total(%)");

  for (AlgorithmKind algo : {AlgorithmKind::kPkg, AlgorithmKind::kWChoices,
                             AlgorithmKind::kRoundRobinHead}) {
    PartitionerOptions options;
    options.num_workers = n;
    options.theta_ratio = 0.125;  // 1/(8n)
    options.hash_seed = static_cast<uint64_t>(env.seed);

    const uint32_t s = static_cast<uint32_t>(env.sources);
    std::vector<std::unique_ptr<StreamPartitioner>> senders;
    for (uint32_t i = 0; i < s; ++i) {
      auto sender = CreatePartitioner(algo, options);
      if (!sender.ok()) {
        std::fprintf(stderr, "failed: %s\n", sender.status().ToString().c_str());
        return 1;
      }
      senders.push_back(std::move(sender.value()));
    }

    std::vector<uint64_t> head_load(n, 0);
    std::vector<uint64_t> tail_load(n, 0);
    auto gen = MakeGenerator(spec);
    for (uint64_t i = 0; i < messages; ++i) {
      const uint64_t key = gen->NextKey();
      const uint32_t w = senders[i % s]->Route(key);
      (key < head_size ? head_load : tail_load)[w] += 1;
    }

    for (uint32_t w = 0; w < n; ++w) {
      const double head_pct = 100.0 * static_cast<double>(head_load[w]) /
                              static_cast<double>(messages);
      const double tail_pct = 100.0 * static_cast<double>(tail_load[w]) /
                              static_cast<double>(messages);
      std::printf("%-6s %8u %10.2f %10.2f %10.2f\n",
                  AlgorithmKindName(algo).c_str(), w + 1, head_pct, tail_pct,
                  head_pct + tail_pct);
    }
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
