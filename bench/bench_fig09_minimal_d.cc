// Figure 9 — comparison of the d computed by D-Choices' analysis with the
// minimal d that empirically matches W-Choices' imbalance, for n in
// {50, 100} over the skew grid (|K| = 1e4).
//
// For each cell: run W-C to get the imbalance target, then find (by binary
// search over d, valid because imbalance is statistically non-increasing
// in d) the smallest d for which Fixed-D matches it; the analytic_d /
// minimal_d metric columns report the analysis next to that minimum. The
// search is adaptive, so it lives in a custom cell runner rather than a
// static grid axis; each probe is a full RunPartitionSimulation averaged
// over --runs seeds (the engine itself runs each cell once — the runner
// owns the averaging so the search is not repeated per run).
//
// Expected shape: the analytic d sits slightly above the empirical minimum
// and never below it by more than sampling noise.

#include <algorithm>
#include <string>

#include "common/bench_util.h"
#include "slb/analysis/choices.h"
#include "slb/workload/zipf.h"

namespace slb::bench {
namespace {

// Mean final imbalance over `runs` simulations at seeds seed, seed+1, ...
Result<double> AveragedImbalance(const SweepCellContext& ctx,
                                 AlgorithmKind algorithm, uint32_t fixed_d,
                                 int64_t runs) {
  PartitionSimConfig config = ctx.MakeSimConfig();
  config.algorithm = algorithm;
  config.partitioner.fixed_d = fixed_d;
  if (runs < 1) runs = 1;
  double sum = 0.0;
  for (int64_t r = 0; r < runs; ++r) {
    auto gen = ctx.scenario->make(ctx.grid->seed + static_cast<uint64_t>(r));
    if (!gen.ok()) return gen.status();
    auto result = RunPartitionSimulation(config, gen->get());
    if (!result.ok()) return result.status();
    sum += result->final_imbalance;
  }
  return sum / static_cast<double>(runs);
}

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 9: analytic vs minimal d");
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(200000, 10000000);
  const double epsilon = 1e-4;

  PrintBanner("bench_fig09_minimal_d", "Figure 9",
              "|K|=1e4, m=" + std::to_string(messages) + ", eps=1e-4");

  SweepGrid grid;
  grid.scenarios =
      SkewScenarios(env.paper, keys, messages, static_cast<uint64_t>(env.seed));
  grid.algorithms = {AlgorithmKind::kFixedDChoices};
  grid.worker_counts = {50, 100};
  grid.runner = [keys, epsilon,
                 runs = env.runs](const SweepCellContext& ctx) -> Result<CellPayload> {
    const uint32_t n = ctx.num_workers;

    // Analytic d from the true pmf (as D-Choices would compute with a
    // perfect sketch).
    const ZipfDistribution zipf(ctx.scenario->param, keys);
    const uint64_t head_size = zipf.CountAboveThreshold(1.0 / (5.0 * n));
    const auto head =
        HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    const uint32_t analytic_d = FindOptimalChoices(head, n, epsilon);

    // Empirical target: W-C's imbalance, with matching tolerance slack.
    auto wc = AveragedImbalance(ctx, AlgorithmKind::kWChoices, 0, runs);
    if (!wc.ok()) return wc.status();
    const uint32_t sources = ctx.MakeSimConfig().num_sources;
    const double target =
        std::max(*wc * 1.10, *wc + static_cast<double>(sources) * epsilon);

    // Smallest d in [2, n] whose Fixed-D run meets the target (imbalance is
    // statistically non-increasing in d, so binary search applies).
    uint32_t minimal_d = 0;
    uint32_t lo = 2;
    uint32_t hi = n;
    auto probe =
        AveragedImbalance(ctx, AlgorithmKind::kFixedDChoices, lo, runs);
    if (!probe.ok()) return probe.status();
    if (*probe <= target) {
      minimal_d = lo;
    } else {
      while (hi - lo > 1) {
        const uint32_t mid = lo + (hi - lo) / 2;
        probe = AveragedImbalance(ctx, AlgorithmKind::kFixedDChoices, mid, runs);
        if (!probe.ok()) return probe.status();
        if (*probe <= target) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      minimal_d = hi;
    }

    CellPayload payload;
    payload.AddMetric("wc_target_imbalance", *wc);
    payload.AddCount("analytic_d", analytic_d);
    payload.AddCount("minimal_d", minimal_d);
    payload.AddMetric("analytic_d_over_n", static_cast<double>(analytic_d) / n);
    payload.AddMetric("minimal_d_over_n", static_cast<double>(minimal_d) / n);
    return payload;
  };
  // The runner owns the --runs averaging; run each cell once in the engine.
  BenchEnv search_env = env;
  search_env.runs = 1;
  return RunGridAndReport(search_env, std::move(grid));
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
