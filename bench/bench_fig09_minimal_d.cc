// Figure 9 — comparison of the d computed by D-Choices' analysis with the
// minimal d that empirically matches W-Choices' imbalance, for n in
// {50, 100} over the skew grid (|K| = 1e4).
//
// For each point: run W-C to get the imbalance target, then find (by linear
// scan over d, like the paper's exhaustive search, accelerated by
// monotonicity) the smallest d for which Fixed-D matches it; report the
// analytic d next to that minimum.
//
// Expected shape: the analytic d sits slightly above the empirical minimum
// and never below it by more than sampling noise.

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "slb/analysis/choices.h"
#include "slb/common/parallel.h"
#include "slb/workload/datasets.h"

namespace slb::bench {
namespace {

struct Point {
  double z;
  uint32_t n;
  uint32_t analytic_d = 0;
  uint32_t minimal_d = 0;
  double wc_imbalance = 0;
};

double RunOnce(AlgorithmKind algo, uint32_t n, uint32_t fixed_d,
               const DatasetSpec& spec, const BenchEnv& env) {
  PartitionSimConfig config;
  config.algorithm = algo;
  config.partitioner.num_workers = n;
  config.partitioner.fixed_d = fixed_d;
  config.partitioner.hash_seed = static_cast<uint64_t>(env.seed);
  config.num_sources = static_cast<uint32_t>(env.sources);
  return RunAveraged(config, spec, env.runs, static_cast<uint64_t>(env.seed))
      .mean_final_imbalance;
}

int Main(int argc, char** argv) {
  const BenchEnv env = ParseBenchArgs(argc, argv, "Fig. 9: analytic vs minimal d");
  const uint64_t keys = 10000;
  const uint64_t messages = env.MessagesOr(200000, 10000000);
  const double epsilon = 1e-4;

  PrintBanner("bench_fig09_minimal_d", "Figure 9",
              "|K|=1e4, m=" + std::to_string(messages) + ", eps=1e-4");

  std::vector<Point> points;
  for (uint32_t n : {50u, 100u}) {
    for (double z : SkewGrid(env.paper)) points.push_back(Point{z, n, 0, 0, 0});
  }

  ParallelFor(points.size(), [&](size_t i) {
    Point& p = points[i];
    const DatasetSpec spec =
        MakeZipfSpec(p.z, keys, messages, static_cast<uint64_t>(env.seed));

    // Analytic d from the true pmf (as D-Choices would compute with a
    // perfect sketch).
    const ZipfDistribution zipf(p.z, keys);
    const uint64_t head_size = zipf.CountAboveThreshold(1.0 / (5.0 * p.n));
    const auto head =
        HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    p.analytic_d = FindOptimalChoices(head, p.n, epsilon);

    // Empirical target: W-C's imbalance, with matching tolerance slack.
    p.wc_imbalance = RunOnce(AlgorithmKind::kWChoices, p.n, 0, spec, env);
    const double target =
        std::max(p.wc_imbalance * 1.10,
                 p.wc_imbalance + static_cast<double>(env.sources) * epsilon);

    // Imbalance is (statistically) non-increasing in d: binary search the
    // smallest d in [2, n] whose Fixed-D run meets the target.
    uint32_t lo = 2;
    uint32_t hi = p.n;
    if (RunOnce(AlgorithmKind::kFixedDChoices, p.n, lo, spec, env) <= target) {
      p.minimal_d = lo;
      return;
    }
    while (hi - lo > 1) {
      const uint32_t mid = lo + (hi - lo) / 2;
      const double imb =
          RunOnce(AlgorithmKind::kFixedDChoices, p.n, mid, spec, env);
      if (imb <= target) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    p.minimal_d = hi;
  }, static_cast<size_t>(env.threads));

  std::printf("#%-6s %8s %12s %12s %14s %12s\n", "skew", "workers",
              "analytic-d", "minimal-d", "analytic-d/n", "minimal-d/n");
  for (const Point& p : points) {
    std::printf("%-7.1f %8u %12u %12u %14.3f %12.3f\n", p.z, p.n, p.analytic_d,
                p.minimal_d, static_cast<double>(p.analytic_d) / p.n,
                static_cast<double>(p.minimal_d) / p.n);
  }
  return 0;
}

}  // namespace
}  // namespace slb::bench

int main(int argc, char** argv) { return slb::bench::Main(argc, argv); }
