#include "slb/analysis/choices.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "slb/common/rng.h"
#include "slb/hash/hash_family.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

TEST(ExpectedWorkerSetSizeTest, ClosedFormBasics) {
  // 0 items -> 0 workers; many items -> approaches n.
  EXPECT_DOUBLE_EQ(ExpectedWorkerSetSize(10, 0), 0.0);
  EXPECT_NEAR(ExpectedWorkerSetSize(10, 1), 1.0, 1e-12);
  EXPECT_NEAR(ExpectedWorkerSetSize(10, 1000), 10.0, 1e-6);
}

TEST(ExpectedWorkerSetSizeTest, MonotoneInItems) {
  double prev = 0.0;
  for (int items = 1; items <= 100; ++items) {
    const double b = ExpectedWorkerSetSize(50, items);
    EXPECT_GT(b, prev);
    EXPECT_LE(b, 50.0);
    prev = b;
  }
}

TEST(ExpectedWorkerSetSizeTest, MatchesMonteCarloBallsInBins) {
  // Validate Eqn. (10) against direct simulation of d random placements.
  const uint32_t n = 25;
  for (uint32_t d : {2u, 5u, 10u, 20u}) {
    Rng rng(d * 977);
    double total = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t) {
      std::set<uint32_t> slots;
      for (uint32_t i = 0; i < d; ++i) {
        slots.insert(static_cast<uint32_t>(rng.NextBounded(n)));
      }
      total += static_cast<double>(slots.size());
    }
    const double empirical = total / trials;
    EXPECT_NEAR(empirical, ExpectedWorkerSetSize(n, d), 0.05) << "d=" << d;
  }
}

TEST(ExpectedWorkerSetSizeTest, MatchesHashFamilyBehaviour) {
  // The same formula must hold for the actual hash family used in routing
  // (this is the collision model the analysis assumes).
  const uint32_t n = 30;
  const uint32_t d = 8;
  HashFamily family(d, n, 123);
  double total = 0;
  const int keys = 30000;
  for (int key = 0; key < keys; ++key) {
    std::set<uint32_t> slots;
    for (uint32_t i = 0; i < d; ++i) slots.insert(family.Worker(key, i));
    total += static_cast<double>(slots.size());
  }
  EXPECT_NEAR(total / keys, ExpectedWorkerSetSize(n, d), 0.05);
}

TEST(HeadProfileTest, SortsAndComputesTail) {
  auto head = HeadProfile::FromProbabilities({0.1, 0.4, 0.2});
  ASSERT_EQ(head.probabilities.size(), 3u);
  EXPECT_DOUBLE_EQ(head.probabilities[0], 0.4);
  EXPECT_DOUBLE_EQ(head.probabilities[2], 0.1);
  EXPECT_NEAR(head.tail_mass, 0.3, 1e-12);
}

TEST(HeadProfileTest, TailMassClampedNonNegative) {
  auto head = HeadProfile::FromProbabilities({0.7, 0.5});  // overestimates
  EXPECT_DOUBLE_EQ(head.tail_mass, 0.0);
}

TEST(ChoicesLowerBoundTest, CeilOfP1TimesN) {
  EXPECT_EQ(ChoicesLowerBound(0.6, 10), 6u);
  EXPECT_EQ(ChoicesLowerBound(0.61, 10), 7u);
  EXPECT_EQ(ChoicesLowerBound(0.01, 10), 2u) << "never below 2";
  EXPECT_EQ(ChoicesLowerBound(0.5, 100), 50u);
}

TEST(FindOptimalChoicesTest, EmptyHeadNeedsOnlyTwo) {
  HeadProfile head;
  head.tail_mass = 1.0;
  EXPECT_EQ(FindOptimalChoices(head, 50, 1e-4), 2u);
}

TEST(FindOptimalChoicesTest, ReturnedDSatisfiesConstraints) {
  for (double z : {0.8, 1.2, 1.6, 2.0}) {
    ZipfDistribution zipf(z, 10000);
    const uint32_t n = 50;
    const double theta = 1.0 / (5.0 * n);
    const uint64_t head_size = zipf.CountAboveThreshold(theta);
    auto head = HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    const uint32_t d = FindOptimalChoices(head, n, 1e-4);
    ASSERT_GE(d, 2u);
    if (d < n) {
      EXPECT_TRUE(ConstraintsSatisfied(head, n, d, 1e-4)) << "z=" << z;
      if (d > 2) {
        EXPECT_FALSE(ConstraintsSatisfied(head, n, d - 1, 1e-4))
            << "d must be minimal at z=" << z << " (got " << d << ")";
      }
    }
  }
}

TEST(FindOptimalChoicesTest, RespectsP1LowerBound) {
  for (double z : {1.0, 1.5, 2.0}) {
    ZipfDistribution zipf(z, 10000);
    const uint32_t n = 100;
    const uint64_t head_size = zipf.CountAboveThreshold(1.0 / (5.0 * n));
    auto head = HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    const uint32_t d = FindOptimalChoices(head, n, 1e-4);
    EXPECT_GE(static_cast<double>(d),
              head.probabilities[0] * static_cast<double>(n) - 1e-9)
        << "d >= p1*n must hold, z=" << z;
  }
}

TEST(FindOptimalChoicesTest, GrowsWithSkew) {
  // More skew -> more choices needed (Fig. 4's rising part).
  const uint32_t n = 50;
  uint32_t prev = 0;
  for (double z : {0.5, 1.0, 1.4, 1.8}) {
    ZipfDistribution zipf(z, 10000);
    const uint64_t head_size = zipf.CountAboveThreshold(1.0 / (5.0 * n));
    auto head = HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
    const uint32_t d = FindOptimalChoices(head, n, 1e-4);
    EXPECT_GE(d, prev) << "z=" << z;
    prev = d;
  }
}

TEST(FindOptimalChoicesTest, ExtremeSkewSwitchesToWChoices) {
  // A single key with 90% of the stream cannot be balanced by any d < n
  // for small epsilon: the algorithm must hand over to W-Choices (d == n).
  HeadProfile head = HeadProfile::FromProbabilities({0.9});
  const uint32_t n = 10;
  EXPECT_EQ(FindOptimalChoices(head, n, 1e-6), n);
}

TEST(FindOptimalChoicesTest, LowSkewKeepsTwoChoices) {
  // A nearly-uniform head should need no extra choices.
  std::vector<double> probs(10, 0.001);
  auto head = HeadProfile::FromProbabilities(std::move(probs));
  EXPECT_EQ(FindOptimalChoices(head, 10, 1e-2), 2u);
}

TEST(FindOptimalChoicesTest, DegenerateDeployments) {
  HeadProfile head = HeadProfile::FromProbabilities({0.5});
  EXPECT_EQ(FindOptimalChoices(head, 1, 1e-4), 1u);
  EXPECT_EQ(FindOptimalChoices(head, 2, 1e-4), 2u);
}

TEST(PrefixConstraintTest, SlackSignsMakeSense) {
  // For a heavy p1 and tiny d the constraint must be violated (positive
  // slack); for huge epsilon it must pass.
  HeadProfile head = HeadProfile::FromProbabilities({0.5, 0.1});
  EXPECT_GT(PrefixConstraintSlack(head, 50, 2, 1e-6, 1), 0.0);
  EXPECT_LT(PrefixConstraintSlack(head, 50, 2, 10.0, 1), 0.0);
}

TEST(PrefixConstraintTest, WholeHeadConstraintCanBindAloneUnderFlatHeavyHead) {
  // Sec. IV-A: the prefix generalization matters because a *collectively*
  // heavy head can violate the h = |H| constraint even when every single
  // key passes h = 1. Flat head: 20 keys x 4% = 80% of the stream, n = 40.
  std::vector<double> probs(20, 0.04);
  auto head = HeadProfile::FromProbabilities(std::move(probs));
  const uint32_t n = 40;
  const uint32_t d = 2;
  EXPECT_LE(PrefixConstraintSlack(head, n, d, 1e-4, 1), 0.0)
      << "a single 4% key fits on two of 40 workers";
  EXPECT_GT(PrefixConstraintSlack(head, n, d, 1e-4, 20), 0.0)
      << "the 80% head cannot fit on the union of its two-choice sets";
}

}  // namespace
}  // namespace slb
