#include "slb/analysis/aggregation_model.h"

#include <gtest/gtest.h>

namespace slb {
namespace {

TEST(AggregationModelTest, UniformChoicesBasics) {
  FrequencyTable window = {10, 3, 1, 0};
  const auto kg = UniformChoicesAggregation(window, 1);
  EXPECT_EQ(kg.partials, 3u);  // one partial per present key
  EXPECT_DOUBLE_EQ(kg.amplification, 1.0);

  const auto pkg = UniformChoicesAggregation(window, 2);
  EXPECT_EQ(pkg.partials, 2u + 2 + 1);
  EXPECT_NEAR(pkg.amplification, 5.0 / 3.0, 1e-12);

  const auto sg = UniformChoicesAggregation(window, 100);
  EXPECT_EQ(sg.partials, 14u);  // capped by the frequencies themselves
}

TEST(AggregationModelTest, HeadTailSplitsCost) {
  FrequencyTable window = {100, 50, 3, 1};
  std::unordered_set<uint64_t> head = {0, 1};
  const auto dc = HeadTailAggregation(window, head, 8);
  EXPECT_EQ(dc.partials, 8u + 8 + 2 + 1);
  const auto wc = HeadTailAggregation(window, head, 64);
  EXPECT_EQ(wc.partials, 64u + 50 + 2 + 1);  // key 1 capped by f = 50
}

TEST(AggregationModelTest, EmptyWindow) {
  FrequencyTable window = {0, 0};
  const auto cost = UniformChoicesAggregation(window, 4);
  EXPECT_EQ(cost.partials, 0u);
  EXPECT_DOUBLE_EQ(cost.amplification, 0.0);
}

TEST(AggregationModelTest, OrderingAcrossSchemes) {
  // KG <= PKG <= D-C <= W-C <= SG on any window (same ordering as memory).
  FrequencyTable window(500, 0);
  for (size_t k = 0; k < window.size(); ++k) {
    window[k] = 1000 / (k + 1);  // skewed window
  }
  std::unordered_set<uint64_t> head = {0, 1, 2, 3};
  const uint32_t n = 50;
  const uint64_t kg = UniformChoicesAggregation(window, 1).partials;
  const uint64_t pkg = UniformChoicesAggregation(window, 2).partials;
  const uint64_t dc = HeadTailAggregation(window, head, 10).partials;
  const uint64_t wc = HeadTailAggregation(window, head, n).partials;
  const uint64_t sg = UniformChoicesAggregation(window, n).partials;
  EXPECT_LE(kg, pkg);
  EXPECT_LE(pkg, dc);
  EXPECT_LE(dc, wc);
  EXPECT_LE(wc, sg);
}

TEST(AggregationModelTest, HeadTailWithEmptyHeadEqualsPkg) {
  FrequencyTable window = {9, 5, 2};
  std::unordered_set<uint64_t> empty;
  EXPECT_EQ(HeadTailAggregation(window, empty, 32).partials,
            UniformChoicesAggregation(window, 2).partials);
}

}  // namespace
}  // namespace slb
