#include "slb/analysis/memory_model.h"

#include <gtest/gtest.h>

#include "slb/common/rng.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

TEST(CappedMassTest, Basics) {
  FrequencyTable counts = {0, 1, 2, 5, 100};
  EXPECT_EQ(CappedMass(counts, 1), 0u + 1 + 1 + 1 + 1);
  EXPECT_EQ(CappedMass(counts, 2), 0u + 1 + 2 + 2 + 2);
  EXPECT_EQ(CappedMass(counts, 1000), 108u);
}

TEST(MemoryModelTest, PkgIsCapTwo) {
  FrequencyTable counts = {10, 1, 0, 3};
  EXPECT_EQ(MemoryPkg(counts), 2u + 1 + 0 + 2);
}

TEST(MemoryModelTest, SgIsCapN) {
  FrequencyTable counts = {10, 1, 0, 3};
  EXPECT_EQ(MemorySg(counts, 5), 5u + 1 + 0 + 3);
}

TEST(MemoryModelTest, DcSplitsHeadAndTail) {
  FrequencyTable counts = {100, 50, 2, 1};
  std::unordered_set<uint64_t> head = {0, 1};
  // Head keys capped at d=4, tail at 2.
  EXPECT_EQ(MemoryDc(counts, head, 4), 4u + 4 + 2 + 1);
  // W-C: head capped at n=8.
  EXPECT_EQ(MemoryWc(counts, head, 8), 8u + 8 + 2 + 1);
}

TEST(MemoryModelTest, OrderingPkgLeqDcLeqWcLeqSg) {
  // On a skewed stream the paper's ordering must hold for any head set and
  // any 2 <= d <= n.
  ZipfDistribution zipf(1.4, 2000);
  Rng rng(3);
  FrequencyTable counts(2000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(&rng)];
  std::unordered_set<uint64_t> head = {0, 1, 2, 3, 4};
  const uint32_t n = 50;
  const uint32_t d = 10;
  const uint64_t pkg = MemoryPkg(counts);
  const uint64_t dc = MemoryDc(counts, head, d);
  const uint64_t wc = MemoryWc(counts, head, n);
  const uint64_t sg = MemorySg(counts, n);
  EXPECT_LE(pkg, dc);
  EXPECT_LE(dc, wc);
  EXPECT_LE(wc, sg);
}

TEST(MemoryModelTest, EmptyHeadReducesDcToPkg) {
  FrequencyTable counts = {9, 9, 9};
  std::unordered_set<uint64_t> empty;
  EXPECT_EQ(MemoryDc(counts, empty, 17), MemoryPkg(counts));
}

TEST(OverheadPercentTest, Basics) {
  EXPECT_DOUBLE_EQ(OverheadPercent(130, 100), 30.0);
  EXPECT_DOUBLE_EQ(OverheadPercent(70, 100), -30.0);
  EXPECT_DOUBLE_EQ(OverheadPercent(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(OverheadPercent(5, 0), 0.0) << "guarded division";
}

}  // namespace
}  // namespace slb
