#include "slb/analysis/imbalance_bounds.h"

#include <gtest/gtest.h>

#include "slb/sim/partition_simulator.h"
#include "slb/workload/datasets.h"

namespace slb {
namespace {

TEST(ImbalanceBoundsTest, KeyGroupingBound) {
  EXPECT_DOUBLE_EQ(KeyGroupingImbalanceLowerBound(0.5, 10), 0.4);
  EXPECT_DOUBLE_EQ(KeyGroupingImbalanceLowerBound(0.05, 10), 0.0)
      << "clamped when p1 < 1/n";
}

TEST(ImbalanceBoundsTest, GreedyDBoundMatchesPkgAtTwo) {
  // [7]'s bound quoted in Sec. III-A: (p1/2 - 1/n) when p1 > 2/n.
  EXPECT_DOUBLE_EQ(GreedyDImbalanceLowerBound(0.6, 50, 2), 0.3 - 0.02);
  EXPECT_DOUBLE_EQ(GreedyDImbalanceLowerBound(0.01, 50, 2), 0.0);
}

TEST(ImbalanceBoundsTest, BoundShrinksWithD) {
  double prev = 1.0;
  for (uint32_t d = 1; d <= 32; d *= 2) {
    const double bound = GreedyDImbalanceLowerBound(0.6, 100, d);
    EXPECT_LT(bound, prev);
    prev = bound;
  }
}

TEST(ImbalanceBoundsTest, PkgAssumptionAndThresholds) {
  EXPECT_TRUE(PkgAssumptionHolds(0.03, 50));   // 0.03 <= 0.04
  EXPECT_FALSE(PkgAssumptionHolds(0.05, 50));  // 0.05 > 0.04
  EXPECT_DOUBLE_EQ(HeadThresholdLower(50), 1.0 / 250);
  EXPECT_DOUBLE_EQ(HeadThresholdUpper(50), 0.04);
  EXPECT_LT(HeadThresholdLower(100), HeadThresholdUpper(100));
}

TEST(ImbalanceBoundsTest, BreakdownScale) {
  // WP's p1 = 9.32%: PKG breaks past n = 21 — consistent with Fig. 1 where
  // n = 20 is marginal and n = 50 clearly broken.
  EXPECT_EQ(PkgBreakdownScale(0.0932), 22u);
  // z = 2 (p1 ~ 0.6): breaks for any n > 3 (Sec. I).
  EXPECT_EQ(PkgBreakdownScale(0.6), 4u);
  EXPECT_EQ(PkgBreakdownScale(0.0), ~uint32_t{0});
}

TEST(ImbalanceBoundsTest, SimulationRespectsPkgLowerBound) {
  // Measured PKG imbalance must sit at or above the analytic lower bound
  // (it is a *lower* bound) but within a small factor for a pure hot key.
  const double z = 2.0;
  const uint64_t keys = 10000;
  const uint32_t n = 50;
  DatasetSpec spec = MakeZipfSpec(z, keys, 200000, 3);
  PartitionSimConfig config;
  config.algorithm = AlgorithmKind::kPkg;
  config.partitioner.num_workers = n;
  config.partitioner.hash_seed = 5;
  auto gen = MakeGenerator(spec);
  auto result = RunPartitionSimulation(config, gen.get());
  ASSERT_TRUE(result.ok());
  const double bound = GreedyDImbalanceLowerBound(spec.target_p1, n, 2);
  EXPECT_GE(result->final_imbalance, bound - 0.01);
  EXPECT_LE(result->final_imbalance, bound + 0.15)
      << "bound should be reasonably tight for a dominant hot key";
}

TEST(ImbalanceBoundsTest, SimulationRespectsKgLowerBound) {
  const double z = 1.8;
  DatasetSpec spec = MakeZipfSpec(z, 10000, 150000, 7);
  PartitionSimConfig config;
  config.algorithm = AlgorithmKind::kKeyGrouping;
  config.partitioner.num_workers = 20;
  config.partitioner.hash_seed = 5;
  auto gen = MakeGenerator(spec);
  auto result = RunPartitionSimulation(config, gen.get());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->final_imbalance,
            KeyGroupingImbalanceLowerBound(spec.target_p1, 20) - 0.01);
}

}  // namespace
}  // namespace slb
