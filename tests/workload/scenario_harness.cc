#include "scenario_harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>

#include "slb/workload/zipf.h"

namespace slb::testing {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers for shape predicates
// ---------------------------------------------------------------------------

std::vector<uint64_t> PullAll(StreamGenerator* gen) {
  std::vector<uint64_t> keys;
  keys.reserve(gen->num_messages());
  for (uint64_t i = 0; i < gen->num_messages(); ++i) {
    keys.push_back(gen->NextKey());
  }
  return keys;
}

std::map<uint64_t, uint64_t> Frequencies(const std::vector<uint64_t>& keys,
                                         size_t begin, size_t end) {
  std::map<uint64_t, uint64_t> freq;
  for (size_t i = begin; i < end && i < keys.size(); ++i) ++freq[keys[i]];
  return freq;
}

uint64_t HottestKey(const std::map<uint64_t, uint64_t>& freq) {
  uint64_t best = 0;
  uint64_t best_count = 0;
  for (const auto& [key, count] : freq) {
    if (count > best_count) {
      best = key;
      best_count = count;
    }
  }
  return best;
}

double ShareOf(const std::vector<uint64_t>& keys, size_t begin, size_t end,
               uint64_t key_lo, uint64_t key_hi) {  // [key_lo, key_hi)
  end = std::min(end, keys.size());
  if (begin >= end) return 0.0;
  uint64_t hits = 0;
  for (size_t i = begin; i < end; ++i) {
    hits += keys[i] >= key_lo && keys[i] < key_hi;
  }
  return static_cast<double>(hits) / static_cast<double>(end - begin);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

using AdjustFn = void (*)(ScenarioOptions*);
using ShapeFn = void (*)(const std::vector<uint64_t>&, const ScenarioOptions&,
                         const StreamGenerator&);

struct HarnessEntry {
  const char* name;
  AdjustFn adjust;  // nullptr = HarnessBaseOptions as-is
  ShapeFn shape;
};

// --- zipf: static skew — rank 0 is the hottest key with share ~ p1 ---------
void ZipfShape(const std::vector<uint64_t>& keys, const ScenarioOptions& opt,
               const StreamGenerator&) {
  const auto freq = Frequencies(keys, 0, keys.size());
  EXPECT_EQ(HottestKey(freq), 0u) << "rank 0 must be the most frequent key";
  const double p1 = ZipfTopProbability(opt.zipf_exponent, opt.num_keys);
  const double share =
      static_cast<double>(freq.at(0)) / static_cast<double>(keys.size());
  EXPECT_NEAR(share, p1, 0.5 * p1);
}

// --- drift: every epoch still has a Zipf head (mapping fixed per epoch) ----
void DriftShape(const std::vector<uint64_t>& keys, const ScenarioOptions& opt,
                const StreamGenerator&) {
  const double p1 = ZipfTopProbability(opt.zipf_exponent, opt.num_keys);
  const size_t epoch_length = keys.size() / opt.num_epochs;
  for (uint64_t epoch = 0; epoch < opt.num_epochs; ++epoch) {
    const auto freq = Frequencies(keys, epoch * epoch_length,
                                  (epoch + 1) * epoch_length);
    const double share = static_cast<double>(freq.at(HottestKey(freq))) /
                         static_cast<double>(epoch_length);
    EXPECT_NEAR(share, p1, 0.6 * p1) << "epoch " << epoch;
  }
}

// --- flash-crowd: the burst key dominates the window and only the window ---
void FlashCrowdShape(const std::vector<uint64_t>& keys,
                     const ScenarioOptions& opt, const StreamGenerator&) {
  const uint64_t burst_key = opt.num_keys - 1;
  const auto first = static_cast<size_t>(
      opt.burst_begin * static_cast<double>(keys.size()));
  const auto last = static_cast<size_t>(
      opt.burst_end * static_cast<double>(keys.size()));
  EXPECT_NEAR(ShareOf(keys, first, last, burst_key, burst_key + 1),
              opt.burst_fraction, 0.08);
  EXPECT_LT(ShareOf(keys, 0, first, burst_key, burst_key + 1), 0.01);
  EXPECT_LT(ShareOf(keys, last, keys.size(), burst_key, burst_key + 1), 0.01);
}

// --- hot-set-churn: the documented rotating window carries hot_fraction ----
void HotSetChurnShape(const std::vector<uint64_t>& keys,
                      const ScenarioOptions& opt, const StreamGenerator&) {
  const size_t epoch_length = keys.size() / opt.num_epochs;
  std::set<uint64_t> hottest;
  for (uint64_t epoch = 0; epoch < opt.num_epochs; ++epoch) {
    // The window contract of HotSetChurnStreamGenerator::HotSetStart.
    const uint64_t start =
        (opt.num_keys / 2 + epoch * opt.hot_set_size) % opt.num_keys;
    const size_t begin = epoch * epoch_length;
    EXPECT_NEAR(ShareOf(keys, begin, begin + epoch_length, start,
                        start + opt.hot_set_size),
                opt.hot_fraction, 0.08)
        << "epoch " << epoch;
    hottest.insert(HottestKey(Frequencies(keys, begin, begin + epoch_length)));
  }
  // Disjoint windows: the hottest identity is fresh every epoch.
  EXPECT_EQ(hottest.size(), opt.num_epochs);
}

// --- multi-tenant: message i stays in tenant (i % T)'s key range -----------
void MultiTenantShape(const std::vector<uint64_t>& keys,
                      const ScenarioOptions& opt, const StreamGenerator&) {
  const uint64_t tenants = opt.tenant_exponents.size();
  const uint64_t keys_per_tenant = opt.num_keys / tenants;
  size_t violations = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint64_t tenant = i % tenants;
    violations += keys[i] < tenant * keys_per_tenant ||
                  keys[i] >= (tenant + 1) * keys_per_tenant;
  }
  EXPECT_EQ(violations, 0u);
}

// --- single-key-ramp: silent linear growth to the final share --------------
void SingleKeyRampShape(const std::vector<uint64_t>& keys,
                        const ScenarioOptions& opt, const StreamGenerator&) {
  const uint64_t ramp_key = opt.num_keys - 1;
  const size_t decile = keys.size() / 10;
  EXPECT_LT(ShareOf(keys, 0, decile, ramp_key, ramp_key + 1), 0.06);
  // Mean share over the last decile: ramp_final_fraction * 0.95.
  EXPECT_NEAR(ShareOf(keys, keys.size() - decile, keys.size(), ramp_key,
                      ramp_key + 1),
              opt.ramp_final_fraction * 0.95, 0.06);
}

// --- correlated-burst: the whole group ignites together in the window ------
void CorrelatedBurstShape(const std::vector<uint64_t>& keys,
                          const ScenarioOptions& opt, const StreamGenerator&) {
  const uint64_t group_start = opt.num_keys - opt.burst_group_size;
  const auto first = static_cast<size_t>(
      opt.burst_begin * static_cast<double>(keys.size()));
  const auto last = static_cast<size_t>(
      opt.burst_end * static_cast<double>(keys.size()));
  EXPECT_NEAR(ShareOf(keys, first, last, group_start, opt.num_keys),
              opt.burst_fraction, 0.08);
  EXPECT_LT(ShareOf(keys, 0, first, group_start, opt.num_keys), 0.02);
  EXPECT_LT(ShareOf(keys, last, keys.size(), group_start, opt.num_keys), 0.02);
  // Correlation: EVERY group member ignites, splitting the burst roughly
  // uniformly (each expects window * fraction / group messages).
  const auto freq = Frequencies(keys, first, last);
  const double expected = static_cast<double>(last - first) *
                          opt.burst_fraction /
                          static_cast<double>(opt.burst_group_size);
  for (uint64_t k = group_start; k < opt.num_keys; ++k) {
    const auto it = freq.find(k);
    const double hits =
        it == freq.end() ? 0.0 : static_cast<double>(it->second);
    EXPECT_GT(hits, 0.3 * expected) << "group key " << k << " never ignited";
    EXPECT_LT(hits, 3.0 * expected) << "group key " << k << " dominates alone";
  }
}

// --- diurnal: each band's share oscillates with the configured period ------
void DiurnalShape(const std::vector<uint64_t>& keys, const ScenarioOptions& opt,
                  const StreamGenerator&) {
  const uint64_t bands = opt.diurnal_num_bands;
  const uint64_t keys_per_band = opt.num_keys / bands;
  const uint64_t period = opt.diurnal_period;
  ASSERT_GE(keys.size(), 2 * period) << "stream too short for a period check";
  // Band 0's intensity 1 + A*sin(2*pi*t/P) peaks at cycle fraction 0.25 and
  // troughs at 0.75. Compare its share over the peak and trough quarters of
  // EVERY cycle — per-cycle agreement is what pins the period.
  const uint64_t cycles = keys.size() / period;
  for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
    const size_t base = cycle * period;
    const double peak = ShareOf(keys, base + period / 8, base + 3 * period / 8,
                                0, keys_per_band);
    const double trough = ShareOf(keys, base + 5 * period / 8,
                                  base + 7 * period / 8, 0, keys_per_band);
    EXPECT_GT(peak, trough + 0.2)
        << "cycle " << cycle << ": band 0 share must swing with the period";
  }
  // Every band takes its turn: over the full stream the mix is balanced.
  for (uint64_t b = 0; b < bands; ++b) {
    EXPECT_NEAR(ShareOf(keys, 0, keys.size(), b * keys_per_band,
                        (b + 1) * keys_per_band),
                1.0 / static_cast<double>(bands), 0.05)
        << "band " << b;
  }
}

// --- key-space-growth: fresh keys arrive; the head is a moving target ------
void KeySpaceGrowthShape(const std::vector<uint64_t>& keys,
                         const ScenarioOptions& opt, const StreamGenerator&) {
  const size_t decile = keys.size() / 10;
  // New-key arrival monotonicity: every decile must introduce identities
  // never seen before (until the key space saturates).
  std::set<uint64_t> seen;
  std::vector<uint64_t> fresh_per_decile;
  std::vector<double> mean_per_decile;
  for (size_t d = 0; d < 10; ++d) {
    uint64_t fresh = 0;
    double sum = 0.0;
    for (size_t i = d * decile; i < (d + 1) * decile; ++i) {
      fresh += seen.insert(keys[i]).second;
      sum += static_cast<double>(keys[i]);
    }
    fresh_per_decile.push_back(fresh);
    mean_per_decile.push_back(sum / static_cast<double>(decile));
  }
  const bool saturated = seen.size() >= opt.num_keys * 95 / 100;
  for (size_t d = 1; d < (saturated ? 5 : 10); ++d) {
    EXPECT_GT(fresh_per_decile[d], 0u)
        << "decile " << d << " introduced no fresh keys";
  }
  EXPECT_GT(seen.size(),
            static_cast<size_t>(opt.growth_initial_fraction *
                                static_cast<double>(opt.num_keys) * 1.5))
      << "the key space never grew past its initial fraction";
  // Moving head: the hot mass rides the frontier, so the mean key index
  // must climb from the first decile to the last.
  EXPECT_GT(mean_per_decile.back(), mean_per_decile.front() * 1.5);
  EXPECT_NE(HottestKey(Frequencies(keys, 0, decile)),
            HottestKey(Frequencies(keys, keys.size() - decile, keys.size())))
      << "the hottest identity never moved";
}

// --- replay-with-noise: base composition preserved up to the noise rate ----
void ReplayWithNoiseShape(const std::vector<uint64_t>& keys,
                          const ScenarioOptions& opt, const StreamGenerator&) {
  auto base = MakeScenario(opt.replay_base, opt);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const std::vector<uint64_t> base_keys = PullAll(base->get());
  ASSERT_EQ(base_keys.size(), keys.size());

  // Local ordering is perturbed: many positions differ from the raw replay.
  size_t moved = 0;
  for (size_t i = 0; i < keys.size(); ++i) moved += keys[i] != base_keys[i];
  EXPECT_GT(static_cast<double>(moved) / static_cast<double>(keys.size()), 0.1)
      << "the noise window never reordered anything";

  // Composition is preserved up to the noise rate: the L1 histogram
  // distance, normalized to [0, 1], is bounded by the fraction of draws the
  // uniform noise replaced.
  std::map<uint64_t, int64_t> delta;
  for (uint64_t k : keys) ++delta[k];
  for (uint64_t k : base_keys) --delta[k];
  uint64_t l1 = 0;
  for (const auto& [key, d] : delta) l1 += static_cast<uint64_t>(std::abs(d));
  const double normalized =
      static_cast<double>(l1) / (2.0 * static_cast<double>(keys.size()));
  EXPECT_LE(normalized, opt.noise_rate + 0.02);
  if (opt.noise_rate > 0.0) {
    EXPECT_GT(normalized, opt.noise_rate / 4.0)
        << "noise_rate is configured but no keys were perturbed";
  }
}

// --- scale-out-under-flash-crowd: load ignites, then keeps growing ---------
void ScaleOutFlashCrowdShape(const std::vector<uint64_t>& keys,
                             const ScenarioOptions& opt,
                             const StreamGenerator&) {
  const uint64_t group_start = opt.num_keys - opt.burst_group_size;
  const auto first = static_cast<size_t>(
      opt.burst_begin * static_cast<double>(keys.size()));
  // Quiet before ignition.
  EXPECT_LT(ShareOf(keys, 0, first, group_start, opt.num_keys), 0.02);
  // Step edge: just after ignition the group holds ~burst_fraction/2.
  const size_t post = keys.size() - first;
  EXPECT_NEAR(ShareOf(keys, first, first + post / 8, group_start, opt.num_keys),
              opt.burst_fraction * 0.5, 0.08);
  // Sustained growth, not a receding burst: the last decile's share must be
  // near the FULL burst_fraction (mean of the ramp over that decile) and
  // strictly above the ignition-edge share.
  const size_t decile = keys.size() / 10;
  const double ignition_share =
      ShareOf(keys, first, first + post / 8, group_start, opt.num_keys);
  const double mean_progress =
      (static_cast<double>(keys.size() - decile - first) +
       static_cast<double>(keys.size() - first)) /
      (2.0 * static_cast<double>(post));
  const double final_share = ShareOf(keys, keys.size() - decile, keys.size(),
                                     group_start, opt.num_keys);
  EXPECT_NEAR(final_share, opt.burst_fraction * 0.5 * (1.0 + mean_progress),
              0.08);
  EXPECT_GT(final_share, ignition_share + 0.05)
      << "the load must keep growing after ignition";
}

// --- scale-in-during-drift: the live prefix contracts while the head moves -
void ScaleInDriftShape(const std::vector<uint64_t>& keys,
                       const ScenarioOptions& opt, const StreamGenerator&) {
  const size_t epoch_length = keys.size() / opt.num_epochs;
  // Independent restatement of ScaleInDriftStreamGenerator::LiveKeys.
  auto live_at = [&](uint64_t epoch) {
    const double progress =
        opt.num_epochs <= 1 ? 1.0
                            : static_cast<double>(epoch) /
                                  static_cast<double>(opt.num_epochs - 1);
    const double fraction =
        1.0 - (1.0 - opt.shrink_final_fraction) * progress;
    return std::max<uint64_t>(
        2, static_cast<uint64_t>(fraction * static_cast<double>(opt.num_keys)));
  };
  for (uint64_t epoch = 0; epoch < opt.num_epochs; ++epoch) {
    const uint64_t live = live_at(epoch);
    uint64_t max_key = 0;
    for (size_t i = epoch * epoch_length; i < (epoch + 1) * epoch_length; ++i) {
      max_key = std::max(max_key, keys[i]);
    }
    EXPECT_LT(max_key, live) << "epoch " << epoch
                             << " emitted keys past the live prefix";
  }
  // The contraction is real: the final epoch fits in the shrunken prefix,
  // a strict subset of epoch 0's range.
  EXPECT_LT(live_at(opt.num_epochs - 1), opt.num_keys * 3 / 4);
  // The head drifts: the hottest identity moves across epochs.
  const uint64_t first_hot = HottestKey(Frequencies(keys, 0, epoch_length));
  const uint64_t last_hot = HottestKey(Frequencies(
      keys, (opt.num_epochs - 1) * epoch_length, opt.num_epochs * epoch_length));
  EXPECT_NE(first_hot, last_hot) << "the hot identity never drifted";
}

// One entry per catalog name. ORDER MATTERS ONLY FOR DIAGNOSTICS; coverage
// is compared against ScenarioNames() as a set by the completeness test.
constexpr HarnessEntry kRegistry[] = {
    {"zipf", nullptr, ZipfShape},
    {"drift", nullptr, DriftShape},
    {"flash-crowd", nullptr, FlashCrowdShape},
    {"hot-set-churn", nullptr, HotSetChurnShape},
    {"multi-tenant", nullptr, MultiTenantShape},
    {"single-key-ramp", nullptr, SingleKeyRampShape},
    {"correlated-burst", nullptr, CorrelatedBurstShape},
    {"diurnal", nullptr, DiurnalShape},
    {"key-space-growth", nullptr, KeySpaceGrowthShape},
    {"replay-with-noise", nullptr, ReplayWithNoiseShape},
    {"scale-out-under-flash-crowd", nullptr, ScaleOutFlashCrowdShape},
    {"scale-in-during-drift", nullptr, ScaleInDriftShape},
};

const HarnessEntry* FindEntry(const std::string& name) {
  for (const HarnessEntry& entry : kRegistry) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

ScenarioOptions HarnessBaseOptions() {
  ScenarioOptions opt;
  opt.num_keys = 1000;
  opt.num_messages = 20000;
  opt.seed = 7;
  opt.zipf_exponent = 1.1;
  return opt;
}

ScenarioOptions HarnessOptionsFor(const std::string& name) {
  ScenarioOptions opt = HarnessBaseOptions();
  const HarnessEntry* entry = FindEntry(name);
  if (entry != nullptr && entry->adjust != nullptr) entry->adjust(&opt);
  return opt;
}

void RunScenarioPropertyChecks(const std::string& name) {
  const HarnessEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    ADD_FAILURE() << "scenario '" << name
                  << "' has no harness entry: register an adjust/shape pair "
                     "in tests/workload/scenario_harness.cc";
    return;
  }
  const ScenarioOptions opt = HarnessOptionsFor(name);

  auto gen = MakeScenario(name, opt);
  auto twin = MakeScenario(name, opt);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();

  // 3a. Message-count exactness: the generator advertises what was asked.
  EXPECT_EQ((*gen)->num_messages(), opt.num_messages);
  EXPECT_GE((*gen)->num_keys(), 2u);
  EXPECT_LE((*gen)->num_keys(), opt.num_keys);

  // 3b. ... and yields exactly that many keys (an internal miscount that
  // aborts or runs dry would fail here).
  const std::vector<uint64_t> keys = PullAll(gen->get());
  EXPECT_EQ(keys.size(), opt.num_messages);

  // 1. Same-seed determinism: a twin instance reproduces the byte sequence.
  EXPECT_EQ(keys, PullAll(twin->get()))
      << "two same-options instances diverged";

  // 2. Reset round-trip: the SAME instance replays itself byte-for-byte.
  (*gen)->Reset();
  EXPECT_EQ(keys, PullAll(gen->get())) << "Reset() did not replay the stream";

  // 4. Key-range containment.
  const uint64_t limit = (*gen)->num_keys();
  size_t out_of_range = 0;
  for (uint64_t k : keys) out_of_range += k >= limit;
  EXPECT_EQ(out_of_range, 0u) << "keys escaped [0, num_keys())";

  // 5. Scenario-specific shape predicate.
  entry->shape(keys, opt, **gen);
}

std::vector<std::string> HarnessCoveredScenarios() {
  std::vector<std::string> names;
  for (const HarnessEntry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

}  // namespace slb::testing
