#include "cost_model_harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace slb::testing {
namespace {

std::vector<double> PriceAll(const CostModel& model) {
  std::vector<double> costs;
  costs.reserve(model.num_keys());
  for (uint64_t k = 0; k < model.num_keys(); ++k) {
    costs.push_back(model.CostOf(k));
  }
  return costs;
}

// Average rank of each value, ties sharing the mean rank (midrank), as
// Spearman's rho requires.
std::vector<double> Ranks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = midrank;
    i = j + 1;
  }
  return ranks;
}

/// Spearman rank correlation between the key index (0, 1, ...) and the cost.
double SpearmanVsIndex(const std::vector<double>& costs) {
  const std::vector<double> cost_ranks = Ranks(costs);
  const double n = static_cast<double>(costs.size());
  const double mean = 0.5 * (n + 1.0);
  double cov = 0.0;
  double var_index = 0.0;
  double var_cost = 0.0;
  for (size_t k = 0; k < costs.size(); ++k) {
    const double di = static_cast<double>(k + 1) - mean;  // index rank
    const double dc = cost_ranks[k] - mean;
    cov += di * dc;
    var_index += di * di;
    var_cost += dc * dc;
  }
  if (var_index == 0.0 || var_cost == 0.0) return 0.0;
  return cov / std::sqrt(var_index * var_cost);
}

/// Hill estimator of the Pareto tail index over the top `k` order
/// statistics: alpha_hat = k / sum_{i<=k} ln(X_(i) / X_(k+1)).
double HillTailIndex(std::vector<double> costs, size_t k) {
  std::sort(costs.begin(), costs.end(), std::greater<double>());
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) sum += std::log(costs[i] / costs[k]);
  return static_cast<double>(k) / sum;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

using ShapeFn = void (*)(const std::vector<double>&, const CostModelOptions&);

struct HarnessEntry {
  const char* name;
  ShapeFn shape;
};

// --- unit: exactly 1.0 everywhere — count and cost accounting coincide -----
void UnitShape(const std::vector<double>& costs, const CostModelOptions&) {
  for (size_t k = 0; k < costs.size(); ++k) {
    ASSERT_EQ(costs[k], 1.0) << "key " << k;
  }
}

// --- pareto: scale is the floor, the Hill estimate recovers the tail index -
void ParetoShape(const std::vector<double>& costs,
                 const CostModelOptions& opt) {
  const double floor = *std::min_element(costs.begin(), costs.end());
  EXPECT_GE(floor, opt.pareto_scale);
  // A heavy tail is present: the most expensive key costs a large multiple
  // of the floor (u_min ~ 1/num_keys => max ~ scale * num_keys^(1/alpha)).
  EXPECT_GT(*std::max_element(costs.begin(), costs.end()),
            20.0 * opt.pareto_scale);
  // Hill over the top 1/16 of the order statistics: std error ~ alpha/sqrt(k)
  // (~0.1 here), so a +-0.4 window is a real shape check, not noise.
  const double estimate = HillTailIndex(costs, costs.size() / 16);
  EXPECT_NEAR(estimate, opt.pareto_tail_index, 0.4);
}

// --- correlated: hot ranks (low key index) are the expensive ones ----------
void CorrelatedShape(const std::vector<double>& costs,
                     const CostModelOptions& opt) {
  EXPECT_LT(SpearmanVsIndex(costs), -0.8)
      << "cost must fall with the frequency rank index";
  // Costs span the advertised range [1, max_cost].
  EXPECT_GE(*std::min_element(costs.begin(), costs.end()), 1.0);
  EXPECT_LE(*std::max_element(costs.begin(), costs.end()), opt.max_cost);
}

// --- anti-correlated: rare ranks (high key index) are the expensive ones ---
void AntiCorrelatedShape(const std::vector<double>& costs,
                         const CostModelOptions& opt) {
  EXPECT_GT(SpearmanVsIndex(costs), 0.8)
      << "cost must rise with the frequency rank index";
  EXPECT_GE(*std::min_element(costs.begin(), costs.end()), 1.0);
  EXPECT_LE(*std::max_element(costs.begin(), costs.end()), opt.max_cost);
}

// One entry per catalog name; coverage is compared against CostModelNames()
// as a set by the completeness test.
constexpr HarnessEntry kRegistry[] = {
    {"unit", UnitShape},
    {"pareto", ParetoShape},
    {"correlated", CorrelatedShape},
    {"anti-correlated", AntiCorrelatedShape},
};

const HarnessEntry* FindEntry(const std::string& name) {
  for (const HarnessEntry& entry : kRegistry) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

CostModelOptions CostModelHarnessOptions() {
  CostModelOptions opt;
  opt.num_keys = 4096;
  opt.seed = 7;
  return opt;
}

void RunCostModelPropertyChecks(const std::string& name) {
  const HarnessEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    ADD_FAILURE() << "cost model '" << name
                  << "' has no harness entry: register a shape predicate in "
                     "tests/workload/cost_model_harness.cc";
    return;
  }
  const CostModelOptions opt = CostModelHarnessOptions();

  auto model = MakeCostModel(name, opt);
  auto twin = MakeCostModel(name, opt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();

  // 4. Catalog consistency: the factory built what was asked for.
  EXPECT_EQ((*model)->name(), name);
  EXPECT_EQ((*model)->num_keys(), opt.num_keys);

  const std::vector<double> costs = PriceAll(**model);

  // 3. Positivity and finiteness — every downstream accumulator divides by
  // or subtracts these, so a zero, negative, or non-finite cost corrupts
  // conservation arithmetic silently.
  for (size_t k = 0; k < costs.size(); ++k) {
    ASSERT_TRUE(std::isfinite(costs[k])) << "key " << k;
    ASSERT_GT(costs[k], 0.0) << "key " << k;
  }

  // 1. Same-seed determinism: a twin instance prices every key identically.
  EXPECT_EQ(costs, PriceAll(**twin))
      << "two same-options instances diverged";

  // 2. Reset round-trip: the SAME instance replays its catalog bit-exactly.
  (*model)->Reset();
  EXPECT_EQ(costs, PriceAll(**model)) << "Reset() changed the cost catalog";

  // MeanCost agrees with direct enumeration (benches derive completion
  // rates from it).
  double sum = 0.0;
  for (double c : costs) sum += c;
  EXPECT_DOUBLE_EQ((*model)->MeanCost(),
                   sum / static_cast<double>(costs.size()));

  // 5. Model-specific shape predicate.
  entry->shape(costs, opt);
}

std::vector<std::string> HarnessCoveredCostModels() {
  std::vector<std::string> names;
  for (const HarnessEntry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

}  // namespace slb::testing
