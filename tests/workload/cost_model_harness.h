// Cost-model property-test harness.
//
// Every generator in the cost-model catalog (slb/workload/cost_model.h) must
// satisfy the same contract — the simulator rebuilds models per cell and the
// senders/tracker/mis-rank analysis evaluate the same oracle independently —
// so the contract is machine-checked in ONE place, mirroring the scenario
// harness (tests/workload/scenario_harness.h):
//
//   1. same-seed determinism   two same-options instances price every key
//                              identically (bit-exact doubles);
//   2. Reset round-trip        Reset() replays the exact per-key costs;
//   3. positivity              every cost is finite and > 0 (the tracker's
//                              conservation arithmetic relies on it);
//   4. catalog consistency     name() round-trips through MakeCostModel and
//                              num_keys() matches the requested options;
//   5. shape predicate         a per-model statistical check that the
//                              advertised shape actually holds — the Hill
//                              tail-index estimate for pareto, the sign and
//                              strength of the rank correlation for the
//                              correlated variants, exact unity for unit.
//
// The registry is keyed by catalog name and the completeness test compares
// HarnessCoveredCostModels() against CostModelNames(), so a model added to
// the catalog without a harness entry — or an entry whose model was
// removed — fails CI.

#pragma once

#include <string>
#include <vector>

#include "slb/workload/cost_model.h"

namespace slb::testing {

/// The options every model is checked under: enough keys that the Hill
/// estimator and rank correlation are statistically decisive, small enough
/// to run in milliseconds.
CostModelOptions CostModelHarnessOptions();

/// Runs invariants 1-5 for `name` using gtest EXPECT/ADD_FAILURE, so
/// failures surface in the calling test (wrap in SCOPED_TRACE(name)).
/// A name without a registry entry is itself a failure.
void RunCostModelPropertyChecks(const std::string& name);

/// Catalog names with a registered harness entry, in registry order.
std::vector<std::string> HarnessCoveredCostModels();

}  // namespace slb::testing
