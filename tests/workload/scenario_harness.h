// Scenario property-test harness.
//
// Every generator in the adversarial catalog (slb/workload/scenario.h) must
// satisfy the same contract — the sweep engine rebuilds generators per cell
// and relies on it — so the contract is machine-checked in ONE place instead
// of hand-copied per scenario:
//
//   1. same-seed determinism   two same-options instances emit byte-identical
//                              key streams (construction is a pure function
//                              of the seed);
//   2. Reset round-trip        Reset() replays the exact sequence,
//                              byte-for-byte over the full stream;
//   3. message-count exactness num_messages() matches the requested options
//                              and the generator yields exactly that many
//                              keys without aborting;
//   4. key-range containment   every emitted key is < num_keys();
//   5. shape predicate         a per-scenario check that the advertised
//                              dynamics actually happen (the burst window
//                              dominates, the hot set rotates, fresh keys
//                              arrive, ...), registered in the harness.
//
// The registry is keyed by catalog name and the completeness test compares
// HarnessCoveredScenarios() against ScenarioNames(), so a generator added to
// the catalog without a harness entry — or an entry whose scenario was
// removed — fails CI.
//
// Usage (tests/workload/scenario_test.cc):
//   for (const auto& name : ScenarioNames()) {
//     SCOPED_TRACE(name);
//     slb::testing::RunScenarioPropertyChecks(name);
//   }

#pragma once

#include <string>
#include <vector>

#include "slb/workload/scenario.h"

namespace slb::testing {

/// The catalog-wide options the harness checks every scenario under: small
/// enough to run in milliseconds, skewed and dynamic enough that every
/// scenario's failure mode is statistically visible. Individual scenarios
/// may further adjust knobs via their registry entry (see the .cc).
ScenarioOptions HarnessBaseOptions();

/// The options scenario `name` is actually checked under: HarnessBaseOptions
/// plus the scenario's registered adjustments. Exposed so tests asserting on
/// harness behaviour agree with the harness about knob values.
ScenarioOptions HarnessOptionsFor(const std::string& name);

/// Runs invariants 1-5 for `name` using gtest EXPECT/ADD_FAILURE, so
/// failures surface in the calling test (wrap in SCOPED_TRACE(name)).
/// A name without a registry entry is itself a failure.
void RunScenarioPropertyChecks(const std::string& name);

/// Catalog names with a registered harness entry, in registry order.
std::vector<std::string> HarnessCoveredScenarios();

}  // namespace slb::testing
