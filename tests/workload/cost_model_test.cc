#include "slb/workload/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cost_model_harness.h"

namespace slb {
namespace {

// --- property-test harness -------------------------------------------------
//
// The harness machine-checks the catalog-wide contract (same-seed
// determinism, Reset round-trip, positivity, factory round-trip) plus one
// registered shape predicate per model. Running it over CostModelNames()
// means a future model is covered the moment it is registered in the
// factory — and the completeness test below makes SKIPPING the harness a CI
// failure rather than a silent gap.

TEST(CostModelHarnessTest, EveryCatalogModelPassesPropertyChecks) {
  for (const std::string& name : CostModelNames()) {
    SCOPED_TRACE(name);
    slb::testing::RunCostModelPropertyChecks(name);
  }
}

TEST(CostModelHarnessTest, HarnessCoversEveryCatalogName) {
  std::vector<std::string> catalog = CostModelNames();
  std::vector<std::string> covered = slb::testing::HarnessCoveredCostModels();
  std::sort(catalog.begin(), catalog.end());
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(catalog, covered)
      << "catalog and harness registry diverged: every MakeCostModel name "
         "needs a shape predicate in tests/workload/cost_model_harness.cc, "
         "and every registry entry needs a live model";
}

// --- factory validation ----------------------------------------------------

TEST(CostModelFactoryTest, RejectsUnknownName) {
  auto model = MakeCostModel("no-such-model");
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(CostModelFactoryTest, RejectsZeroKeys) {
  CostModelOptions opt;
  opt.num_keys = 0;
  EXPECT_FALSE(MakeCostModel("unit", opt).ok());
}

TEST(CostModelFactoryTest, RejectsNonPositiveTailIndex) {
  CostModelOptions opt;
  opt.pareto_tail_index = 0.0;
  EXPECT_FALSE(MakeCostModel("pareto", opt).ok());
  opt.pareto_tail_index = -1.5;
  EXPECT_FALSE(MakeCostModel("pareto", opt).ok());
  // !(x > 0) also rejects a NaN knob instead of silently building a model
  // that prices every key NaN.
  opt.pareto_tail_index = std::nan("");
  EXPECT_FALSE(MakeCostModel("pareto", opt).ok());
}

TEST(CostModelFactoryTest, RejectsNonPositiveParetoScale) {
  CostModelOptions opt;
  opt.pareto_scale = 0.0;
  EXPECT_FALSE(MakeCostModel("pareto", opt).ok());
}

TEST(CostModelFactoryTest, RejectsCorrelationOutsideUnitInterval) {
  CostModelOptions opt;
  opt.cost_correlation = 1.5;
  EXPECT_FALSE(MakeCostModel("correlated", opt).ok());
  opt.cost_correlation = -1.5;
  EXPECT_FALSE(MakeCostModel("anti-correlated", opt).ok());
  opt.cost_correlation = std::nan("");
  EXPECT_FALSE(MakeCostModel("correlated", opt).ok());
}

TEST(CostModelFactoryTest, RejectsMaxCostBelowOne) {
  CostModelOptions opt;
  opt.max_cost = 0.5;
  EXPECT_FALSE(MakeCostModel("correlated", opt).ok());
}

TEST(CostModelFactoryTest, BoundaryKnobsAreAccepted) {
  CostModelOptions opt;
  opt.cost_correlation = 1.0;
  EXPECT_TRUE(MakeCostModel("correlated", opt).ok());
  opt.cost_correlation = -1.0;
  EXPECT_TRUE(MakeCostModel("anti-correlated", opt).ok());
  opt.max_cost = 1.0;  // degenerate but legal: every key costs exactly 1
  auto flat = MakeCostModel("correlated", opt);
  ASSERT_TRUE(flat.ok());
  EXPECT_DOUBLE_EQ((*flat)->CostOf(0), 1.0);
}

// --- model semantics beyond the harness ------------------------------------

TEST(CostModelTest, DifferentSeedsPriceKeysDifferently) {
  CostModelOptions a = slb::testing::CostModelHarnessOptions();
  CostModelOptions b = a;
  b.seed = a.seed + 1;
  auto model_a = MakeCostModel("pareto", a);
  auto model_b = MakeCostModel("pareto", b);
  ASSERT_TRUE(model_a.ok() && model_b.ok());
  size_t differing = 0;
  for (uint64_t k = 0; k < a.num_keys; ++k) {
    differing += (*model_a)->CostOf(k) != (*model_b)->CostOf(k);
  }
  EXPECT_GT(differing, a.num_keys / 2) << "the seed must matter";
}

TEST(CostModelTest, KeysPastCatalogArePricedFinitely) {
  // Streams can emit keys >= num_keys (key-space-growth); every model must
  // still price them with a positive, finite cost rather than crashing.
  const CostModelOptions opt = slb::testing::CostModelHarnessOptions();
  for (const std::string& name : CostModelNames()) {
    SCOPED_TRACE(name);
    auto model = MakeCostModel(name, opt);
    ASSERT_TRUE(model.ok());
    const double cost = (*model)->CostOf(opt.num_keys + 123);
    EXPECT_TRUE(std::isfinite(cost));
    EXPECT_GT(cost, 0.0);
  }
}

TEST(CostModelTest, CorrelatedAndAntiCorrelatedAreMirrored) {
  // At full correlation and no noise the two variants price rank r and rank
  // (K-1-r) identically: they are reflections of the same ramp. The two
  // ramps evaluate `1 - k/D` vs `(K-1-k)/D`, equal in exact arithmetic but
  // an ulp apart in floating point, hence NEAR rather than bit-equality.
  CostModelOptions opt = slb::testing::CostModelHarnessOptions();
  opt.cost_correlation = 1.0;
  auto hot = MakeCostModel("correlated", opt);
  auto cold = MakeCostModel("anti-correlated", opt);
  ASSERT_TRUE(hot.ok() && cold.ok());
  for (uint64_t k = 0; k < opt.num_keys; ++k) {
    const double mirrored = (*cold)->CostOf(opt.num_keys - 1 - k);
    ASSERT_NEAR((*hot)->CostOf(k), mirrored, 1e-12 * mirrored) << "key " << k;
  }
}

}  // namespace
}  // namespace slb
