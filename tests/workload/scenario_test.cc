#include "slb/workload/scenario.h"

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "scenario_harness.h"

namespace slb {
namespace {

// The catalog configuration used throughout: small enough to run fast,
// skewed enough that every scenario's failure mode is visible.
ScenarioOptions BaseOptions() {
  ScenarioOptions opt;
  opt.num_keys = 1000;
  opt.num_messages = 20000;
  opt.seed = 7;
  opt.zipf_exponent = 1.1;
  return opt;
}

std::vector<uint64_t> Pull(StreamGenerator* gen, uint64_t count) {
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (uint64_t i = 0; i < count; ++i) keys.push_back(gen->NextKey());
  return keys;
}

// --- property-test harness -------------------------------------------------
//
// The harness machine-checks the catalog-wide contract (same-seed
// determinism, Reset round-trip, message-count exactness, key-range
// containment) plus one registered shape predicate per scenario. Running it
// over ScenarioNames() means a future generator is covered the moment it is
// registered in the factory — and the completeness test below makes SKIPPING
// the harness a CI failure rather than a silent gap.

TEST(ScenarioHarnessTest, EveryCatalogScenarioPassesPropertyChecks) {
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    slb::testing::RunScenarioPropertyChecks(name);
  }
}

TEST(ScenarioHarnessTest, HarnessCoversEveryCatalogName) {
  std::vector<std::string> catalog = ScenarioNames();
  std::vector<std::string> covered = slb::testing::HarnessCoveredScenarios();
  std::sort(catalog.begin(), catalog.end());
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(catalog, covered)
      << "catalog and harness registry diverged: every MakeScenario name "
         "needs a shape predicate in tests/workload/scenario_harness.cc, and "
         "every registry entry needs a live scenario";
}

TEST(ScenarioHarnessTest, UnregisteredNameIsAHarnessFailure) {
  EXPECT_NONFATAL_FAILURE(
      slb::testing::RunScenarioPropertyChecks("no-such-scenario"),
      "no harness entry");
}

TEST(ScenarioFactoryTest, UnknownNameIsInvalidArgument) {
  auto gen = MakeScenario("no-such-scenario", BaseOptions());
  ASSERT_FALSE(gen.ok());
  EXPECT_TRUE(gen.status().IsInvalidArgument());
}

TEST(ScenarioFactoryTest, EveryCatalogNameConstructs) {
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    auto gen = MakeScenario(name, BaseOptions());
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    EXPECT_EQ((*gen)->num_messages(), 20000u);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT((*gen)->NextKey(), (*gen)->num_keys());
    }
  }
}

TEST(ScenarioFactoryTest, OutOfRangeKnobsAreInvalidArgument) {
  auto opt = BaseOptions();
  opt.burst_fraction = 1.5;
  EXPECT_TRUE(MakeScenario("flash-crowd", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.burst_begin = 0.9;
  opt.burst_end = 0.1;  // begin > end
  EXPECT_TRUE(MakeScenario("flash-crowd", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.hot_set_size = 0;
  EXPECT_TRUE(MakeScenario("hot-set-churn", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.hot_set_size = opt.num_keys + 1;
  EXPECT_TRUE(MakeScenario("hot-set-churn", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.tenant_exponents.clear();
  EXPECT_TRUE(MakeScenario("multi-tenant", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.tenant_exponents = {1.0, -0.5};
  EXPECT_TRUE(MakeScenario("multi-tenant", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.ramp_final_fraction = -0.1;
  EXPECT_TRUE(
      MakeScenario("single-key-ramp", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.num_keys = 1;  // below the common floor
  EXPECT_TRUE(MakeScenario("zipf", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.drift_swap_fraction = 2.0;
  EXPECT_TRUE(MakeScenario("drift", opt).status().IsInvalidArgument());
}

TEST(ScenarioFactoryTest, NewScenarioKnobsAreValidated) {
  auto opt = BaseOptions();
  opt.burst_group_size = 0;
  EXPECT_TRUE(
      MakeScenario("correlated-burst", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.burst_group_size = opt.num_keys + 1;
  EXPECT_TRUE(
      MakeScenario("correlated-burst", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.burst_fraction = -0.5;
  EXPECT_TRUE(
      MakeScenario("correlated-burst", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.diurnal_period = 0;  // zero period: no cycle to modulate
  EXPECT_TRUE(MakeScenario("diurnal", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.diurnal_num_bands = 0;
  EXPECT_TRUE(MakeScenario("diurnal", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.diurnal_num_bands = opt.num_keys + 1;
  EXPECT_TRUE(MakeScenario("diurnal", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.diurnal_amplitude = 1.5;
  EXPECT_TRUE(MakeScenario("diurnal", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.growth_rate = 1.0;  // rate >= 1: every message a fresh key
  EXPECT_TRUE(
      MakeScenario("key-space-growth", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.growth_rate = -0.1;
  EXPECT_TRUE(
      MakeScenario("key-space-growth", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.growth_initial_fraction = 0.0;
  EXPECT_TRUE(
      MakeScenario("key-space-growth", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.growth_initial_fraction = 1.5;
  EXPECT_TRUE(
      MakeScenario("key-space-growth", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.noise_rate = -0.01;  // negative noise rate
  EXPECT_TRUE(
      MakeScenario("replay-with-noise", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.noise_rate = 1.01;
  EXPECT_TRUE(
      MakeScenario("replay-with-noise", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.noise_window = 0;
  EXPECT_TRUE(
      MakeScenario("replay-with-noise", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.replay_base = "replay-with-noise";  // would recurse forever
  EXPECT_TRUE(
      MakeScenario("replay-with-noise", opt).status().IsInvalidArgument());

  opt = BaseOptions();
  opt.replay_base = "no-such-base";
  EXPECT_TRUE(
      MakeScenario("replay-with-noise", opt).status().IsInvalidArgument());
}

TEST(ScenarioFactoryTest, ReplayCanWrapAnyOtherCatalogScenario) {
  for (const std::string& base : ScenarioNames()) {
    if (base == "replay-with-noise") continue;
    SCOPED_TRACE(base);
    auto opt = BaseOptions();
    opt.replay_base = base;
    auto gen = MakeScenario("replay-with-noise", opt);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT((*gen)->NextKey(), (*gen)->num_keys());
    }
  }
}

// Reset() must replay the exact sequence, and two same-seed instances must
// agree — the sweep engine rebuilds a generator per cell run and relies on
// construction being a pure function of the seed.
TEST(ScenarioResetTest, ResetRoundTripsForEveryScenario) {
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    auto gen = MakeScenario(name, BaseOptions());
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    const std::vector<uint64_t> first = Pull(gen->get(), 20000);
    (*gen)->Reset();
    const std::vector<uint64_t> second = Pull(gen->get(), 20000);
    EXPECT_EQ(first, second);
  }
}

TEST(ScenarioResetTest, SameSeedInstancesAgree) {
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    auto a = MakeScenario(name, BaseOptions());
    auto b = MakeScenario(name, BaseOptions());
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Pull(a->get(), 5000), Pull(b->get(), 5000));
  }
}

TEST(ScenarioResetTest, SeedsChangeTheStream) {
  for (const std::string& name : ScenarioNames()) {
    SCOPED_TRACE(name);
    auto opt = BaseOptions();
    auto a = MakeScenario(name, opt);
    opt.seed = 8;
    auto b = MakeScenario(name, opt);
    ASSERT_TRUE(a.ok() && b.ok());
    const auto ka = Pull(a->get(), 1000);
    const auto kb = Pull(b->get(), 1000);
    int same = 0;
    for (int i = 0; i < 1000; ++i) same += ka[i] == kb[i];
    EXPECT_LT(same, 500);
  }
}

// Golden-seed pins, mirroring tests/workload/zipf_test.cc: identical seeds
// must reproduce identical key streams across runs. The sequences go through
// libm (pow/log in the Zipf samplers), so they pin glibc-class platforms
// (the ones CI covers); the Reset/two-instance tests above are libm-free
// invariants and must hold everywhere.
TEST(ScenarioGoldenTest, FlashCrowdSeed7) {
  // Before the window the stream is the base Zipf; inside it (positions
  // >= 8000 here) the burst key 999 dominates.
  FlashCrowdStreamGenerator gen(BaseOptions());
  const uint64_t head[] = {5, 15, 75, 60, 403, 2, 36, 1, 0, 156, 0, 4};
  for (uint64_t k : head) EXPECT_EQ(gen.NextKey(), k);
  gen.Reset();
  for (int i = 0; i < 8000; ++i) gen.NextKey();
  const uint64_t burst[] = {999, 501, 999, 999, 0, 999, 3, 235, 0, 999, 0, 0};
  for (uint64_t k : burst) EXPECT_EQ(gen.NextKey(), k);
}

TEST(ScenarioGoldenTest, HotSetChurnSeed7) {
  HotSetChurnStreamGenerator gen(BaseOptions());
  const uint64_t expected[] = {0, 75, 500, 501, 505, 21, 502, 501, 501, 4, 128, 501};
  for (uint64_t k : expected) EXPECT_EQ(gen.NextKey(), k);
}

TEST(ScenarioGoldenTest, MultiTenantSeed7) {
  MultiTenantStreamGenerator gen(BaseOptions());
  const uint64_t expected[] = {233, 340, 680, 20, 467, 666,
                               36,  333, 666, 52, 390, 667};
  for (uint64_t k : expected) EXPECT_EQ(gen.NextKey(), k);
}

TEST(ScenarioGoldenTest, SingleKeyRampSeed7) {
  SingleKeyRampStreamGenerator gen(BaseOptions());
  const uint64_t expected[] = {0, 75, 103, 2, 21, 0, 133, 4, 128, 175, 0, 30};
  for (uint64_t k : expected) EXPECT_EQ(gen.NextKey(), k);
}

TEST(ScenarioGoldenTest, CorrelatedBurstSeed7) {
  // Outside the window the stream is the base Zipf (identical to
  // flash-crowd's head — same rng draw order); inside it (positions >= 8000)
  // the group [984, 1000) ignites together.
  CorrelatedBurstStreamGenerator gen(BaseOptions());
  const uint64_t head[] = {5, 15, 75, 60, 403, 2, 36, 1, 0, 156, 0, 4};
  for (uint64_t k : head) EXPECT_EQ(gen.NextKey(), k);
  gen.Reset();
  for (int i = 0; i < 8000; ++i) gen.NextKey();
  const uint64_t burst[] = {997, 114, 995, 997, 995, 1, 987, 0, 997, 998, 0, 76};
  for (uint64_t k : burst) EXPECT_EQ(gen.NextKey(), k);
}

TEST(ScenarioGoldenTest, DiurnalSeed7) {
  DiurnalStreamGenerator gen(BaseOptions());
  const uint64_t expected[] = {250, 775, 26, 1,  508, 314,
                               33,  252, 532, 293, 33, 761};
  for (uint64_t k : expected) EXPECT_EQ(gen.NextKey(), k);
}

TEST(ScenarioGoldenTest, KeySpaceGrowthSeed7) {
  // Only keys < 100 (the initial 10% of the space) are live this early, and
  // the head hugs the frontier (ranks count back from the newest key).
  KeySpaceGrowthStreamGenerator gen(BaseOptions());
  const uint64_t expected[] = {99, 24, 92, 98, 95, 91, 98, 13, 33, 100, 35, 98};
  for (uint64_t k : expected) EXPECT_EQ(gen.NextKey(), k);
}

TEST(ScenarioGoldenTest, ReplayWithNoiseSeed7) {
  auto gen = MakeScenario("replay-with-noise", BaseOptions());
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const uint64_t expected[] = {4, 60, 403, 0, 175, 2, 676, 2, 30, 39, 0, 7};
  for (uint64_t k : expected) EXPECT_EQ((*gen)->NextKey(), k);
}

// --- distribution-shape assertions ---------------------------------------

TEST(FlashCrowdTest, BurstWindowActuallyDominates) {
  FlashCrowdStreamGenerator gen(BaseOptions());  // window [8000, 12000)
  int in_window = 0;
  int outside = 0;
  for (uint64_t i = 0; i < gen.num_messages(); ++i) {
    const bool in_w = gen.InBurstWindow(i);
    if (gen.NextKey() == gen.burst_key()) {
      (in_w ? in_window : outside)++;
    }
  }
  // Inside the window the burst key carries ~burst_fraction (0.4) of the
  // traffic; outside it is the coldest rank of a 1000-key Zipf (~never).
  EXPECT_NEAR(in_window / 4000.0, 0.4, 0.05);
  EXPECT_LT(outside, 20);
}

TEST(FlashCrowdTest, WindowBoundariesMatchOptions) {
  FlashCrowdStreamGenerator gen(BaseOptions());
  EXPECT_FALSE(gen.InBurstWindow(7999));
  EXPECT_TRUE(gen.InBurstWindow(8000));
  EXPECT_TRUE(gen.InBurstWindow(11999));
  EXPECT_FALSE(gen.InBurstWindow(12000));
}

TEST(HotSetChurnTest, HotSetActuallyRotates) {
  const auto opt = BaseOptions();  // 10 epochs of 2000 messages
  HotSetChurnStreamGenerator gen(opt);
  std::vector<uint64_t> hottest_per_epoch;
  for (uint64_t epoch = 0; epoch < opt.num_epochs; ++epoch) {
    std::map<uint64_t, int> freq;
    uint64_t hot_mass = 0;
    const uint64_t start = gen.HotSetStart(epoch);
    for (int i = 0; i < 2000; ++i) {
      const uint64_t k = gen.NextKey();
      ++freq[k];
      if (k >= start && k < start + opt.hot_set_size) ++hot_mass;
    }
    // The active window carries ~hot_fraction (0.6) of the epoch's traffic.
    EXPECT_NEAR(hot_mass / 2000.0, 0.6, 0.08) << "epoch " << epoch;
    uint64_t best = 0;
    int best_count = -1;
    for (const auto& [k, c] : freq) {
      if (c > best_count) {
        best = k;
        best_count = c;
      }
    }
    EXPECT_GE(best, start) << "epoch " << epoch;
    EXPECT_LT(best, start + opt.hot_set_size) << "epoch " << epoch;
    hottest_per_epoch.push_back(best);
  }
  // Disjoint windows => the hottest identity is fresh every epoch.
  const std::set<uint64_t> distinct(hottest_per_epoch.begin(),
                                    hottest_per_epoch.end());
  EXPECT_EQ(distinct.size(), hottest_per_epoch.size());
}

TEST(MultiTenantTest, RoundRobinInterleaveOwnsDisjointRanges) {
  MultiTenantStreamGenerator gen(BaseOptions());  // 3 tenants x 333 keys
  ASSERT_EQ(gen.num_tenants(), 3u);
  ASSERT_EQ(gen.keys_per_tenant(), 333u);
  EXPECT_EQ(gen.num_keys(), 999u);
  for (uint64_t i = 0; i < 9000; ++i) {
    const uint64_t tenant = i % 3;
    const uint64_t k = gen.NextKey();
    EXPECT_GE(k, tenant * 333) << "message " << i;
    EXPECT_LT(k, (tenant + 1) * 333) << "message " << i;
  }
}

TEST(MultiTenantTest, SkewOrderingFollowsExponents) {
  // Default exponents {0.6, 1.1, 1.6}: each tenant's hottest key must be
  // strictly hotter than the previous tenant's.
  MultiTenantStreamGenerator gen(BaseOptions());
  std::map<uint64_t, int> freq;
  for (int i = 0; i < 30000; ++i) ++freq[gen.NextKey()];
  int max_per_tenant[3] = {0, 0, 0};
  for (const auto& [k, c] : freq) {
    max_per_tenant[k / 333] = std::max(max_per_tenant[k / 333], c);
  }
  EXPECT_LT(max_per_tenant[0], max_per_tenant[1]);
  EXPECT_LT(max_per_tenant[1], max_per_tenant[2]);
}

TEST(SingleKeyRampTest, HotKeyShareGrowsToFinalFraction) {
  SingleKeyRampStreamGenerator gen(BaseOptions());  // ramps to 0.5
  const uint64_t m = gen.num_messages();
  int first_decile = 0;
  int last_decile = 0;
  for (uint64_t i = 0; i < m; ++i) {
    if (gen.NextKey() != gen.ramp_key()) continue;
    if (i < m / 10) ++first_decile;
    if (i >= m - m / 10) ++last_decile;
  }
  // Expected share: ~2.5% averaged over the first decile, ~47.5% over the
  // last — the ramp has no burst edge, it grows silently.
  EXPECT_LT(first_decile / 2000.0, 0.06);
  EXPECT_NEAR(last_decile / 2000.0, 0.475, 0.05);
  EXPECT_NEAR(gen.RampShare(m), 0.5, 1e-12);
}

}  // namespace
}  // namespace slb
