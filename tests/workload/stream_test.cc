#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "slb/workload/datasets.h"
#include "slb/workload/key_mapper.h"
#include "slb/workload/stream_generator.h"
#include "slb/workload/trace.h"

namespace slb {
namespace {

SyntheticStreamGenerator::Options BaseOptions() {
  SyntheticStreamGenerator::Options opt;
  opt.zipf_exponent = 1.2;
  opt.num_keys = 1000;
  opt.num_messages = 20000;
  opt.seed = 9;
  return opt;
}

TEST(SyntheticStreamTest, ProducesConfiguredLength) {
  SyntheticStreamGenerator gen(BaseOptions());
  std::set<uint64_t> keys;
  for (uint64_t i = 0; i < gen.num_messages(); ++i) {
    const uint64_t k = gen.NextKey();
    ASSERT_LT(k, gen.num_keys());
    keys.insert(k);
  }
  EXPECT_GT(keys.size(), 100u);
}

TEST(SyntheticStreamTest, ResetReplaysIdenticalSequence) {
  SyntheticStreamGenerator gen(BaseOptions());
  std::vector<uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.push_back(gen.NextKey());
  gen.Reset();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(gen.NextKey(), first[i]) << "position " << i;
  }
}

TEST(SyntheticStreamTest, SeedsChangeTheStream) {
  auto opt = BaseOptions();
  SyntheticStreamGenerator a(opt);
  opt.seed = 10;
  SyntheticStreamGenerator b(opt);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextKey() == b.NextKey()) ++same;
  }
  EXPECT_LT(same, 500);
}

TEST(SyntheticStreamTest, NoDriftMeansStableHotKey) {
  auto opt = BaseOptions();
  opt.num_epochs = 10;
  opt.drift_swap_fraction = 0.0;
  SyntheticStreamGenerator gen(opt);
  // The most frequent key in the first and last quarter must coincide.
  auto hottest = [&](uint64_t count) {
    std::map<uint64_t, int> freq;
    for (uint64_t i = 0; i < count; ++i) ++freq[gen.NextKey()];
    uint64_t best = 0;
    int best_count = -1;
    for (auto& [k, c] : freq) {
      if (c > best_count) {
        best = k;
        best_count = c;
      }
    }
    return best;
  };
  const uint64_t early = hottest(5000);
  hottest(10000);  // skip the middle
  const uint64_t late = hottest(5000);
  EXPECT_EQ(early, late);
}

TEST(SyntheticStreamTest, DriftChangesHotKeyIdentity) {
  auto opt = BaseOptions();
  opt.num_messages = 40000;
  opt.num_epochs = 8;
  opt.drift_swap_fraction = 1.0;  // aggressive drift
  opt.zipf_exponent = 1.6;
  SyntheticStreamGenerator gen(opt);
  std::vector<uint64_t> hot_per_epoch;
  for (int epoch = 0; epoch < 8; ++epoch) {
    std::map<uint64_t, int> freq;
    for (int i = 0; i < 5000; ++i) ++freq[gen.NextKey()];
    uint64_t best = 0;
    int best_count = -1;
    for (auto& [k, c] : freq) {
      if (c > best_count) {
        best = k;
        best_count = c;
      }
    }
    hot_per_epoch.push_back(best);
  }
  std::set<uint64_t> distinct(hot_per_epoch.begin(), hot_per_epoch.end());
  EXPECT_GT(distinct.size(), 2u) << "hot key identity must drift";
}

TEST(SyntheticStreamTest, DriftPreservesDistributionShape) {
  // Drift permutes identities, not probabilities: the max key frequency
  // within an epoch stays ~p1.
  auto opt = BaseOptions();
  opt.num_messages = 40000;
  opt.num_epochs = 4;
  opt.drift_swap_fraction = 0.5;
  opt.zipf_exponent = 1.5;
  SyntheticStreamGenerator gen(opt);
  const double p1 = gen.distribution().Probability(0);
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::map<uint64_t, int> freq;
    for (int i = 0; i < 10000; ++i) ++freq[gen.NextKey()];
    int max_count = 0;
    for (auto& [k, c] : freq) max_count = std::max(max_count, c);
    EXPECT_NEAR(max_count / 10000.0, p1, 0.25 * p1) << "epoch " << epoch;
  }
}

TEST(DriftingKeyMapperTest, IsAPermutation) {
  DriftingKeyMapper mapper(500, 0.3, 3);
  Rng rng(4);
  for (int epoch = 0; epoch < 5; ++epoch) {
    std::set<uint64_t> image;
    for (uint64_t r = 0; r < 500; ++r) {
      const uint64_t k = mapper.Map(r);
      ASSERT_LT(k, 500u);
      image.insert(k);
    }
    EXPECT_EQ(image.size(), 500u) << "mapper must stay bijective";
    mapper.AdvanceEpoch(&rng);
  }
}

TEST(DriftingKeyMapperTest, ZeroFractionIsStatic) {
  DriftingKeyMapper mapper(100, 0.0, 3);
  std::vector<uint64_t> before;
  for (uint64_t r = 0; r < 100; ++r) before.push_back(mapper.Map(r));
  Rng rng(4);
  mapper.AdvanceEpoch(&rng);
  for (uint64_t r = 0; r < 100; ++r) EXPECT_EQ(mapper.Map(r), before[r]);
}

TEST(VectorStreamTest, ReplaysAndResets) {
  VectorStreamGenerator gen("fixture", {3, 1, 4, 1, 5}, 6);
  EXPECT_EQ(gen.num_messages(), 5u);
  EXPECT_EQ(gen.NextKey(), 3u);
  EXPECT_EQ(gen.NextKey(), 1u);
  gen.Reset();
  EXPECT_EQ(gen.NextKey(), 3u);
}

// Pulling past num_messages() is a contract violation that must abort loudly
// (SLB_CHECK) instead of reading past the vector — simulators trust
// num_messages() and a silent overrun would corrupt every downstream metric.
TEST(VectorStreamDeathTest, PullPastEndAborts) {
  VectorStreamGenerator gen("fixture", {3, 1}, 4);
  gen.NextKey();
  gen.NextKey();
  EXPECT_DEATH(gen.NextKey(), "stream exhausted");
  gen.Reset();
  EXPECT_EQ(gen.NextKey(), 3u);
}

TEST(VectorStreamDeathTest, EmptyStreamAbortsImmediately) {
  VectorStreamGenerator gen("empty", {}, 1);
  EXPECT_DEATH(gen.NextKey(), "stream exhausted");
}

TEST(DatasetsTest, SpecsMatchTableOne) {
  const DatasetSpec wp = MakeWikipediaSpec(1.0);
  EXPECT_EQ(wp.num_messages, 22000000u);
  EXPECT_EQ(wp.num_keys, 2900000u);
  EXPECT_NEAR(ZipfTopProbability(wp.zipf_exponent, wp.num_keys), 0.0932, 1e-6);

  const DatasetSpec tw = MakeTwitterSpec(1.0);
  EXPECT_EQ(tw.num_messages, 1200000000u);
  EXPECT_EQ(tw.num_keys, 31000000u);

  const DatasetSpec ct = MakeCashtagsSpec(1.0);
  EXPECT_EQ(ct.num_messages, 690000u);
  EXPECT_EQ(ct.num_keys, 2900u);
  EXPECT_GT(ct.drift_swap_fraction, 0.0) << "CT carries concept drift";
}

TEST(DatasetsTest, ScalingKeepsP1Calibrated) {
  const DatasetSpec wp = MakeWikipediaSpec(0.01);
  EXPECT_EQ(wp.num_messages, 220000u);
  EXPECT_EQ(wp.num_keys, 29000u);
  EXPECT_NEAR(ZipfTopProbability(wp.zipf_exponent, wp.num_keys), 0.0932, 1e-6);
}

TEST(DatasetsTest, MeasuredP1MatchesTargetWithoutDrift) {
  DatasetSpec wp = MakeWikipediaSpec(0.01);  // 220k messages, 29k keys
  auto gen = MakeGenerator(wp);
  const DatasetStats stats = MeasureDataset(gen.get());
  EXPECT_EQ(stats.messages, wp.num_messages);
  EXPECT_NEAR(stats.measured_p1, wp.target_p1, 0.1 * wp.target_p1);
  EXPECT_GT(stats.distinct_keys, wp.num_keys / 4);
}

TEST(DatasetsTest, DriftDilutesWholeStreamP1) {
  // CT reshuffles hot-key identities across epochs, so no single identity
  // accumulates the full per-epoch rank-1 frequency over the whole stream —
  // exactly the property Figs. 11-12 use the dataset for. The per-epoch
  // distribution is calibrated hotter than Table I's whole-stream p1
  // (see MakeCashtagsSpec).
  DatasetSpec ct = MakeCashtagsSpec(0.2);
  auto gen = MakeGenerator(ct);
  const DatasetStats stats = MeasureDataset(gen.get());
  const double epoch_p1 = ZipfTopProbability(ct.zipf_exponent, ct.num_keys);
  EXPECT_LT(stats.measured_p1, epoch_p1) << "drift must dilute the maximum";
  EXPECT_GT(stats.measured_p1, ct.target_p1 / 4) << "but hot keys persist";
  EXPECT_GT(stats.distinct_keys, ct.num_keys / 4);
}

TEST(DatasetsTest, ZipfSpecPassesParametersThrough) {
  const DatasetSpec zf = MakeZipfSpec(1.7, 12345, 99999, 7);
  EXPECT_EQ(zf.num_keys, 12345u);
  EXPECT_EQ(zf.num_messages, 99999u);
  EXPECT_DOUBLE_EQ(zf.zipf_exponent, 1.7);
  auto gen = MakeGenerator(zf);
  EXPECT_EQ(gen->num_messages(), 99999u);
}

class TraceRoundTripTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

TEST_F(TraceRoundTripTest, BinaryRoundTrip) {
  Trace trace;
  trace.num_keys = 100;
  for (uint64_t i = 0; i < 1000; ++i) trace.keys.push_back(i % 97);
  const std::string path = TempPath("roundtrip.slbt");
  ASSERT_TRUE(WriteTrace(path, trace).ok());
  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_keys, trace.num_keys);
  EXPECT_EQ(loaded->keys, trace.keys);
  std::remove(path.c_str());
}

TEST_F(TraceRoundTripTest, TextRoundTrip) {
  Trace trace;
  trace.keys = {5, 3, 5, 9};
  trace.num_keys = 10;
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteTextTrace(path, trace).ok());
  auto loaded = ReadTextTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->keys, trace.keys);
  EXPECT_EQ(loaded->num_keys, 10u);  // inferred max+1
  std::remove(path.c_str());
}

TEST_F(TraceRoundTripTest, MissingFileIsIOError) {
  auto loaded = ReadTrace("/nonexistent/path/to/trace.slbt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(TraceRoundTripTest, CorruptMagicDetected) {
  const std::string path = TempPath("corrupt.slbt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTATRACEFILE_PADDING_PADDING", f);
  std::fclose(f);
  auto loaded = ReadTrace(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST_F(TraceRoundTripTest, RecordThenReplayMatchesGenerator) {
  auto opt = BaseOptions();
  opt.num_messages = 5000;
  SyntheticStreamGenerator gen(opt);
  Trace trace = RecordTrace(&gen);
  EXPECT_EQ(trace.keys.size(), 5000u);

  auto replay = MakeTraceGenerator("replay", std::move(trace));
  gen.Reset();
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(replay->NextKey(), gen.NextKey()) << "position " << i;
  }
}

}  // namespace
}  // namespace slb
