#include "slb/workload/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "slb/common/rng.h"
#include "slb/core/partitioner.h"

namespace slb {
namespace {

TEST(HarmonicTest, KnownValues) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(0.0, 10), 10.0);
  EXPECT_NEAR(GeneralizedHarmonic(1.0, 4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(2.0, 2), 1.25, 1e-12);
}

TEST(ZipfTopProbabilityTest, MatchesHarmonic) {
  EXPECT_NEAR(ZipfTopProbability(2.0, 2), 1.0 / 1.25, 1e-12);
  // z = 2, large K: p1 -> 1/zeta(2) = 6/pi^2 ~= 0.6079.
  EXPECT_NEAR(ZipfTopProbability(2.0, 1000000), 6.0 / (M_PI * M_PI), 1e-4);
}

TEST(CalibrateZipfTest, RecoversExponent) {
  for (double z : {0.5, 0.9, 1.1, 1.5, 2.0}) {
    const uint64_t keys = 10000;
    const double p1 = ZipfTopProbability(z, keys);
    EXPECT_NEAR(CalibrateZipfExponent(keys, p1), z, 1e-6) << "z=" << z;
  }
}

TEST(CalibrateZipfTest, PaperDatasetTargets) {
  // The Table I calibration points must be reachable.
  const double z_wp = CalibrateZipfExponent(290000, 0.0932);
  EXPECT_NEAR(ZipfTopProbability(z_wp, 290000), 0.0932, 1e-6);
  const double z_ct = CalibrateZipfExponent(2900, 0.0329);
  EXPECT_NEAR(ZipfTopProbability(z_ct, 2900), 0.0329, 1e-6);
}

TEST(ZipfDistributionTest, ProbabilitiesSumToOne) {
  for (double z : {0.0, 0.5, 1.0, 2.0}) {
    ZipfDistribution zipf(z, 1000);
    double sum = 0;
    for (uint64_t r = 0; r < 1000; ++r) sum += zipf.Probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "z=" << z;
  }
}

TEST(ZipfDistributionTest, ProbabilitiesDecreaseWithRank) {
  ZipfDistribution zipf(1.2, 500);
  for (uint64_t r = 1; r < 500; ++r) {
    EXPECT_LE(zipf.Probability(r), zipf.Probability(r - 1));
  }
  EXPECT_EQ(zipf.Probability(500), 0.0) << "out of support";
}

TEST(ZipfDistributionTest, TopProbabilitiesPrefix) {
  ZipfDistribution zipf(1.0, 100);
  const auto top = zipf.TopProbabilities(5);
  ASSERT_EQ(top.size(), 5u);
  for (uint64_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(top[r], zipf.Probability(r));
  }
  EXPECT_EQ(zipf.TopProbabilities(1000).size(), 100u) << "clamped to |K|";
}

TEST(ZipfDistributionTest, CountAboveThresholdMatchesLinearScan) {
  ZipfDistribution zipf(1.3, 2000);
  for (double threshold : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    uint64_t expected = 0;
    for (uint64_t r = 0; r < 2000; ++r) {
      if (zipf.Probability(r) >= threshold) ++expected;
    }
    EXPECT_EQ(zipf.CountAboveThreshold(threshold), expected)
        << "threshold=" << threshold;
  }
  EXPECT_EQ(zipf.CountAboveThreshold(0.0), 2000u);
  EXPECT_EQ(zipf.CountAboveThreshold(1.1), 0u);
}

void CheckEmpiricalMatch(const ZipfDistribution& zipf, uint64_t seed) {
  Rng rng(seed);
  const int samples = 200000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < samples; ++i) ++counts[zipf.Sample(&rng)];
  // The top ranks must match their expected frequencies within 5 sigma.
  for (uint64_t r = 0; r < 10; ++r) {
    const double p = zipf.Probability(r);
    if (p * samples < 50) break;
    const double expected = p * samples;
    const double sigma = std::sqrt(expected * (1 - p));
    EXPECT_NEAR(counts[r], expected, 5 * sigma) << "rank " << r;
  }
}

TEST(ZipfSamplingTest, AliasTableMatchesPmf) {
  ZipfDistribution zipf(1.5, 10000, ZipfDistribution::Method::kAliasTable);
  ASSERT_TRUE(zipf.uses_alias_table());
  CheckEmpiricalMatch(zipf, 101);
}

TEST(ZipfSamplingTest, RejectionInversionMatchesPmf) {
  ZipfDistribution zipf(1.5, 10000,
                        ZipfDistribution::Method::kRejectionInversion);
  ASSERT_FALSE(zipf.uses_alias_table());
  CheckEmpiricalMatch(zipf, 102);
}

TEST(ZipfSamplingTest, BackendsAgreeAcrossExponents) {
  // The two samplers implement the same distribution: compare empirical
  // frequencies of the hot ranks.
  for (double z : {0.4, 1.0, 1.6}) {
    ZipfDistribution alias(z, 5000, ZipfDistribution::Method::kAliasTable);
    ZipfDistribution ri(z, 5000, ZipfDistribution::Method::kRejectionInversion);
    Rng rng_a(7);
    Rng rng_b(8);
    const int samples = 100000;
    std::vector<int> ca(16, 0);
    std::vector<int> cb(16, 0);
    for (int i = 0; i < samples; ++i) {
      const uint64_t a = alias.Sample(&rng_a);
      const uint64_t b = ri.Sample(&rng_b);
      if (a < 16) ++ca[a];
      if (b < 16) ++cb[b];
    }
    for (int r = 0; r < 16; ++r) {
      const double pa = static_cast<double>(ca[r]) / samples;
      const double pb = static_cast<double>(cb[r]) / samples;
      EXPECT_NEAR(pa, pb, 0.01) << "z=" << z << " rank=" << r;
    }
  }
}

TEST(ZipfSamplingTest, RejectionInversionStaysInSupport) {
  ZipfDistribution zipf(2.0, 7, ZipfDistribution::Method::kRejectionInversion);
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 7u);
  }
}

TEST(ZipfSamplingTest, ZeroExponentIsUniform) {
  ZipfDistribution zipf(0.0, 100);
  Rng rng(2);
  std::vector<int> counts(100, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[zipf.Sample(&rng)];
  for (int r = 0; r < 100; ++r) {
    EXPECT_NEAR(counts[r], samples / 100.0, 5 * std::sqrt(samples / 100.0));
  }
}

TEST(ZipfSamplingTest, SingleKeySupport) {
  ZipfDistribution zipf(1.4, 1);
  Rng rng(5);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Probability(0), 1.0);
}

TEST(ZipfSamplingTest, AutoSelectsAliasForSmallKeySpaces) {
  ZipfDistribution small(1.0, 1000);
  EXPECT_TRUE(small.uses_alias_table());
}

// Determinism pins: identical seeds must reproduce identical key streams
// across runs — every figure bench and simulator result relies on this.
// The golden streams go through libm (pow/log in the samplers), so they pin
// glibc-class platforms (the ones CI covers); a last-ulp libm difference
// elsewhere can shift a rank near a bucket boundary. The libm-free
// two-instance and routing tests below must hold everywhere.
TEST(ZipfDeterminismTest, AliasTableGoldenStreamForSeed7) {
  const uint64_t expected[] = {5, 15, 75, 60, 403, 2, 36, 1, 0, 156, 0, 4};
  ZipfDistribution zipf(1.1, 1000, ZipfDistribution::Method::kAliasTable);
  Rng rng(7);
  for (uint64_t rank : expected) EXPECT_EQ(zipf.Sample(&rng), rank);
}

TEST(ZipfDeterminismTest, RejectionInversionGoldenStreamForSeed7) {
  const uint64_t expected[] = {2, 66, 0, 0, 0, 0, 518, 331, 23, 208, 8, 2};
  ZipfDistribution zipf(1.1, 1000,
                        ZipfDistribution::Method::kRejectionInversion);
  Rng rng(7);
  for (uint64_t rank : expected) EXPECT_EQ(zipf.Sample(&rng), rank);
}

TEST(ZipfDeterminismTest, SameSeedReproducesIdenticalStreams) {
  for (auto method : {ZipfDistribution::Method::kAliasTable,
                      ZipfDistribution::Method::kRejectionInversion}) {
    ZipfDistribution zipf(1.4, 100000, method);
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(zipf.Sample(&a), zipf.Sample(&b)) << "sample " << i;
    }
  }
}

// End-to-end determinism: the same seed pair (stream seed, hash seed) must
// yield bit-identical routing decisions from every algorithm.
TEST(ZipfDeterminismTest, RoutingDecisionsReproduceAcrossRuns) {
  for (AlgorithmKind kind : kAllAlgorithmKinds) {
    SCOPED_TRACE(AlgorithmKindName(kind));
    PartitionerOptions options;
    options.num_workers = 16;
    options.hash_seed = 11;

    std::vector<uint32_t> routes[2];
    for (auto& run : routes) {
      auto partitioner = CreatePartitioner(kind, options);
      ASSERT_TRUE(partitioner.ok()) << partitioner.status().ToString();
      ZipfDistribution zipf(1.3, 50000);
      Rng rng(2718);
      run.reserve(20000);
      for (int i = 0; i < 20000; ++i) {
        run.push_back((*partitioner)->Route(zipf.Sample(&rng)));
      }
    }
    EXPECT_EQ(routes[0], routes[1]);
  }
}

}  // namespace
}  // namespace slb
