#include "slb/core/consistent_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "slb/common/rng.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

PartitionerOptions Opts(uint32_t n) {
  PartitionerOptions opt;
  opt.num_workers = n;
  opt.hash_seed = 5;
  return opt;
}

TEST(ConsistentHashRingTest, OwnerStableAndInRange) {
  ConsistentHashRing ring(10, 64, 3);
  for (uint64_t key = 0; key < 1000; ++key) {
    const uint32_t owner = ring.Owner(key);
    ASSERT_LT(owner, 10u);
    EXPECT_EQ(ring.Owner(key), owner) << "ownership must be deterministic";
  }
  EXPECT_EQ(ring.ring_size(), 10u * 64);
}

TEST(ConsistentHashRingTest, RoughlyUniformWithEnoughVirtualNodes) {
  ConsistentHashRing ring(10, 256, 7);
  std::vector<int> counts(10, 0);
  for (uint64_t key = 0; key < 100000; ++key) ++counts[ring.Owner(key)];
  for (int c : counts) {
    EXPECT_GT(c, 5000);   // within ~2x of the 10000 ideal
    EXPECT_LT(c, 20000);
  }
}

TEST(ConsistentHashRingTest, AddingWorkerMovesFewKeys) {
  ConsistentHashRing ring(10, 128, 11);
  std::map<uint64_t, uint32_t> before;
  for (uint64_t key = 0; key < 20000; ++key) before[key] = ring.Owner(key);
  ring.AddWorker();
  int moved = 0;
  int moved_elsewhere = 0;
  for (uint64_t key = 0; key < 20000; ++key) {
    const uint32_t now = ring.Owner(key);
    if (now != before[key]) {
      ++moved;
      if (now != 10) ++moved_elsewhere;  // must only move TO the new worker
    }
  }
  // Expected movement ~ 1/11 of keys; allow a 2x band.
  EXPECT_LT(moved, 20000 / 5);
  EXPECT_GT(moved, 20000 / 25);
  EXPECT_EQ(moved_elsewhere, 0);
}

TEST(ConsistentHashRingTest, RemovingWorkerOnlyMovesItsKeys) {
  ConsistentHashRing ring(8, 128, 13);
  std::map<uint64_t, uint32_t> before;
  for (uint64_t key = 0; key < 20000; ++key) before[key] = ring.Owner(key);
  // Remove the last worker so no id relabeling confuses the comparison.
  ring.RemoveWorker(7);
  for (uint64_t key = 0; key < 20000; ++key) {
    if (before[key] != 7) {
      EXPECT_EQ(ring.Owner(key), before[key]) << "key " << key;
    } else {
      EXPECT_LT(ring.Owner(key), 7u);
    }
  }
}

TEST(ConsistentHashGroupingTest, BehavesLikeKeyGroupingForBalance) {
  // One owner per key: skew lands on a single worker in full, like KG.
  ConsistentHashGrouping ch(Opts(20));
  ZipfDistribution zipf(1.8, 5000);
  Rng rng(3);
  std::vector<uint64_t> counts(20, 0);
  const int m = 50000;
  for (int i = 0; i < m; ++i) ++counts[ch.Route(zipf.Sample(&rng))];
  uint64_t max_c = 0;
  for (uint64_t c : counts) max_c = std::max(max_c, c);
  const double imbalance = static_cast<double>(max_c) / m - 1.0 / 20;
  EXPECT_GT(imbalance, 0.2) << "hot key pinned to one worker";
  EXPECT_EQ(ch.messages_routed(), static_cast<uint64_t>(m));
  EXPECT_EQ(ch.name(), "CH");
}

TEST(ConsistentHashGroupingTest, SameSeedSameMapping) {
  ConsistentHashGrouping a(Opts(16));
  ConsistentHashGrouping b(Opts(16));
  for (uint64_t key = 0; key < 2000; ++key) {
    ASSERT_EQ(a.Route(key), b.Route(key));
  }
}

}  // namespace
}  // namespace slb
