#include "slb/core/consistent_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "slb/common/rng.h"
#include "slb/hash/hash.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

PartitionerOptions Opts(uint32_t n) {
  PartitionerOptions opt;
  opt.num_workers = n;
  opt.hash_seed = 5;
  return opt;
}

/// Brute-force ownership oracle: linear scan over the exported ring points
/// for the first position >= hash(key), wrapping. Independent of the ring's
/// binary search, so it catches sort-order corruption.
uint32_t OracleOwner(const ConsistentHashRing& ring, uint64_t key,
                     uint64_t seed) {
  const uint64_t h = Murmur3Fmix64(key ^ seed);
  const auto points = ring.Points();
  const std::pair<uint64_t, uint32_t>* best = nullptr;
  for (const auto& point : points) {
    if (point.first >= h && (best == nullptr || point.first < best->first)) {
      best = &point;
    }
  }
  if (best == nullptr) {  // wrap to the smallest position
    for (const auto& point : points) {
      if (best == nullptr || point.first < best->first) best = &point;
    }
  }
  return best->second;
}

/// Asserts the ring invariants the churn bug used to break: exactly
/// n * vnodes points, strictly increasing positions (no duplicates — pre-fix,
/// an add after a remove re-hashed the recycled dense id and reproduced the
/// removed worker's exact positions), and agreement with the oracle.
void ExpectRingHealthy(const ConsistentHashRing& ring, uint32_t virtual_nodes,
                       uint64_t seed) {
  ASSERT_EQ(ring.ring_size(),
            static_cast<size_t>(ring.num_workers()) * virtual_nodes);
  const auto points = ring.Points();
  for (size_t i = 1; i < points.size(); ++i) {
    ASSERT_LT(points[i - 1].first, points[i].first)
        << "duplicate or out-of-order ring position at index " << i;
  }
  for (uint64_t key = 0; key < 200; ++key) {
    ASSERT_EQ(ring.Owner(key), OracleOwner(ring, key, seed)) << "key " << key;
  }
}

TEST(ConsistentHashChurnTest, RandomizedChurnAgainstOracle) {
  // The churn-corruption regression: random add/remove sequences must keep
  // every ring invariant intact at every step. Before the generation-token
  // fix this failed as soon as an AddWorker followed a RemoveWorker: the
  // recycled dense id re-hashed to the removed worker's positions, leaving
  // duplicate points whose ownership depended on the sort tie-break.
  const uint64_t seed = 17;
  ConsistentHashRing ring(4, 16, seed);
  Rng rng(99);
  for (int step = 0; step < 60; ++step) {
    if (ring.num_workers() <= 2 ||
        (ring.num_workers() < 12 && rng.NextBounded(2) == 0)) {
      ring.AddWorker();
    } else {
      ring.RemoveWorker(rng.NextBounded(ring.num_workers()));
    }
    ExpectRingHealthy(ring, 16, seed);
  }
}

TEST(ConsistentHashChurnTest, AddAfterRemoveDoesNotReuseOldPositions) {
  const uint64_t seed = 23;
  ConsistentHashRing ring(6, 32, seed);
  // Record the removed worker's positions, then churn the id back in.
  std::set<uint64_t> removed_positions;
  for (const auto& point : ring.Points()) {
    if (point.second == 3) removed_positions.insert(point.first);
  }
  ASSERT_EQ(removed_positions.size(), 32u);
  ring.RemoveWorker(3);
  ring.AddWorker();  // new worker takes dense id 5 — but a fresh generation
  for (const auto& point : ring.Points()) {
    EXPECT_EQ(removed_positions.count(point.first), 0u)
        << "recycled position " << point.first << " on worker " << point.second;
  }
  ExpectRingHealthy(ring, 32, seed);
}

TEST(ConsistentHashChurnTest, BulkConstructionMatchesIncremental) {
  // The bulk ctor (append all, sort once) must be observationally identical
  // to growing a 1-worker ring incrementally: generations are handed out in
  // the same order either way.
  const uint64_t seed = 31;
  ConsistentHashRing bulk(9, 64, seed);
  ConsistentHashRing grown(1, 64, seed);
  while (grown.num_workers() < 9) grown.AddWorker();
  ASSERT_EQ(bulk.ring_size(), grown.ring_size());
  EXPECT_EQ(bulk.Points(), grown.Points());
  for (uint64_t key = 0; key < 5000; ++key) {
    ASSERT_EQ(bulk.Owner(key), grown.Owner(key)) << "key " << key;
  }
}

TEST(ConsistentHashChurnTest, MinimalMovementAfterChurn) {
  // The minimal-movement property must survive churn, not just hold on a
  // fresh ring: after an add/remove history, one more AddWorker still moves
  // only ~1/(n+1) of the keys (2x band at 128 vnodes).
  const uint64_t seed = 41;
  ConsistentHashRing ring(10, 128, seed);
  ring.RemoveWorker(4);
  ring.AddWorker();
  ring.RemoveWorker(0);
  ring.AddWorker();  // back to 10 workers, with a churn history
  const int kKeys = 20000;
  std::vector<uint32_t> before(kKeys);
  for (int key = 0; key < kKeys; ++key) before[key] = ring.Owner(key);
  ring.AddWorker();
  int moved = 0;
  for (int key = 0; key < kKeys; ++key) {
    const uint32_t now = ring.Owner(key);
    if (now != before[key]) {
      ++moved;
      EXPECT_EQ(now, 10u) << "keys may only move TO the new worker";
    }
  }
  EXPECT_GT(moved, kKeys / 22);  // ~1/11 expected, 2x band
  EXPECT_LT(moved, kKeys * 2 / 11);
}

TEST(ConsistentHashChurnTest, OwnerDeterministicAcrossChurnHistories) {
  // Replaying the same churn history must reproduce the exact ownership map
  // (the simulator's byte-stability guarantee rests on this), for several
  // seeds.
  for (uint64_t seed : {3u, 59u, 1234u}) {
    ConsistentHashRing a(5, 64, seed);
    ConsistentHashRing b(5, 64, seed);
    const auto churn = [](ConsistentHashRing* ring) {
      ring->AddWorker();
      ring->RemoveWorker(2);
      ring->AddWorker();
      ring->AddWorker();
      ring->RemoveWorker(ring->num_workers() - 1);
      ring->RemoveWorker(0);
    };
    churn(&a);
    churn(&b);
    EXPECT_EQ(a.Points(), b.Points());
    for (uint64_t key = 0; key < 3000; ++key) {
      ASSERT_EQ(a.Owner(key), b.Owner(key)) << "seed " << seed;
    }
  }
}

TEST(ConsistentHashGroupingTest, RescaleMovesMinimalKeysAndRoutesInRange) {
  ConsistentHashGrouping ch(Opts(16));
  EXPECT_TRUE(ch.SupportsRescale());
  std::vector<uint32_t> before(10000);
  for (uint64_t key = 0; key < before.size(); ++key) {
    before[key] = ch.Route(key);
  }
  ASSERT_TRUE(ch.Rescale(20).ok());
  EXPECT_EQ(ch.num_workers(), 20u);
  int moved = 0;
  for (uint64_t key = 0; key < before.size(); ++key) {
    const uint32_t now = ch.Route(key);
    ASSERT_LT(now, 20u);
    if (now != before[key]) ++moved;
  }
  // 4 added workers own ~4/20 of the key space; 2x band.
  EXPECT_LT(moved, 10000 * 2 * 4 / 20);
  EXPECT_GT(moved, 10000 * 4 / (2 * 20));

  ASSERT_TRUE(ch.Rescale(16).ok());  // back down: highest ids removed
  int restored = 0;
  for (uint64_t key = 0; key < before.size(); ++key) {
    if (ch.Route(key) == before[key]) ++restored;
  }
  // Scale-in removes the ADDED workers (highest ids first), so the original
  // mapping comes back exactly.
  EXPECT_EQ(restored, 10000);
  EXPECT_FALSE(ch.Rescale(0).ok());
}

TEST(ConsistentHashRingTest, OwnerStableAndInRange) {
  ConsistentHashRing ring(10, 64, 3);
  for (uint64_t key = 0; key < 1000; ++key) {
    const uint32_t owner = ring.Owner(key);
    ASSERT_LT(owner, 10u);
    EXPECT_EQ(ring.Owner(key), owner) << "ownership must be deterministic";
  }
  EXPECT_EQ(ring.ring_size(), 10u * 64);
}

TEST(ConsistentHashRingTest, RoughlyUniformWithEnoughVirtualNodes) {
  ConsistentHashRing ring(10, 256, 7);
  std::vector<int> counts(10, 0);
  for (uint64_t key = 0; key < 100000; ++key) ++counts[ring.Owner(key)];
  for (int c : counts) {
    EXPECT_GT(c, 5000);   // within ~2x of the 10000 ideal
    EXPECT_LT(c, 20000);
  }
}

TEST(ConsistentHashRingTest, AddingWorkerMovesFewKeys) {
  ConsistentHashRing ring(10, 128, 11);
  std::map<uint64_t, uint32_t> before;
  for (uint64_t key = 0; key < 20000; ++key) before[key] = ring.Owner(key);
  ring.AddWorker();
  int moved = 0;
  int moved_elsewhere = 0;
  for (uint64_t key = 0; key < 20000; ++key) {
    const uint32_t now = ring.Owner(key);
    if (now != before[key]) {
      ++moved;
      if (now != 10) ++moved_elsewhere;  // must only move TO the new worker
    }
  }
  // Expected movement ~ 1/11 of keys; allow a 2x band.
  EXPECT_LT(moved, 20000 / 5);
  EXPECT_GT(moved, 20000 / 25);
  EXPECT_EQ(moved_elsewhere, 0);
}

TEST(ConsistentHashRingTest, RemovingWorkerOnlyMovesItsKeys) {
  ConsistentHashRing ring(8, 128, 13);
  std::map<uint64_t, uint32_t> before;
  for (uint64_t key = 0; key < 20000; ++key) before[key] = ring.Owner(key);
  // Remove the last worker so no id relabeling confuses the comparison.
  ring.RemoveWorker(7);
  for (uint64_t key = 0; key < 20000; ++key) {
    if (before[key] != 7) {
      EXPECT_EQ(ring.Owner(key), before[key]) << "key " << key;
    } else {
      EXPECT_LT(ring.Owner(key), 7u);
    }
  }
}

TEST(ConsistentHashGroupingTest, BehavesLikeKeyGroupingForBalance) {
  // One owner per key: skew lands on a single worker in full, like KG.
  ConsistentHashGrouping ch(Opts(20));
  ZipfDistribution zipf(1.8, 5000);
  Rng rng(3);
  std::vector<uint64_t> counts(20, 0);
  const int m = 50000;
  for (int i = 0; i < m; ++i) ++counts[ch.Route(zipf.Sample(&rng))];
  uint64_t max_c = 0;
  for (uint64_t c : counts) max_c = std::max(max_c, c);
  const double imbalance = static_cast<double>(max_c) / m - 1.0 / 20;
  EXPECT_GT(imbalance, 0.2) << "hot key pinned to one worker";
  EXPECT_EQ(ch.messages_routed(), static_cast<uint64_t>(m));
  EXPECT_EQ(ch.name(), "CH");
}

TEST(ConsistentHashGroupingTest, SameSeedSameMapping) {
  ConsistentHashGrouping a(Opts(16));
  ConsistentHashGrouping b(Opts(16));
  for (uint64_t key = 0; key < 2000; ++key) {
    ASSERT_EQ(a.Route(key), b.Route(key));
  }
}

}  // namespace
}  // namespace slb
