#include "slb/core/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "slb/common/rng.h"
#include "slb/core/basic_groupings.h"
#include "slb/core/d_choices.h"
#include "slb/core/head_tail_partitioner.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

PartitionerOptions Opts(uint32_t n) {
  PartitionerOptions opt;
  opt.num_workers = n;
  opt.hash_seed = 42;
  return opt;
}

std::unique_ptr<StreamPartitioner> Make(AlgorithmKind kind, uint32_t n) {
  auto result = CreatePartitioner(kind, Opts(n));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result.value());
}

TEST(ParseAlgorithmKindTest, AcceptsPaperNames) {
  EXPECT_EQ(ParseAlgorithmKind("kg").value(), AlgorithmKind::kKeyGrouping);
  EXPECT_EQ(ParseAlgorithmKind("SG").value(), AlgorithmKind::kShuffleGrouping);
  EXPECT_EQ(ParseAlgorithmKind("pkg").value(), AlgorithmKind::kPkg);
  EXPECT_EQ(ParseAlgorithmKind("D-C").value(), AlgorithmKind::kDChoices);
  EXPECT_EQ(ParseAlgorithmKind("w-choices").value(), AlgorithmKind::kWChoices);
  EXPECT_EQ(ParseAlgorithmKind("rr").value(), AlgorithmKind::kRoundRobinHead);
  EXPECT_FALSE(ParseAlgorithmKind("quantum").ok());
}

TEST(AlgorithmKindNameTest, RoundTripsThroughParse) {
  for (AlgorithmKind kind :
       {AlgorithmKind::kKeyGrouping, AlgorithmKind::kShuffleGrouping,
        AlgorithmKind::kPkg, AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
        AlgorithmKind::kRoundRobinHead}) {
    EXPECT_EQ(ParseAlgorithmKind(AlgorithmKindName(kind)).value(), kind);
  }
}

TEST(FactoryTest, RejectsBadOptions) {
  PartitionerOptions opt;
  opt.num_workers = 0;
  EXPECT_FALSE(CreatePartitioner(AlgorithmKind::kPkg, opt).ok());
  opt.num_workers = 5;
  opt.theta_ratio = 0.0;
  EXPECT_FALSE(CreatePartitioner(AlgorithmKind::kDChoices, opt).ok());
}

TEST(KeyGroupingTest, DeterministicSingleWorkerPerKey) {
  auto kg = Make(AlgorithmKind::kKeyGrouping, 20);
  for (uint64_t key = 0; key < 200; ++key) {
    const uint32_t first = kg->Route(key);
    ASSERT_LT(first, 20u);
    for (int rep = 0; rep < 5; ++rep) {
      ASSERT_EQ(kg->Route(key), first) << "KG must pin a key to one worker";
    }
  }
  EXPECT_EQ(kg->messages_routed(), 200u * 6);
}

TEST(KeyGroupingTest, SameSeedMeansSameMappingAcrossSenders) {
  auto a = Make(AlgorithmKind::kKeyGrouping, 50);
  auto b = Make(AlgorithmKind::kKeyGrouping, 50);
  for (uint64_t key = 0; key < 500; ++key) {
    ASSERT_EQ(a->Route(key), b->Route(key));
  }
}

TEST(ShuffleGroupingTest, ExactRoundRobin) {
  auto sg = Make(AlgorithmKind::kShuffleGrouping, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sg->Route(/*key=*/999), static_cast<uint32_t>(i % 7));
  }
}

TEST(ShuffleGroupingTest, PerfectBalanceRegardlessOfKeys) {
  auto sg = Make(AlgorithmKind::kShuffleGrouping, 10);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 1000; ++i) ++counts[sg->Route(42)];
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(PkgTest, EachKeyUsesAtMostTwoWorkers) {
  auto pkg = Make(AlgorithmKind::kPkg, 50);
  Rng rng(1);
  ZipfDistribution zipf(1.2, 300);
  std::map<uint64_t, std::set<uint32_t>> workers_per_key;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    workers_per_key[key].insert(pkg->Route(key));
  }
  for (const auto& [key, workers] : workers_per_key) {
    EXPECT_LE(workers.size(), 2u) << "key " << key;
  }
}

TEST(PkgTest, PicksTheLessLoadedCandidate) {
  // Construct a two-worker scenario: all load on one worker means the other
  // candidate must be chosen next.
  PartitionerOptions opt = Opts(2);
  GreedyD pkg(opt, 2, "PKG");
  // Route a burst of one key, then check its counter-key balances.
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 1000; ++i) ++counts[pkg.Route(7)];
  // With both candidates (possibly equal), the two workers split evenly,
  // or everything lands on the single candidate worker.
  if (counts[0] > 0 && counts[1] > 0) {
    EXPECT_NEAR(counts[0], counts[1], 1);
  }
}

TEST(GreedyDTest, RespectsChoiceBudget) {
  PartitionerOptions opt = Opts(50);
  for (uint32_t d : {1u, 2u, 3u, 5u, 10u}) {
    GreedyD greedy(opt, d, "Greedy-D");
    std::map<uint64_t, std::set<uint32_t>> workers_per_key;
    Rng rng(d);
    for (int i = 0; i < 20000; ++i) {
      const uint64_t key = rng.NextBounded(100);
      workers_per_key[key].insert(greedy.Route(key));
    }
    for (const auto& [key, workers] : workers_per_key) {
      EXPECT_LE(workers.size(), d) << "key " << key << " d=" << d;
    }
  }
}

TEST(GreedyDTest, ClampsDToWorkerCount) {
  PartitionerOptions opt = Opts(3);
  GreedyD greedy(opt, 100, "Greedy-D");
  EXPECT_EQ(greedy.head_choices(), 3u);
  for (int i = 0; i < 100; ++i) ASSERT_LT(greedy.Route(i), 3u);
}

TEST(GreedyDTest, MoreChoicesNeverWorseBalanceOnSkew) {
  // The power-of-d ablation: imbalance with d=4 must not exceed d=2 by any
  // meaningful margin on a skewed stream.
  auto imbalance_with_d = [](uint32_t d) {
    PartitionerOptions opt = Opts(20);
    GreedyD greedy(opt, d, "Greedy-D");
    ZipfDistribution zipf(1.0, 5000);
    Rng rng(17);
    std::vector<uint64_t> counts(20, 0);
    const int m = 100000;
    for (int i = 0; i < m; ++i) ++counts[greedy.Route(zipf.Sample(&rng))];
    const uint64_t max_c = *std::max_element(counts.begin(), counts.end());
    return static_cast<double>(max_c) / m - 1.0 / 20;
  };
  EXPECT_LE(imbalance_with_d(4), imbalance_with_d(2) + 1e-4);
}

TEST(HeadTailTest, TailKeysUseAtMostTwoWorkers) {
  PartitionerOptions opt = Opts(50);
  DChoices dc(opt);
  ZipfDistribution zipf(1.6, 10000);
  Rng rng(5);
  std::map<uint64_t, std::set<uint32_t>> workers_per_key;
  std::map<uint64_t, bool> ever_head;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    const uint32_t w = dc.Route(key);
    workers_per_key[key].insert(w);
    ever_head[key] = ever_head[key] || dc.last_was_head();
  }
  for (const auto& [key, workers] : workers_per_key) {
    if (!ever_head[key]) {
      EXPECT_LE(workers.size(), 2u) << "tail key " << key;
    }
  }
}

TEST(HeadTailTest, HotKeyIsFlaggedAsHead) {
  PartitionerOptions opt = Opts(20);
  WChoices wc(opt);
  Rng rng(9);
  bool hot_flagged = false;
  for (int i = 0; i < 50000; ++i) {
    // 50% hot key 0, rest uniform tail.
    const uint64_t key = rng.NextBool(0.5) ? 0 : 1 + rng.NextBounded(5000);
    wc.Route(key);
    if (key == 0 && i > 10000) hot_flagged = wc.last_was_head();
  }
  EXPECT_TRUE(hot_flagged) << "a 50% key must be detected as head";
}

TEST(HeadTailTest, UniformStreamHasNoHead) {
  PartitionerOptions opt = Opts(10);
  WChoices wc(opt);
  Rng rng(2);
  uint64_t head_msgs = 0;
  const int m = 50000;
  for (int i = 0; i < m; ++i) {
    wc.Route(rng.NextBounded(5000));
    if (wc.last_was_head()) ++head_msgs;
  }
  // theta = 1/(5*10) = 2% of the stream; uniform keys sit at 0.02%.
  EXPECT_LT(static_cast<double>(head_msgs) / m, 0.02);
}

TEST(DChoicesTest, HeadChoicesWithinRangeAndSkewSensitive) {
  auto run = [](double z) {
    PartitionerOptions opt = Opts(50);
    DChoices dc(opt);
    ZipfDistribution zipf(z, 10000);
    Rng rng(3);
    for (int i = 0; i < 200000; ++i) dc.Route(zipf.Sample(&rng));
    return dc.head_choices();
  };
  const uint32_t d_low = run(0.5);
  const uint32_t d_high = run(1.8);
  EXPECT_GE(d_low, 2u);
  EXPECT_LE(d_high, 50u);
  EXPECT_GT(d_high, d_low) << "heavier skew must demand more choices";
}

TEST(DChoicesTest, ReoptimizesPeriodically) {
  PartitionerOptions opt = Opts(20);
  opt.reoptimize_interval = 100;
  DChoices dc(opt);
  Rng rng(4);
  ZipfDistribution zipf(1.5, 1000);
  for (int i = 0; i < 5000; ++i) dc.Route(zipf.Sample(&rng));
  EXPECT_GE(dc.reoptimize_count(), 40u);
}

TEST(WChoicesTest, HeadChoicesEqualsN) {
  PartitionerOptions opt = Opts(37);
  WChoices wc(opt);
  EXPECT_EQ(wc.head_choices(), 37u);
}

TEST(RoundRobinHeadTest, HeadMessagesCycleThroughAllWorkers) {
  PartitionerOptions opt = Opts(10);
  RoundRobinHead rr(opt);
  Rng rng(6);
  // Key 0 takes ~60% of a very skewed stream; once in the head, its
  // placements must cycle over all 10 workers.
  std::set<uint32_t> head_workers;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key = rng.NextBool(0.6) ? 0 : 1 + rng.NextBounded(3000);
    const uint32_t w = rr.Route(key);
    if (rr.last_was_head()) head_workers.insert(w);
  }
  EXPECT_EQ(head_workers.size(), 10u);
}

TEST(FixedDChoicesTest, HeadUsesAtMostDWorkers) {
  PartitionerOptions opt = Opts(50);
  opt.fixed_d = 4;
  FixedDChoices fd(opt);
  EXPECT_EQ(fd.head_choices(), 4u);
  Rng rng(8);
  std::set<uint32_t> head_workers_key0;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t key = rng.NextBool(0.5) ? 0 : 1 + rng.NextBounded(5000);
    const uint32_t w = fd.Route(key);
    if (key == 0 && fd.last_was_head()) head_workers_key0.insert(w);
  }
  EXPECT_LE(head_workers_key0.size(), 4u);
  EXPECT_GE(head_workers_key0.size(), 2u);
}

TEST(PartitionerTest, AllWorkersInRangeForAllAlgorithms) {
  for (AlgorithmKind kind :
       {AlgorithmKind::kKeyGrouping, AlgorithmKind::kShuffleGrouping,
        AlgorithmKind::kPkg, AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
        AlgorithmKind::kRoundRobinHead, AlgorithmKind::kFixedDChoices,
        AlgorithmKind::kGreedyD}) {
    auto part = Make(kind, 13);
    Rng rng(1);
    ZipfDistribution zipf(1.4, 500);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_LT(part->Route(zipf.Sample(&rng)), 13u) << AlgorithmKindName(kind);
    }
    EXPECT_EQ(part->messages_routed(), 5000u) << AlgorithmKindName(kind);
  }
}

TEST(PartitionerTest, SingleWorkerAlwaysRoutesToZero) {
  for (AlgorithmKind kind :
       {AlgorithmKind::kKeyGrouping, AlgorithmKind::kShuffleGrouping,
        AlgorithmKind::kPkg, AlgorithmKind::kDChoices, AlgorithmKind::kWChoices,
        AlgorithmKind::kRoundRobinHead}) {
    auto part = Make(kind, 1);
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(part->Route(i), 0u) << AlgorithmKindName(kind);
    }
  }
}

TEST(PartitionerTest, NamesMatchTableTwo) {
  EXPECT_EQ(Make(AlgorithmKind::kKeyGrouping, 4)->name(), "KG");
  EXPECT_EQ(Make(AlgorithmKind::kShuffleGrouping, 4)->name(), "SG");
  EXPECT_EQ(Make(AlgorithmKind::kPkg, 4)->name(), "PKG");
  EXPECT_EQ(Make(AlgorithmKind::kDChoices, 4)->name(), "D-C");
  EXPECT_EQ(Make(AlgorithmKind::kWChoices, 4)->name(), "W-C");
  EXPECT_EQ(Make(AlgorithmKind::kRoundRobinHead, 4)->name(), "RR");
}

TEST(ParseAlgorithmKindTest, ConsistentHashRoundTrips) {
  EXPECT_EQ(ParseAlgorithmKind("ch").value(), AlgorithmKind::kConsistentHash);
  EXPECT_EQ(ParseAlgorithmKind("consistent-hash").value(),
            AlgorithmKind::kConsistentHash);
  EXPECT_EQ(AlgorithmKindName(AlgorithmKind::kConsistentHash), "CH");
  EXPECT_EQ(ParseAlgorithmKind(
                AlgorithmKindName(AlgorithmKind::kConsistentHash)).value(),
            AlgorithmKind::kConsistentHash);
  EXPECT_EQ(Make(AlgorithmKind::kConsistentHash, 4)->name(), "CH");
}

TEST(RescaleTest, EveryAlgorithmRescalesUpAndDownInRange) {
  // The simulator rescales whatever the factory hands it; every kind must
  // either rescale cleanly or declare !SupportsRescale() (none do today).
  for (AlgorithmKind kind : kAllAlgorithmKinds) {
    auto part = Make(kind, 10);
    ASSERT_TRUE(part->SupportsRescale()) << AlgorithmKindName(kind);
    Rng rng(11);
    ZipfDistribution zipf(1.4, 500);
    for (int i = 0; i < 2000; ++i) part->Route(zipf.Sample(&rng));

    ASSERT_TRUE(part->Rescale(14).ok()) << AlgorithmKindName(kind);
    EXPECT_EQ(part->num_workers(), 14u) << AlgorithmKindName(kind);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT(part->Route(zipf.Sample(&rng)), 14u) << AlgorithmKindName(kind);
    }

    ASSERT_TRUE(part->Rescale(6).ok()) << AlgorithmKindName(kind);
    EXPECT_EQ(part->num_workers(), 6u) << AlgorithmKindName(kind);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT(part->Route(zipf.Sample(&rng)), 6u) << AlgorithmKindName(kind);
    }

    EXPECT_FALSE(part->Rescale(0).ok()) << AlgorithmKindName(kind);
  }
}

TEST(RescaleTest, FixedDChoicesRegrowsTowardRequestedD) {
  // fixed_d = 8 clamped to 5 workers at construction must grow back to 8
  // when the worker set scales past it — the cached clamp cannot stick.
  PartitionerOptions opt = Opts(5);
  opt.fixed_d = 8;
  FixedDChoices fd(opt);
  EXPECT_EQ(fd.head_choices(), 5u);
  ASSERT_TRUE(fd.Rescale(20).ok());
  EXPECT_EQ(fd.head_choices(), 8u);
  ASSERT_TRUE(fd.Rescale(3).ok());
  EXPECT_EQ(fd.head_choices(), 3u);
}

TEST(RescaleTest, GreedyDReclampsRequestedD) {
  PartitionerOptions opt = Opts(3);
  GreedyD greedy(opt, 10, "Greedy-D");
  EXPECT_EQ(greedy.head_choices(), 3u);
  ASSERT_TRUE(greedy.Rescale(16).ok());
  EXPECT_EQ(greedy.head_choices(), 10u);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(greedy.Route(i), 16u);
}

TEST(RescaleTest, WChoicesHeadSpansNewWorkerSet) {
  PartitionerOptions opt = Opts(10);
  WChoices wc(opt);
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    wc.Route(rng.NextBool(0.5) ? 0 : 1 + rng.NextBounded(5000));
  }
  ASSERT_TRUE(wc.Rescale(15).ok());
  EXPECT_EQ(wc.head_choices(), 15u);
  // The hot key's head placements must reach the ADDED workers too.
  std::set<uint32_t> head_workers;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t key = rng.NextBool(0.5) ? 0 : 1 + rng.NextBounded(5000);
    const uint32_t w = wc.Route(key);
    if (key == 0 && wc.last_was_head()) head_workers.insert(w);
  }
  EXPECT_EQ(head_workers.size(), 15u);
}

TEST(SketchAblationTest, AllSketchKindsRouteCorrectly) {
  for (SketchKind sketch : {SketchKind::kSpaceSaving, SketchKind::kMisraGries,
                            SketchKind::kLossyCounting, SketchKind::kCountMin}) {
    PartitionerOptions opt = Opts(10);
    opt.sketch = sketch;
    auto dc = CreatePartitioner(AlgorithmKind::kDChoices, opt);
    ASSERT_TRUE(dc.ok());
    Rng rng(3);
    ZipfDistribution zipf(1.5, 1000);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_LT(dc.value()->Route(zipf.Sample(&rng)), 10u);
    }
  }
}

}  // namespace
}  // namespace slb
