#include "slb/hash/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "slb/hash/hash_family.h"

namespace slb {
namespace {

TEST(Fmix64Test, IsDeterministicAndBijectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t k = 0; k < 10000; ++k) outputs.insert(Murmur3Fmix64(k));
  EXPECT_EQ(outputs.size(), 10000u) << "fmix64 is a bijection; no collisions";
  EXPECT_EQ(Murmur3Fmix64(42), Murmur3Fmix64(42));
}

TEST(Fmix64Test, AvalancheFlipsAboutHalfTheBits) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  double total_flips = 0;
  int trials = 0;
  for (uint64_t k = 1; k < 500; ++k) {
    for (int bit = 0; bit < 64; bit += 7) {
      const uint64_t a = Murmur3Fmix64(k);
      const uint64_t b = Murmur3Fmix64(k ^ (1ULL << bit));
      total_flips += __builtin_popcountll(a ^ b);
      ++trials;
    }
  }
  const double avg = total_flips / trials;
  EXPECT_NEAR(avg, 32.0, 1.5);
}

TEST(Murmur3BufferTest, MatchesAcrossLengths) {
  // Every tail length 0..31 must be handled.
  std::string data(31, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i * 37 + 1);
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= data.size(); ++len) {
    hashes.insert(Murmur3_x64_64(data.data(), len, 0));
  }
  EXPECT_EQ(hashes.size(), 32u) << "prefix hashes must all differ";
}

TEST(Murmur3BufferTest, SeedChangesOutput) {
  const char* s = "hello world";
  EXPECT_NE(Murmur3_x64_64(s, 11, 1), Murmur3_x64_64(s, 11, 2));
  EXPECT_EQ(Murmur3_x64_64(s, 11, 1), Murmur3_x64_64(s, 11, 1));
}

TEST(XxHash64Test, CoversAllBlockPaths) {
  // >= 32 bytes exercises the vectorized loop; shorter inputs the tails.
  std::string data(100, 'x');
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  std::set<uint64_t> hashes;
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 31u, 32u, 33u, 64u, 100u}) {
    hashes.insert(XxHash64(data.data(), len, 0));
  }
  EXPECT_EQ(hashes.size(), 13u);
}

TEST(XxHash64Test, KnownVector) {
  // xxHash64 of empty input with seed 0 is a published constant.
  EXPECT_EQ(XxHash64(nullptr, 0, 0), 0xEF46DB3751D8E999ULL);
}

TEST(Fnv1a64Test, KnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
}

TEST(HashStringTest, DistinctStringsDistinctHashes) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(HashString64("key-" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(SeededHashTest, SeedsActAsIndependentFunctions) {
  // Two seeds should agree on ~1/n of keys when mapped to [n] — not more.
  const uint32_t n = 64;
  int agreements = 0;
  const int keys = 20000;
  for (int k = 0; k < keys; ++k) {
    const uint32_t a = HashToRange(SeededHash64(k, 111), n);
    const uint32_t b = HashToRange(SeededHash64(k, 222), n);
    if (a == b) ++agreements;
  }
  const double rate = static_cast<double>(agreements) / keys;
  EXPECT_NEAR(rate, 1.0 / n, 0.01);
}

TEST(HashToRangeTest, StaysInRangeAndUniform) {
  const uint32_t n = 7;
  std::vector<int> counts(n, 0);
  const int keys = 70000;
  for (int k = 0; k < keys; ++k) {
    const uint32_t w = HashToRange(Murmur3Fmix64(k + 1), n);
    ASSERT_LT(w, n);
    ++counts[w];
  }
  const double expected = static_cast<double>(keys) / n;
  for (uint32_t w = 0; w < n; ++w) {
    EXPECT_NEAR(counts[w], expected, 6 * std::sqrt(expected));
  }
}

TEST(TabulationHashTest, DeterministicPerSeed) {
  TabulationHash h1(5);
  TabulationHash h2(5);
  TabulationHash h3(6);
  EXPECT_EQ(h1.Hash(12345), h2.Hash(12345));
  EXPECT_NE(h1.Hash(12345), h3.Hash(12345));
}

TEST(TabulationHashTest, UniformOverRange) {
  TabulationHash h(9);
  const uint32_t n = 10;
  std::vector<int> counts(n, 0);
  const int keys = 100000;
  for (int k = 0; k < keys; ++k) ++counts[HashToRange(h.Hash(k), n)];
  const double expected = static_cast<double>(keys) / n;
  for (uint32_t w = 0; w < n; ++w) {
    EXPECT_NEAR(counts[w], expected, 6 * std::sqrt(expected));
  }
}

TEST(HashFamilyTest, CandidatesDeterministicAndShared) {
  // Families with the same seed must agree across instances (the cross-
  // sender requirement of Greedy-d).
  HashFamily a(5, 50, 99);
  HashFamily b(5, 50, 99);
  for (uint64_t key = 0; key < 500; ++key) {
    for (uint32_t i = 0; i < 5; ++i) {
      ASSERT_EQ(a.Worker(key, i), b.Worker(key, i));
    }
  }
}

TEST(HashFamilyTest, DifferentSeedsDiffer) {
  HashFamily a(2, 50, 1);
  HashFamily b(2, 50, 2);
  int same = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (a.Worker(key, 0) == b.Worker(key, 0)) ++same;
  }
  EXPECT_LT(same, 100);  // ~1/50 expected
}

TEST(HashFamilyTest, CandidatesBufferMatchesWorker) {
  HashFamily family(4, 10, 3);
  uint32_t buf[4];
  family.Candidates(777, 4, buf);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(buf[i], family.Worker(777, i));
    EXPECT_LT(buf[i], 10u);
  }
}

TEST(HashFamilyTest, ExpectedDistinctCandidatesMatchesEqn10) {
  // Appendix A: E[distinct] = n - n((n-1)/n)^d. Validate empirically.
  const uint32_t n = 20;
  const uint32_t d = 5;
  HashFamily family(d, n, 4242);
  double total_distinct = 0;
  const int keys = 20000;
  for (int key = 0; key < keys; ++key) {
    std::set<uint32_t> workers;
    for (uint32_t i = 0; i < d; ++i) workers.insert(family.Worker(key, i));
    total_distinct += static_cast<double>(workers.size());
  }
  const double expected =
      n * (1.0 - std::pow((n - 1.0) / n, static_cast<double>(d)));
  EXPECT_NEAR(total_distinct / keys, expected, 0.05);
}

}  // namespace
}  // namespace slb
