// Failure injection and adversarial-input tests across the stack.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "slb/common/rng.h"
#include "slb/core/d_choices.h"
#include "slb/core/head_tail_partitioner.h"
#include "slb/core/partitioner.h"
#include "slb/sim/partition_simulator.h"
#include "slb/workload/datasets.h"
#include "slb/workload/trace.h"

namespace slb {
namespace {

// --- Adversarial streams ----------------------------------------------------

TEST(AdversarialStreamTest, SingleKeyStreamSpreadsUnderWChoices) {
  // Every message carries the same key: the worst possible skew (p1 = 1).
  PartitionerOptions options;
  options.num_workers = 10;
  options.hash_seed = 3;
  WChoices wc(options);
  std::set<uint32_t> used;
  std::vector<uint64_t> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint32_t w = wc.Route(42);
    used.insert(w);
    ++counts[w];
  }
  EXPECT_EQ(used.size(), 10u) << "the single hot key must reach all workers";
  const uint64_t max_c = *std::max_element(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(max_c) / 50000 - 0.1, 0.01);
}

TEST(AdversarialStreamTest, SingleKeyStreamPinsUnderPkg) {
  PartitionerOptions options;
  options.num_workers = 10;
  options.hash_seed = 3;
  auto pkg = CreatePartitioner(AlgorithmKind::kPkg, options).value();
  std::set<uint32_t> used;
  for (int i = 0; i < 10000; ++i) used.insert(pkg->Route(42));
  EXPECT_LE(used.size(), 2u) << "PKG must keep single-key locality";
}

TEST(AdversarialStreamTest, AllDistinctKeysBalanceEverywhere) {
  // No key repeats: every scheme should be near-perfectly balanced.
  for (AlgorithmKind kind : {AlgorithmKind::kPkg, AlgorithmKind::kDChoices,
                             AlgorithmKind::kWChoices}) {
    PartitionerOptions options;
    options.num_workers = 8;
    options.hash_seed = 9;
    auto part = CreatePartitioner(kind, options).value();
    std::vector<uint64_t> counts(8, 0);
    const int m = 80000;
    for (int i = 0; i < m; ++i) ++counts[part->Route(static_cast<uint64_t>(i))];
    const uint64_t max_c = *std::max_element(counts.begin(), counts.end());
    EXPECT_LT(static_cast<double>(max_c) / m - 1.0 / 8, 2e-3)
        << AlgorithmKindName(kind);
  }
}

TEST(AdversarialStreamTest, AlternatingHotKeysTrackedByDChoices) {
  // The hot key flips every 20k messages; D-C must keep imbalance bounded
  // (the sketch follows the change — the CT scenario distilled).
  PartitionerOptions options;
  options.num_workers = 20;
  options.hash_seed = 7;
  options.reoptimize_interval = 512;
  DChoices dc(options);
  Rng rng(5);
  std::vector<uint64_t> counts(20, 0);
  const int m = 100000;
  for (int i = 0; i < m; ++i) {
    const uint64_t hot = 1000 + static_cast<uint64_t>(i / 20000);
    const uint64_t key = rng.NextBool(0.4) ? hot : rng.NextBounded(500);
    ++counts[dc.Route(key)];
  }
  const uint64_t max_c = *std::max_element(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(max_c) / m - 1.0 / 20, 0.02);
}

// --- Degenerate configurations ----------------------------------------------

TEST(DegenerateConfigTest, TinySketchStillRoutesInRange) {
  PartitionerOptions options;
  options.num_workers = 25;
  options.hash_seed = 1;
  options.sketch_capacity = 1;  // pathologically small
  auto dc = CreatePartitioner(AlgorithmKind::kDChoices, options).value();
  ZipfDistribution zipf(1.6, 1000);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_LT(dc->Route(zipf.Sample(&rng)), 25u);
  }
}

TEST(DegenerateConfigTest, HugeThetaMeansNoHead) {
  PartitionerOptions options;
  options.num_workers = 10;
  options.hash_seed = 1;
  options.theta_ratio = 20.0;  // theta = 2 > any frequency
  WChoices wc(options);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    wc.Route(rng.NextBounded(10));
    EXPECT_FALSE(wc.last_was_head());
  }
}

TEST(DegenerateConfigTest, StreamShorterThanSources) {
  PartitionSimConfig config;
  config.algorithm = AlgorithmKind::kPkg;
  config.partitioner.num_workers = 4;
  config.num_sources = 10;
  auto gen = MakeGenerator(MakeZipfSpec(1.0, 100, 3, 1));
  auto result = RunPartitionSimulation(config, gen.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_messages, 3u);
}

TEST(DegenerateConfigTest, MoreSamplesThanMessages) {
  PartitionSimConfig config;
  config.algorithm = AlgorithmKind::kShuffleGrouping;
  config.partitioner.num_workers = 2;
  config.num_samples = 1000;
  auto gen = MakeGenerator(MakeZipfSpec(1.0, 10, 50, 1));
  auto result = RunPartitionSimulation(config, gen.get());
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->imbalance_series.size(), 51u);
}

TEST(DegenerateConfigTest, ReoptimizeIntervalOne) {
  // Per-message reoptimization (Algorithm 1 taken literally) must work.
  PartitionerOptions options;
  options.num_workers = 10;
  options.hash_seed = 5;
  options.reoptimize_interval = 1;
  DChoices dc(options);
  Rng rng(4);
  ZipfDistribution zipf(1.8, 500);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_LT(dc.Route(zipf.Sample(&rng)), 10u);
  }
  EXPECT_GE(dc.reoptimize_count(), 4000u);
}

// --- I/O failure injection ---------------------------------------------------

TEST(TraceFailureTest, UnwritablePathIsIOError) {
  Trace trace;
  trace.keys = {1, 2, 3};
  trace.num_keys = 4;
  EXPECT_TRUE(WriteTrace("/nonexistent-dir/x/y.slbt", trace).IsIOError());
  EXPECT_TRUE(WriteTextTrace("/nonexistent-dir/x/y.txt", trace).IsIOError());
}

TEST(TraceFailureTest, TruncatedBodyIsCorruption) {
  const std::string path = testing::TempDir() + "/trunc.slbt";
  Trace trace;
  trace.num_keys = 100;
  for (uint64_t i = 0; i < 64; ++i) trace.keys.push_back(i);
  ASSERT_TRUE(WriteTrace(path, trace).ok());
  // Truncate the file to cut into the key array.
  ASSERT_EQ(truncate(path.c_str(), 64), 0);
  auto loaded = ReadTrace(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(TraceFailureTest, BadTextKeyIsCorruption) {
  const std::string path = testing::TempDir() + "/bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("12\nnot-a-key\n", f);
  std::fclose(f);
  auto loaded = ReadTextTrace(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

// --- Cross-sender consistency -----------------------------------------------

TEST(CrossSenderTest, CandidateSetsAgreeAcrossIndependentSenders) {
  // Two senders with the same seed but different routing histories must
  // still send any given TAIL key to a subset of the same 2 candidates —
  // the invariant that keeps per-key state bounded with multiple sources.
  PartitionerOptions options;
  options.num_workers = 30;
  options.hash_seed = 77;
  DChoices a(options);
  DChoices b(options);
  Rng rng_a(1);
  Rng rng_b(2);
  ZipfDistribution zipf(1.2, 5000);
  std::map<uint64_t, std::set<uint32_t>> workers_per_key;
  std::map<uint64_t, bool> ever_head;
  for (int i = 0; i < 60000; ++i) {
    const uint64_t ka = zipf.Sample(&rng_a);
    workers_per_key[ka].insert(a.Route(ka));
    ever_head[ka] = ever_head[ka] || a.last_was_head();
    const uint64_t kb = zipf.Sample(&rng_b);
    workers_per_key[kb].insert(b.Route(kb));
    ever_head[kb] = ever_head[kb] || b.last_was_head();
  }
  for (const auto& [key, workers] : workers_per_key) {
    if (!ever_head[key]) {
      EXPECT_LE(workers.size(), 2u)
          << "tail key " << key << " exceeded its shared candidate pair";
    }
  }
}

}  // namespace
}  // namespace slb
