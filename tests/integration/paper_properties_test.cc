// End-to-end property suite: parameterized sweeps over (skew, scale) that
// assert the paper's qualitative claims hold in this implementation. These
// are the invariants EXPERIMENTS.md summarizes; the bench binaries print the
// full curves.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "slb/analysis/choices.h"
#include "slb/sim/partition_simulator.h"
#include "slb/workload/datasets.h"

namespace slb {
namespace {

double RunImbalance(AlgorithmKind algo, double z, uint64_t keys, uint32_t n,
                    uint64_t messages, uint64_t seed = 101) {
  PartitionSimConfig config;
  config.algorithm = algo;
  config.partitioner.num_workers = n;
  config.partitioner.hash_seed = 13;
  config.num_sources = 5;
  auto stream = MakeGenerator(MakeZipfSpec(z, keys, messages, seed));
  auto result = RunPartitionSimulation(config, stream.get());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->final_imbalance;
}

// ---------------------------------------------------------------------------
// Sweep over skew x workers: the core claims of Figs. 1 and 10.

class SkewScaleSweep
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(SkewScaleSweep, WChoicesStaysBalanced) {
  const auto [z, n] = GetParam();
  const double imbalance = RunImbalance(AlgorithmKind::kWChoices, z, 10000, n,
                                        150000);
  // W-C keeps imbalance "constantly low irrespective of the setting"
  // (Sec. V-B Q3). The floor scales with s*eps plus sampling noise.
  EXPECT_LT(imbalance, 6e-3) << "z=" << z << " n=" << n;
}

TEST_P(SkewScaleSweep, WChoicesNeverWorseThanPkg) {
  const auto [z, n] = GetParam();
  const double pkg = RunImbalance(AlgorithmKind::kPkg, z, 10000, n, 150000);
  const double wc = RunImbalance(AlgorithmKind::kWChoices, z, 10000, n, 150000);
  EXPECT_LE(wc, pkg + 2e-3) << "z=" << z << " n=" << n;
}

TEST_P(SkewScaleSweep, DChoicesNeverWorseThanPkg) {
  const auto [z, n] = GetParam();
  const double pkg = RunImbalance(AlgorithmKind::kPkg, z, 10000, n, 150000);
  const double dc = RunImbalance(AlgorithmKind::kDChoices, z, 10000, n, 150000);
  EXPECT_LE(dc, pkg + 2e-3) << "z=" << z << " n=" << n;
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<double, uint32_t>>& info) {
  const double z = std::get<0>(info.param);
  const uint32_t n = std::get<1>(info.param);
  std::string name = "z";
  name += std::to_string(static_cast<int>(z * 10));
  name += "_n";
  name += std::to_string(n);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    ZfGrid, SkewScaleSweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 1.4, 2.0),
                       ::testing::Values(5u, 10u, 50u)),
    SweepName);

// ---------------------------------------------------------------------------
// The scalability headline (Fig. 1): PKG breaks down at scale, D-C/W-C don't.

TEST(PaperHeadlineTest, PkgBreaksDownAtScaleUnderHighSkew) {
  // WP-like skew: p1 ~ 0.15 < 2/n at n = 5 (PKG fine) but >> 2/n at n = 100
  // (PKG's assumption violated) — the Fig. 1 shape.
  const double z = 1.1;
  const double pkg_small = RunImbalance(AlgorithmKind::kPkg, z, 10000, 5, 150000);
  const double pkg_large = RunImbalance(AlgorithmKind::kPkg, z, 10000, 100, 150000);
  // At n=5 two workers can absorb p1; at n=100 they cannot.
  EXPECT_GT(pkg_large, 10 * pkg_small);
  EXPECT_GT(pkg_large, 1e-2);

  const double dc_large =
      RunImbalance(AlgorithmKind::kDChoices, z, 10000, 100, 150000);
  const double wc_large =
      RunImbalance(AlgorithmKind::kWChoices, z, 10000, 100, 150000);
  EXPECT_LT(dc_large, pkg_large / 3);
  EXPECT_LT(wc_large, pkg_large / 10);
}

TEST(PaperHeadlineTest, ExtremeSkewBeyondPkgAssumption) {
  // z = 2: p1 ~ 0.6 > 2/n for every n > 3 — PKG's assumption is violated
  // (Sec. I), while the head-aware schemes stay balanced.
  const double pkg = RunImbalance(AlgorithmKind::kPkg, 2.0, 10000, 50, 150000);
  const double wc = RunImbalance(AlgorithmKind::kWChoices, 2.0, 10000, 50, 150000);
  EXPECT_GT(pkg, 0.05);
  EXPECT_LT(wc, 5e-3);
}

// ---------------------------------------------------------------------------
// Fig. 9's claim: the analytic d matches the empirically minimal d.

TEST(MinimalDTest, AnalyticDAchievesWChoicesImbalance) {
  const double z = 1.6;
  const uint32_t n = 50;
  const uint64_t keys = 10000;
  const uint64_t messages = 200000;

  // Analytic d from the true distribution.
  ZipfDistribution zipf(z, keys);
  const double theta = 1.0 / (5.0 * n);
  const uint64_t head_size = zipf.CountAboveThreshold(theta);
  auto head = HeadProfile::FromProbabilities(zipf.TopProbabilities(head_size));
  const uint32_t d_analytic = FindOptimalChoices(head, n, 1e-4);

  // Imbalance of Fixed-D at the analytic d must match W-C's.
  PartitionSimConfig config;
  config.algorithm = AlgorithmKind::kFixedDChoices;
  config.partitioner.num_workers = n;
  config.partitioner.fixed_d = d_analytic;
  config.partitioner.hash_seed = 13;
  auto stream1 = MakeGenerator(MakeZipfSpec(z, keys, messages, 5));
  auto fixed = RunPartitionSimulation(config, stream1.get());
  ASSERT_TRUE(fixed.ok());

  config.algorithm = AlgorithmKind::kWChoices;
  auto stream2 = MakeGenerator(MakeZipfSpec(z, keys, messages, 5));
  auto wc = RunPartitionSimulation(config, stream2.get());
  ASSERT_TRUE(wc.ok());

  EXPECT_LT(fixed->final_imbalance,
            std::max(2.0 * wc->final_imbalance, 5e-3));
}

// ---------------------------------------------------------------------------
// Real-world-like datasets (Fig. 11 shapes) at reduced scale.

TEST(RealDatasetTest, WpShapeAtScale) {
  DatasetSpec wp = MakeWikipediaSpec(0.01);  // 220k msgs, 29k keys
  PartitionSimConfig config;
  config.partitioner.hash_seed = 3;
  config.num_sources = 5;

  config.algorithm = AlgorithmKind::kPkg;
  config.partitioner.num_workers = 100;
  auto gen1 = MakeGenerator(wp);
  auto pkg = RunPartitionSimulation(config, gen1.get());
  ASSERT_TRUE(pkg.ok());

  config.algorithm = AlgorithmKind::kDChoices;
  auto gen2 = MakeGenerator(wp);
  auto dc = RunPartitionSimulation(config, gen2.get());
  ASSERT_TRUE(dc.ok());

  // WP's p1 = 9.3% > 2/100: PKG must show clear imbalance, D-C must not.
  EXPECT_GT(pkg->final_imbalance, 5e-3);
  EXPECT_LT(dc->final_imbalance, pkg->final_imbalance / 2);
}

TEST(RealDatasetTest, CtDriftHandled) {
  DatasetSpec ct = MakeCashtagsSpec(0.3);
  PartitionSimConfig config;
  config.partitioner.hash_seed = 3;
  config.algorithm = AlgorithmKind::kWChoices;
  config.partitioner.num_workers = 20;
  auto gen = MakeGenerator(ct);
  auto wc = RunPartitionSimulation(config, gen.get());
  ASSERT_TRUE(wc.ok());
  EXPECT_LT(wc->final_imbalance, 0.02);
}

}  // namespace
}  // namespace slb
