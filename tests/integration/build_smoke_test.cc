// Build/link canary: every AlgorithmKind must be constructible through
// CreatePartitioner and able to route a realistic Zipf stream. If a
// partitioner implementation is dropped from the build or the factory drifts
// out of sync with the enum, this test fails before anything subtler does.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "slb/common/rng.h"
#include "slb/core/partitioner.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

TEST(BuildSmokeTest, EveryAlgorithmKindCreatesAndRoutes) {
  constexpr uint32_t kWorkers = 8;
  constexpr int kMessages = 10000;

  // One shared key stream so all algorithms see the same skewed workload.
  ZipfDistribution zipf(1.2, 100000);
  Rng rng(42);
  std::vector<uint64_t> keys;
  keys.reserve(kMessages);
  for (int i = 0; i < kMessages; ++i) keys.push_back(zipf.Sample(&rng));

  for (AlgorithmKind kind : kAllAlgorithmKinds) {
    SCOPED_TRACE(AlgorithmKindName(kind));

    PartitionerOptions options;
    options.num_workers = kWorkers;
    options.hash_seed = 7;

    auto created = CreatePartitioner(kind, options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    StreamPartitioner& partitioner = **created;

    EXPECT_EQ(partitioner.num_workers(), kWorkers);
    EXPECT_FALSE(partitioner.name().empty());

    for (uint64_t key : keys) {
      const uint32_t worker = partitioner.Route(key);
      ASSERT_LT(worker, kWorkers);
    }
    EXPECT_EQ(partitioner.messages_routed(), static_cast<uint64_t>(kMessages));
  }
}

TEST(BuildSmokeTest, ParseRoundTripsEveryKind) {
  for (AlgorithmKind kind : kAllAlgorithmKinds) {
    auto parsed = ParseAlgorithmKind(AlgorithmKindName(kind));
    ASSERT_TRUE(parsed.ok()) << AlgorithmKindName(kind) << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(*parsed, kind);
  }
}

}  // namespace
}  // namespace slb
