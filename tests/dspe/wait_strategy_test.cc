// Concurrency stress battery for the adaptive executor wait ladder
// (WaitStrategy::kAdaptive in runtime.h): spin -> yield -> park on a
// per-thread idle gate, with producers waking consumers on the empty ->
// non-empty ring edge.
//
// The ladder's failure modes are all liveness bugs, so every test here is a
// completion check under conditions tuned to force maximal park/unpark
// churn (spin_iterations = yield_iterations = 0 sends an idle executor
// straight to the condition variable):
//
//   * lost wakeup — a producer publishes while the consumer is between its
//     "rings empty" poll and the park; the Dekker-style fence pairing in
//     WakeGate/ParkIdle must make the publish visible or the wake land,
//     else the run hangs until the 1 ms safety timeout masks it (the test
//     still passes then, but TSan + the park counters keep the machinery
//     honest);
//   * shutdown while parked — the last root can ack while other executors
//     are parked; termination must broadcast to every gate;
//   * rescale quiesce reaching parked executors — the elastic barrier
//     requires every executor to observe the phase change, including ones
//     parked with empty rings.
//
// These tests are written to be meaningful under ThreadSanitizer: they run
// the real executor threads at 1/4/8 threads through real park/wake cycles.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "slb/common/rng.h"
#include "slb/dspe/runtime.h"
#include "slb/dspe/standard_bolts.h"
#include "slb/dspe/topology.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

// Emits a shared key vector round-robin (spout s of S emits positions s,
// s+S, ...) — the canonical sender split every threaded-engine test uses.
class VectorSpout final : public Spout {
 public:
  VectorSpout(std::shared_ptr<const std::vector<uint64_t>> keys,
              uint64_t offset, uint64_t stride)
      : keys_(std::move(keys)), pos_(offset), stride_(stride) {}

  bool NextTuple(TopologyTuple* out) override {
    if (pos_ >= keys_->size()) return false;
    out->key = (*keys_)[pos_];
    out->value = 1;
    pos_ += stride_;
    return true;
  }

 private:
  std::shared_ptr<const std::vector<uint64_t>> keys_;
  uint64_t pos_;
  uint64_t stride_;
};

std::shared_ptr<const std::vector<uint64_t>> MakeZipfKeys(uint64_t count,
                                                          uint64_t num_keys,
                                                          uint64_t seed) {
  auto keys = std::make_shared<std::vector<uint64_t>>();
  keys->reserve(count);
  ZipfDistribution zipf(1.2, num_keys);
  Rng rng(seed);
  for (uint64_t i = 0; i < count; ++i) keys->push_back(zipf.Sample(&rng));
  return keys;
}

struct DeliveryHistogram {
  explicit DeliveryHistogram(uint64_t num_keys) : per_key(num_keys) {}
  std::vector<std::atomic<uint64_t>> per_key;
};

TopologyBuilder::Topology SpoutBoltTopology(
    std::shared_ptr<const std::vector<uint64_t>> keys, uint32_t num_spouts,
    uint32_t num_workers, AlgorithmKind algorithm,
    std::shared_ptr<DeliveryHistogram> histogram = nullptr) {
  TopologyBuilder builder;
  builder.AddSpout(
      "sources",
      [keys, num_spouts](uint32_t task) {
        return std::make_unique<VectorSpout>(keys, task, num_spouts);
      },
      num_spouts);
  Grouping grouping;
  grouping.algorithm = algorithm;
  builder
      .AddBolt("workers",
               [histogram](uint32_t) {
                 CountingBolt::Sink sink = nullptr;
                 if (histogram) {
                   sink = [histogram](uint64_t key, uint64_t) {
                     histogram->per_key[key].fetch_add(
                         1, std::memory_order_relaxed);
                   };
                 }
                 return std::make_unique<CountingBolt>(std::move(sink));
               },
               num_workers)
      .Input("sources", grouping);
  return builder.Build();
}

// Runtime options tuned for maximal park churn: executors park on the first
// idle pass, 2-slot rings and a 2-credit window force constant tiny
// publishes, batch 1 defeats emit batching so every tuple is its own
// empty -> non-empty wake edge.
TopologyRuntimeOptions HammerOptions(uint32_t threads) {
  TopologyRuntimeOptions rt;
  rt.num_threads = threads;
  rt.queue_capacity = 2;
  rt.batch_size = 1;
  rt.wait_strategy = WaitStrategy::kAdaptive;
  rt.spin_iterations = 0;
  rt.yield_iterations = 0;
  return rt;
}

TEST(WaitStrategyTest, LostWakeupHammerAcrossThreadCounts) {
  constexpr uint64_t kMessages = 8000;
  constexpr uint64_t kNumKeys = 200;
  constexpr uint32_t kSpouts = 4;
  constexpr uint32_t kWorkers = 8;

  auto keys = MakeZipfKeys(kMessages, kNumKeys, 17);
  std::vector<uint64_t> expected_per_key(kNumKeys, 0);
  for (uint64_t key : *keys) ++expected_per_key[key];

  for (uint32_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto histogram = std::make_shared<DeliveryHistogram>(kNumKeys);
    TopologyOptions options;
    options.hash_seed = 7;
    options.seed = 17;
    options.max_pending_per_spout = 2;

    auto result = ExecuteTopologyThreaded(
        SpoutBoltTopology(keys, kSpouts, kWorkers, AlgorithmKind::kPkg,
                          histogram),
        options, HammerOptions(threads));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const TopologyStats& stats = result.value();

    // Completion is the property under test: a lost wakeup stalls the run on
    // the 1 ms safety timeout per lost edge, and a wake that dereferences a
    // retired gate is a TSan report.
    EXPECT_EQ(stats.roots_acked, kMessages);
    ASSERT_EQ(stats.components.size(), 2u);
    EXPECT_EQ(stats.components[1].tuples_processed, kMessages);
    for (uint64_t key = 0; key < kNumKeys; ++key) {
      ASSERT_EQ(histogram->per_key[key].load(std::memory_order_relaxed),
                expected_per_key[key])
          << "key " << key;
    }
    // Idle accounting is well-formed: parks imply park time, park time is
    // part of idle time, nothing negative.
    EXPECT_GE(stats.idle_s, stats.park_s);
    EXPECT_GE(stats.park_s, 0.0);
    if (stats.parks == 0) {
      EXPECT_EQ(stats.park_s, 0.0);
    }
    // With more executors than runnable work and a zero-length ladder,
    // parking must actually happen — a ladder that never reaches the
    // condition variable would trivially "pass" the lost-wakeup hammer.
    if (threads >= 4) {
      EXPECT_GT(stats.parks, 0u);
    }
  }
}

// The last root can ack while every other executor is parked with empty
// rings; termination (and spout exhaustion before it) must broadcast to all
// gates or the run hangs in the parked threads' join.
TEST(WaitStrategyTest, ShutdownReachesParkedExecutors) {
  constexpr uint64_t kMessages = 64;
  auto keys = MakeZipfKeys(kMessages, 16, 3);

  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    TopologyOptions options;
    options.hash_seed = 7;
    options.seed = static_cast<uint64_t>(round);
    options.max_pending_per_spout = 2;

    // 12 tasks on 8 threads but only 64 tuples: most executors go idle and
    // park almost immediately, then must be woken to observe termination.
    auto result = ExecuteTopologyThreaded(
        SpoutBoltTopology(keys, 4, 8, AlgorithmKind::kPkg), options,
        HammerOptions(8));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->roots_acked, kMessages);
  }
}

// A rescale quiesce begins while executors hosting drained tasks are parked;
// the phase change must reach them (WakeAll at the phase CAS) so they join
// the barrier, or the mutation deadlocks.
TEST(WaitStrategyTest, RescaleQuiesceReachesParkedExecutors) {
  constexpr uint64_t kMessages = 12000;
  constexpr uint64_t kNumKeys = 300;

  auto keys = MakeZipfKeys(kMessages, kNumKeys, 29);
  std::vector<uint64_t> expected_per_key(kNumKeys, 0);
  for (uint64_t key : *keys) ++expected_per_key[key];

  RescaleSchedule schedule;
  schedule.events = {RescaleEvent{0.3, 12}, RescaleEvent{0.7, 6}};

  for (uint32_t threads : {4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto histogram = std::make_shared<DeliveryHistogram>(kNumKeys);
    TopologyOptions options;
    options.hash_seed = 7;
    options.seed = 29;
    options.max_pending_per_spout = 8;
    TopologyRuntimeOptions rt = HammerOptions(threads);
    rt.queue_capacity = 8;
    rt.rescale.schedule = schedule;
    rt.rescale.total_messages = kMessages;

    auto result = ExecuteTopologyThreaded(
        SpoutBoltTopology(keys, 4, 8, AlgorithmKind::kPkg, histogram), options,
        rt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const TopologyStats& stats = result.value();

    EXPECT_EQ(stats.roots_acked, kMessages);
    for (uint64_t key = 0; key < kNumKeys; ++key) {
      ASSERT_EQ(histogram->per_key[key].load(std::memory_order_relaxed),
                expected_per_key[key])
          << "key " << key;
    }
    EXPECT_EQ(stats.rescale.rescale_events, schedule.events.size());
    EXPECT_EQ(stats.rescale.final_parallelism, 6u);
    EXPECT_GT(stats.rescale.handoff_frames, 0u);
  }
}

// The legacy strategy must keep working bit-for-bit (it is the fallback on
// hosts where parking hurts) and must never report ladder time.
TEST(WaitStrategyTest, SpinStrategyStillExactWithZeroIdleAccounting) {
  constexpr uint64_t kMessages = 4000;
  constexpr uint64_t kNumKeys = 100;

  auto keys = MakeZipfKeys(kMessages, kNumKeys, 11);
  std::vector<uint64_t> expected_per_key(kNumKeys, 0);
  for (uint64_t key : *keys) ++expected_per_key[key];

  auto histogram = std::make_shared<DeliveryHistogram>(kNumKeys);
  TopologyOptions options;
  options.hash_seed = 7;
  options.seed = 11;
  TopologyRuntimeOptions rt;
  rt.num_threads = 4;
  rt.queue_capacity = 64;
  rt.batch_size = 16;
  rt.wait_strategy = WaitStrategy::kSpin;

  auto result = ExecuteTopologyThreaded(
      SpoutBoltTopology(keys, 4, 8, AlgorithmKind::kPkg, histogram), options,
      rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TopologyStats& stats = result.value();

  EXPECT_EQ(stats.roots_acked, kMessages);
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    ASSERT_EQ(histogram->per_key[key].load(std::memory_order_relaxed),
              expected_per_key[key])
        << "key " << key;
  }
  EXPECT_EQ(stats.idle_s, 0.0);
  EXPECT_EQ(stats.park_s, 0.0);
  EXPECT_EQ(stats.parks, 0u);
}

}  // namespace
}  // namespace slb
