// Sim-vs-threaded migration equivalence (the contract in runtime.h and
// docs/ARCHITECTURE.md "Elastic rescale protocol"): for every rescalable
// AlgorithmKind, a live threaded run over a stream must report exactly the
// migration accounting RunPartitionSimulation computes for the same
// per-sender streams and schedule — the same migrated-key set in the same
// handoff order, the same stall count, the same moved-key fraction.
//
// The alignment recipe: the threaded spouts split one materialized stream
// round-robin (spout s takes positions s, s+S, ...) — the interleave the
// simulator models — and the simulator's partitioners are seeded with the
// topology's edge hash seed (EdgeHashSeed(base, 0, 0)), so every sender
// makes identical routing decisions in both engines. The threaded engine
// then replays its recorded routing logs through the same MigrationTracker
// (ReplayRoundRobinMigration), which this test pins as byte-identical to
// the simulator's online accounting.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slb/dspe/plan.h"
#include "slb/dspe/runtime.h"
#include "slb/dspe/standard_bolts.h"
#include "slb/dspe/topology.h"
#include "slb/sim/partition_simulator.h"
#include "slb/workload/stream_generator.h"

namespace slb {
namespace {

constexpr uint64_t kMessages = 20000;
constexpr uint64_t kNumKeys = 300;
constexpr uint32_t kSources = 4;
constexpr uint32_t kBaseWorkers = 8;
constexpr uint64_t kBaseHashSeed = 42;
constexpr uint64_t kStreamSeed = 1234;

class VectorSpout final : public Spout {
 public:
  VectorSpout(std::shared_ptr<const std::vector<uint64_t>> keys,
              uint64_t offset, uint64_t stride)
      : keys_(std::move(keys)), pos_(offset), stride_(stride) {}

  bool NextTuple(TopologyTuple* out) override {
    if (pos_ >= keys_->size()) return false;
    out->key = (*keys_)[pos_];
    out->value = 1;
    pos_ += stride_;
    return true;
  }

 private:
  std::shared_ptr<const std::vector<uint64_t>> keys_;
  uint64_t pos_;
  uint64_t stride_;
};

SyntheticStreamGenerator::Options StreamOptions() {
  SyntheticStreamGenerator::Options options;
  options.zipf_exponent = 1.1;
  options.num_keys = kNumKeys;
  options.num_messages = kMessages;
  options.seed = kStreamSeed;
  return options;
}

RescaleSchedule OutThenInSchedule() {
  RescaleSchedule schedule;
  schedule.events = {RescaleEvent{0.3, kBaseWorkers + 4},
                     RescaleEvent{0.7, kBaseWorkers - 3}};
  return schedule;
}

struct ModeledCounters {
  uint32_t rescale_events = 0;
  uint32_t final_num_workers = 0;
  uint64_t keys_migrated = 0;
  uint64_t state_bytes_migrated = 0;
  uint64_t stalled_messages = 0;
  double moved_key_fraction = 0.0;
  std::vector<uint64_t> migrated_keys;
};

ModeledCounters RunSim(AlgorithmKind algorithm,
                       const RescaleSchedule& schedule) {
  PartitionSimConfig config;
  config.algorithm = algorithm;
  config.partitioner.num_workers = kBaseWorkers;
  // The seed every sender of the threaded topology's single edge derives
  // its partitioner from; the simulator must route with the same one.
  config.partitioner.hash_seed = EdgeHashSeed(kBaseHashSeed, 0, 0);
  config.num_sources = kSources;
  config.rescale = schedule;
  config.record_migrated_keys = true;

  SyntheticStreamGenerator stream(StreamOptions());
  auto result = RunPartitionSimulation(config, &stream);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ModeledCounters counters;
  counters.rescale_events = result->rescale_events;
  counters.final_num_workers = result->final_num_workers;
  counters.keys_migrated = result->keys_migrated;
  counters.state_bytes_migrated = result->state_bytes_migrated;
  counters.stalled_messages = result->stalled_messages;
  counters.moved_key_fraction = result->moved_key_fraction;
  counters.migrated_keys = result->migrated_keys;
  return counters;
}

Result<TopologyStats> RunThreaded(AlgorithmKind algorithm,
                                  const RescaleSchedule& schedule,
                                  uint32_t threads) {
  SyntheticStreamGenerator stream(StreamOptions());
  auto keys = std::make_shared<std::vector<uint64_t>>();
  keys->reserve(kMessages);
  for (uint64_t i = 0; i < kMessages; ++i) keys->push_back(stream.NextKey());
  std::shared_ptr<const std::vector<uint64_t>> shared = keys;

  TopologyBuilder builder;
  builder.AddSpout(
      "sources",
      [shared](uint32_t task) {
        return std::make_unique<VectorSpout>(shared, task, kSources);
      },
      kSources);
  Grouping grouping;
  grouping.algorithm = algorithm;
  builder
      .AddBolt("workers",
               [](uint32_t) { return std::make_unique<CountingBolt>(); },
               kBaseWorkers)
      .Input("sources", grouping);

  TopologyOptions options;
  options.hash_seed = kBaseHashSeed;
  options.max_pending_per_spout = 32;
  TopologyRuntimeOptions rt;
  rt.num_threads = threads;
  rt.rescale.schedule = schedule;
  rt.rescale.total_messages = kMessages;
  return ExecuteTopologyThreaded(builder.Build(), options, rt);
}

class RescaleEquivalenceTest : public ::testing::TestWithParam<AlgorithmKind> {
};

TEST_P(RescaleEquivalenceTest, ThreadedMigrationMatchesSimulator) {
  const AlgorithmKind algorithm = GetParam();
  const RescaleSchedule schedule = OutThenInSchedule();
  const ModeledCounters sim = RunSim(algorithm, schedule);
  ASSERT_EQ(sim.rescale_events, 2u);
  ASSERT_GT(sim.keys_migrated, 0u);

  for (uint32_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto threaded = RunThreaded(algorithm, schedule, threads);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    const TopologyRescaleStats& rs = threaded->rescale;

    EXPECT_EQ(rs.rescale_events, sim.rescale_events);
    EXPECT_EQ(rs.final_parallelism, sim.final_num_workers);
    EXPECT_EQ(rs.keys_migrated, sim.keys_migrated);
    EXPECT_EQ(rs.state_bytes_migrated, sim.state_bytes_migrated);
    EXPECT_EQ(rs.stalled_messages, sim.stalled_messages);
    EXPECT_DOUBLE_EQ(rs.moved_key_fraction, sim.moved_key_fraction);
    // The migrated-key SET in handoff-enqueue ORDER — the strongest form of
    // "the live protocol moved what the model says moves".
    EXPECT_EQ(rs.migrated_keys, sim.migrated_keys);

    // And the live half actually ran: state crossed the handoff rings and
    // the measured phase costs were recorded.
    EXPECT_GT(rs.handoff_frames, 0u);
    EXPECT_GT(rs.total_quiesce_s, 0.0);
    EXPECT_EQ(threaded->roots_acked, kMessages);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRescalableAlgorithms, RescaleEquivalenceTest,
                         ::testing::Values(AlgorithmKind::kKeyGrouping,
                                           AlgorithmKind::kPkg,
                                           AlgorithmKind::kDChoices,
                                           AlgorithmKind::kWChoices,
                                           AlgorithmKind::kConsistentHash),
                         [](const auto& info) {
                           std::string name = AlgorithmKindName(info.param);
                           std::string safe;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               safe += c;
                             }
                           }
                           return safe;
                         });

}  // namespace
}  // namespace slb
