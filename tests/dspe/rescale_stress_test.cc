// Concurrency stress battery for live elastic rescale (runtime.h).
//
// Seeded random add/remove schedules run across thread counts and
// partitioning schemes, checking the invariants the protocol must hold at
// every epoch regardless of interleaving:
//
//   * no lost or duplicated tuples — every spout root is acked exactly once
//     and the bolt component processes exactly the input count;
//   * per-key delivery counts match the input histogram exactly (checked
//     through a thread-safe sink, so a tuple delivered twice or dropped
//     during a handoff epoch is caught even when totals happen to balance);
//   * acks conserved — the run terminates with all credit windows returned
//     (a leaked credit deadlocks the run; a double-returned one overshoots
//     roots_acked);
//   * the final worker set matches the schedule, and the modeled migration
//     accounting is byte-identical at every thread count (it replays the
//     recorded routing logs, so interleaving must not leak into it).
//
// These tests are written to be meaningful under ThreadSanitizer: they run
// the real executor threads through real quiesce/mutate/resume cycles.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "slb/common/rng.h"
#include "slb/dspe/runtime.h"
#include "slb/dspe/standard_bolts.h"
#include "slb/dspe/topology.h"
#include "slb/sim/migration_tracker.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

// Emits a shared key vector round-robin: spout `offset` of `stride` spouts
// takes positions offset, offset+stride, ... (the canonical sender split the
// migration replay assumes).
class VectorSpout final : public Spout {
 public:
  VectorSpout(std::shared_ptr<const std::vector<uint64_t>> keys,
              uint64_t offset, uint64_t stride)
      : keys_(std::move(keys)), pos_(offset), stride_(stride) {}

  bool NextTuple(TopologyTuple* out) override {
    if (pos_ >= keys_->size()) return false;
    out->key = (*keys_)[pos_];
    out->value = 1;
    pos_ += stride_;
    return true;
  }

 private:
  std::shared_ptr<const std::vector<uint64_t>> keys_;
  uint64_t pos_;
  uint64_t stride_;
};

std::shared_ptr<const std::vector<uint64_t>> MakeZipfKeys(uint64_t count,
                                                          uint64_t num_keys,
                                                          uint64_t seed) {
  auto keys = std::make_shared<std::vector<uint64_t>>();
  keys->reserve(count);
  ZipfDistribution zipf(1.2, num_keys);
  Rng rng(seed);
  for (uint64_t i = 0; i < count; ++i) keys->push_back(zipf.Sample(&rng));
  return keys;
}

// Per-key delivery histogram shared by every bolt task (tasks run on
// different executor threads, hence atomics).
struct DeliveryHistogram {
  explicit DeliveryHistogram(uint64_t num_keys) : per_key(num_keys) {}
  std::vector<std::atomic<uint64_t>> per_key;
};

TopologyBuilder::Topology ElasticTopology(
    std::shared_ptr<const std::vector<uint64_t>> keys, uint32_t num_spouts,
    uint32_t num_workers, AlgorithmKind algorithm,
    std::shared_ptr<DeliveryHistogram> histogram = nullptr) {
  TopologyBuilder builder;
  builder.AddSpout(
      "sources",
      [keys, num_spouts](uint32_t task) {
        return std::make_unique<VectorSpout>(keys, task, num_spouts);
      },
      num_spouts);
  Grouping grouping;
  grouping.algorithm = algorithm;
  builder
      .AddBolt("workers",
               [histogram](uint32_t) {
                 CountingBolt::Sink sink = nullptr;
                 if (histogram) {
                   sink = [histogram](uint64_t key, uint64_t) {
                     histogram->per_key[key].fetch_add(
                         1, std::memory_order_relaxed);
                   };
                 }
                 return std::make_unique<CountingBolt>(std::move(sink));
               },
               num_workers)
      .Input("sources", grouping);
  return builder.Build();
}

// A random add/remove schedule: 1-3 events at spaced positions, each moving
// to a target different from the current count (no-op events never fire).
RescaleSchedule RandomSchedule(Rng* rng, uint32_t base_workers,
                               uint32_t* final_workers) {
  RescaleSchedule schedule;
  const int num_events = 1 + static_cast<int>(rng->NextBounded(3));
  double at = 0.1 + 0.15 * rng->NextDouble();
  uint32_t current = base_workers;
  for (int e = 0; e < num_events && at < 0.9; ++e) {
    uint32_t target = current;
    while (target == current) {
      target = 2 + static_cast<uint32_t>(rng->NextBounded(15));
    }
    schedule.events.push_back(RescaleEvent{at, target});
    current = target;
    at += 0.12 + 0.3 * rng->NextDouble();
  }
  *final_workers = current;
  return schedule;
}

TEST(RescaleStressTest, RandomSchedulesHoldInvariantsAcrossThreadCounts) {
  constexpr uint64_t kMessages = 24000;
  constexpr uint64_t kNumKeys = 400;
  constexpr uint32_t kSpouts = 4;
  constexpr uint32_t kBaseWorkers = 8;

  for (uint64_t seed : {11u, 29u, 83u}) {
    Rng rng(seed * 977 + 13);
    auto keys = MakeZipfKeys(kMessages, kNumKeys, seed);
    std::vector<uint64_t> expected_per_key(kNumKeys, 0);
    for (uint64_t key : *keys) ++expected_per_key[key];

    uint32_t final_workers = 0;
    const RescaleSchedule schedule =
        RandomSchedule(&rng, kBaseWorkers, &final_workers);

    for (AlgorithmKind algorithm :
         {AlgorithmKind::kPkg, AlgorithmKind::kConsistentHash}) {
      std::vector<uint64_t> reference_migrated;
      uint64_t reference_stalled = 0;
      bool have_reference = false;

      for (uint32_t threads : {1u, 4u, 8u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " algo=" + std::to_string(static_cast<int>(algorithm)) +
                     " threads=" + std::to_string(threads));
        auto histogram = std::make_shared<DeliveryHistogram>(kNumKeys);
        TopologyOptions options;
        options.hash_seed = 7;
        options.seed = seed;
        options.max_pending_per_spout = 24;
        TopologyRuntimeOptions rt;
        rt.num_threads = threads;
        rt.queue_capacity = 64;
        rt.batch_size = 16;
        rt.rescale.schedule = schedule;
        rt.rescale.total_messages = kMessages;

        auto result = ExecuteTopologyThreaded(
            ElasticTopology(keys, kSpouts, kBaseWorkers, algorithm, histogram),
            options, rt);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const TopologyStats& stats = result.value();

        // Acks conserved: every root acked exactly once, run terminated.
        EXPECT_EQ(stats.roots_acked, kMessages);
        // No lost/duplicated tuples through any handoff epoch.
        ASSERT_EQ(stats.components.size(), 2u);
        EXPECT_EQ(stats.components[0].tuples_processed, kMessages);
        EXPECT_EQ(stats.components[1].tuples_processed, kMessages);
        for (uint64_t key = 0; key < kNumKeys; ++key) {
          ASSERT_EQ(histogram->per_key[key].load(std::memory_order_relaxed),
                    expected_per_key[key])
              << "key " << key;
        }
        // Final worker set matches the schedule.
        EXPECT_EQ(stats.rescale.final_parallelism, final_workers);
        EXPECT_EQ(stats.rescale.rescale_events, schedule.events.size());
        EXPECT_EQ(stats.components[1].task_loads.size(), final_workers);
        // Live protocol did real work on every non-static schedule.
        EXPECT_GT(stats.rescale.handoff_frames, 0u);
        EXPECT_GT(stats.rescale.keys_migrated, 0u);
        EXPECT_GE(stats.rescale.total_quiesce_s, 0.0);

        // The modeled accounting replays recorded routing logs, so it must
        // not depend on the interleaving at all.
        if (!have_reference) {
          reference_migrated = stats.rescale.migrated_keys;
          reference_stalled = stats.rescale.stalled_messages;
          have_reference = true;
        } else {
          EXPECT_EQ(stats.rescale.migrated_keys, reference_migrated);
          EXPECT_EQ(stats.rescale.stalled_messages, reference_stalled);
        }
      }
    }
  }
}

// Satellite pin for the credit-backpressure audit: a 1-credit window with
// 2-slot rings must survive quiesce points. The quiesce barrier requires
// every in-flight tree to ack while spouts are paused; a credit leaked
// across the mutation (or a stashed batch dropped with it) deadlocks here,
// and a double-returned credit overshoots roots_acked.
TEST(RescaleStressTest, CreditWindowSurvivesQuiesceUnderSevereBackpressure) {
  constexpr uint64_t kMessages = 6000;
  auto keys = MakeZipfKeys(kMessages, 150, 5);

  RescaleSchedule schedule;
  schedule.events = {RescaleEvent{0.3, 12}, RescaleEvent{0.65, 5}};

  for (uint32_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    TopologyOptions options;
    options.max_pending_per_spout = 1;
    options.seed = 5;
    TopologyRuntimeOptions rt;
    rt.num_threads = threads;
    rt.queue_capacity = 2;
    rt.batch_size = 1;
    rt.rescale.schedule = schedule;
    rt.rescale.total_messages = kMessages;

    auto result = ExecuteTopologyThreaded(
        ElasticTopology(keys, 2, 8, AlgorithmKind::kPkg), options, rt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().roots_acked, kMessages);
    EXPECT_EQ(result.value().rescale.rescale_events, 2u);
    EXPECT_EQ(result.value().rescale.final_parallelism, 5u);
  }
}

// The stream ends before the promised total_messages: pending events must be
// cancelled (not fired at a bogus position, not deadlock a paused spout) and
// the run still drains completely.
TEST(RescaleStressTest, ShortStreamCancelsRemainingEvents) {
  constexpr uint64_t kMessages = 4000;
  auto keys = MakeZipfKeys(kMessages, 100, 9);

  RescaleSchedule schedule;
  // The second event's trigger lies beyond the actual stream end.
  schedule.events = {RescaleEvent{0.25, 12}, RescaleEvent{0.9, 4}};

  TopologyOptions options;
  options.max_pending_per_spout = 16;
  TopologyRuntimeOptions rt;
  rt.num_threads = 4;
  rt.rescale.schedule = schedule;
  // Promise twice the real stream: the first event fires (25% of the promise
  // lands inside the stream), the second cannot and must cancel.
  rt.rescale.total_messages = kMessages * 2;

  auto result = ExecuteTopologyThreaded(
      ElasticTopology(keys, 4, 8, AlgorithmKind::kPkg), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().roots_acked, kMessages);
  EXPECT_EQ(result.value().rescale.rescale_events, 1u);
  EXPECT_EQ(result.value().rescale.final_parallelism, 12u);
}

// Rescale demands an elastic-capable topology: a partitioner without rescale
// support or a bolt without the state-handoff API must be rejected up front,
// not discovered mid-quiesce.
TEST(RescaleStressTest, RejectsNonRescalableTopologies) {
  auto keys = MakeZipfKeys(100, 10, 1);
  RescaleSchedule schedule;
  schedule.events = {RescaleEvent{0.5, 4}};

  TopologyOptions options;
  options.max_pending_per_spout = 8;
  TopologyRuntimeOptions rt;
  rt.rescale.schedule = schedule;
  rt.rescale.total_messages = 100;

  // kDChoices supports rescale but this bolt has no state handoff.
  TopologyBuilder builder;
  builder.AddSpout(
      "sources",
      [keys](uint32_t task) {
        return std::make_unique<VectorSpout>(keys, task, 2);
      },
      2);
  class PlainBolt final : public Bolt {
   public:
    void Execute(const TopologyTuple&, OutputCollector*) override {}
  };
  builder
      .AddBolt("workers",
               [](uint32_t) { return std::make_unique<PlainBolt>(); }, 4)
      .Input("sources", Grouping::Pkg());
  EXPECT_FALSE(ExecuteTopologyThreaded(builder.Build(), options, rt).ok());

  // Unknown target component name.
  TopologyRuntimeOptions bad_component = rt;
  bad_component.rescale.component = "nonexistent";
  EXPECT_FALSE(ExecuteTopologyThreaded(
                   ElasticTopology(keys, 2, 4, AlgorithmKind::kPkg), options,
                   bad_component)
                   .ok());

  // total_messages is required (event positions are fractions of it).
  TopologyRuntimeOptions no_total = rt;
  no_total.rescale.total_messages = 0;
  EXPECT_FALSE(ExecuteTopologyThreaded(
                   ElasticTopology(keys, 2, 4, AlgorithmKind::kPkg), options,
                   no_total)
                   .ok());
}

}  // namespace
}  // namespace slb
