#include "slb/dspe/standard_bolts.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "slb/common/rng.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

class RecordingCollector final : public OutputCollector {
 public:
  void Emit(const TopologyTuple& tuple) override { emitted.push_back(tuple); }
  std::vector<TopologyTuple> emitted;
};

TEST(CountingBoltTest, AccumulatesAndReportsState) {
  std::map<uint64_t, uint64_t> sink;
  CountingBolt bolt([&](uint64_t k, uint64_t v) { sink[k] += v; });
  RecordingCollector out;
  bolt.Execute(TopologyTuple{1, 2}, &out);
  bolt.Execute(TopologyTuple{1, 3}, &out);
  bolt.Execute(TopologyTuple{2, 1}, &out);
  EXPECT_EQ(sink[1], 5u);
  EXPECT_EQ(sink[2], 1u);
  EXPECT_EQ(bolt.StateEntries(), 2u);
  EXPECT_TRUE(out.emitted.empty()) << "counting is a sink";
}

TEST(WindowedSumBoltTest, FlushesExactPartials) {
  WindowedSumBolt bolt(/*window=*/4);
  RecordingCollector out;
  bolt.Execute(TopologyTuple{7, 1}, &out);
  bolt.Execute(TopologyTuple{7, 1}, &out);
  bolt.Execute(TopologyTuple{8, 5}, &out);
  EXPECT_TRUE(out.emitted.empty()) << "window not full yet";
  bolt.Execute(TopologyTuple{7, 1}, &out);  // 4th input triggers the flush
  ASSERT_EQ(out.emitted.size(), 2u);
  std::map<uint64_t, uint64_t> partials;
  for (const auto& t : out.emitted) partials[t.key] = t.value;
  EXPECT_EQ(partials[7], 3u);
  EXPECT_EQ(partials[8], 5u);
  EXPECT_EQ(bolt.StateEntries(), 0u) << "state cleared after flush";
}

TEST(WindowedSumBoltTest, PlusMergerIsExact) {
  // Split a keyed stream across several windowed summers (as Greedy-d
  // would), then merge: totals must match ground truth exactly.
  const int shards = 4;
  std::vector<std::unique_ptr<WindowedSumBolt>> summers;
  for (int i = 0; i < shards; ++i) {
    summers.push_back(std::make_unique<WindowedSumBolt>(16));
  }
  std::map<uint64_t, uint64_t> merged_sink;
  MergingBolt merger([&](uint64_t k, uint64_t v) { merged_sink[k] += v; });

  ZipfDistribution zipf(1.5, 50);
  Rng rng(3);
  std::map<uint64_t, uint64_t> truth;
  std::vector<RecordingCollector> outs(shards);
  for (int i = 0; i < 4096; ++i) {
    const uint64_t key = zipf.Sample(&rng);
    ++truth[key];
    const int shard = static_cast<int>(rng.NextBounded(shards));
    summers[shard]->Execute(TopologyTuple{key, 1}, &outs[shard]);
  }
  // Drain the remaining partials with a final flush (window boundary).
  for (int s = 0; s < shards; ++s) {
    while (summers[s]->StateEntries() > 0) {
      summers[s]->Execute(TopologyTuple{~0ULL, 0}, &outs[s]);
    }
    for (const auto& t : outs[s].emitted) {
      if (t.key == ~0ULL) continue;  // flush filler
      merger.Execute(t, nullptr);
    }
  }
  for (const auto& [key, count] : truth) {
    EXPECT_EQ(merged_sink[key], count) << "key " << key;
  }
}

TEST(TopKBoltTest, ReportsHotKeys) {
  TopKBolt bolt(/*sketch_capacity=*/64, /*k=*/3, /*report_every=*/1000);
  RecordingCollector out;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t key = rng.NextBool(0.5) ? 1 : 10 + rng.NextBounded(200);
    bolt.Execute(TopologyTuple{key, 1}, &out);
  }
  ASSERT_GE(out.emitted.size(), 1u);
  EXPECT_LE(out.emitted.size(), 3u);
  EXPECT_EQ(out.emitted.front().key, 1u) << "the 50% key must lead the top-k";
  EXPECT_GT(out.emitted.front().value, 400u);
}

TEST(MapBoltTest, TransformsTuples) {
  MapBolt bolt([](const TopologyTuple& t) {
    return TopologyTuple{t.key + 1, t.value * 2};
  });
  RecordingCollector out;
  bolt.Execute(TopologyTuple{5, 3}, &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].key, 6u);
  EXPECT_EQ(out.emitted[0].value, 6u);
}

TEST(FilterBoltTest, DropsNonMatching) {
  FilterBolt bolt([](const TopologyTuple& t) { return t.key % 2 == 0; });
  RecordingCollector out;
  for (uint64_t k = 0; k < 10; ++k) bolt.Execute(TopologyTuple{k, 1}, &out);
  EXPECT_EQ(out.emitted.size(), 5u);
  for (const auto& t : out.emitted) EXPECT_EQ(t.key % 2, 0u);
}

}  // namespace
}  // namespace slb
