// Boundary property tests for SpscRing (spsc_queue.h): exactly-at-capacity
// batch publishes, index wraparound over long runs, and the shutdown-drain
// path (TryPopAll) the rescale mutator uses to settle rings while executors
// are parked. The randomized test drives the ring against a std::deque
// reference model through thousands of seeded batch operations, so any
// boundary condition in the cached-index arithmetic (full ring, empty ring,
// partial batch acceptance, wrap of the monotonically growing indices)
// diverges from the model and fails loudly.

#include "slb/dspe/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "slb/common/rng.h"

namespace slb {
namespace {

TEST(SpscBoundaryTest, ExactCapacityBatchPublishFillsRingCompletely) {
  SpscRing<uint64_t> ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  std::vector<uint64_t> items;
  for (uint64_t i = 0; i < 8; ++i) items.push_back(i);

  // A batch of exactly `capacity` into an empty ring lands whole.
  EXPECT_EQ(ring.TryPushBatch(items.data(), items.size()), 8u);
  EXPECT_FALSE(ring.TryPush(99));  // now completely full
  EXPECT_EQ(ring.TryPushBatch(items.data(), 1), 0u);

  uint64_t out[8];
  EXPECT_EQ(ring.TryPopBatch(out, 8), 8u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(ring.EmptyApprox());

  // And again from a shifted (wrapped) base index.
  EXPECT_EQ(ring.TryPushBatch(items.data(), 3), 3u);
  EXPECT_EQ(ring.TryPopBatch(out, 3), 3u);
  EXPECT_EQ(ring.TryPushBatch(items.data(), 8), 8u);
  EXPECT_EQ(ring.TryPopBatch(out, 8), 8u);
}

TEST(SpscBoundaryTest, WraparoundPreservesFifoOverManyCycles) {
  SpscRing<uint64_t> ring(4);
  uint64_t pushed = 0;
  uint64_t popped = 0;
  // 10000 cycles of push-3/pop-3 wraps the 4-slot ring thousands of times.
  for (int cycle = 0; cycle < 10000; ++cycle) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.TryPush(pushed++));
    uint64_t out = 0;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.TryPop(&out));
      ASSERT_EQ(out, popped++);
    }
  }
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(SpscBoundaryTest, RandomizedBatchOpsMatchReferenceModel) {
  for (uint64_t seed : {3u, 17u, 251u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    SpscRing<uint64_t> ring(16);
    std::deque<uint64_t> model;
    uint64_t next_value = 0;

    for (int op = 0; op < 20000; ++op) {
      if (rng.NextBool(0.5)) {
        // Push a batch of 0..20 items (often exceeding the free space, so
        // partial-prefix acceptance is exercised constantly).
        const size_t want = rng.NextBounded(21);
        std::vector<uint64_t> batch;
        for (size_t i = 0; i < want; ++i) batch.push_back(next_value + i);
        const size_t accepted = ring.TryPushBatch(batch.data(), batch.size());
        ASSERT_LE(accepted, want);
        ASSERT_LE(model.size() + accepted, ring.capacity());
        // Accepted items are a prefix; the model mirrors exactly those.
        for (size_t i = 0; i < accepted; ++i) model.push_back(batch[i]);
        next_value += accepted;
        if (accepted < want) {
          // Rejection implies the ring really was full at the boundary.
          ASSERT_EQ(model.size(), ring.capacity());
        }
      } else {
        const size_t want = rng.NextBounded(21);
        std::vector<uint64_t> out(want);
        const size_t got = ring.TryPopBatch(out.data(), want);
        // The consumer refreshes its cached tail view only when that view
        // shows empty, so a pop may return a PARTIAL batch while more items
        // are published — but never more than requested or available, and
        // an empty return is exact (the refresh happens before reporting 0).
        ASSERT_LE(got, want);
        ASSERT_LE(got, model.size());
        if (want > 0) {
          ASSERT_EQ(got == 0, model.empty());
        }
        for (size_t i = 0; i < got; ++i) {
          ASSERT_EQ(out[i], model.front());
          model.pop_front();
        }
      }
    }
    // Everything still in flight drains in order.
    std::vector<uint64_t> rest;
    ring.TryPopAll(&rest);
    ASSERT_EQ(rest.size(), model.size());
    for (size_t i = 0; i < rest.size(); ++i) EXPECT_EQ(rest[i], model[i]);
  }
}

TEST(SpscBoundaryTest, TryPopAllDrainsEverythingAndAppends) {
  SpscRing<int> ring(64);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(ring.TryPush(i));

  std::vector<int> out = {-1};  // pre-seeded: TryPopAll must append
  EXPECT_EQ(ring.TryPopAll(&out), 40u);
  ASSERT_EQ(out.size(), 41u);
  EXPECT_EQ(out[0], -1);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(out[i + 1], i);

  // Empty ring: no-op.
  EXPECT_EQ(ring.TryPopAll(&out), 0u);
  EXPECT_EQ(out.size(), 41u);
}

// The shutdown-drain contract: after the producer thread stops (e.g. a
// worker retired by a scale-in), the consumer's TryPopAll must recover every
// item published before the stop — the rescale mutator relies on this to
// settle rings without losing in-flight tuples.
TEST(SpscBoundaryTest, DrainDuringShutdownRecoversEveryPublishedItem) {
  constexpr uint64_t kCount = 30000;
  SpscRing<uint64_t> ring(128);
  std::vector<uint64_t> drained;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.TryPush(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  // Concurrent drain while the producer runs, then a final settle after it
  // stops — the two phases of a live retirement.
  while (drained.size() < kCount) ring.TryPopAll(&drained);
  producer.join();
  EXPECT_EQ(ring.TryPopAll(&drained), 0u);

  ASSERT_EQ(drained.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(drained[i], i);
  EXPECT_TRUE(ring.EmptyApprox());
}

}  // namespace
}  // namespace slb
