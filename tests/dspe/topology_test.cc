#include "slb/dspe/topology.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "slb/common/rng.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

// A spout emitting `count` tuples from a Zipf distribution.
class ZipfSpout final : public Spout {
 public:
  ZipfSpout(double z, uint64_t keys, uint64_t count, uint64_t seed)
      : zipf_(z, keys), remaining_(count), rng_(seed) {}

  bool NextTuple(TopologyTuple* out) override {
    if (remaining_ == 0) return false;
    --remaining_;
    out->key = zipf_.Sample(&rng_);
    out->value = 1;
    return true;
  }

 private:
  ZipfDistribution zipf_;
  uint64_t remaining_;
  Rng rng_;
};

// Counts tuples per key (stateful aggregation). Optionally mirrors counts
// into a caller-owned sink: the engine owns and destroys bolt instances, so
// tests must not hold raw pointers into them past ExecuteTopology().
class CountBolt final : public Bolt {
 public:
  explicit CountBolt(std::map<uint64_t, uint64_t>* sink = nullptr)
      : sink_(sink) {}

  void Execute(const TopologyTuple& tuple, OutputCollector*) override {
    counts_[tuple.key] += tuple.value;
    if (sink_ != nullptr) (*sink_)[tuple.key] += tuple.value;
  }
  size_t StateEntries() const override { return counts_.size(); }

 private:
  std::map<uint64_t, uint64_t> counts_;
  std::map<uint64_t, uint64_t>* sink_;
};

// Re-emits each tuple `fanout` times (exercises the ack tree).
class FanoutBolt final : public Bolt {
 public:
  explicit FanoutBolt(int fanout) : fanout_(fanout) {}
  void Execute(const TopologyTuple& tuple, OutputCollector* out) override {
    for (int i = 0; i < fanout_; ++i) {
      out->Emit(TopologyTuple{tuple.key * 10 + static_cast<uint64_t>(i), 1});
    }
  }

 private:
  int fanout_;
};

TopologyOptions FastOptions() {
  TopologyOptions options;
  options.spout_service_ms = 0.01;
  options.bolt_service_ms = 0.05;
  options.max_pending_per_spout = 100;
  return options;
}

TEST(TopologyValidationTest, RejectsEmptyTopology) {
  TopologyBuilder builder;
  EXPECT_FALSE(ExecuteTopology(builder.Build(), FastOptions()).ok());
}

TEST(TopologyValidationTest, RejectsDuplicateNames) {
  TopologyBuilder builder;
  builder.AddSpout("a", [](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 10, 5, 1);
  }, 1);
  builder.AddBolt("a", [](uint32_t) { return std::make_unique<CountBolt>(); }, 1)
      .Input("a", Grouping::Shuffle());
  EXPECT_FALSE(ExecuteTopology(builder.Build(), FastOptions()).ok());
}

TEST(TopologyValidationTest, RejectsUnknownUpstream) {
  TopologyBuilder builder;
  builder.AddSpout("src", [](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 10, 5, 1);
  }, 1);
  builder.AddBolt("sink", [](uint32_t) { return std::make_unique<CountBolt>(); },
                  1)
      .Input("nope", Grouping::Shuffle());
  EXPECT_FALSE(ExecuteTopology(builder.Build(), FastOptions()).ok());
}

TEST(TopologyValidationTest, RejectsBoltWithoutInputs) {
  TopologyBuilder builder;
  builder.AddSpout("src", [](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 10, 5, 1);
  }, 1);
  builder.AddBolt("lonely",
                  [](uint32_t) { return std::make_unique<CountBolt>(); }, 1);
  EXPECT_FALSE(ExecuteTopology(builder.Build(), FastOptions()).ok());
}

TEST(TopologyValidationTest, RejectsCycles) {
  TopologyBuilder builder;
  builder.AddSpout("src", [](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 10, 5, 1);
  }, 1);
  builder.AddBolt("a", [](uint32_t) { return std::make_unique<CountBolt>(); }, 1)
      .Input("src", Grouping::Shuffle())
      .Input("b", Grouping::Shuffle());
  builder.AddBolt("b", [](uint32_t) { return std::make_unique<CountBolt>(); }, 1)
      .Input("a", Grouping::Shuffle());
  EXPECT_FALSE(ExecuteTopology(builder.Build(), FastOptions()).ok());
}

TEST(TopologyExecutionTest, ProcessesEveryTupleExactlyOnce) {
  const uint64_t count = 2000;
  std::map<uint64_t, uint64_t> sink;  // engine is single-threaded
  TopologyBuilder builder;
  builder.AddSpout("src", [&](uint32_t i) {
    return std::make_unique<ZipfSpout>(1.2, 100, count / 2, 7 + i);
  }, 2);
  builder.AddBolt("count", [&](uint32_t) {
    return std::make_unique<CountBolt>(&sink);
  }, 4).Input("src", Grouping::Pkg());

  auto stats = ExecuteTopology(builder.Build(), FastOptions());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->roots_acked, count);
  EXPECT_EQ(stats->tuples_processed, count * 2);  // spout emits + bolt execs
  uint64_t total = 0;
  for (const auto& [key, c] : sink) total += c;
  EXPECT_EQ(total, count);
}

TEST(TopologyExecutionTest, AckTreeCoversDescendants) {
  // src -> fanout(3) -> count: each root completes only after its three
  // descendants are processed, so throughput and acks must both be exact.
  const uint64_t count = 500;
  TopologyBuilder builder;
  builder.AddSpout("src", [&](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 50, count, 3);
  }, 1);
  builder.AddBolt("fan", [](uint32_t) { return std::make_unique<FanoutBolt>(3); },
                  2).Input("src", Grouping::Shuffle());
  builder.AddBolt("count", [](uint32_t) { return std::make_unique<CountBolt>(); },
                  4).Input("fan", Grouping::Pkg());

  auto stats = ExecuteTopology(builder.Build(), FastOptions());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->roots_acked, count);
  // spout count + fan count + 3x count at the counter.
  EXPECT_EQ(stats->tuples_processed, count + count + 3 * count);
  ASSERT_EQ(stats->components.size(), 3u);
  EXPECT_EQ(stats->components[2].tuples_processed, 3 * count);
}

TEST(TopologyExecutionTest, KeyGroupingImbalancedUnderSkew) {
  TopologyBuilder builder;
  builder.AddSpout("src", [&](uint32_t) {
    return std::make_unique<ZipfSpout>(1.8, 1000, 5000, 11);
  }, 1);
  builder.AddBolt("agg", [](uint32_t) { return std::make_unique<CountBolt>(); },
                  10).Input("src", Grouping::Key());
  auto kg = ExecuteTopology(builder.Build(), FastOptions());
  ASSERT_TRUE(kg.ok());

  TopologyBuilder builder2;
  builder2.AddSpout("src", [&](uint32_t) {
    return std::make_unique<ZipfSpout>(1.8, 1000, 5000, 11);
  }, 1);
  builder2.AddBolt("agg", [](uint32_t) { return std::make_unique<CountBolt>(); },
                   10).Input("src", Grouping::DChoices());
  auto dc = ExecuteTopology(builder2.Build(), FastOptions());
  ASSERT_TRUE(dc.ok());

  const double kg_imb = kg->components[1].imbalance;
  const double dc_imb = dc->components[1].imbalance;
  EXPECT_GT(kg_imb, 0.2) << "z=1.8 pins ~45% of tuples on one task";
  EXPECT_LT(dc_imb, kg_imb / 4);
  // Throughput follows balance: D-C must clearly beat KG here.
  EXPECT_GT(dc->throughput_per_s, 1.2 * kg->throughput_per_s);
}

TEST(TopologyExecutionTest, StateEntriesReported) {
  TopologyBuilder builder;
  builder.AddSpout("src", [&](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 200, 3000, 5);
  }, 1);
  builder.AddBolt("agg", [](uint32_t) { return std::make_unique<CountBolt>(); },
                  5).Input("src", Grouping::Pkg());
  auto stats = ExecuteTopology(builder.Build(), FastOptions());
  ASSERT_TRUE(stats.ok());
  // PKG: every key on at most 2 tasks => state <= 2 * |K|.
  EXPECT_GT(stats->components[1].state_entries, 0u);
  EXPECT_LE(stats->components[1].state_entries, 2 * 200u);
}

TEST(TopologyExecutionTest, DeterministicForFixedSeeds) {
  auto run = [] {
    TopologyBuilder builder;
    builder.AddSpout("src", [&](uint32_t) {
      return std::make_unique<ZipfSpout>(1.4, 300, 2000, 9);
    }, 2);
    builder.AddBolt("agg", [](uint32_t) { return std::make_unique<CountBolt>(); },
                    6).Input("src", Grouping::DChoices());
    return ExecuteTopology(builder.Build(), FastOptions());
  };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->makespan_s, b->makespan_s);
  EXPECT_DOUBLE_EQ(a->latency_p99_ms, b->latency_p99_ms);
  EXPECT_EQ(a->components[1].task_loads, b->components[1].task_loads);
}

TEST(TopologyExecutionTest, TupleBudgetGuardsAgainstLoops) {
  TopologyBuilder builder;
  builder.AddSpout("src", [&](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 10, 1000, 1);
  }, 1);
  builder.AddBolt("fan", [](uint32_t) { return std::make_unique<FanoutBolt>(5); },
                  1).Input("src", Grouping::Shuffle());
  builder.AddBolt("sink", [](uint32_t) { return std::make_unique<CountBolt>(); },
                  1).Input("fan", Grouping::Shuffle());
  TopologyOptions options = FastOptions();
  options.max_tuples = 100;  // far below the 7000 the run needs
  auto stats = ExecuteTopology(builder.Build(), options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TopologyExecutionTest, MultiStagePipelineLatencyOrdering) {
  TopologyBuilder builder;
  builder.AddSpout("src", [&](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 100, 1000, 2);
  }, 1);
  builder.AddBolt("a", [](uint32_t) { return std::make_unique<FanoutBolt>(1); },
                  2).Input("src", Grouping::Shuffle());
  builder.AddBolt("b", [](uint32_t) { return std::make_unique<CountBolt>(); },
                  2).Input("a", Grouping::Pkg());
  auto stats = ExecuteTopology(builder.Build(), FastOptions());
  ASSERT_TRUE(stats.ok());
  // Tree latency >= 2 bolt service times + spout service.
  EXPECT_GE(stats->latency_p50_ms, 2 * 0.05 + 0.01 - 1e-9);
  EXPECT_LE(stats->latency_p50_ms, stats->latency_p99_ms);
}

}  // namespace
}  // namespace slb
