// Tests for the threaded topology runtime and its SPSC transport.
//
// The concurrency tests (ordering, fan-in, backpressure, shutdown drain) are
// written to be meaningful under ThreadSanitizer: they exercise real
// producer/consumer threads, not mocked interleavings. The determinism test
// locks down the contract in runtime.h: single-layer topologies route
// identically under both engines and any thread count.

#include "slb/dspe/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "slb/common/rng.h"
#include "slb/dspe/spsc_queue.h"
#include "slb/dspe/standard_bolts.h"
#include "slb/dspe/topology.h"
#include "slb/workload/zipf.h"

namespace slb {
namespace {

// ---------------------------------------------------------------------------
// SpscRing

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, PushFailsWhenFullPopFailsWhenEmpty) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full: backpressure signal
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, BatchPushAcceptsPartialPrefixWhenNearlyFull) {
  SpscRing<int> ring(4);
  const int items[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPushBatch(items, 3), 3u);
  // Only one slot left: a 3-item batch lands a 1-item prefix.
  EXPECT_EQ(ring.TryPushBatch(items + 3, 3), 1u);
  int out[8];
  EXPECT_EQ(ring.TryPopBatch(out, 8), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRingTest, ConcurrentProducerConsumerPreservesFifoOrder) {
  constexpr uint64_t kCount = 50000;
  SpscRing<uint64_t> ring(256);
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.TryPush(i)) {
        ++i;
      } else {
        std::this_thread::yield();  // single-core machines: let consumer run
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t value = 0;
    if (!ring.TryPop(&value)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(value, expected);  // FIFO, no loss, no duplication
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(SpscRingTest, ConcurrentBatchTransferDeliversEverySampleOnce) {
  constexpr uint64_t kCount = 50000;
  SpscRing<uint64_t> ring(128);
  std::thread producer([&] {
    uint64_t batch[32];
    uint64_t next = 0;
    while (next < kCount) {
      uint64_t n = 0;
      while (n < 32 && next + n < kCount) {
        batch[n] = next + n;
        ++n;
      }
      const size_t pushed = ring.TryPushBatch(batch, n);
      next += pushed;
      if (pushed < n) std::this_thread::yield();
    }
  });
  uint64_t out[48];
  uint64_t expected = 0;
  while (expected < kCount) {
    const size_t popped = ring.TryPopBatch(out, 48);
    for (size_t i = 0; i < popped; ++i) {
      ASSERT_EQ(out[i], expected);
      ++expected;
    }
    if (popped == 0) std::this_thread::yield();
  }
  producer.join();
}

// MPSC fan-in as the runtime uses it: N producer threads, each with its own
// ring, one consumer polling round-robin. Every tuple must arrive exactly
// once and per-producer order must hold.
TEST(SpscRingTest, PolledFanInDeliversAllProducersInOrder) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 10000;
  std::vector<std::unique_ptr<SpscRing<uint64_t>>> rings;
  for (int p = 0; p < kProducers; ++p) {
    rings.push_back(std::make_unique<SpscRing<uint64_t>>(64));
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer;) {
        // Tag each value with its producer so the consumer can check order.
        if (rings[p]->TryPush(static_cast<uint64_t>(p) << 32 | i)) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<uint64_t> next_expected(kProducers, 0);
  uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::this_thread::yield();
    for (int p = 0; p < kProducers; ++p) {
      uint64_t value = 0;
      while (rings[p]->TryPop(&value)) {
        ASSERT_EQ(value >> 32, static_cast<uint64_t>(p));
        ASSERT_EQ(value & 0xffffffffu, next_expected[p]);
        ++next_expected[p];
        ++received;
      }
    }
  }
  for (auto& t : producers) t.join();
  for (const auto& ring : rings) EXPECT_TRUE(ring->EmptyApprox());
}

// Producer stops mid-stream; the consumer must still be able to drain every
// tuple published before the stop (the runtime's shutdown path relies on
// rings draining after spouts exhaust).
TEST(SpscRingTest, ConsumerDrainsAfterProducerStops) {
  SpscRing<int> ring(64);
  std::thread producer([&] {
    for (int i = 0; i < 40; ++i) {
      while (!ring.TryPush(i)) {
      }
    }
  });
  producer.join();
  int out = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

// ---------------------------------------------------------------------------
// ExecuteTopologyThreaded

class ZipfSpout final : public Spout {
 public:
  ZipfSpout(double z, uint64_t keys, uint64_t count, uint64_t seed)
      : zipf_(z, keys), remaining_(count), rng_(seed) {}

  bool NextTuple(TopologyTuple* out) override {
    if (remaining_ == 0) return false;
    --remaining_;
    out->key = zipf_.Sample(&rng_);
    out->value = 1;
    return true;
  }

 private:
  ZipfDistribution zipf_;
  uint64_t remaining_;
  Rng rng_;
};

class CountBolt final : public Bolt {
 public:
  void Execute(const TopologyTuple& tuple, OutputCollector*) override {
    total_ += tuple.value;
  }
  size_t StateEntries() const override { return 1; }

 private:
  uint64_t total_ = 0;
};

class FanoutBolt final : public Bolt {
 public:
  explicit FanoutBolt(int fanout) : fanout_(fanout) {}
  void Execute(const TopologyTuple& tuple, OutputCollector* out) override {
    for (int i = 0; i < fanout_; ++i) {
      out->Emit(TopologyTuple{tuple.key * 10 + static_cast<uint64_t>(i), 1});
    }
  }

 private:
  int fanout_;
};

class ThrowingBolt final : public Bolt {
 public:
  void Execute(const TopologyTuple&, OutputCollector*) override {
    if (++seen_ == 100) throw std::runtime_error("bolt exploded");
  }

 private:
  uint64_t seen_ = 0;
};

TopologyBuilder::Topology PkgWordCount(uint64_t messages_per_spout) {
  TopologyBuilder builder;
  builder.AddSpout("words", [messages_per_spout](uint32_t task) {
    return std::make_unique<ZipfSpout>(1.2, 1000, messages_per_spout,
                                       1000 + task);
  }, 4);
  builder.AddBolt("count", [](uint32_t) { return std::make_unique<CountBolt>(); },
                  8)
      .Input("words", Grouping::Pkg());
  return builder.Build();
}

TEST(RuntimeTest, ProcessesEveryTupleSingleThread) {
  TopologyOptions options;
  options.max_pending_per_spout = 16;
  TopologyRuntimeOptions rt;
  rt.num_threads = 1;
  auto result = ExecuteTopologyThreaded(PkgWordCount(5000), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TopologyStats& stats = result.value();
  EXPECT_EQ(stats.roots_acked, 4u * 5000u);
  EXPECT_EQ(stats.tuples_processed, 2u * 4u * 5000u);  // spout emit + bolt
  EXPECT_GT(stats.throughput_per_s, 0.0);
  EXPECT_GT(stats.makespan_s, 0.0);
  ASSERT_EQ(stats.components.size(), 2u);
  EXPECT_EQ(stats.components[0].tuples_processed, 4u * 5000u);
  EXPECT_EQ(stats.components[1].tuples_processed, 4u * 5000u);
}

TEST(RuntimeTest, ProcessesEveryTupleManyThreads) {
  TopologyOptions options;
  options.max_pending_per_spout = 64;
  TopologyRuntimeOptions rt;
  rt.num_threads = 8;
  auto result = ExecuteTopologyThreaded(PkgWordCount(20000), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().roots_acked, 4u * 20000u);
  EXPECT_EQ(result.value().latency_p50_ms,
            result.value().latency_p50_ms);  // not NaN
  EXPECT_GE(result.value().latency_p99_ms, result.value().latency_p50_ms);
}

// Tiny rings + tiny credit window: progress must still be made (the
// cooperative scheduler may never block a thread on a full ring).
TEST(RuntimeTest, SurvivesSevereBackpressure) {
  TopologyOptions options;
  options.max_pending_per_spout = 1;
  TopologyRuntimeOptions rt;
  rt.num_threads = 2;
  rt.queue_capacity = 2;
  rt.batch_size = 1;
  auto result = ExecuteTopologyThreaded(PkgWordCount(2000), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().roots_acked, 4u * 2000u);
}

TEST(RuntimeTest, MultiLayerTupleTreesFullyAck) {
  TopologyBuilder builder;
  builder.AddSpout("src", [](uint32_t task) {
    return std::make_unique<ZipfSpout>(1.1, 500, 3000, 7 + task);
  }, 2);
  builder.AddBolt("fan", [](uint32_t) { return std::make_unique<FanoutBolt>(3); },
                  4)
      .Input("src", Grouping::Shuffle());
  builder.AddBolt("count",
                  [](uint32_t) { return std::make_unique<CountBolt>(); }, 6)
      .Input("fan", Grouping::Key());
  TopologyOptions options;
  options.max_pending_per_spout = 32;
  TopologyRuntimeOptions rt;
  rt.num_threads = 4;
  auto result = ExecuteTopologyThreaded(builder.Build(), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TopologyStats& stats = result.value();
  EXPECT_EQ(stats.roots_acked, 2u * 3000u);
  // spout roots + fanout bolt inputs + 3x fanned-out counts.
  EXPECT_EQ(stats.tuples_processed, 2u * 3000u * (1 + 1 + 3));
  EXPECT_EQ(stats.components[2].tuples_processed, 2u * 3000u * 3u);
}

TEST(RuntimeTest, BoltExceptionSurfacesAsStatus) {
  TopologyBuilder builder;
  builder.AddSpout("src", [](uint32_t) {
    return std::make_unique<ZipfSpout>(1.0, 100, 10000, 3);
  }, 1);
  builder.AddBolt("boom",
                  [](uint32_t) { return std::make_unique<ThrowingBolt>(); }, 2)
      .Input("src", Grouping::Shuffle());
  TopologyOptions options;
  options.max_pending_per_spout = 8;
  TopologyRuntimeOptions rt;
  rt.num_threads = 2;
  auto result = ExecuteTopologyThreaded(builder.Build(), options, rt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("bolt exploded"), std::string::npos);
}

TEST(RuntimeTest, RejectsInvalidOptions) {
  TopologyOptions options;
  options.max_pending_per_spout = 0;
  EXPECT_FALSE(ExecuteTopologyThreaded(PkgWordCount(10), options, {}).ok());

  options.max_pending_per_spout = 4;
  TopologyRuntimeOptions rt;
  rt.queue_capacity = 1;
  EXPECT_FALSE(ExecuteTopologyThreaded(PkgWordCount(10), options, rt).ok());
  rt.queue_capacity = 64;
  rt.batch_size = 0;
  EXPECT_FALSE(ExecuteTopologyThreaded(PkgWordCount(10), options, rt).ok());
}

TEST(RuntimeTest, MaxTuplesBudgetAborts) {
  TopologyOptions options;
  options.max_pending_per_spout = 8;
  options.max_tuples = 100;
  auto result = ExecuteTopologyThreaded(PkgWordCount(5000), options, {});
  EXPECT_FALSE(result.ok());
}

// The determinism contract: routing state is sender-local, so per-component
// tuple counts, load vectors, and imbalance must be byte-identical between
// the discrete-event engine and the threaded runtime at any thread count.
TEST(RuntimeTest, RoutingMatchesSimulatorExactly) {
  TopologyOptions options;
  options.hash_seed = 99;
  options.seed = 5;
  options.max_pending_per_spout = 40;

  auto sim = ExecuteTopology(PkgWordCount(10000), options);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  for (uint32_t threads : {1u, 4u}) {
    TopologyRuntimeOptions rt;
    rt.num_threads = threads;
    auto threaded = ExecuteTopologyThreaded(PkgWordCount(10000), options, rt);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ASSERT_EQ(threaded.value().components.size(),
              sim.value().components.size());
    for (size_t c = 0; c < sim.value().components.size(); ++c) {
      const ComponentStats& a = sim.value().components[c];
      const ComponentStats& b = threaded.value().components[c];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.tuples_processed, b.tuples_processed);
      ASSERT_EQ(a.task_loads.size(), b.task_loads.size());
      for (size_t i = 0; i < a.task_loads.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.task_loads[i], b.task_loads[i])
            << "component " << a.name << " task " << i << " @" << threads
            << " threads";
      }
      EXPECT_DOUBLE_EQ(a.imbalance, b.imbalance);
    }
  }
}

// Hot-path audit: per-tuple routing-log capture exists only for the elastic
// replay, so a run with no rescale schedule must never reserve a byte of
// log storage — the capture branch is compiled out of the non-logging route
// path (RouteCopies<false>), and this stat is the observable proof. A
// regression that re-enables capture unconditionally shows up here as a
// nonzero capacity long before it shows up in a profile.
TEST(RuntimeTest, RoutingLogCaptureDisabledWithoutRescale) {
  TopologyOptions options;
  options.max_pending_per_spout = 32;
  TopologyRuntimeOptions rt;
  rt.num_threads = 4;
  auto result = ExecuteTopologyThreaded(PkgWordCount(5000), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().routing_log_capacity_bytes, 0u);
  EXPECT_GT(result.value().roots_acked, 0u);
}

// ...and the same stat must be nonzero when a rescale schedule is present
// (the replay needs the logs), so the audit cannot pass vacuously.
TEST(RuntimeTest, RoutingLogCaptureEnabledWithRescale) {
  TopologyBuilder builder;
  builder.AddSpout("src", [](uint32_t task) {
    return std::make_unique<ZipfSpout>(1.2, 400, 4000, 11 + task);
  }, 2);
  builder.AddBolt("count",
                  [](uint32_t) { return std::make_unique<CountingBolt>(); }, 6)
      .Input("src", Grouping::Pkg());

  TopologyOptions options;
  options.max_pending_per_spout = 16;
  TopologyRuntimeOptions rt;
  rt.num_threads = 4;
  rt.rescale.schedule.events = {RescaleEvent{0.5, 9}};
  rt.rescale.total_messages = 2 * 4000;

  auto result = ExecuteTopologyThreaded(builder.Build(), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().routing_log_capacity_bytes, 0u);
  EXPECT_EQ(result.value().rescale.final_parallelism, 9u);
}

// The executor idle accounting must be well-formed under the default
// adaptive strategy: park time is a subset of idle time, and a run with no
// parks reports no park time.
TEST(RuntimeTest, IdleAccountingWellFormed) {
  TopologyOptions options;
  options.max_pending_per_spout = 16;
  TopologyRuntimeOptions rt;
  rt.num_threads = 4;
  rt.wait_strategy = WaitStrategy::kAdaptive;
  auto result = ExecuteTopologyThreaded(PkgWordCount(5000), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TopologyStats& stats = result.value();
  EXPECT_GE(stats.idle_s, stats.park_s);
  EXPECT_GE(stats.park_s, 0.0);
  if (stats.parks == 0) {
    EXPECT_EQ(stats.park_s, 0.0);
  }
}

// pin_threads is best-effort: on Linux every executor should pin (the count
// equals the thread count); elsewhere it must degrade to a no-op run that
// still completes with threads_pinned == 0.
TEST(RuntimeTest, PinThreadsCompletesAndReportsCount) {
  TopologyOptions options;
  options.max_pending_per_spout = 16;
  TopologyRuntimeOptions rt;
  rt.num_threads = 4;
  rt.pin_threads = true;
  auto result = ExecuteTopologyThreaded(PkgWordCount(3000), options, rt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().roots_acked, 4u * 3000u);
#if defined(__linux__)
  EXPECT_EQ(result.value().threads_pinned, 4u);
#else
  EXPECT_EQ(result.value().threads_pinned, 0u);
#endif
}

}  // namespace
}  // namespace slb
