#include "slb/sim/partition_simulator.h"

#include <gtest/gtest.h>

#include <numeric>

#include "slb/workload/datasets.h"

namespace slb {
namespace {

PartitionSimConfig Config(AlgorithmKind algo, uint32_t n, uint32_t sources = 5) {
  PartitionSimConfig config;
  config.algorithm = algo;
  config.partitioner.num_workers = n;
  config.partitioner.hash_seed = 7;
  config.num_sources = sources;
  return config;
}

std::unique_ptr<SyntheticStreamGenerator> Stream(double z, uint64_t keys,
                                                 uint64_t messages,
                                                 uint64_t seed = 3) {
  return MakeGenerator(MakeZipfSpec(z, keys, messages, seed));
}

TEST(PartitionSimTest, RejectsBadInput) {
  auto config = Config(AlgorithmKind::kPkg, 5);
  EXPECT_FALSE(RunPartitionSimulation(config, nullptr).ok());
  config.num_sources = 0;
  auto stream = Stream(1.0, 100, 1000);
  EXPECT_FALSE(RunPartitionSimulation(config, stream.get()).ok());
}

TEST(PartitionSimTest, ConservesMessages) {
  auto stream = Stream(1.2, 1000, 50000);
  auto result =
      RunPartitionSimulation(Config(AlgorithmKind::kPkg, 10), stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_messages, 50000u);
  double load_sum =
      std::accumulate(result->worker_loads.begin(), result->worker_loads.end(), 0.0);
  EXPECT_NEAR(load_sum, 1.0, 1e-9);
}

TEST(PartitionSimTest, ShuffleGroupingIsNearPerfect) {
  auto stream = Stream(2.0, 1000, 60000);
  auto result = RunPartitionSimulation(
      Config(AlgorithmKind::kShuffleGrouping, 12), stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->final_imbalance, 1e-3);
}

TEST(PartitionSimTest, TimeSeriesHasRequestedSamples) {
  auto config = Config(AlgorithmKind::kPkg, 8);
  config.num_samples = 20;
  auto stream = Stream(1.0, 500, 20000);
  auto result = RunPartitionSimulation(config, stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->imbalance_series.size(), 20u);
  EXPECT_LE(result->imbalance_series.size(), 21u);  // +1 for the final point
  EXPECT_EQ(result->imbalance_series.size(), result->sample_positions.size());
  EXPECT_EQ(result->sample_positions.back(), 20000u);
}

TEST(PartitionSimTest, KeyGroupingSuffersUnderSkew) {
  // At z = 2 the hottest key holds ~60% of the stream; KG pins it to one
  // worker, so imbalance approaches p1 - 1/n.
  auto stream = Stream(2.0, 10000, 50000);
  auto result =
      RunPartitionSimulation(Config(AlgorithmKind::kKeyGrouping, 20), stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_imbalance, 0.3);
}

TEST(PartitionSimTest, WChoicesBeatsPkgAtScaleUnderSkew) {
  // The paper's headline effect (Fig. 1/10): at large n and high skew,
  // PKG's imbalance is orders of magnitude above W-C's.
  auto stream1 = Stream(1.8, 10000, 200000);
  auto pkg = RunPartitionSimulation(Config(AlgorithmKind::kPkg, 50), stream1.get());
  auto stream2 = Stream(1.8, 10000, 200000);
  auto wc =
      RunPartitionSimulation(Config(AlgorithmKind::kWChoices, 50), stream2.get());
  ASSERT_TRUE(pkg.ok());
  ASSERT_TRUE(wc.ok());
  EXPECT_GT(pkg->final_imbalance, 10 * wc->final_imbalance);
  EXPECT_LT(wc->final_imbalance, 1e-2);
}

TEST(PartitionSimTest, DChoicesTracksWChoicesClosely) {
  auto stream1 = Stream(1.6, 10000, 200000);
  auto dc =
      RunPartitionSimulation(Config(AlgorithmKind::kDChoices, 50), stream1.get());
  auto stream2 = Stream(1.6, 10000, 200000);
  auto wc =
      RunPartitionSimulation(Config(AlgorithmKind::kWChoices, 50), stream2.get());
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(wc.ok());
  // D-C tolerates epsilon * sources of imbalance on top of W-C.
  EXPECT_LT(dc->final_imbalance, wc->final_imbalance + 5 * 1e-3);
  EXPECT_GE(dc->final_head_choices, 2u);
}

TEST(PartitionSimTest, MemoryAccountingOrdering) {
  // Measured (key,worker) assignments: PKG <= D-C <= W-C <= SG.
  auto run = [](AlgorithmKind kind) {
    auto config = Config(kind, 20);
    config.track_memory = true;
    auto stream = Stream(1.5, 2000, 80000);
    auto result = RunPartitionSimulation(config, stream.get());
    EXPECT_TRUE(result.ok());
    return result->memory_entries;
  };
  const uint64_t pkg = run(AlgorithmKind::kPkg);
  const uint64_t dc = run(AlgorithmKind::kDChoices);
  const uint64_t wc = run(AlgorithmKind::kWChoices);
  const uint64_t sg = run(AlgorithmKind::kShuffleGrouping);
  EXPECT_LE(pkg, dc + dc / 10);
  EXPECT_LE(dc, wc + wc / 10);
  EXPECT_LT(wc, sg);
}

TEST(PartitionSimTest, HeadLoadRecordedForHeadAwareAlgorithms) {
  auto config = Config(AlgorithmKind::kWChoices, 5);
  auto stream = Stream(2.0, 10000, 60000);
  auto result = RunPartitionSimulation(config, stream.get());
  ASSERT_TRUE(result.ok());
  // At z=2, the head carries most of the stream.
  EXPECT_GT(result->head_messages, result->total_messages / 3);
  double head_sum = std::accumulate(result->worker_head_loads.begin(),
                                    result->worker_head_loads.end(), 0.0);
  EXPECT_NEAR(head_sum, static_cast<double>(result->head_messages) /
                            static_cast<double>(result->total_messages),
              1e-9);
}

TEST(PartitionSimTest, SingleSourceAndManySources) {
  // The s x epsilon imbalance floor (Sec. V, Fig. 10-11): more sources can
  // only degrade balance slightly; both configurations must stay far below
  // PKG's imbalance.
  auto stream1 = Stream(1.8, 5000, 100000);
  auto one = RunPartitionSimulation(Config(AlgorithmKind::kWChoices, 50, 1),
                                    stream1.get());
  auto stream2 = Stream(1.8, 5000, 100000);
  auto ten = RunPartitionSimulation(Config(AlgorithmKind::kWChoices, 50, 10),
                                    stream2.get());
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(ten.ok());
  EXPECT_LT(one->final_imbalance, 5e-3);
  EXPECT_LT(ten->final_imbalance, 2e-2);
}

TEST(PartitionSimTest, OracleHeadClassifiesByRank) {
  // PKG is head-oblivious (last_was_head always false); with an oracle head
  // the split reflects the true rank classification instead (Fig. 8).
  auto config = Config(AlgorithmKind::kPkg, 5);
  auto blind_stream = Stream(2.0, 10000, 60000);
  auto blind = RunPartitionSimulation(config, blind_stream.get());
  ASSERT_TRUE(blind.ok());
  EXPECT_EQ(blind->head_messages, 0u);

  config.oracle_head_size = 1;  // exactly the hottest key
  auto oracle_stream = Stream(2.0, 10000, 60000);
  auto oracle = RunPartitionSimulation(config, oracle_stream.get());
  ASSERT_TRUE(oracle.ok());
  // At z=2 the rank-0 key alone carries a large share of the stream.
  EXPECT_GT(oracle->head_messages, oracle->total_messages / 5);
  // Routing itself is untouched — only the head/tail attribution changes.
  EXPECT_EQ(oracle->final_imbalance, blind->final_imbalance);
  EXPECT_EQ(oracle->worker_loads, blind->worker_loads);
}

TEST(PartitionSimTest, ReoptimizationCountExposed) {
  auto stream = Stream(1.8, 5000, 100000);
  auto dc = RunPartitionSimulation(Config(AlgorithmKind::kDChoices, 20),
                                   stream.get());
  ASSERT_TRUE(dc.ok());
  EXPECT_GT(dc->reoptimizations, 0u);

  auto stream2 = Stream(1.8, 5000, 100000);
  auto pkg =
      RunPartitionSimulation(Config(AlgorithmKind::kPkg, 20), stream2.get());
  ASSERT_TRUE(pkg.ok());
  EXPECT_EQ(pkg->reoptimizations, 0u);
}

TEST(ElasticRescaleTest, RejectsInvalidSchedules) {
  auto config = Config(AlgorithmKind::kPkg, 8);
  auto stream = Stream(1.2, 500, 10000);

  config.rescale.events = {{0.0, 10}};  // fraction must be in (0, 1)
  EXPECT_FALSE(RunPartitionSimulation(config, stream.get()).ok());
  config.rescale.events = {{1.0, 10}};
  EXPECT_FALSE(RunPartitionSimulation(config, stream.get()).ok());
  config.rescale.events = {{0.5, 10}, {0.5, 12}};  // non-increasing
  EXPECT_FALSE(RunPartitionSimulation(config, stream.get()).ok());
  config.rescale.events = {{0.6, 10}, {0.4, 12}};
  EXPECT_FALSE(RunPartitionSimulation(config, stream.get()).ok());
  config.rescale.events = {{0.5, 0}};  // zero workers
  EXPECT_FALSE(RunPartitionSimulation(config, stream.get()).ok());
  config.rescale.events = {{0.5, 10}};
  config.rescale.cost.migration_keys_per_message = 0;
  EXPECT_FALSE(RunPartitionSimulation(config, stream.get()).ok());

  config.rescale.cost.migration_keys_per_message = 4;
  EXPECT_TRUE(RunPartitionSimulation(config, stream.get()).ok());
}

TEST(ElasticRescaleTest, ScaleOutRunBasics) {
  auto config = Config(AlgorithmKind::kPkg, 8);
  config.rescale.events = {{0.5, 12}};
  auto stream = Stream(1.2, 1000, 40000);
  auto result = RunPartitionSimulation(config, stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->final_num_workers, 12u);
  EXPECT_EQ(result->rescale_events, 1u);
  EXPECT_EQ(result->worker_loads.size(), 12u);
  EXPECT_EQ(result->total_messages, 40000u);
  // Lazy scale-out: pre-existing re-routed keys were rechecked and PKG's
  // mod-range rehash moved nearly all of them.
  EXPECT_GT(result->keys_migrated, 0u);
  EXPECT_GT(result->moved_key_fraction, 0.5);
  EXPECT_EQ(result->state_bytes_migrated,
            result->keys_migrated * config.rescale.cost.state_bytes_per_key);
  // Loads reflect the current (post-rescale) worker set and still sum to 1.
  double load_sum = std::accumulate(result->worker_loads.begin(),
                                    result->worker_loads.end(), 0.0);
  EXPECT_NEAR(load_sum, 1.0, 1e-9);
}

TEST(ElasticRescaleTest, ScaleInMigratesEagerly) {
  auto config = Config(AlgorithmKind::kPkg, 12);
  config.rescale.events = {{0.6, 8}};
  auto stream = Stream(1.2, 1000, 40000);
  auto result = RunPartitionSimulation(config, stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->final_num_workers, 8u);
  EXPECT_EQ(result->worker_loads.size(), 8u);
  // Keys homed on the 4 removed workers hand off at the event; with 1000
  // hot-ish keys over 12 workers some state must have lived there.
  EXPECT_GT(result->keys_migrated, 0u);
  // The eager handoff burst overwhelms the drain rate briefly: messages for
  // still-in-flight keys stall.
  EXPECT_GT(result->stalled_messages, 0u);
}

TEST(ElasticRescaleTest, StaticScheduleLeavesCountersZero) {
  auto config = Config(AlgorithmKind::kPkg, 8);
  auto stream = Stream(1.2, 1000, 20000);
  auto result = RunPartitionSimulation(config, stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->final_num_workers, 8u);
  EXPECT_EQ(result->rescale_events, 0u);
  EXPECT_EQ(result->keys_migrated, 0u);
  EXPECT_EQ(result->stalled_messages, 0u);
  EXPECT_EQ(result->moved_key_fraction, 0.0);
}

TEST(ElasticRescaleTest, ConsistentHashMovesMinimalFraction) {
  // The acceptance criterion: on scale-out n -> n + delta, CH's moved-key
  // fraction must land within 2x of the delta/(n + delta) minimal-movement
  // expectation, while PKG's mod-range rehash re-homes nearly everything.
  const uint32_t n = 32, delta = 8;
  auto run = [&](AlgorithmKind kind) {
    auto config = Config(kind, n);
    config.rescale.events = {{0.45, n + delta}};
    auto stream = Stream(1.1, 10000, 200000);
    auto result = RunPartitionSimulation(config, stream.get());
    EXPECT_TRUE(result.ok());
    return result->moved_key_fraction;
  };
  const double expectation =
      static_cast<double>(delta) / static_cast<double>(n + delta);  // 0.2
  const double ch = run(AlgorithmKind::kConsistentHash);
  EXPECT_GT(ch, expectation / 2);
  EXPECT_LT(ch, expectation * 2);
  const double pkg = run(AlgorithmKind::kPkg);
  EXPECT_GT(pkg, 0.75) << "mod-range hashing should re-home nearly all keys";
  EXPECT_GT(pkg, 3 * ch);
}

TEST(ElasticRescaleTest, MultiEventScheduleAppliesInOrder) {
  auto config = Config(AlgorithmKind::kDChoices, 16);
  config.rescale.events = {{0.3, 24}, {0.7, 12}};
  auto stream = Stream(1.4, 2000, 60000);
  auto result = RunPartitionSimulation(config, stream.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rescale_events, 2u);
  EXPECT_EQ(result->final_num_workers, 12u);
  EXPECT_EQ(result->worker_loads.size(), 12u);
  EXPECT_LT(result->final_imbalance, 0.1);
}

TEST(PartitionSimTest, DriftingStreamStillBalanced) {
  DatasetSpec ct = MakeCashtagsSpec(0.1);
  auto gen = MakeGenerator(ct);
  auto result =
      RunPartitionSimulation(Config(AlgorithmKind::kDChoices, 10), gen.get());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->final_imbalance, 0.05);
}

}  // namespace
}  // namespace slb
